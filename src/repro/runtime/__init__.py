"""Simulated shared-memory parallel runtime (the OpenMP substitution).

See DESIGN.md section 2 for why this exists: the paper's algorithms are
OpenMP programs and their evaluation is about parallel scaling, which a
GIL-bound single-core Python process cannot measure natively.  Algorithms
declare their parallel structure here and receive deterministic simulated
timings, memory footprints, and budget enforcement in return.
"""

from .cost import DEFAULT_COST_MODEL, CostModel
from .metrics import RunMetrics, TimeBreakdown
from .scheduler import Schedule, compute_thread_loads
from .simruntime import SimRuntime

__all__ = [
    "CostModel",
    "DEFAULT_COST_MODEL",
    "SimRuntime",
    "RunMetrics",
    "TimeBreakdown",
    "Schedule",
    "compute_thread_loads",
]
