"""Accounting records produced by the simulated runtime.

A :class:`TimeBreakdown` splits simulated elapsed time into the components
that explain *why* an algorithm scales the way it does: useful parallel
work, idle time from load imbalance, synchronisation overhead (spawns,
barriers, atomics) and serial sections.  The benchmark reports surface these
so the paper's qualitative explanations (e.g. "PXY suffers load imbalance",
"PKC's tiny iterations drown in scheduling overhead") are checkable numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TimeBreakdown", "RunMetrics"]


@dataclass
class TimeBreakdown:
    """Simulated elapsed time split by cause (all values in seconds)."""

    work: float = 0.0
    imbalance: float = 0.0
    spawn: float = 0.0
    barrier: float = 0.0
    atomic: float = 0.0
    serial: float = 0.0

    @property
    def total(self) -> float:
        """Total simulated elapsed seconds."""
        return (
            self.work
            + self.imbalance
            + self.spawn
            + self.barrier
            + self.atomic
            + self.serial
        )

    def merge(self, other: "TimeBreakdown") -> None:
        """Accumulate another breakdown into this one in place."""
        self.work += other.work
        self.imbalance += other.imbalance
        self.spawn += other.spawn
        self.barrier += other.barrier
        self.atomic += other.atomic
        self.serial += other.serial

    def as_dict(self) -> dict[str, float]:
        """Return the breakdown as a plain dict (for reports)."""
        return {
            "work": self.work,
            "imbalance": self.imbalance,
            "spawn": self.spawn,
            "barrier": self.barrier,
            "atomic": self.atomic,
            "serial": self.serial,
            "total": self.total,
        }


@dataclass
class RunMetrics:
    """Aggregate counters for one simulated algorithm run."""

    breakdown: TimeBreakdown = field(default_factory=TimeBreakdown)
    parallel_loops: int = 0
    items_processed: int = 0
    max_parfor_items: int = 0
    atomic_ops: int = 0
    peak_memory_bytes: int = 0

    def as_dict(self) -> dict[str, float | int]:
        """Return all counters flattened into one dict (for reports)."""
        flat: dict[str, float | int] = dict(self.breakdown.as_dict())
        flat.update(
            parallel_loops=self.parallel_loops,
            items_processed=self.items_processed,
            max_parfor_items=self.max_parfor_items,
            atomic_ops=self.atomic_ops,
            peak_memory_bytes=self.peak_memory_bytes,
        )
        return flat
