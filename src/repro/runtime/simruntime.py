"""Deterministic simulated shared-memory parallel runtime.

Algorithms in this library are written against an OpenMP-like interface:
they execute their kernels once (serially, typically vectorised with NumPy)
and *declare* the parallel structure of each loop to a :class:`SimRuntime`.
The runtime advances a simulated clock by the makespan of each declared
loop under the configured :class:`~repro.runtime.cost.CostModel` and
scheduler, tracks peak simulated memory, and enforces the experiment's
time/memory budgets exactly the way the paper's 10^5-second cutoff and
255 GB RAM ceiling shaped its Figures 8–10.

Example::

    rt = SimRuntime(num_threads=32)
    with rt.parallel_region():
        rt.parfor(per_vertex_costs)          # one "for ... in parallel" sweep
    print(rt.now, rt.metrics.breakdown.as_dict())

Determinism: no wall clock and no randomness is consulted anywhere, so a
given (algorithm, graph, p) triple always yields the same simulated time.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

import numpy as np

from ..errors import SimMemoryLimitExceeded, SimTimeLimitExceeded, SimulationError
from .cost import DEFAULT_COST_MODEL, CostModel
from .metrics import RunMetrics, TimeBreakdown
from .scheduler import Schedule, compute_thread_loads

__all__ = ["SimRuntime"]


class SimRuntime:
    """Simulated clock + accounting for one parallel algorithm run."""

    def __init__(
        self,
        num_threads: int = 1,
        cost_model: CostModel | None = None,
        time_limit: float | None = None,
        memory_limit_bytes: float | None = None,
        sanitize: bool = False,
    ):
        if num_threads < 1:
            raise SimulationError("num_threads must be >= 1")
        if time_limit is not None and time_limit < 0:
            raise SimulationError("time_limit must be non-negative")
        if memory_limit_bytes is not None and memory_limit_bytes < 0:
            raise SimulationError("memory_limit_bytes must be non-negative")
        self.num_threads = num_threads
        self.cost_model = cost_model or DEFAULT_COST_MODEL
        self.time_limit = time_limit
        self.memory_limit_bytes = memory_limit_bytes
        self.metrics = RunMetrics()
        self._now = 0.0
        self._current_memory = 0
        self._in_region = False
        if sanitize:
            # Imported lazily: repro.analysis is a leaf package and pulling
            # it in unconditionally would make every solver import the lint
            # machinery.
            from ..analysis.race import RaceSanitizer

            self.sanitizer: "RaceSanitizer | None" = RaceSanitizer()
        else:
            self.sanitizer = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def _advance(self, delta: float) -> None:
        """Advance the clock; enforce the time budget *strictly*.

        The boundary is deliberately ``>``: a run whose simulated time lands
        exactly on ``time_limit`` is within budget (the paper's 10^5-second
        cutoff reports DNF only for runs that *exceed* the wall), so
        reaching the limit to the last femtosecond does not raise.
        """
        if delta < 0:
            raise SimulationError("cannot advance the clock backwards")
        self._now += delta
        if self.time_limit is not None and self._now > self.time_limit:
            raise SimTimeLimitExceeded(self._now, self.time_limit)

    # ------------------------------------------------------------------
    # Parallel structure declaration
    # ------------------------------------------------------------------
    @contextmanager
    def parallel_region(self) -> Iterator["SimRuntime"]:
        """Declare an OpenMP-style parallel region (charges spawn once).

        Loops issued inside the region skip their per-loop spawn cost; the
        team is created once at region entry, as with ``#pragma omp
        parallel`` enclosing several ``for`` loops.

        Regions may nest (OpenMP nested parallelism): every entry charges
        its own spawn cost, and leaving an inner region restores the outer
        region's state rather than ending it — misuse such as closing an
        inner region never silently re-enables per-loop spawn charging for
        the enclosing one.
        """
        spawn = self.cost_model.spawn_seconds(self.num_threads)
        self.metrics.breakdown.spawn += spawn
        self._advance(spawn)
        was_in_region = self._in_region
        self._in_region = True
        try:
            yield self
        finally:
            self._in_region = was_in_region

    def parfor(
        self,
        costs: np.ndarray | float,
        schedule: Schedule = "static",
        chunk: int | None = None,
        atomic_ops: int = 0,
    ) -> float:
        """Account one parallel loop; return its simulated elapsed seconds.

        ``costs`` is either an array of per-item work units or, as a
        convenience, a scalar meaning "one item of this many units per
        thread-independent loop" (treated as a single uniform array is not
        meaningful, so scalars are interpreted as total units split evenly).
        ``atomic_ops`` counts atomic read-modify-writes performed across the
        whole loop; they are costed with the model's contention factor.
        """
        model = self.cost_model
        p = self.num_threads
        if np.isscalar(costs):
            total_units = float(costs)
            loads = np.full(p, total_units / p)
            items = p
        else:
            cost_array = np.asarray(costs, dtype=np.float64).ravel()
            loads = compute_thread_loads(cost_array, p, schedule=schedule, chunk=chunk)
            total_units = float(cost_array.sum())
            items = int(cost_array.size)

        spawn = 0.0 if self._in_region else model.spawn_seconds(p)
        barrier = model.barrier_seconds(p)
        max_load = float(loads.max(initial=0.0))
        mean_load = total_units / p
        work_seconds = model.work_seconds(mean_load)
        imbalance_seconds = model.work_seconds(max_load - mean_load)
        atomic_seconds = atomic_ops * model.atomic_op_seconds(p) / p

        elapsed = spawn + work_seconds + imbalance_seconds + barrier + atomic_seconds
        breakdown = self.metrics.breakdown
        breakdown.work += work_seconds
        breakdown.imbalance += imbalance_seconds
        breakdown.spawn += spawn
        breakdown.barrier += barrier
        breakdown.atomic += atomic_seconds
        self.metrics.parallel_loops += 1
        self.metrics.items_processed += items
        self.metrics.max_parfor_items = max(self.metrics.max_parfor_items, items)
        self.metrics.atomic_ops += atomic_ops
        self._advance(elapsed)
        return elapsed

    def par_tasks(self, task_costs: np.ndarray, atomic_ops: int = 0) -> float:
        """Account a task-pool execution (used by PXY's per-x jobs)."""
        return self.parfor(task_costs, schedule="tasks", atomic_ops=atomic_ops)

    # ------------------------------------------------------------------
    # Race sanitizer hook
    # ------------------------------------------------------------------
    @property
    def sanitize(self) -> bool:
        """True when this runtime runs kernels under the race sanitizer."""
        return self.sanitizer is not None

    def observe_parfor(
        self,
        num_iterations: int,
        body,
        shared,
        label: str | None = None,
        order_dependent: bool | None = None,
    ):
        """Execute a declared parallel loop body iteration by iteration.

        This is the *execution* counterpart of :meth:`parfor`, which only
        does cost accounting: kernels that want their per-iteration
        read/write behaviour checked route their loop through here (and
        still declare the loop's cost with :meth:`parfor` as usual — this
        method charges nothing).

        ``body(i, **shared)`` is called for ``i in range(num_iterations)``
        with ``shared`` mapping names to NumPy arrays.  Without
        ``sanitize=True`` the body runs directly on the raw arrays and
        ``None`` is returned.  Under the sanitizer the arrays are wrapped
        in tracking proxies, cross-iteration conflicts are checked when the
        loop ends, and the :class:`~repro.analysis.race.LoopRaceReport` is
        returned — raising :class:`~repro.errors.ParforRaceError` if the
        loop races without being annotated.

        ``order_dependent`` defaults to the body's
        :func:`~repro.analysis.race.declare_order_dependent` annotation.
        """
        if self.sanitizer is None:
            for iteration in range(int(num_iterations)):
                body(iteration, **shared)
            return None
        if order_dependent is None:
            from ..analysis.race import is_order_dependent

            order_dependent = is_order_dependent(body)
        return self.sanitizer.run_loop(
            label or getattr(body, "__name__", "parfor"),
            int(num_iterations),
            body,
            shared,
            order_dependent=order_dependent,
        )

    def charge_serial(self, units: float) -> float:
        """Account serial work of ``units`` work units; return the seconds."""
        if units < 0:
            raise SimulationError("work units must be non-negative")
        seconds = self.cost_model.work_seconds(units) + self.cost_model.sequential_overhead_seconds
        self.metrics.breakdown.serial += seconds
        self._advance(seconds)
        return seconds

    # ------------------------------------------------------------------
    # Memory accounting
    # ------------------------------------------------------------------
    def allocate(self, num_bytes: float, per_thread: bool = False) -> int:
        """Register a simulated allocation; return the byte count booked.

        ``per_thread=True`` multiplies by the thread count — this models
        algorithms such as PXY and PBD that give every thread its own graph
        copy, which is what blows past 255 GB on Twitter for p > 4 in the
        paper.  Raises :class:`SimMemoryLimitExceeded` when the configured
        budget is exceeded.
        """
        if num_bytes < 0:
            raise SimulationError("allocation size must be non-negative")
        booked = int(num_bytes) * (self.num_threads if per_thread else 1)
        self._current_memory += booked
        self.metrics.peak_memory_bytes = max(
            self.metrics.peak_memory_bytes, self._current_memory
        )
        if (
            self.memory_limit_bytes is not None
            and self._current_memory > self.memory_limit_bytes
        ):
            raise SimMemoryLimitExceeded(self._current_memory, self.memory_limit_bytes)
        return booked

    def free(self, booked_bytes: int) -> None:
        """Release a previously booked allocation."""
        if booked_bytes < 0 or booked_bytes > self._current_memory:
            raise SimulationError("free does not match an outstanding allocation")
        self._current_memory -= booked_bytes

    @contextmanager
    def allocation(self, num_bytes: float, per_thread: bool = False) -> Iterator[int]:
        """Context-managed :meth:`allocate` / :meth:`free` pair."""
        booked = self.allocate(num_bytes, per_thread=per_thread)
        try:
            yield booked
        finally:
            self.free(booked)

    def allocate_graph(self, graph, per_thread: bool = False) -> int:
        """Book a simulated copy of ``graph`` (per thread if requested)."""
        size = self.cost_model.graph_bytes(graph.num_vertices, graph.num_edges)
        return self.allocate(size, per_thread=per_thread)

    @property
    def current_memory_bytes(self) -> int:
        """Outstanding simulated allocation in bytes."""
        return self._current_memory

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def breakdown(self) -> TimeBreakdown:
        """Shortcut to the metrics' time breakdown."""
        return self.metrics.breakdown

    def __repr__(self) -> str:
        return (
            f"SimRuntime(p={self.num_threads}, now={self._now:.6g}s, "
            f"loops={self.metrics.parallel_loops})"
        )
