"""Cost model for the simulated shared-memory runtime.

The paper's experiments run OpenMP on a 40-core Xeon.  This reproduction
cannot execute real shared-memory parallelism (single-core container, GIL),
so algorithms instead *declare* their parallel structure to
:class:`~repro.runtime.simruntime.SimRuntime`, and this cost model converts
that structure into simulated seconds:

* every abstract **work unit** (one adjacency-entry touch, one comparison)
  costs ``work_unit_seconds`` — calibrated to a C++-like 5 ns;
* entering a parallel region (OpenMP ``parallel for``) costs a **spawn**
  overhead that grows with the thread count, which is what makes many tiny
  iterations unprofitable at high p (paper Exp-3/Exp-7 discussion);
* every loop ends with a **barrier** whose cost grows logarithmically in p;
* **atomic** updates cost extra and degrade under contention.

The defaults are calibrated so the relative behaviour reported by the paper
(near-linear PKMC scaling; PKC/PBD flattening or degrading at high p)
emerges from the model rather than being hard-coded.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["CostModel", "DEFAULT_COST_MODEL"]


@dataclass(frozen=True)
class CostModel:
    """Parameters translating abstract work into simulated seconds."""

    work_unit_seconds: float = 5e-9
    """Cost of one abstract unit of work (one edge/adjacency touch)."""

    spawn_base_seconds: float = 4e-6
    """Fixed cost of opening a parallel region (thread team wake-up)."""

    spawn_per_thread_seconds: float = 5e-7
    """Additional per-thread cost of opening a parallel region."""

    barrier_base_seconds: float = 1e-6
    """Fixed cost of the implicit barrier ending a parallel loop."""

    barrier_log_seconds: float = 8e-7
    """Barrier cost multiplier for log2(p) (tree-combining barrier)."""

    atomic_seconds: float = 2.5e-8
    """Cost of one uncontended atomic read-modify-write."""

    atomic_contention_factor: float = 0.08
    """Extra atomic cost fraction per additional competing thread."""

    sequential_overhead_seconds: float = 0.0
    """Optional flat cost added to every serial charge (defaults to none)."""

    bytes_per_edge: int = 16
    """Modelled memory footprint per stored edge (two 8-byte endpoints)."""

    bytes_per_vertex: int = 24
    """Modelled memory footprint per vertex of auxiliary algorithm state."""

    def spawn_seconds(self, num_threads: int) -> float:
        """Cost of opening a parallel region with ``num_threads`` threads."""
        if num_threads <= 1:
            return 0.0
        return self.spawn_base_seconds + self.spawn_per_thread_seconds * num_threads

    def barrier_seconds(self, num_threads: int) -> float:
        """Cost of the barrier closing a parallel loop."""
        if num_threads <= 1:
            return 0.0
        return self.barrier_base_seconds + self.barrier_log_seconds * math.log2(
            num_threads
        )

    def atomic_op_seconds(self, num_threads: int) -> float:
        """Cost of one atomic op when ``num_threads`` threads may contend."""
        contention = 1.0 + self.atomic_contention_factor * max(num_threads - 1, 0)
        return self.atomic_seconds * contention

    def work_seconds(self, units: float) -> float:
        """Cost of ``units`` abstract work units on one thread."""
        return units * self.work_unit_seconds

    def graph_bytes(self, num_vertices: int, num_edges: int) -> int:
        """Modelled resident size of one graph copy."""
        return num_vertices * self.bytes_per_vertex + num_edges * self.bytes_per_edge


DEFAULT_COST_MODEL = CostModel()
