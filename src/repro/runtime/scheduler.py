"""Loop schedulers for the simulated runtime.

Given the per-item work units of a parallel loop and a thread count, each
scheduler returns the simulated per-thread loads (in work units).  The
elapsed time of the loop is then ``max(loads)`` — the makespan — so the gap
between schedulers is exactly the load imbalance the paper discusses for
PXY (static per-x assignment) versus the well-balanced PKMC sweeps.
"""

from __future__ import annotations

import heapq
from typing import Literal

import numpy as np

from ..errors import SimulationError

__all__ = ["Schedule", "compute_thread_loads"]

Schedule = Literal["static", "static_cyclic", "dynamic", "tasks"]


def _static_block(costs: np.ndarray, num_threads: int) -> np.ndarray:
    """OpenMP ``schedule(static)``: contiguous near-equal item blocks."""
    bounds = np.linspace(0, costs.size, num_threads + 1).astype(np.int64)
    prefix = np.concatenate([[0.0], np.cumsum(costs)])
    return prefix[bounds[1:]] - prefix[bounds[:-1]]


def _static_cyclic(costs: np.ndarray, num_threads: int, chunk: int) -> np.ndarray:
    """OpenMP ``schedule(static, chunk)``: round-robin chunk assignment."""
    loads = np.zeros(num_threads)
    num_chunks = -(-costs.size // chunk)
    for chunk_index in range(num_chunks):
        start = chunk_index * chunk
        loads[chunk_index % num_threads] += costs[start:start + chunk].sum()
    return loads


def _dynamic(costs: np.ndarray, num_threads: int, chunk: int) -> np.ndarray:
    """OpenMP ``schedule(dynamic, chunk)``: next chunk to the first idle thread.

    Simulated as greedy list scheduling: chunks are taken in order and each
    goes to the currently least-loaded thread, which is exactly the makespan
    a work queue achieves when chunk fetch overhead is negligible.
    """
    loads = [(0.0, t) for t in range(num_threads)]
    heapq.heapify(loads)
    result = np.zeros(num_threads)
    for start in range(0, costs.size, chunk):
        load, thread = heapq.heappop(loads)
        load += float(costs[start:start + chunk].sum())
        result[thread] = load
        heapq.heappush(loads, (load, thread))
    return result


def compute_thread_loads(
    costs: np.ndarray,
    num_threads: int,
    schedule: Schedule = "static",
    chunk: int | None = None,
) -> np.ndarray:
    """Return simulated per-thread loads (work units) for one parallel loop.

    ``schedule="tasks"`` models a task pool where every item is its own
    task (used for PXY's one-[x,y]-core-per-thread decomposition jobs).
    """
    costs = np.asarray(costs, dtype=np.float64).ravel()
    if num_threads < 1:
        raise SimulationError("num_threads must be >= 1")
    if costs.size == 0:
        return np.zeros(num_threads)
    if np.any(costs < 0):
        raise SimulationError("work-unit costs must be non-negative")
    if num_threads == 1:
        loads = np.zeros(1)
        loads[0] = float(costs.sum())
        return loads
    if schedule == "static":
        return _static_block(costs, num_threads)
    if schedule == "static_cyclic":
        return _static_cyclic(costs, num_threads, chunk or 1)
    if schedule == "dynamic":
        return _dynamic(costs, num_threads, chunk or max(costs.size // (num_threads * 8), 1))
    if schedule == "tasks":
        return _dynamic(costs, num_threads, 1)
    raise SimulationError(f"unknown schedule {schedule!r}")
