"""Abstract interface every array backend implements.

A backend owns the *execution strategy* for the three data-parallel
operations the kernel layer spends its time in; the kernel modules
(:mod:`repro.kernels.segments` / ``frontier`` / ``density``) stay the
single source of truth for the algorithms' semantics and dispatch here
for the heavy lifting.  The contract is strict bit-identity: every
backend must return exactly the arrays the numpy reference backend
returns — same values, same dtype — so solver iteration counts, density
reports and :class:`~repro.runtime.simruntime.SimRuntime` charges are
backend-invariant by construction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph.undirected import UndirectedGraph

__all__ = ["ArrayBackend"]


class ArrayBackend:
    """Execution strategy for the kernel layer's data-parallel operations.

    Subclasses override the three operation hooks; :meth:`available` lets
    optional backends (numba) report missing dependencies without import
    errors, and :meth:`close` releases process pools / shared memory.
    """

    #: Registry name, e.g. ``"numpy"``; set by each implementation.
    name: str = "abstract"

    def available(self) -> bool:
        """Whether this backend can actually run on the current host."""
        return True

    def segment_h_index(
        self,
        seg_ptr: np.ndarray,
        values: np.ndarray,
        seg_rows: np.ndarray | None = None,
        bins: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> np.ndarray:
        """Generic segmented h-index over an arbitrary segmentation.

        Semantics of :func:`repro.kernels.segments.segment_h_index`; the
        ``seg_rows`` / ``bins`` hints are optional precomputed layouts.
        """
        raise NotImplementedError

    def sweep_values(
        self,
        graph: "UndirectedGraph",
        h: np.ndarray,
        vertices: np.ndarray | None = None,
    ) -> np.ndarray:
        """Recomputed h-index values for a vertex set (the sweep hot path).

        ``vertices=None`` recomputes every vertex (one full Jacobi sweep
        body); otherwise only the given ids are recomputed and the result
        aligns with ``vertices`` (frontier subsets, Gauss–Seidel batches).
        Always returns ``int64`` values read against the *current* ``h``.
        """
        raise NotImplementedError

    def induced_edge_count(self, graph: "UndirectedGraph", member: np.ndarray) -> int:
        """Number of edges with both endpoints inside the boolean mask."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any pools / shared memory; safe to call repeatedly."""

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<{type(self).__name__} name={self.name!r}>"
