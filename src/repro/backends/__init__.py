"""Pluggable array backends for the kernel hot path.

The kernel layer (:mod:`repro.kernels`) states *what* every sweep
computes; this package decides *how* — the shape of dgl's ``backend/``
package, one module per implementation:

* :mod:`~repro.backends.numpy_backend` — single-threaded vectorised
  NumPy, the default and the bit-identity reference;
* :mod:`~repro.backends.multiproc` — process-parallel execution over
  shared-memory views of the frozen CSR buffers;
* :mod:`~repro.backends.numba_backend` — optional JIT'd loops, silently
  unavailable when numba is not installed.

Selection precedence (first match wins):

1. an explicit name — ``ExecutionContext(backend=...)`` /
   ``repro-dsd --backend`` / the :func:`use_backend` context manager;
2. the ``REPRO_BACKEND`` environment variable;
3. the default, ``numpy``.

Backends only change wall-clock execution.  Results are bit-identical
across backends and :class:`~repro.runtime.simruntime.SimRuntime`
charging lives in the solvers, so simulated seconds are
backend-invariant by construction (see ``tests/backends/``).
"""

from __future__ import annotations

import atexit
import os
import threading
from contextlib import contextmanager
from importlib import import_module

from ..errors import BackendError
from .base import ArrayBackend

__all__ = [
    "ArrayBackend",
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "available_backends",
    "backend_name",
    "get_backend",
    "resolve_backend_name",
    "set_backend",
    "use_backend",
]

BACKEND_ENV_VAR = "REPRO_BACKEND"
DEFAULT_BACKEND = "numpy"

#: name -> (module, class); implementations import lazily so selecting
#: numpy never pays for multiprocessing/numba machinery.
_REGISTRY: dict[str, tuple[str, str]] = {
    "numpy": ("repro.backends.numpy_backend", "NumpyBackend"),
    "multiproc": ("repro.backends.multiproc", "MultiprocBackend"),
    "numba": ("repro.backends.numba_backend", "NumbaBackend"),
}

_instances: dict[str, ArrayBackend] = {}
_lock = threading.Lock()
# Process-wide override stack: ``set_backend`` pushes a session default,
# ``use_backend`` pushes/pops around a block.  Empty -> env/default.
_override: list[str] = []


def _env_name() -> str | None:
    raw = os.environ.get(BACKEND_ENV_VAR, "").strip()
    return raw or None


def resolve_backend_name(name: str | None = None) -> str:
    """Resolve a possibly-absent backend name through the precedence chain.

    ``name`` (the context kwarg) wins over any :func:`set_backend` /
    :func:`use_backend` override, which wins over ``REPRO_BACKEND``,
    which wins over the ``numpy`` default.  Unknown names raise
    :class:`~repro.errors.BackendError` listing the registry.
    """
    resolved = (
        name
        or (_override[-1] if _override else None)
        or _env_name()
        or DEFAULT_BACKEND
    )
    if resolved not in _REGISTRY:
        raise BackendError(
            f"unknown backend {resolved!r}; expected one of "
            f"{', '.join(sorted(_REGISTRY))}"
        )
    return resolved


def get_backend(name: str | None = None) -> ArrayBackend:
    """Return the active backend instance (lazily constructed singleton).

    Explicitly selecting a backend whose optional dependency is missing
    raises :class:`~repro.errors.BackendError`; merely *having* such a
    backend in the registry never does.
    """
    resolved = resolve_backend_name(name)
    instance = _instances.get(resolved)
    if instance is None:
        with _lock:
            instance = _instances.get(resolved)
            if instance is None:
                module_name, class_name = _REGISTRY[resolved]
                instance = getattr(import_module(module_name), class_name)()
                _instances[resolved] = instance
    if not instance.available():
        raise BackendError(
            f"backend {resolved!r} is not available on this host "
            "(missing optional dependency)"
        )
    return instance


def backend_name() -> str:
    """Name the next kernel call would dispatch to."""
    return resolve_backend_name()


def set_backend(name: str | None) -> None:
    """Install (or with ``None`` clear) a process-wide backend override."""
    _override.clear()
    if name is not None:
        get_backend(name)  # validate eagerly
        _override.append(resolve_backend_name(name))


@contextmanager
def use_backend(name: str | None):
    """Scope a backend selection to a ``with`` block (re-entrant).

    ``None`` is a no-op scope, so callers can unconditionally wrap
    ``with use_backend(ctx.backend): ...``.
    """
    if name is None:
        yield get_backend()
        return
    instance = get_backend(name)  # validate before entering
    _override.append(resolve_backend_name(name))
    try:
        yield instance
    finally:
        _override.pop()


def available_backends() -> dict[str, bool]:
    """Map every registered backend name to host availability.

    Availability probing must not drag in heavyweight machinery, so the
    instances are constructed lazily like everywhere else (constructors
    are cheap by contract: pools/JIT engage on first use).
    """
    report = {}
    for registered in sorted(_REGISTRY):
        try:
            report[registered] = get_backend(registered).available()
        except BackendError:
            report[registered] = False
    return report


@atexit.register
def _close_all() -> None:  # pragma: no cover - interpreter shutdown
    for instance in list(_instances.values()):
        try:
            instance.close()
        except Exception:  # repro-lint: disable=R002 (best-effort atexit teardown)
            pass
