"""Single-threaded NumPy reference backend (the default).

This module owns the *raw* vectorised formulations that used to live
inline in :mod:`repro.kernels.segments` and
:mod:`repro.kernels.density`; the kernel modules now dispatch through
:func:`repro.backends.get_backend` and every other backend is defined as
"bit-identical to this one".  The functions are plain module-level
callables (not methods) so the multiprocessing backend's workers and its
small-input inline fallback can reuse them directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .base import ArrayBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph.undirected import UndirectedGraph

__all__ = [
    "NumpyBackend",
    "segment_h_index_numpy",
    "sweep_values_numpy",
    "induced_edge_count_numpy",
]


def segment_h_index_numpy(
    seg_ptr: np.ndarray,
    values: np.ndarray,
    seg_rows: np.ndarray | None = None,
    bins: tuple[np.ndarray, np.ndarray] | None = None,
) -> np.ndarray:
    """Sort-free segmented h-index: clipped bincount + segment suffix sums.

    See :func:`repro.kernels.segments.segment_h_index` for the public
    contract and the algorithm walkthrough; this is the implementation.
    """
    seg_ptr = np.asarray(seg_ptr)
    if not np.issubdtype(seg_ptr.dtype, np.integer):
        seg_ptr = seg_ptr.astype(np.int64)
    n = seg_ptr.size - 1
    if n <= 0:
        return np.empty(0, dtype=np.int64)
    lens = np.diff(seg_ptr)
    if seg_rows is None:
        seg_rows = np.repeat(np.arange(n, dtype=seg_ptr.dtype), lens)
    values = np.asarray(values)
    if not np.issubdtype(values.dtype, np.integer):
        values = values.astype(np.int64)
    # Dtype-preserving: int32-narrowed graphs pass int32 seg_ptr/heads/
    # bins and the histogram keys stay int32 — no per-sweep upcast copy.
    clipped = np.minimum(values, lens[seg_rows])
    if bins is None:
        bin_ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(lens.astype(np.int64) + 1, out=bin_ptr[1:])
        bin_rows = np.repeat(np.arange(n, dtype=np.int64), lens + 1)
    else:
        bin_ptr, bin_rows = bins
    total_bins = int(bin_ptr[-1])
    hist = np.bincount(bin_ptr[seg_rows] + clipped, minlength=total_bins)
    csum = np.cumsum(hist)
    positions = np.arange(total_bins, dtype=np.int64)
    rank = positions - bin_ptr[bin_rows]
    # count_ge at the bin of rank k (k >= 1) is the segment-suffix sum
    # hist[k..d], i.e. csum at the segment's last bin minus csum just
    # before this bin.  Rank-0 bins index csum[-1] harmlessly: they are
    # masked out below.
    seg_last = csum[bin_ptr[1:] - 1]
    count_ge = seg_last[bin_rows] - csum[positions - 1]
    satisfied = (rank >= 1) & (count_ge >= rank)
    prefix = np.zeros(total_bins + 1, dtype=np.int64)
    np.cumsum(satisfied, out=prefix[1:])
    return prefix[bin_ptr[1:]] - prefix[bin_ptr[:-1]]


def sweep_values_numpy(
    graph: "UndirectedGraph",
    h: np.ndarray,
    vertices: np.ndarray | None = None,
) -> np.ndarray:
    """Recomputed h-index values for ``vertices`` (``None`` = all).

    The full-sweep path reuses the graph's cached ``heads()`` /
    ``hindex_bins()`` scratch buffers; the subset path gathers the
    members' adjacency slots through ``concat_ranges`` and builds a small
    ad-hoc segmentation, exactly as the frontier sweeps always did.
    """
    from ..kernels.segments import concat_ranges

    if vertices is None:
        return segment_h_index_numpy(
            graph.indptr,
            h[graph.indices],
            seg_rows=graph.heads(),
            bins=graph.hindex_bins(),
        )
    vertices = np.asarray(vertices)
    if vertices.size == 0:
        return np.empty(0, dtype=np.int64)
    lens = graph.degrees()[vertices]
    slots = concat_ranges(graph.indptr[vertices], lens)
    seg_ptr = np.zeros(vertices.size + 1, dtype=np.int64)
    np.cumsum(lens, out=seg_ptr[1:])
    return segment_h_index_numpy(seg_ptr, h[graph.indices[slots]])


def induced_edge_count_numpy(graph: "UndirectedGraph", member: np.ndarray) -> int:
    """Number of edges with both endpoints inside the ``member`` mask."""
    heads = graph.heads()
    inside = member[heads] & member[graph.indices] & (heads < graph.indices)
    return int(np.count_nonzero(inside))


class NumpyBackend(ArrayBackend):
    """The single-threaded reference backend; always available."""

    name = "numpy"

    def segment_h_index(self, seg_ptr, values, seg_rows=None, bins=None):
        """Per-segment h-indices via :func:`segment_h_index_numpy`."""
        return segment_h_index_numpy(seg_ptr, values, seg_rows=seg_rows, bins=bins)

    def sweep_values(self, graph, h, vertices=None):
        """One h-index sweep via :func:`sweep_values_numpy`."""
        return sweep_values_numpy(graph, h, vertices)

    def induced_edge_count(self, graph, member):
        """Induced edge count via :func:`induced_edge_count_numpy`."""
        return induced_edge_count_numpy(graph, member)
