"""Optional numba backend: JIT'd, thread-parallel kernel loops.

Import-guarded: when numba is absent this module still imports cleanly
and :meth:`NumbaBackend.available` reports ``False`` — the dispatch
layer then silently drops ``numba`` from the available set and only an
*explicit* selection raises :class:`~repro.errors.BackendError`.  No
compilation happens at import time; the ``@njit`` wrappers are built on
first use.

The per-vertex loop computes each segment's h-index with the same
clip-to-degree counting argument the vectorised kernel uses (count how
many neighbour values are >= k for k = d..1, first k with
``count_ge(k) >= k`` is the maximum), so outputs are bit-identical
integers to the numpy reference.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..errors import BackendError
from .base import ArrayBackend
from .numpy_backend import induced_edge_count_numpy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph.undirected import UndirectedGraph

try:  # pragma: no cover - exercised only where numba is installed
    import numba  # noqa: F401

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the only path on this CI image
    HAVE_NUMBA = False

__all__ = ["NumbaBackend", "HAVE_NUMBA"]

_JITTED = None


def _build_kernels():  # pragma: no cover - requires numba
    """Compile the JIT kernels lazily (first backend use, not import)."""
    global _JITTED
    if _JITTED is not None:
        return _JITTED
    from numba import njit, prange

    @njit(cache=True)
    def _segment_h(values, start, length):
        # h-index of values[start:start+length] via clipped counting.
        counts = np.zeros(length + 1, dtype=np.int64)
        for slot in range(start, start + length):
            value = values[slot]
            if value > length:
                value = length
            if value > 0:
                counts[value] += 1
        count_ge = 0
        for k in range(length, 0, -1):
            count_ge += counts[k]
            if count_ge >= k:
                return k
        return 0

    @njit(parallel=True, cache=True)
    def _sweep_ranges(seg_ptr, values, out):
        for seg in prange(seg_ptr.size - 1):
            start = seg_ptr[seg]
            out[seg] = _segment_h(values, start, seg_ptr[seg + 1] - start)

    @njit(parallel=True, cache=True)
    def _sweep_subset(indptr, indices, h, vertices, out):
        for i in prange(vertices.size):
            v = vertices[i]
            start = indptr[v]
            length = indptr[v + 1] - start
            counts = np.zeros(length + 1, dtype=np.int64)
            for slot in range(start, start + length):
                value = h[indices[slot]]
                if value > length:
                    value = length
                if value > 0:
                    counts[value] += 1
            best = 0
            count_ge = 0
            for k in range(length, 0, -1):
                count_ge += counts[k]
                if count_ge >= k:
                    best = k
                    break
            out[i] = best

    _JITTED = (_sweep_ranges, _sweep_subset)
    return _JITTED


class NumbaBackend(ArrayBackend):
    """JIT'd thread-parallel backend; available only if numba imports."""

    name = "numba"

    def available(self) -> bool:
        """True iff numba imported successfully in this environment."""
        return HAVE_NUMBA

    def _require(self):
        if not HAVE_NUMBA:
            raise BackendError(
                "the numba backend was selected but numba is not installed"
            )
        return _build_kernels()

    def segment_h_index(self, seg_ptr, values, seg_rows=None, bins=None):
        """Per-segment h-indices on the jit-compiled range kernel."""
        sweep_ranges, _ = self._require()
        seg_ptr = np.ascontiguousarray(np.asarray(seg_ptr), dtype=np.int64)
        values = np.ascontiguousarray(np.asarray(values), dtype=np.int64)
        out = np.empty(max(seg_ptr.size - 1, 0), dtype=np.int64)
        if out.size:
            sweep_ranges(seg_ptr, values, out)
        return out

    def sweep_values(self, graph, h, vertices=None):
        """One h-index sweep on the jit-compiled kernels."""
        sweep_ranges, sweep_subset = self._require()
        h64 = np.ascontiguousarray(np.asarray(h), dtype=np.int64)
        if vertices is None:
            values = h64[graph.indices]
            seg_ptr = np.ascontiguousarray(graph.indptr, dtype=np.int64)
            out = np.empty(graph.num_vertices, dtype=np.int64)
            if out.size:
                sweep_ranges(seg_ptr, values, out)
            return out
        vertices = np.ascontiguousarray(np.asarray(vertices), dtype=np.int64)
        out = np.empty(vertices.size, dtype=np.int64)
        if out.size:
            sweep_subset(
                np.ascontiguousarray(graph.indptr, dtype=np.int64),
                np.ascontiguousarray(graph.indices, dtype=np.int64),
                h64,
                vertices,
                out,
            )
        return out

    def induced_edge_count(self, graph, member):
        """Induced edge count (delegates to numpy — see the comment)."""
        # The boolean reduction is already memory-bound; numpy wins.
        return induced_edge_count_numpy(graph, member)
