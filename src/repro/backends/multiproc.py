"""Process-parallel backend over shared-memory CSR views.

Strategy
--------
The parent publishes each graph once into a single
:class:`multiprocessing.shared_memory.SharedMemory` block laid out as::

    indptr | indices | h (index dtype) | out (int64) | subset (int64) | member (bool)

and keeps a small fingerprint-keyed LRU of published graphs.  A pool of
persistent **spawned** worker processes (one duplex pipe each — no
queues, no feeder threads) attaches by segment name, wraps the raw bytes in ndarray
views, and constructs a real :class:`~repro.graph.undirected.
UndirectedGraph` over them — zero-copy, because the stored dtype is
already the graph's narrowed index dtype.  Workers freeze their views
(``setflags(write=False)``) and rebuild the lazy scratch buffers
(``degrees``/``heads``/``hindex_bins``) locally: scratch is never
pickled across the process boundary, so the frozen-CSR contract survives
the round trip (see ``tests/backends/test_multiproc.py``).

Work is split by **static range partitioning** balanced on adjacency
slot counts (``np.searchsorted`` over the slot cumsum), so every task
writes a disjoint slice of the shared ``out`` block and the assembled
result is bit-identical to the numpy reference regardless of worker
count or completion order.  Jacobi sweeps parallelize whole vertex
ranges; frontier subsets and Gauss–Seidel batches parallelize the
member array of one batch at a time (members are pairwise non-adjacent,
so range splits stay race-free).

Small inputs — convergence tails, tiny test graphs — fall back to the
in-process numpy implementation below ``inline_slot_cutoff`` adjacency
slots: a ~0.05 ms task round trip would dominate them, and the numpy
path is bit-identical anyway.

Accounting
----------
Workers measure their own busy time with :func:`time.process_time` (CPU
time, so interleaving on an oversubscribed host does not pollute it) and
return it with each result.  The backend accumulates, per dispatched
call, both the true parent-side elapsed wall clock and the derived
critical path ``max(max_busy, elapsed - sum(busy) + max_busy)`` — the
makespan the same static partition yields once every worker has its own
core.  ``repro-bench backends`` reports both, never just the flattering
one.
"""

from __future__ import annotations

import os
import time
import traceback
from collections import OrderedDict
from typing import TYPE_CHECKING

import numpy as np

from ..errors import BackendError
from .base import ArrayBackend
from .numpy_backend import (
    induced_edge_count_numpy,
    segment_h_index_numpy,
    sweep_values_numpy,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph.undirected import UndirectedGraph

__all__ = ["MultiprocBackend", "WORKERS_ENV_VAR", "DEFAULT_WORKERS"]

#: Environment knob for the worker-pool size (default 2).
WORKERS_ENV_VAR = "REPRO_BACKEND_WORKERS"
DEFAULT_WORKERS = 2

#: Below this many adjacency slots an operation runs inline in the
#: parent process: the per-task queue round trip (~0.05 ms) would
#: dominate, and the inline numpy path is bit-identical regardless.
DEFAULT_INLINE_SLOT_CUTOFF = 4096

#: Published graphs kept alive at once (LRU by fingerprint).
_GRAPH_LRU_CAP = 8

_RESULT_TIMEOUT_S = 120.0


def _env_workers() -> int:
    raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
    if not raw:
        return DEFAULT_WORKERS
    try:
        workers = int(raw)
    except ValueError as exc:
        raise BackendError(
            f"{WORKERS_ENV_VAR} must be an integer, got {raw!r}"
        ) from exc
    if workers < 1:
        raise BackendError(f"{WORKERS_ENV_VAR} must be >= 1, got {workers}")
    return workers


# ----------------------------------------------------------------------
# Shared-memory layout (computed identically on both sides)
# ----------------------------------------------------------------------

def _layout(n: int, m2: int, idx_dtype: np.dtype) -> dict[str, tuple[int, int, np.dtype]]:
    """Return ``field -> (offset, count, dtype)`` for one graph block."""
    idx = np.dtype(idx_dtype)
    # h-values are bounded by the max degree < n, so they always fit the
    # graph's narrowed index dtype; storing the h block narrowed halves
    # the worker-side gather bandwidth on int32 graphs.  The out block
    # stays int64 — it is the result array handed back to callers.
    fields = [
        ("indptr", n + 1, idx),
        ("indices", m2, idx),
        ("h", n, idx),
        ("out", n, np.dtype(np.int64)),
        ("subset", n, np.dtype(np.int64)),
        ("member", n, np.dtype(np.bool_)),
    ]
    layout: dict[str, tuple[int, int, np.dtype]] = {}
    offset = 0
    for name, count, dtype in fields:
        # Keep every field 8-byte aligned regardless of the index dtype.
        offset = (offset + 7) & ~7
        layout[name] = (offset, count, dtype)
        offset += count * dtype.itemsize
    layout["__total__"] = (offset, 0, np.dtype(np.uint8))
    return layout


def _views(buf, meta) -> dict[str, np.ndarray]:
    """Build the ndarray views of one graph block from its meta tuple."""
    _, n, m2, dtype_str = meta
    layout = _layout(n, m2, np.dtype(dtype_str))
    views = {}
    for name, (offset, count, dtype) in layout.items():
        if name == "__total__":
            continue
        views[name] = np.ndarray(count, dtype=dtype, buffer=buf, offset=offset)
    return views


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

class _WorkerGraph:
    """A worker's attachment to one published graph."""

    __slots__ = ("shm", "graph", "views", "range_cache")

    def __init__(self, meta):
        from multiprocessing import shared_memory

        from ..graph.undirected import UndirectedGraph

        self.shm = shared_memory.SharedMemory(name=meta[0])
        self.views = _views(self.shm.buf, meta)
        # Zero-copy: the stored dtype is the graph's narrowed index dtype,
        # so the constructor's ascontiguousarray calls return the shm
        # views themselves.  Scratch buffers start empty and are rebuilt
        # lazily *in this process* — never unpickled from the parent.
        self.graph = UndirectedGraph(self.views["indptr"], self.views["indices"])
        self.graph.indptr.setflags(write=False)
        self.graph.indices.setflags(write=False)
        # Per-range full-sweep segment layouts, keyed (lo, hi): the
        # static partition of a given graph never changes, so these are
        # computed once per worker and reused every sweep.
        self.range_cache: dict[tuple[int, int], tuple] = {}

    def close(self):
        self.views.clear()
        self.graph = None
        self.shm.close()


def _full_sweep_range(wg: _WorkerGraph, lo: int, hi: int) -> None:
    """Recompute ``out[lo:hi]`` from ``h`` for one full-sweep vertex range."""
    graph, views = wg.graph, wg.views
    cached = wg.range_cache.get((lo, hi))
    if cached is None:
        # Range-local segment layout in the graph's (possibly narrowed)
        # index dtype, mirroring the cached heads()/hindex_bins() scratch
        # the single-process numpy path enjoys; offsets within a range
        # are bounded by the graph-global 2m + n, so the dtype is safe.
        indptr = graph.indptr
        idx = indptr.dtype
        seg_ptr = indptr[lo:hi + 1] - indptr[lo]
        lens = np.diff(seg_ptr)
        seg_rows = np.repeat(np.arange(hi - lo, dtype=idx), lens)
        bin_ptr = np.zeros(hi - lo + 1, dtype=idx)
        np.cumsum(lens + 1, out=bin_ptr[1:])
        bin_rows = np.repeat(np.arange(hi - lo, dtype=idx), lens + 1)
        cached = (seg_ptr, seg_rows, (bin_ptr, bin_rows))
        wg.range_cache[(lo, hi)] = cached
    seg_ptr, seg_rows, bins = cached
    slot_lo, slot_hi = int(graph.indptr[lo]), int(graph.indptr[hi])
    values = views["h"][graph.indices[slot_lo:slot_hi]]
    views["out"][lo:hi] = segment_h_index_numpy(
        seg_ptr, values, seg_rows=seg_rows, bins=bins
    )


def _subset_sweep_range(wg: _WorkerGraph, lo: int, hi: int) -> None:
    """Recompute ``out[lo:hi]`` for the subset ids in ``subset[lo:hi]``."""
    graph, views = wg.graph, wg.views
    vertices = views["subset"][lo:hi]
    views["out"][lo:hi] = sweep_values_numpy(graph, views["h"], vertices)


def _count_slot_range(wg: _WorkerGraph, lo: int, hi: int) -> int:
    """Induced-edge count restricted to adjacency slots ``[lo, hi)``."""
    graph, views = wg.graph, wg.views
    member = views["member"]
    heads = graph.heads()[lo:hi]
    tails = graph.indices[lo:hi]
    return int(np.count_nonzero(member[heads] & member[tails] & (heads < tails)))


def _inspect(wg: _WorkerGraph) -> dict:
    """Diagnostics for the scratch-rebuild / read-only regression tests."""
    graph = wg.graph
    return {
        "pid": os.getpid(),
        "indptr_writeable": bool(graph.indptr.flags.writeable),
        "indices_writeable": bool(graph.indices.flags.writeable),
        "indptr_is_shm_view": graph.indptr.base is not None,
        "indices_is_shm_view": graph.indices.base is not None,
        "scratch_keys": sorted(graph._scratch),
        "scratch_writeable": {
            key: bool(arr.flags.writeable) for key, arr in graph._scratch.items()
        },
        "range_cache_keys": sorted(wg.range_cache),
    }


def _worker_main(conn):
    """Persistent worker loop: attach graphs on demand, run range tasks.

    One duplex :func:`multiprocessing.Pipe` per worker, no queues: a
    queue's feeder thread adds a parent-side hop to every message, and
    on a contended host those wakeups land straight on the critical
    path.  Tasks and results are tiny tuples; the arrays travel through
    shared memory only.
    """
    graphs: dict[str, _WorkerGraph] = {}
    while True:
        task = conn.recv()
        kind = task[0]
        if kind == "stop":
            for wg in graphs.values():
                wg.close()
            conn.close()
            return
        if kind == "release":
            wg = graphs.pop(task[1], None)
            if wg is not None:
                wg.close()
            continue
        seq = task[-1]
        try:
            meta = task[1]
            wg = graphs.get(meta[0])
            if wg is None:
                wg = graphs[meta[0]] = _WorkerGraph(meta)
            t0 = time.process_time()  # repro-lint: disable=R001 (worker busy-time accounting)
            if kind == "full":
                _, _, lo, hi, _ = task
                _full_sweep_range(wg, lo, hi)
                payload = None
            elif kind == "subset":
                _, _, lo, hi, _ = task
                _subset_sweep_range(wg, lo, hi)
                payload = None
            elif kind == "count":
                _, _, lo, hi, _ = task
                payload = _count_slot_range(wg, lo, hi)
            elif kind == "inspect":
                payload = _inspect(wg)
            else:
                raise BackendError(f"unknown worker task {kind!r}")
            busy = time.process_time() - t0  # repro-lint: disable=R001 (worker busy-time accounting)
            conn.send(("ok", seq, busy, payload))
        except BaseException:  # repro-lint: disable=R002 (worker loop: every failure must reach the parent)
            conn.send(("err", seq, 0.0, traceback.format_exc()))


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------

class _SharedGraph:
    """Parent-side record of one published graph."""

    __slots__ = ("shm", "meta", "views", "bounds_cache")

    def __init__(self, graph: "UndirectedGraph"):
        from multiprocessing import shared_memory

        n = graph.num_vertices
        m2 = graph.indices.size
        idx = graph.indptr.dtype
        total = _layout(n, m2, idx)["__total__"][0]
        self.shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
        self.meta = (self.shm.name, n, m2, idx.str)
        self.views = _views(self.shm.buf, self.meta)
        self.views["indptr"][:] = graph.indptr
        self.views["indices"][:] = graph.indices
        # Static partitions, keyed (kind, parts): a published graph never
        # changes, so the balanced full-sweep split is computed once.
        self.bounds_cache: dict[tuple[str, int], np.ndarray] = {}

    def close(self, unlink: bool = True):
        self.views.clear()
        self.shm.close()
        if unlink:
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover  # repro-lint: disable=R002 (idempotent unlink)
                pass


class MultiprocBackend(ArrayBackend):
    """Shared-memory process pool executing the kernel hot paths.

    ``workers`` defaults to the ``REPRO_BACKEND_WORKERS`` environment
    variable (falling back to 2); ``inline_slot_cutoff`` is the minimum
    adjacency-slot count an operation must touch before it is worth a
    trip through the pool.
    """

    name = "multiproc"

    def __init__(
        self,
        workers: int | None = None,
        inline_slot_cutoff: int = DEFAULT_INLINE_SLOT_CUTOFF,
    ):
        self.workers = int(workers) if workers is not None else _env_workers()
        if self.workers < 1:
            raise BackendError(f"workers must be >= 1, got {self.workers}")
        self.inline_slot_cutoff = int(inline_slot_cutoff)
        self._procs: list = []
        self._conns: list = []
        self._graphs: "OrderedDict[str, _SharedGraph]" = OrderedDict()
        self._seq = 0
        self.reset_perf()

    # -- pool / shared-memory lifecycle --------------------------------

    def _ensure_pool(self) -> None:
        if self._procs:
            return
        import multiprocessing as mp

        ctx = mp.get_context("spawn")
        for _ in range(self.workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_worker_main, args=(child_conn,), daemon=True
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

    def _prepare(self, graph: "UndirectedGraph") -> _SharedGraph:
        key = graph.fingerprint()
        shared = self._graphs.get(key)
        if shared is not None:
            self._graphs.move_to_end(key)
            return shared
        shared = _SharedGraph(graph)
        self._graphs[key] = shared
        while len(self._graphs) > _GRAPH_LRU_CAP:
            _, evicted = self._graphs.popitem(last=False)
            for conn in self._conns:
                conn.send(("release", evicted.meta[0]))
            evicted.close()
        return shared

    def close(self) -> None:
        """Stop the pool and free every published shared-memory block."""
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (OSError, ValueError, BrokenPipeError):  # pragma: no cover  # repro-lint: disable=R002 (pool teardown)
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
        for conn in self._conns:
            conn.close()
        self._procs = []
        self._conns = []
        for shared in self._graphs.values():
            shared.close()
        self._graphs = OrderedDict()

    # -- dispatch ------------------------------------------------------

    def _collect(self, pending: list) -> list:
        """Gather one result per pending connection; raise on death."""
        from multiprocessing.connection import wait

        results = []
        waiting = list(pending)
        deadline = time.monotonic() + _RESULT_TIMEOUT_S  # repro-lint: disable=R001 (pool watchdog)
        while waiting:
            ready = wait(waiting, timeout=1.0)
            for conn in ready:
                try:
                    results.append(conn.recv())
                except (EOFError, ConnectionResetError, OSError):
                    ready = None  # worker hung up mid-protocol
                    break
                waiting.remove(conn)
            if ready:
                continue
            dead = [p for p in self._procs if not p.is_alive()]
            if ready is None or dead or time.monotonic() > deadline:  # repro-lint: disable=R001 (pool watchdog)
                self.close()
                reason = (
                    f"{len(dead)} worker process(es) died"
                    if dead or ready is None
                    else f"no answer within {_RESULT_TIMEOUT_S:.0f}s"
                )
                raise BackendError(f"multiproc pool failed: {reason} (pool reset)")
        errors = [r for r in results if r[0] == "err"]
        if errors:
            raise BackendError(
                "multiproc worker task failed:\n" + errors[0][3]
            )
        return results

    def _run_ranges(self, kind: str, shared: _SharedGraph, bounds: np.ndarray):
        """Dispatch one range task per worker slice; return their results."""
        start = time.perf_counter()  # repro-lint: disable=R001 (perf accounting, not simulation)
        pending = []
        for worker_id in range(bounds.size - 1):
            lo, hi = int(bounds[worker_id]), int(bounds[worker_id + 1])
            if hi <= lo:
                continue
            self._seq += 1
            conn = self._conns[worker_id % self.workers]
            conn.send((kind, shared.meta, lo, hi, self._seq))
            pending.append(conn)
        results = self._collect(pending)
        elapsed = time.perf_counter() - start  # repro-lint: disable=R001 (perf accounting, not simulation)
        busy = [r[2] for r in results]
        busy_sum, busy_max = float(sum(busy)), float(max(busy, default=0.0))
        critical = max(busy_max, elapsed - busy_sum + busy_max)
        self.perf["dispatched_calls"] += 1
        self.perf["tasks"] += len(results)
        self.perf["elapsed_s"] += elapsed
        self.perf["busy_s"] += busy_sum
        self.perf["critical_s"] += critical
        return results

    @staticmethod
    def _balanced_bounds(cumulative: np.ndarray, parts: int) -> np.ndarray:
        """Split ``0..len(cumulative)-1`` into ``parts`` slot-balanced ranges.

        ``cumulative`` is a non-decreasing pointer array (e.g. ``indptr``);
        the split equalises ``cumulative`` mass, not element counts, so
        skewed-degree graphs still balance.
        """
        size = cumulative.size - 1
        total = int(cumulative[-1])
        targets = (np.arange(1, parts, dtype=np.int64) * total) // parts
        interior = np.searchsorted(cumulative, targets, side="left")
        bounds = np.empty(parts + 1, dtype=np.int64)
        bounds[0], bounds[-1] = 0, size
        bounds[1:-1] = np.minimum(interior, size)
        return np.maximum.accumulate(bounds)

    # -- perf accounting ----------------------------------------------

    def reset_perf(self) -> None:
        """Zero the accumulated dispatch/inline counters."""
        self.perf = {
            "dispatched_calls": 0,
            "inline_calls": 0,
            "tasks": 0,
            "elapsed_s": 0.0,
            "busy_s": 0.0,
            "critical_s": 0.0,
        }

    def perf_snapshot(self) -> dict:
        """Copy of the accumulated counters (for the bench harness)."""
        return dict(self.perf)

    # -- ArrayBackend operations ---------------------------------------

    def segment_h_index(self, seg_ptr, values, seg_rows=None, bins=None):
        """Per-segment h-indices (in-process fallback — see the comment)."""
        # Generic segmentations carry no stable identity to publish under;
        # every heavy caller goes through sweep_values, so this stays a
        # documented in-process fallback rather than a parallel path.
        self.perf["inline_calls"] += 1
        return segment_h_index_numpy(seg_ptr, values, seg_rows=seg_rows, bins=bins)

    def sweep_values(self, graph, h, vertices=None):
        """One h-index sweep, fanned out over slot-balanced worker ranges.

        Small calls (under ``inline_slot_cutoff`` adjacency slots) run
        inline on the numpy formulation; everything else publishes the
        graph into shared memory once and dispatches per-worker vertex
        ranges balanced by slot mass.
        """
        n = graph.num_vertices
        if vertices is None:
            slot_total = graph.indices.size
        else:
            vertices = np.asarray(vertices, dtype=np.int64)
            slot_total = int(graph.degrees()[vertices].sum()) if vertices.size else 0
        if n == 0 or slot_total < self.inline_slot_cutoff:
            self.perf["inline_calls"] += 1
            return sweep_values_numpy(graph, h, vertices)
        self._ensure_pool()
        shared = self._prepare(graph)
        shared.views["h"][:] = h
        if vertices is None:
            bounds = shared.bounds_cache.get(("full", self.workers))
            if bounds is None:
                bounds = self._balanced_bounds(
                    graph.indptr.astype(np.int64), self.workers
                )
                shared.bounds_cache[("full", self.workers)] = bounds
            self._run_ranges("full", shared, bounds)
            return shared.views["out"][:n].copy()
        count = vertices.size
        shared.views["subset"][:count] = vertices
        cum = np.zeros(count + 1, dtype=np.int64)
        np.cumsum(graph.degrees()[vertices], out=cum[1:])
        bounds = self._balanced_bounds(cum, self.workers)
        self._run_ranges("subset", shared, bounds)
        return shared.views["out"][:count].copy()

    def induced_edge_count(self, graph, member):
        """Edges with both endpoints in ``member``, counted across workers."""
        if graph.indices.size < self.inline_slot_cutoff:
            self.perf["inline_calls"] += 1
            return induced_edge_count_numpy(graph, member)
        self._ensure_pool()
        shared = self._prepare(graph)
        shared.views["member"][:] = member
        slots = graph.indices.size
        per_worker = np.linspace(0, slots, self.workers + 1).astype(np.int64)
        results = self._run_ranges("count", shared, per_worker)
        return int(sum(r[3] for r in results))

    # -- diagnostics ---------------------------------------------------

    def inspect_workers(self, graph: "UndirectedGraph") -> list[dict]:
        """Per-worker view of a published graph (tests/debugging only).

        Forces the graph to be published and attached, then asks every
        worker how its local reconstruction looks: pid, CSR view
        writeability, which scratch buffers were rebuilt locally and
        whether they are frozen.
        """
        self._ensure_pool()
        shared = self._prepare(graph)
        pending = []
        for conn in self._conns:
            self._seq += 1
            conn.send(("inspect", shared.meta, self._seq))
            pending.append(conn)
        results = self._collect(pending)
        return [r[3] for r in sorted(results, key=lambda r: r[1])]
