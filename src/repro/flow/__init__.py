"""Max-flow substrate used by the exact densest-subgraph solvers."""

from .maxflow import FlowNetwork

__all__ = ["FlowNetwork"]
