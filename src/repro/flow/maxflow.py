"""Dinic's maximum-flow algorithm on an explicit residual network.

This is the substrate behind the *exact* densest-subgraph solvers
(Goldberg's construction for UDS, the project-selection construction for
DDS).  The exact solvers are only tractable on small graphs — which is
precisely the paper's point and the reason it builds 2-approximations — so
this implementation favours clarity over constant-factor tuning while still
using the standard level-graph + current-arc optimisations.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..errors import AlgorithmError

__all__ = ["FlowNetwork"]

_EPS = 1e-11


class FlowNetwork:
    """A capacitated directed network supporting max-flow / min-cut queries.

    Arcs are stored in the classic paired-residual layout: arc ``2k`` is the
    forward arc of the k-th added edge and arc ``2k ^ 1`` its residual twin.

    >>> net = FlowNetwork(4)
    >>> _ = net.add_edge(0, 1, 3.0); _ = net.add_edge(1, 2, 2.0)
    >>> _ = net.add_edge(0, 2, 1.0); _ = net.add_edge(2, 3, 4.0)
    >>> net.max_flow(0, 3)
    3.0
    """

    def __init__(self, num_nodes: int):
        if num_nodes < 0:
            raise AlgorithmError("num_nodes must be non-negative")
        self.num_nodes = num_nodes
        self._head: list[list[int]] = [[] for _ in range(num_nodes)]
        self._to: list[int] = []
        self._cap: list[float] = []
        self._flow_value: float | None = None

    def add_edge(self, u: int, v: int, capacity: float) -> int:
        """Add arc u -> v with the given capacity; return its arc id."""
        if not (0 <= u < self.num_nodes and 0 <= v < self.num_nodes):
            raise AlgorithmError("arc endpoint out of range")
        if capacity < 0:
            raise AlgorithmError("capacity must be non-negative")
        arc_id = len(self._to)
        self._to.append(v)
        self._cap.append(float(capacity))
        self._head[u].append(arc_id)
        self._to.append(u)
        self._cap.append(0.0)
        self._head[v].append(arc_id + 1)
        self._flow_value = None
        return arc_id

    def add_edges(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        capacity: float | np.ndarray,
    ) -> np.ndarray:
        """Bulk-add arcs ``src[i] -> dst[i]``; return the forward arc ids.

        Validation and the paired-residual arc layout are computed
        array-at-a-time; equivalent to calling :meth:`add_edge` per arc
        (a scalar ``capacity`` broadcasts over all arcs).
        """
        src = np.asarray(src, dtype=np.int64).ravel()
        dst = np.asarray(dst, dtype=np.int64).ravel()
        if src.size != dst.size:
            raise AlgorithmError("src and dst must have equal length")
        if src.size == 0:
            return np.empty(0, dtype=np.int64)
        caps = np.broadcast_to(
            np.asarray(capacity, dtype=np.float64), src.shape
        )
        if (
            int(min(src.min(), dst.min())) < 0
            or int(max(src.max(), dst.max())) >= self.num_nodes
        ):
            raise AlgorithmError("arc endpoint out of range")
        if float(caps.min()) < 0:
            raise AlgorithmError("capacity must be non-negative")
        base = len(self._to)
        to_pairs = np.empty(2 * src.size, dtype=np.int64)
        to_pairs[0::2] = dst
        to_pairs[1::2] = src
        cap_pairs = np.zeros(2 * src.size, dtype=np.float64)
        cap_pairs[0::2] = caps
        self._to.extend(to_pairs.tolist())
        self._cap.extend(cap_pairs.tolist())
        arc_ids = base + 2 * np.arange(src.size, dtype=np.int64)
        for u, arc in zip(src.tolist(), arc_ids.tolist()):
            self._head[u].append(arc)
        for v, arc in zip(dst.tolist(), (arc_ids + 1).tolist()):
            self._head[v].append(arc)
        self._flow_value = None
        return arc_ids

    # ------------------------------------------------------------------
    # Dinic
    # ------------------------------------------------------------------
    def _bfs_levels(self, source: int, sink: int) -> np.ndarray | None:
        level = np.full(self.num_nodes, -1, dtype=np.int64)
        level[source] = 0
        queue = deque([source])
        cap = self._cap
        to = self._to
        while queue:
            u = queue.popleft()
            for arc in self._head[u]:
                v = to[arc]
                if cap[arc] > _EPS and level[v] < 0:
                    level[v] = level[u] + 1
                    queue.append(v)
        return level if level[sink] >= 0 else None

    def _blocking_flow(self, source: int, sink: int, level: np.ndarray) -> float:
        cap = self._cap
        to = self._to
        head = self._head
        next_arc = [0] * self.num_nodes
        total = 0.0

        # Iterative DFS carrying (node, arc-into-node) path state.
        path_arcs: list[int] = []
        node = source
        while True:
            if node == sink:
                pushed = min(cap[a] for a in path_arcs)
                for a in path_arcs:
                    cap[a] -= pushed
                    cap[a ^ 1] += pushed
                total += pushed
                # Retreat to the first saturated arc on the path.
                retreat_to = 0
                for i, a in enumerate(path_arcs):
                    if cap[a] <= _EPS:
                        retreat_to = i
                        break
                path_arcs = path_arcs[:retreat_to]
                node = source if not path_arcs else to[path_arcs[-1]]
                continue
            advanced = False
            while next_arc[node] < len(head[node]):
                arc = head[node][next_arc[node]]
                v = to[arc]
                if cap[arc] > _EPS and level[v] == level[node] + 1:
                    path_arcs.append(arc)
                    node = v
                    advanced = True
                    break
                next_arc[node] += 1
            if advanced:
                continue
            # Dead end: remove the node from the level graph and backtrack.
            level[node] = -1
            if not path_arcs:
                break
            last = path_arcs.pop()
            node = to[last ^ 1]
            next_arc[node] += 1
        return total

    def max_flow(self, source: int, sink: int) -> float:
        """Compute the maximum s-t flow value (Dinic's algorithm)."""
        if source == sink:
            raise AlgorithmError("source and sink must differ")
        total = 0.0
        while True:
            level = self._bfs_levels(source, sink)
            if level is None:
                break
            total += self._blocking_flow(source, sink, level)
        self._flow_value = total
        return total

    # ------------------------------------------------------------------
    # Cut extraction
    # ------------------------------------------------------------------
    def min_cut_source_side(self, source: int) -> np.ndarray:
        """Return nodes reachable from ``source`` in the residual graph.

        Valid after :meth:`max_flow`; the returned set (which includes the
        source) is the source side of a minimum cut.
        """
        if self._flow_value is None:
            raise AlgorithmError("min_cut_source_side requires max_flow first")
        seen = np.zeros(self.num_nodes, dtype=bool)
        seen[source] = True
        queue = deque([source])
        cap = self._cap
        to = self._to
        while queue:
            u = queue.popleft()
            for arc in self._head[u]:
                v = to[arc]
                if cap[arc] > _EPS and not seen[v]:
                    seen[v] = True
                    queue.append(v)
        return np.flatnonzero(seen)

    def arc_capacity(self, arc_id: int) -> float:
        """Return the residual capacity currently left on an arc."""
        return self._cap[arc_id]
