"""``repro-dsd`` — run densest-subgraph discovery on an edge-list file.

Examples::

    repro-dsd graph.txt                          # PKMC on an undirected graph
    repro-dsd follows.txt --directed             # PWC on a directed graph
    repro-dsd graph.txt --method exact --top-component
    repro-dsd graph.txt --method pbu --threads 32 --option epsilon=0.5
    repro-dsd --list-methods                     # solver registry table

Dispatch goes through :func:`repro.engine.run`: the method name is
resolved in the solver registry, the thread count / sanitizer / frontier
toggles travel in one :class:`~repro.engine.context.ExecutionContext`,
and the printed simulated time comes from the attached
:class:`~repro.engine.report.RunReport`.
"""

from __future__ import annotations

import argparse
import sys

from .engine import ExecutionContext, get_solver, registry_table
from .engine import run as engine_run
from .errors import EngineError, ReproError
from .graph.components import densest_component
from .graph.directed import DirectedGraph
from .graph.io import load_npz, read_directed_edgelist, read_undirected_edgelist, save_npz

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dsd",
        description="Densest subgraph discovery (Luo et al., ICDE 2023 reproduction).",
    )
    parser.add_argument(
        "path",
        nargs="?",
        default=None,
        help="edge-list file (one 'u v' pair per line) or a binary "
        "snapshot (*.npz, loaded mmap-backed)",
    )
    parser.add_argument(
        "--save-snapshot",
        default=None,
        metavar="PATH",
        help="after loading, save the graph as a binary snapshot (.npz) "
        "for fast reloads",
    )
    parser.add_argument(
        "--strict-parse",
        action="store_true",
        help="use the line-by-line reference parser instead of the "
        "vectorized reader (identical output, slower)",
    )
    parser.add_argument(
        "--directed",
        action="store_true",
        help="treat the input as a directed graph and solve DDS",
    )
    parser.add_argument(
        "--method",
        default=None,
        help="algorithm to run, by registry name (see --list-methods); "
        "default pkmc / pwc",
    )
    parser.add_argument(
        "--list-methods",
        action="store_true",
        help="print the solver registry (name, guarantee, cost, "
        "capabilities) and exit",
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=1,
        help="simulated thread count (default 1)",
    )
    parser.add_argument(
        "--option",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="extra algorithm option (repeatable), e.g. epsilon=0.5",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="run kernels under the parfor race sanitizer "
        "(repro.analysis.race) and print a per-loop verdict",
    )
    parser.add_argument(
        "--no-frontier",
        action="store_true",
        help="disable the frontier (active-set) kernels for methods that "
        "support them, reproducing the full-sweep costing",
    )
    parser.add_argument(
        "--backend",
        choices=("numpy", "multiproc", "numba"),
        default=None,
        help="array backend the kernels execute on (default: the "
        "REPRO_BACKEND environment variable, then numpy); results are "
        "bit-identical across backends",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="P",
        help="partition the input into P vertex shards (written next to "
        "the input as <path>.shards<P>/) and run out-of-core through the "
        "ShardedGraph facade; results are bit-identical to monolithic",
    )
    parser.add_argument(
        "--memory-budget",
        type=int,
        default=None,
        metavar="BYTES",
        help="hard cap on resident shard bytes for sharded runs (with "
        "--shards or a sharded-snapshot directory input)",
    )
    parser.add_argument(
        "--top-component",
        action="store_true",
        help="report only the densest connected component of the answer "
        "(undirected only)",
    )
    parser.add_argument(
        "--max-vertices",
        type=int,
        default=20,
        help="how many member vertices to print (default 20)",
    )
    return parser


def _parse_options(pairs: list[str]) -> dict:
    options = {}
    for pair in pairs:
        if "=" not in pair:
            raise ReproError(f"--option expects KEY=VALUE, got {pair!r}")
        key, raw = pair.split("=", 1)
        try:
            value: object = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                value = raw
        options[key] = value
    return options


def _format_members(labels: list | None, ids, limit: int) -> str:
    # Snapshots store compact ids only; without labels, print ids raw.
    if labels is None:
        names = [str(i) for i in list(ids)[:limit]]
    else:
        names = [str(labels[i]) for i in list(ids)[:limit]]
    suffix = ", ..." if len(ids) > limit else ""
    return "{" + ", ".join(names) + suffix + "}"


def _check_directed(args, is_directed: bool, what: str) -> None:
    if is_directed != args.directed:
        stored = "directed" if is_directed else "undirected"
        flag = "--directed" if args.directed else "no --directed flag"
        raise EngineError(
            f"{what} {args.path} holds a {stored} graph, "
            f"which conflicts with {flag}"
        )


def _load_graph(args):
    """Load the input graph; returns ``(graph, labels_or_None)``.

    A directory input must be a sharded snapshot (``manifest.json``
    present) and loads straight through the budgeted facade; a file
    input with ``--shards P`` is sharded next to itself as
    ``<path>.shards<P>/`` and reopened the same way.
    """
    from pathlib import Path

    from .store.shard import MANIFEST_NAME, load_sharded, save_sharded

    in_path = Path(str(args.path))
    if in_path.is_dir():
        if not (in_path / MANIFEST_NAME).is_file():
            raise EngineError(
                f"{args.path} is a directory without a shard "
                f"{MANIFEST_NAME}; pass an edge list, a .npz snapshot or "
                "a sharded snapshot directory"
            )
        graph = load_sharded(
            in_path, memory_budget_bytes=args.memory_budget
        )
        _check_directed(args, graph.kind == "directed", "sharded snapshot")
        if args.save_snapshot is not None:
            save_npz(graph.to_graph(), args.save_snapshot)
        return graph, None
    if args.memory_budget is not None and args.shards is None:
        raise EngineError(
            "--memory-budget needs --shards (or a sharded-snapshot "
            "directory input)"
        )
    if str(args.path).endswith(".npz"):
        graph = load_npz(args.path)
        _check_directed(args, isinstance(graph, DirectedGraph), "snapshot")
        labels = None
    elif args.directed:
        graph, labels = read_directed_edgelist(
            args.path, vectorized=not args.strict_parse
        )
    else:
        graph, labels = read_undirected_edgelist(
            args.path, vectorized=not args.strict_parse
        )
    if args.save_snapshot is not None:
        save_npz(graph, args.save_snapshot)
    if args.shards is not None:
        directory = Path(f"{args.path}.shards{args.shards}")
        save_sharded(graph, directory, shards=args.shards)
        graph = load_sharded(
            directory, memory_budget_bytes=args.memory_budget
        )
    return graph, labels


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list_methods:
        print(registry_table())
        return 0
    if args.path is None:
        parser.error("path is required (or use --list-methods)")
    try:
        options = _parse_options(args.option)
        ctx = ExecutionContext(
            num_threads=args.threads,
            sanitize=args.sanitize,
            backend=args.backend,
        )
        kind = "dds" if args.directed else "uds"
        spec = get_solver(kind, args.method or ("pwc" if args.directed else "pkmc"))
        if args.no_frontier:
            if not spec.supports_frontier:
                raise EngineError(
                    f"method {spec.name!r} has no frontier kernels; "
                    "--no-frontier does not apply"
                )
            ctx.frontier = False
        graph, labels = _load_graph(args)
        if args.directed:
            result = engine_run(spec, graph, ctx, **options)
            print(f"graph   : {graph}")
            print(f"method  : {result.algorithm}")
            print(f"density : {result.density:.6g}")
            if result.x is not None:
                print(f"cn-pair : [{result.x}, {result.y}]")
            if result.w_star is not None:
                print(f"w*      : {result.w_star}")
            print(f"|S|={result.s_size}  S = "
                  f"{_format_members(labels, result.s, args.max_vertices)}")
            print(f"|T|={result.t_size}  T = "
                  f"{_format_members(labels, result.t, args.max_vertices)}")
        else:
            result = engine_run(spec, graph, ctx, **options)
            vertices = result.vertices
            density = result.density
            if args.top_component:
                component_graph = (
                    graph.to_graph() if hasattr(graph, "num_shards") else graph
                )
                vertices, density = densest_component(component_graph, vertices)
            print(f"graph   : {graph}")
            print(f"method  : {result.algorithm}")
            print(f"density : {density:.6g}")
            if result.k_star is not None:
                print(f"k*      : {result.k_star}")
            print(f"|S|={len(vertices)}  S = "
                  f"{_format_members(labels, vertices, args.max_vertices)}")
        report = result.report
        if report.simulated_seconds:
            print(f"simulated time ({args.threads} threads): "
                  f"{report.simulated_seconds:.6g} s")
        if report.shards:
            print(f"shards  : {report.shards}  loads={report.shard_loads}  "
                  f"peak_resident={report.peak_resident_bytes}B  "
                  f"boundary_exchange={report.boundary_messages_bytes}B")
        if args.sanitize:
            runtime = ctx.runtime
            reports = (
                runtime.sanitizer.reports
                if runtime is not None and runtime.sanitizer is not None
                else []
            )
            if reports:
                for loop_report in reports:
                    print(f"sanitizer: {loop_report.summary()}")
            else:
                print("sanitizer: no instrumented parallel loops observed "
                      "for this method")
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
