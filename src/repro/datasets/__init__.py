"""Synthetic replicas of the paper's 12 evaluation graphs."""

from .registry import (
    DIRECTED_DATASETS,
    UNDIRECTED_DATASETS,
    DatasetSpec,
    dataset_names,
    get_spec,
    load_directed,
    load_undirected,
)
from .stream import StreamBatch, sliding_window_stream
from .synth import sample_zipf, zipf_weights

__all__ = [
    "DatasetSpec",
    "UNDIRECTED_DATASETS",
    "DIRECTED_DATASETS",
    "dataset_names",
    "get_spec",
    "load_undirected",
    "load_directed",
    "zipf_weights",
    "sample_zipf",
    "StreamBatch",
    "sliding_window_stream",
]
