"""Sliding-window temporal streams over the dataset replicas.

The registry graphs (:mod:`repro.datasets.registry`) are static
snapshots; the streaming layer needs the same graphs as *timelines*.
:func:`sliding_window_stream` assigns every edge a seeded timestamp (a
deterministic permutation — the replicas carry no real arrival times)
and plays the classic sliding-window model over it: an initial window of
the oldest edges, then batches that each insert the next ``batch_size``
arrivals and delete (expire) the ``batch_size`` oldest window members.
The window size is therefore constant across the whole stream, every
insertion is genuinely new and every deletion genuinely present, and the
same ``(source, window_fraction, batch_size, seed)`` tuple reproduces
the identical stream — which is what lets ``repro-bench stream`` pin its
maintenance counters exactly in the committed baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError

__all__ = ["StreamBatch", "sliding_window_stream"]


@dataclass(frozen=True)
class StreamBatch:
    """One sliding-window step: edges arriving and edges expiring."""

    step: int
    insertions: np.ndarray
    deletions: np.ndarray

    @property
    def size(self) -> int:
        """Total mutations in this batch (insertions plus deletions)."""
        return int(self.insertions.shape[0] + self.deletions.shape[0])


def sliding_window_stream(
    source,
    *,
    window_fraction: float = 0.8,
    batch_size: int = 8,
    num_batches: int | None = None,
    seed: int = 0,
) -> tuple[np.ndarray, list[StreamBatch]]:
    """Seeded timestamped edge stream in the sliding-window model.

    ``source`` is a registry abbreviation (e.g. ``"PT"``) or any
    undirected graph.  Returns ``(initial_edges, batches)``: the initial
    window (the oldest ``window_fraction`` of the timeline, to be bulk-
    loaded) and the ordered :class:`StreamBatch` steps.  ``num_batches``
    defaults to every full batch the timeline supports; asking for more
    raises :class:`~repro.errors.DatasetError`.
    """
    if isinstance(source, str):
        from .registry import load_undirected

        graph = load_undirected(source)
    else:
        graph = source
    if not 0.0 < window_fraction < 1.0:
        raise DatasetError("window_fraction must be in (0, 1)")
    if batch_size < 1:
        raise DatasetError("batch_size must be positive")
    edges = np.asarray(graph.edges(), dtype=np.int64)
    m = int(edges.shape[0])
    window = int(window_fraction * m)
    if window < 1:
        raise DatasetError(
            f"window of {window_fraction:.0%} of {m} edges is empty"
        )
    rng = np.random.default_rng(seed)
    timeline = edges[rng.permutation(m)]
    available = (m - window) // batch_size
    if num_batches is None:
        num_batches = available
    if num_batches > available:
        raise DatasetError(
            f"stream supports at most {available} batches of "
            f"{batch_size} (m={m}, window={window}); got {num_batches}"
        )
    batches = [
        StreamBatch(
            step=t,
            insertions=timeline[window + t * batch_size:
                                window + (t + 1) * batch_size],
            deletions=timeline[t * batch_size:(t + 1) * batch_size],
        )
        for t in range(num_batches)
    ]
    return timeline[:window], batches
