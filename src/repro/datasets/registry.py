"""Synthetic replicas of the paper's 12 evaluation graphs (Tables 4–5).

The real datasets (KONECT / LAW web crawls and social networks, up to 5.5
billion edges) are unavailable offline and far beyond a single-core Python
host; DESIGN.md section 2 records the substitution.  Each replica is
deterministic and scaled down by the factor recorded in its spec:

* undirected replicas compose a Chung–Lu power-law background, a planted
  clique (a crisp k*-core so PKMC's early stop fires within a handful of
  sweeps — paper Exp-2's "vertices with large degrees are concentrated"),
  and a long path whose h-index convergence wave forces Local into many
  extra sweeps, the scaled analogue of deep web-graph core hierarchies;
* directed replicas carry power-law hub structure plus a planted S->T
  block — the paper's Table 7 notes that on AM and AR the d_max-level
  w-induced subgraph already equals the [x*, y*]-core.

All replicas are cached in-process; generation is seeded and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Literal, Union

from ..errors import DatasetError, GraphFormatError
from ..graph.directed import DirectedGraph
from ..graph.generators import chung_lu_directed, planted_st_subgraph
from ..graph.undirected import UndirectedGraph
from .synth import build_undirected_replica

__all__ = [
    "DatasetSpec",
    "UNDIRECTED_DATASETS",
    "DIRECTED_DATASETS",
    "dataset_names",
    "get_spec",
    "load_undirected",
    "load_directed",
    "load_cached",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe and provenance for one synthetic replica."""

    abbr: str
    full_name: str
    kind: Literal["undirected", "directed"]
    category: str
    num_vertices: int
    target_edges: int
    exponent: float
    max_weight: float
    seed: int
    clique_size: int = 0
    path_length: int = 0
    planted_st: tuple[int, int] | None = None
    paper_vertices: int = 0
    paper_edges: int = 0

    @property
    def scale_factor(self) -> float:
        """How many times smaller the replica is than the real graph."""
        if self.target_edges == 0:
            return float("nan")
        return self.paper_edges / self.target_edges


UNDIRECTED_DATASETS: dict[str, DatasetSpec] = {
    spec.abbr: spec
    for spec in [
        DatasetSpec("PT", "Petster", "undirected", "Family link",
                    3_000, 40_000, 2.1, 300.0, 101,
                    clique_size=55, path_length=50,
                    paper_vertices=623_766, paper_edges=15_699_276),
        DatasetSpec("EW", "eswiki-2013", "undirected", "Knowledge",
                    5_000, 55_000, 2.15, 320.0, 102,
                    clique_size=58, path_length=44,
                    paper_vertices=972_933, paper_edges=23_041_488),
        DatasetSpec("EU", "eu-2015", "undirected", "Web",
                    12_000, 90_000, 2.2, 300.0, 103,
                    clique_size=64, path_length=100,
                    paper_vertices=11_264_052, paper_edges=379_731_874),
        DatasetSpec("IT", "it-2004", "undirected", "Web",
                    20_000, 120_000, 2.2, 380.0, 104,
                    clique_size=72, path_length=120,
                    paper_vertices=41_291_594, paper_edges=1_150_725_436),
        DatasetSpec("SK", "sk-2005", "undirected", "Web",
                    25_000, 140_000, 2.15, 420.0, 105,
                    clique_size=80, path_length=130,
                    paper_vertices=50_636_154, paper_edges=1_949_412_601),
        DatasetSpec("UN", "uk-union", "undirected", "Web",
                    32_000, 160_000, 2.1, 450.0, 106,
                    clique_size=85, path_length=120,
                    paper_vertices=133_633_040, paper_edges=5_507_679_822),
    ]
}

DIRECTED_DATASETS: dict[str, DatasetSpec] = {
    spec.abbr: spec
    for spec in [
        # AM and AR are hub-dominated (huge in-degree hubs, like the real
        # Amazon graphs whose d-_max dwarfs d+_max): their w*-induced
        # subgraph is the d_max-level star, so PWC terminates right after
        # the initial prune (Table 7's "results obtained immediately").
        DatasetSpec("AM", "Amazon", "directed", "E-commerce",
                    12_000, 30_000, 2.3, 3_500.0, 201,
                    paper_vertices=403_394, paper_edges=3_387_388),
        DatasetSpec("AR", "Amazon ratings", "directed", "E-commerce",
                    20_000, 35_000, 2.3, 120.0, 202,
                    paper_vertices=3_376_972, paper_edges=5_838_041),
        DatasetSpec("BA", "Baidu", "directed", "Knowledge",
                    15_000, 60_000, 2.2, 100.0, 203, planted_st=(18, 26),
                    paper_vertices=2_141_300, paper_edges=17_794_839),
        DatasetSpec("DL", "DBpedia links", "directed", "Knowledge",
                    40_000, 120_000, 2.15, 600.0, 204, planted_st=(22, 34),
                    paper_vertices=18_268_992, paper_edges=136_537_566),
        DatasetSpec("WE", "Wikilink_en", "directed", "Knowledge",
                    50_000, 180_000, 2.1, 500.0, 205, planted_st=(26, 40),
                    paper_vertices=13_593_032, paper_edges=437_217_424),
        DatasetSpec("TW", "Twitter", "directed", "Social",
                    60_000, 250_000, 2.05, 800.0, 206, planted_st=(30, 48),
                    paper_vertices=52_579_682, paper_edges=1_963_263_821),
    ]
}


def dataset_names(kind: Literal["undirected", "directed"]) -> list[str]:
    """Return dataset abbreviations in the paper's table order."""
    table = UNDIRECTED_DATASETS if kind == "undirected" else DIRECTED_DATASETS
    return list(table)


def get_spec(abbr: str) -> DatasetSpec:
    """Look up a dataset spec by its abbreviation (e.g. ``"SK"``)."""
    spec = UNDIRECTED_DATASETS.get(abbr) or DIRECTED_DATASETS.get(abbr)
    if spec is None:
        raise DatasetError(f"unknown dataset {abbr!r}")
    return spec


@lru_cache(maxsize=None)
def load_undirected(abbr: str) -> UndirectedGraph:
    """Generate (or fetch from cache) an undirected replica."""
    spec = UNDIRECTED_DATASETS.get(abbr)
    if spec is None:
        raise DatasetError(f"unknown undirected dataset {abbr!r}")
    return build_undirected_replica(
        spec.num_vertices,
        spec.target_edges,
        exponent=spec.exponent,
        max_weight=spec.max_weight,
        clique_size=spec.clique_size,
        path_length=spec.path_length,
        seed=spec.seed,
    )


@lru_cache(maxsize=None)
def load_directed(abbr: str) -> DirectedGraph:
    """Generate (or fetch from cache) a directed replica."""
    spec = DIRECTED_DATASETS.get(abbr)
    if spec is None:
        raise DatasetError(f"unknown directed dataset {abbr!r}")
    if spec.planted_st is not None:
        s_size, t_size = spec.planted_st
        graph, _, _ = planted_st_subgraph(
            spec.num_vertices,
            spec.target_edges,
            s_size=s_size,
            t_size=t_size,
            block_probability=0.85,
            max_weight=spec.max_weight,
            seed=spec.seed,
        )
        return graph
    return chung_lu_directed(
        spec.num_vertices,
        spec.target_edges,
        out_exponent=spec.exponent + 0.15,
        in_exponent=spec.exponent,
        max_weight=spec.max_weight,
        seed=spec.seed,
    )


def load_cached(
    abbr: str,
    cache_dir: Union[str, Path],
    shards: int | None = None,
    memory_budget_bytes: int | None = None,
) -> UndirectedGraph | DirectedGraph:
    """Disk-cached replica load backed by binary snapshots.

    The first call generates the replica and writes a snapshot
    (``<abbr>.npz``) into ``cache_dir``; later calls — including in
    fresh processes — mmap-load the snapshot instead of regenerating,
    which is the fast path for repeated experiment runs. A corrupt or
    stale snapshot is deleted and rebuilt.

    ``shards=P`` returns a budgeted out-of-core
    :class:`~repro.store.shard.ShardedGraph` instead, cached as its own
    ``<abbr>.shards<P>/`` directory next to the monolithic snapshot (the
    two fingerprints agree, so they share engine memo entries);
    ``memory_budget_bytes`` caps the facade's resident shard bytes.
    """
    from ..store.snapshot import load_snapshot, save_snapshot

    spec = get_spec(abbr)
    cache_dir = Path(cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)
    if shards is not None:
        return _load_cached_sharded(
            abbr, cache_dir, shards, memory_budget_bytes
        )
    path = cache_dir / f"{abbr}.npz"
    if path.exists():
        try:
            return load_snapshot(path)
        except GraphFormatError:
            path.unlink()  # corrupt/truncated cache entry: rebuild below
    graph = (
        load_undirected(abbr)
        if spec.kind == "undirected"
        else load_directed(abbr)
    )
    save_snapshot(graph, path)
    return graph


def _load_cached_sharded(
    abbr: str,
    cache_dir: Path,
    shards: int,
    memory_budget_bytes: int | None,
):
    """The ``shards=P`` arm of :func:`load_cached` (rebuild-on-corrupt)."""
    import shutil

    from ..store.shard import load_sharded, save_sharded

    directory = cache_dir / f"{abbr}.shards{shards}"
    if directory.exists():
        try:
            return load_sharded(
                directory, memory_budget_bytes=memory_budget_bytes
            )
        except GraphFormatError:
            shutil.rmtree(directory)  # corrupt shard cache: rebuild below
    graph = load_cached(abbr, cache_dir)
    save_sharded(graph, directory, shards=shards)
    return load_sharded(directory, memory_budget_bytes=memory_budget_bytes)
