"""Composable synthetic structure used by the dataset replicas.

Three ingredients, mirroring what the paper's experiments rely on in real
graphs:

* a Chung–Lu power-law *background* (hubs, heavy tail);
* a planted *clique* — a crisp k*-core whose h-indices stabilise within a
  couple of sweeps, so PKMC's Theorem-1 stop fires early (paper Exp-2:
  "the vertices with large degrees are concentrated");
* long *paths* — the slowest structure for h-index convergence: the h=1
  wave moves inward one vertex per sweep from each end, so a path of
  length L forces Local to run ~L/2 sweeps while leaving k* (and PKMC's
  stopping time) untouched.  This is the scaled-down analogue of the deep
  peripheral core hierarchies that make Local take hundreds to thousands
  of iterations on the paper's web graphs (Table 6).
"""

from __future__ import annotations

import numpy as np

from ..graph.generators import chung_lu_undirected
from ..graph.undirected import UndirectedGraph

__all__ = [
    "clique_edges",
    "path_edges",
    "build_undirected_replica",
    "zipf_weights",
    "sample_zipf",
]


def zipf_weights(num_items: int, exponent: float = 1.1) -> np.ndarray:
    """Normalised Zipf probabilities over ranks ``0..num_items-1``.

    Rank ``r`` (0-based) gets probability proportional to
    ``1 / (r + 1) ** exponent`` — the classic heavy-head access law that
    serving workloads exhibit (a few hot datasets/solvers absorb most
    queries). ``exponent=0`` degenerates to the uniform distribution;
    larger exponents concentrate more mass on the first ranks.
    """
    if num_items <= 0:
        raise ValueError("num_items must be positive")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    weights = (np.arange(1, num_items + 1, dtype=np.float64)) ** (-exponent)
    return weights / weights.sum()


def sample_zipf(
    num_items: int,
    size: int,
    exponent: float = 1.1,
    seed: int | np.random.Generator = 0,
) -> np.ndarray:
    """Seeded i.i.d. Zipf-distributed ranks in ``[0, num_items)``.

    The workhorse of the traffic-replay benches (:mod:`repro.bench.serve`)
    and the serving example: draw ``size`` item indices where rank 0 is
    the hottest. Deterministic for a given ``(num_items, size, exponent,
    seed)``; ``seed`` may be an integer or a pre-built
    :class:`numpy.random.Generator` (advanced, shares a stream).
    """
    if size < 0:
        raise ValueError("size must be non-negative")
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    return rng.choice(num_items, size=size, p=zipf_weights(num_items, exponent))


def clique_edges(vertices: np.ndarray) -> np.ndarray:
    """All pairs among ``vertices`` as an edge array."""
    k = vertices.size
    left, right = np.triu_indices(k, k=1)
    return np.stack([vertices[left], vertices[right]], axis=1)


def path_edges(vertices: np.ndarray) -> np.ndarray:
    """Consecutive pairs along ``vertices`` as an edge array."""
    return np.stack([vertices[:-1], vertices[1:]], axis=1)


def build_undirected_replica(
    num_background_vertices: int,
    target_edges: int,
    exponent: float,
    max_weight: float,
    clique_size: int,
    path_length: int,
    seed: int,
) -> UndirectedGraph:
    """Background + planted clique + convergence-delaying path.

    The clique is planted on fresh vertex ids and stitched to the
    background with one random edge per clique vertex (keeping its k-core
    intact); the path hangs off a random background vertex.  Total vertex
    count is ``num_background_vertices + clique_size + path_length``.
    """
    rng = np.random.default_rng(seed)
    background = chung_lu_undirected(
        num_background_vertices,
        target_edges,
        exponent=exponent,
        max_weight=max_weight,
        seed=rng,
    )
    n_bg = num_background_vertices
    clique_ids = np.arange(n_bg, n_bg + clique_size)
    path_ids = np.arange(n_bg + clique_size, n_bg + clique_size + path_length)

    pieces = [background.edges()]
    if clique_size >= 2:
        pieces.append(clique_edges(clique_ids))
        anchors = rng.integers(0, n_bg, size=clique_size)
        pieces.append(np.stack([clique_ids, anchors], axis=1))
    if path_length >= 2:
        pieces.append(path_edges(path_ids))
        pieces.append(
            np.asarray([[path_ids[0], int(rng.integers(0, n_bg))]], dtype=np.int64)
        )
    total_vertices = n_bg + clique_size + path_length
    return UndirectedGraph.from_edges(total_vertices, np.concatenate(pieces))
