"""Composable synthetic structure used by the dataset replicas.

Three ingredients, mirroring what the paper's experiments rely on in real
graphs:

* a Chung–Lu power-law *background* (hubs, heavy tail);
* a planted *clique* — a crisp k*-core whose h-indices stabilise within a
  couple of sweeps, so PKMC's Theorem-1 stop fires early (paper Exp-2:
  "the vertices with large degrees are concentrated");
* long *paths* — the slowest structure for h-index convergence: the h=1
  wave moves inward one vertex per sweep from each end, so a path of
  length L forces Local to run ~L/2 sweeps while leaving k* (and PKMC's
  stopping time) untouched.  This is the scaled-down analogue of the deep
  peripheral core hierarchies that make Local take hundreds to thousands
  of iterations on the paper's web graphs (Table 6).
"""

from __future__ import annotations

import numpy as np

from ..graph.generators import chung_lu_undirected
from ..graph.undirected import UndirectedGraph

__all__ = ["clique_edges", "path_edges", "build_undirected_replica"]


def clique_edges(vertices: np.ndarray) -> np.ndarray:
    """All pairs among ``vertices`` as an edge array."""
    k = vertices.size
    left, right = np.triu_indices(k, k=1)
    return np.stack([vertices[left], vertices[right]], axis=1)


def path_edges(vertices: np.ndarray) -> np.ndarray:
    """Consecutive pairs along ``vertices`` as an edge array."""
    return np.stack([vertices[:-1], vertices[1:]], axis=1)


def build_undirected_replica(
    num_background_vertices: int,
    target_edges: int,
    exponent: float,
    max_weight: float,
    clique_size: int,
    path_length: int,
    seed: int,
) -> UndirectedGraph:
    """Background + planted clique + convergence-delaying path.

    The clique is planted on fresh vertex ids and stitched to the
    background with one random edge per clique vertex (keeping its k-core
    intact); the path hangs off a random background vertex.  Total vertex
    count is ``num_background_vertices + clique_size + path_length``.
    """
    rng = np.random.default_rng(seed)
    background = chung_lu_undirected(
        num_background_vertices,
        target_edges,
        exponent=exponent,
        max_weight=max_weight,
        seed=rng,
    )
    n_bg = num_background_vertices
    clique_ids = np.arange(n_bg, n_bg + clique_size)
    path_ids = np.arange(n_bg + clique_size, n_bg + clique_size + path_length)

    pieces = [background.edges()]
    if clique_size >= 2:
        pieces.append(clique_edges(clique_ids))
        anchors = rng.integers(0, n_bg, size=clique_size)
        pieces.append(np.stack([clique_ids, anchors], axis=1))
    if path_length >= 2:
        pieces.append(path_edges(path_ids))
        pieces.append(
            np.asarray([[path_ids[0], int(rng.integers(0, n_bg))]], dtype=np.int64)
        )
    total_vertices = n_bg + clique_size + path_length
    return UndirectedGraph.from_edges(total_vertices, np.concatenate(pieces))
