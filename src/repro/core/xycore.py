"""[x, y]-core peeling primitives (paper Definition 7).

An (S, T)-induced subgraph H is an [x, y]-core when every u in S has
d^+_H(u) >= x, every v in T has d^-_H(v) >= y, and H is maximal.  The
maximal core is computed here by synchronous edge peeling: an alive edge
(u, v) dies when its source's alive out-degree falls below x or its
destination's alive in-degree falls below y; killing a vertex's last
qualifying edge cascades.  Each peeling round is one parallel iteration.

Both PWC (which extracts the [x*, y*]-core from the w*-induced subgraph)
and the PXY baseline (which enumerates O(sqrt(m)) cn-pairs) build on these
functions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.directed import DirectedGraph
from ..runtime.simruntime import SimRuntime

__all__ = ["XYCore", "xy_core", "max_y_for_x"]


@dataclass
class XYCore:
    """Result of an [x, y]-core peel.

    ``edge_mask`` marks the surviving edges (indexed by edge id of the
    *original* graph); ``s``/``t`` are the vertex sets; empty arrays mean
    the core does not exist.
    """

    x: int
    y: int
    s: np.ndarray
    t: np.ndarray
    edge_mask: np.ndarray
    rounds: int

    @property
    def exists(self) -> bool:
        """True iff the [x, y]-core is non-empty."""
        return bool(self.s.size and self.t.size)

    @property
    def num_edges(self) -> int:
        """Number of edges in the core."""
        return int(np.count_nonzero(self.edge_mask))

    def density(self) -> float:
        """rho(S, T) of the core (0.0 when it does not exist)."""
        if not self.exists:
            return 0.0
        return self.num_edges / float(np.sqrt(self.s.size * self.t.size))


def _alive_degrees(
    graph: DirectedGraph, alive: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    src = graph.edge_src[alive]
    dst = graph.edge_dst[alive]
    dout = np.bincount(src, minlength=graph.num_vertices)
    din = np.bincount(dst, minlength=graph.num_vertices)
    return dout.astype(np.int64), din.astype(np.int64)


def xy_core(
    graph: DirectedGraph,
    x: int,
    y: int,
    edge_mask: np.ndarray | None = None,
    runtime: SimRuntime | None = None,
) -> XYCore:
    """Compute the maximal [x, y]-core (optionally within an edge subset).

    ``edge_mask`` restricts peeling to a subgraph (PWC passes the
    w*-induced subgraph here, which is sound because the [x*, y*]-core is
    contained in it — paper Lemma 4 with Theorem 2).  When a ``runtime`` is
    given, each peeling round is charged as one parallel loop over the
    surviving edges.
    """
    if x < 1 or y < 1:
        raise ValueError("x and y must be >= 1")
    alive = (
        np.ones(graph.num_edges, dtype=bool)
        if edge_mask is None
        else edge_mask.copy()
    )
    src, dst = graph.edge_src, graph.edge_dst
    dout, din = _alive_degrees(graph, alive)
    rounds = 0
    while True:
        alive_ids = np.flatnonzero(alive)
        if alive_ids.size == 0:
            break
        bad = (dout[src[alive_ids]] < x) | (din[dst[alive_ids]] < y)
        if runtime is not None:
            runtime.parfor(
                float(alive_ids.size), atomic_ops=int(np.count_nonzero(bad))
            )
        rounds += 1
        if not bad.any():
            break
        dead_ids = alive_ids[bad]
        alive[dead_ids] = False
        np.subtract.at(dout, src[dead_ids], 1)
        np.subtract.at(din, dst[dead_ids], 1)
    s = np.flatnonzero(dout > 0)
    t = np.flatnonzero(din > 0)
    return XYCore(x=x, y=y, s=s, t=t, edge_mask=alive, rounds=rounds)


def max_y_for_x(
    graph: DirectedGraph,
    x: int,
    edge_mask: np.ndarray | None = None,
    runtime: SimRuntime | None = None,
) -> tuple[int, int]:
    """Return ``(y, rounds)``: the largest y such that an [x, y]-core exists.

    Used by the PXY baseline.  Implemented as the classic peel: first
    enforce the out-degree constraint x, then repeatedly record the minimum
    alive in-degree as a candidate y and peel the vertices attaining it,
    re-enforcing the x constraint after every batch.  Returns y = 0 when no
    [x, 1]-core exists.
    """
    alive = (
        np.ones(graph.num_edges, dtype=bool)
        if edge_mask is None
        else edge_mask.copy()
    )
    src, dst = graph.edge_src, graph.edge_dst
    dout, din = _alive_degrees(graph, alive)
    best_y = 0
    rounds = 0
    while True:
        # Enforce the out-degree >= x constraint to a fixpoint.
        while True:
            alive_ids = np.flatnonzero(alive)
            if alive_ids.size == 0:
                return best_y, rounds
            bad = dout[src[alive_ids]] < x
            rounds += 1
            if runtime is not None:
                runtime.parfor(
                    float(alive_ids.size), atomic_ops=int(np.count_nonzero(bad))
                )
            if not bad.any():
                break
            dead_ids = alive_ids[bad]
            alive[dead_ids] = False
            np.subtract.at(dout, src[dead_ids], 1)
            np.subtract.at(din, dst[dead_ids], 1)
        # All alive sources now satisfy x; the minimum alive in-degree is a
        # feasible y (an [x, y_min]-core exists right now).
        t_degrees = din[dst[alive_ids]]
        y_min = int(t_degrees.min())
        best_y = max(best_y, y_min)
        # Peel every T-vertex attaining the minimum and continue searching
        # for a deeper (larger-y) core.
        bad = t_degrees == y_min
        dead_ids = alive_ids[bad]
        rounds += 1
        if runtime is not None:
            runtime.parfor(float(alive_ids.size), atomic_ops=int(dead_ids.size))
        alive[dead_ids] = False
        np.subtract.at(dout, src[dead_ids], 1)
        np.subtract.at(din, dst[dead_ids], 1)
