"""PWC — Parallel [x*, y*]-core computation (paper Algorithm 4).

Pipeline:

1. compute the w*-induced subgraph H with :func:`~repro.core.winduced.
   wstar_subgraph` (Algorithm 3, with the d_max pruning Remark);
2. derive the maximum cn-pair [x*, y*] from H, either by the paper's
   collapse-based scan (Lemma 6) or by divisor-pair checks inside H (both
   are cheap because H is small — Table 7);
3. extract the [x*, y*]-core and report S, T and the density.

The [x*, y*]-core is a 2-approximation of the directed densest subgraph
(Ma et al.; paper Lemma 3).

Reproduction finding: the paper's Theorem 2 (w* = x* . y*) holds only as
an upper bound in general — see :func:`derive_cn_pair_divisor` — so both
extraction paths verify the pair and descend below w* when needed,
keeping PWC correct on all inputs.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from ..engine.spec import register_solver
from ..errors import AlgorithmError, EmptyGraphError
from ..graph.directed import DirectedGraph
from ..runtime.simruntime import SimRuntime
from .results import DDSResult
from .winduced import WStarResult, winduced_subgraph, wstar_subgraph
from .xycore import XYCore, xy_core

__all__ = ["pwc", "derive_cn_pair_divisor", "derive_cn_pair_collapse"]


def _divisor_pairs(w: int) -> list[tuple[int, int]]:
    """All (x, y) with x * y == w, x ascending."""
    pairs = []
    for x in range(1, int(np.sqrt(w)) + 1):
        if w % x == 0:
            pairs.append((x, w // x))
            if x != w // x:
                pairs.append((w // x, x))
    pairs.sort()
    return pairs


def derive_cn_pair_divisor(
    graph: DirectedGraph,
    wstar: WStarResult,
    runtime: SimRuntime | None = None,
    frontier: bool = True,
) -> tuple[int, int, XYCore]:
    """Find the maximum cn-pair by descending divisor-pair checks.

    The paper's Theorem 2 claims x* . y* = w*, so (x*, y*) should be among
    the divisor pairs of w*; for each candidate we peel the [x, y]-core
    within the w*-induced subgraph and keep the existing core of highest
    density.

    **Reproduction finding**: Theorem 2 only holds as an upper bound,
    w* >= x* . y*.  A 9-vertex counterexample (see
    ``tests/core/test_pwc.py::TestTheorem2Gap``) has w* = 8 with maximum
    cn-pair [2, 3]: mixed out/in-degrees can keep every edge weight >= w*
    without any uniform [x, y]-core of that product.  When no divisor pair
    of w* yields a core, this routine therefore *descends*: for each
    candidate product P = w* - 1, w* - 2, ... it rebuilds the P-induced
    subgraph (which contains every [x, y]-core with x . y = P, by Lemma 4
    and the nested property) and checks P's divisor pairs, stopping at the
    first product with an existing core — which is then the true maximum
    cn-pair.  The descent costs nothing when Theorem 2 holds, as it does
    on all 12 replicas and on the paper's worked examples.
    """
    product = wstar.w_star
    mask = wstar.edge_mask
    while product >= 1:
        if mask.any():
            alive_src = graph.edge_src[mask]
            alive_dst = graph.edge_dst[mask]
            dout_max = int(
                np.bincount(alive_src, minlength=graph.num_vertices).max()
            )
            din_max = int(
                np.bincount(alive_dst, minlength=graph.num_vertices).max()
            )
            best: tuple[float, int, int, XYCore] | None = None
            for x, y in _divisor_pairs(product):
                if x > dout_max or y > din_max:
                    continue
                core = xy_core(graph, x, y, edge_mask=mask, runtime=runtime)
                if core.exists:
                    candidate = (core.density(), x, y, core)
                    if best is None or candidate[0] > best[0]:
                        best = candidate
            if best is not None:
                _, x, y, core = best
                return x, y, core
        product -= 1
        mask = winduced_subgraph(graph, product, runtime=runtime, frontier=frontier)
    raise AlgorithmError(
        "no [x, y]-core exists at any product; the graph must be edgeless"
    )


def derive_cn_pair_collapse(
    graph: DirectedGraph,
    wstar: WStarResult,
    runtime: SimRuntime | None = None,
) -> tuple[int, int] | None:
    """Find [x*, y*] by the paper's collapse-based scan (Algorithm 4).

    Among H's edges of weight exactly w*, the candidate cn-pairs are the
    endpoint degree pairs.  Processing candidate in-degree values d* one at
    a time, remove the weight-w* edges whose destination in-degree is d*
    (together with any edge whose weight has dropped below w*); by Lemma 6
    the value whose removal collapses H reveals the maximum cn-pair
    (w*/d*, d*).  Returns None if the scan is inconclusive (callers then
    fall back to the divisor method).
    """
    w_star = wstar.w_star
    src, dst = graph.edge_src, graph.edge_dst
    alive = wstar.edge_mask.copy()
    alive_ids = np.flatnonzero(alive)
    dout = np.bincount(src[alive_ids], minlength=graph.num_vertices).astype(np.int64)
    din = np.bincount(dst[alive_ids], minlength=graph.num_vertices).astype(np.int64)

    weights = dout[src[alive_ids]] * din[dst[alive_ids]]
    at_wstar = alive_ids[weights == w_star]
    if runtime is not None:
        runtime.parfor(float(alive_ids.size))
    # Candidate in-degree values, ascending (Example 4 removes the [6, 2]
    # pairs, i.e. d* = 2, before the true [4, 3] pair).
    candidates = np.unique(din[dst[at_wstar]])
    last_pair: tuple[int, int] | None = None
    for d_star in candidates:
        d_star = int(d_star)
        if w_star % d_star != 0:
            continue
        last_pair = (w_star // d_star, d_star)
        while True:
            alive_ids = np.flatnonzero(alive)
            if alive_ids.size == 0:
                return last_pair
            cur_weights = dout[src[alive_ids]] * din[dst[alive_ids]]
            below = cur_weights < w_star
            exact = (cur_weights == w_star) & (din[dst[alive_ids]] == d_star)
            bad = below | exact
            if runtime is not None:
                runtime.parfor(
                    float(alive_ids.size), atomic_ops=int(np.count_nonzero(bad))
                )
            if not bad.any():
                break
            dead_ids = alive_ids[bad]
            alive[dead_ids] = False
            np.subtract.at(dout, src[dead_ids], 1)
            np.subtract.at(din, dst[dead_ids], 1)
    # All candidates processed without a collapse: inconclusive.
    return None


@register_solver(
    "pwc",
    kind="dds",
    guarantee="2-approx",
    cost="parallel",
    supports_runtime=True,
    supports_frontier=True,
)
def pwc(
    graph: DirectedGraph,
    runtime: SimRuntime | None = None,
    start_at_dmax: bool = True,
    extraction: Literal["collapse", "divisor"] = "collapse",
    frontier: bool = True,
) -> DDSResult:
    """Return the [x*, y*]-core of ``graph`` as a 2-approximate DDS.

    Parameters
    ----------
    graph:
        Input directed graph; must have at least one edge.
    runtime:
        Optional :class:`SimRuntime` accounting every parallel peeling
        round of Algorithm 3/4.
    start_at_dmax:
        Apply the w >= d_max initial pruning (the paper's Remark); the
        ablation benchmark toggles this.
    extraction:
        ``"collapse"`` uses the paper's Lemma-6 scan and falls back to the
        divisor descent if inconclusive or unverifiable; ``"divisor"``
        always uses the provably-safe descending enumeration.
    frontier:
        With the default ``True``, the peeling cascade re-checks only the
        edges adjacent to the previous round's removals (identical results
        and round counts, cheaper simulated rounds — see
        :func:`~repro.core.winduced.wstar_subgraph`); ``False`` re-scans
        every surviving edge each round as written in Algorithm 3.

    Returns
    -------
    DDSResult
        With ``x``/``y``/``w_star`` filled and ``extras`` carrying the
        Table-7 sizes: ``size_first`` (edges after the d_max prune),
        ``size_wstar`` (edges of the w*-induced subgraph) and
        ``size_dds`` (edges of the returned core).
    """
    if graph.num_edges == 0:
        raise EmptyGraphError("DDS is undefined on a graph without edges")
    rt = runtime or SimRuntime(num_threads=1)
    with rt.parallel_region():
        wstar = wstar_subgraph(
            graph, runtime=rt, start_at_dmax=start_at_dmax, frontier=frontier
        )

        used_fallback = False
        pair: tuple[int, int] | None = None
        if extraction == "collapse":
            pair = derive_cn_pair_collapse(graph, wstar, runtime=rt)
            if pair is not None:
                x, y = pair
                core = xy_core(graph, x, y, edge_mask=wstar.edge_mask, runtime=rt)
                if not core.exists:
                    pair = None
            if pair is None:
                used_fallback = True
        if pair is None:
            x, y, core = derive_cn_pair_divisor(
                graph, wstar, runtime=rt, frontier=frontier
            )

    density = core.density()
    return DDSResult(
        algorithm="PWC",
        s=core.s,
        t=core.t,
        density=density,
        x=x,
        y=y,
        w_star=wstar.w_star,
        iterations=wstar.rounds,
        simulated_seconds=rt.now,
        extras={
            "size_first": wstar.size_after_prune,
            "size_wstar": wstar.size_wstar,
            "size_dds": core.num_edges,
            "extraction_fallback": used_fallback,
            "theorem2_gap": wstar.w_star - x * y,
            "level_sizes": wstar.level_sizes,
        },
    )
