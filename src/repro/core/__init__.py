"""The paper's primary contribution: PKMC (UDS) and PWC (DDS).

Everything here is the ICDE'23 paper's Section IV and V machinery:
h-index sweeps with the Theorem-1 early stop, w-induced subgraph
decomposition, and [x, y]-core extraction.
"""

from .dynamic import DynamicKStarCore
from .hindex import (
    degree_descending_order,
    h_index,
    inplace_sweep,
    synchronous_sweep,
)
from .pkmc import pkmc
from .pwc import derive_cn_pair_collapse, derive_cn_pair_divisor, pwc
from .results import DDSResult, UDSResult
from .winduced import (
    WStarResult,
    edge_weights,
    winduced_decomposition,
    winduced_subgraph,
    wstar_subgraph,
)
from .xycore import XYCore, max_y_for_x, xy_core

__all__ = [
    "pkmc",
    "DynamicKStarCore",
    "pwc",
    "UDSResult",
    "DDSResult",
    "h_index",
    "synchronous_sweep",
    "inplace_sweep",
    "degree_descending_order",
    "edge_weights",
    "winduced_subgraph",
    "wstar_subgraph",
    "winduced_decomposition",
    "WStarResult",
    "XYCore",
    "xy_core",
    "max_y_for_x",
    "derive_cn_pair_divisor",
    "derive_cn_pair_collapse",
]
