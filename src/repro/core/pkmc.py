"""PKMC — Parallel k*-core computation (paper Algorithm 2).

PKMC runs the h-index sweeps of Local (Algorithm 1) but stops as soon as
Theorem 1 certifies that the vertices currently holding the maximum h-index
form the k*-core:

    If h_max did not change between two consecutive sweeps AND the number
    of vertices attaining h_max did not change either, then k* = h_max and
    those vertices induce the k*-core.

Combined with the Proposition-1 guard (a k*-core has at least k* + 1
vertices, so the criterion is only consulted once more than h_max vertices
sit at the maximum), this typically stops after 3–5 sweeps where Local
needs tens to thousands (paper Table 6).  The k*-core is a 2-approximation
of the undirected densest subgraph (Fang et al.; paper Lemma 1).
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from ..engine.spec import register_solver
from ..errors import EmptyGraphError
from ..graph.undirected import UndirectedGraph
from ..kernels.density import induced_density
from ..kernels.frontier import (
    frontier_inplace_sweep,
    frontier_synchronous_sweep,
    gauss_seidel_batches,
)
from ..runtime.simruntime import SimRuntime
from .hindex import degree_descending_order, inplace_sweep, synchronous_sweep
from .results import UDSResult

__all__ = ["pkmc"]

_PER_VERTEX_OVERHEAD_UNITS = 4.0


def _sweep_costs(graph: UndirectedGraph) -> np.ndarray:
    """Per-vertex work units of one h-index sweep (degree + constant)."""
    return graph.degrees().astype(np.float64) + _PER_VERTEX_OVERHEAD_UNITS


def _core_density(graph: UndirectedGraph, vertices: np.ndarray) -> float:
    """Density |E(S)|/|S| of the subgraph induced by ``vertices``."""
    return induced_density(graph, vertices)


@register_solver(
    "pkmc",
    kind="uds",
    guarantee="2-approx",
    cost="parallel",
    supports_runtime=True,
    supports_frontier=True,
    supports_sanitize=True,
    supports_streaming=True,
)
def pkmc(
    graph: UndirectedGraph,
    runtime: SimRuntime | None = None,
    early_stop: bool = True,
    proposition1_guard: bool = True,
    sweep: Literal["synchronous", "degree_order"] = "synchronous",
    max_iterations: int | None = None,
    frontier: bool = True,
) -> UDSResult:
    """Return the k*-core of ``graph`` as a 2-approximate UDS.

    Parameters
    ----------
    graph:
        The input undirected graph; must contain at least one edge.
    runtime:
        Optional :class:`SimRuntime` used to account the simulated parallel
        cost of every sweep (one ``parfor`` over all vertices per sweep plus
        a parallel reduction for ``h_max`` and its multiplicity).  With
        ``SimRuntime(sanitize=True)`` the sweeps additionally execute their
        per-vertex kernels under the parfor race sanitizer (the
        ``degree_order`` sweep is annotated order-dependent, so both modes
        pass clean).
    early_stop:
        Apply Theorem 1.  Disabling it makes PKMC behave exactly like Local
        followed by a max-extraction, which is the paper's principal
        ablation (Exp-2 measures exactly this gap).
    proposition1_guard:
        Apply the line-12 guard ``s <= h_max -> keep iterating``.
    sweep:
        ``"synchronous"`` (Jacobi, the parallel semantics) or
        ``"degree_order"`` (in-place sweeps in non-ascending degree order,
        as in the paper's Fig. 2 walkthrough); both converge to the same
        answer.
    max_iterations:
        Safety bound; defaults to ``num_vertices + 2``.
    frontier:
        Use the frontier (active-set) sweep kernels: after the first full
        sweep, only vertices with a changed neighbour are recomputed and
        only they are charged to the simulated runtime.  The per-sweep
        h-arrays — and therefore the iteration count, history and
        Theorem-1 stop — are identical to the full sweeps; disable to
        reproduce the pre-kernel-layer full-sweep costing (the
        bench-regression harness compares both).

    Returns
    -------
    UDSResult
        ``vertices`` is the k*-core, ``k_star`` its core value,
        ``iterations`` the number of sweeps executed, and
        ``extras["history"]`` the per-sweep ``(h_max, s)`` trace.
    """
    if graph.num_edges == 0:
        raise EmptyGraphError("UDS is undefined on a graph without edges")
    rt = runtime or SimRuntime(num_threads=1)
    limit = max_iterations if max_iterations is not None else graph.num_vertices + 2
    order = degree_descending_order(graph) if sweep == "degree_order" else None

    h = graph.degrees().astype(np.int64)
    h_max = int(h.max())
    s = int(np.count_nonzero(h == h_max))
    history: list[tuple[int, int]] = [(h_max, s)]
    iterations = 0
    early_stop_fired = False

    sweep_costs = _sweep_costs(graph)
    active: np.ndarray | None = None  # Jacobi frontier (None = full sweep)
    dirty: np.ndarray | None = None  # Gauss–Seidel dirty mask
    batches = (
        gauss_seidel_batches(graph, order)
        if frontier and sweep == "degree_order"
        else None
    )

    with rt.parallel_region():
        # Initialisation: one parallel pass to set h(v) = d(v) and reduce max.
        rt.parfor(np.full(graph.num_vertices, 2.0))
        while iterations < limit:
            if not frontier:
                rt.parfor(sweep_costs)
                if sweep == "synchronous":
                    new_h = synchronous_sweep(graph, h, runtime=rt)
                else:
                    new_h = inplace_sweep(graph, h.copy(), order, runtime=rt)
                changed = bool(np.any(new_h < h))
            elif sweep == "synchronous":
                # Charge only the recomputed frontier (all n on sweep 1).
                rt.parfor(sweep_costs if active is None else sweep_costs[active])
                new_h, active = frontier_synchronous_sweep(
                    graph, h, frontier=active, runtime=rt
                )
                # Changed vertices have degree >= 1 (h starts at the
                # degrees), so they always wake at least one neighbour:
                # an empty next frontier means nothing changed.
                changed = active.size > 0
            else:
                new_h, dirty, processed = frontier_inplace_sweep(
                    graph, h.copy(), dirty=dirty, batches=batches, runtime=rt
                )
                # Charge in natural vertex order (like the full sweep did)
                # so static-schedule imbalance never exceeds the old cost.
                rt.parfor(sweep_costs[np.sort(processed)])
                changed = bool(np.any(new_h[processed] < h[processed]))
            # Parallel reduction for h_max and its multiplicity (lines 10-11).
            rt.parfor(np.full(graph.num_vertices, 1.0))
            new_h_max = int(new_h.max())
            new_s = int(np.count_nonzero(new_h == new_h_max))
            iterations += 1
            history.append((new_h_max, new_s))

            guard_blocks_stop = proposition1_guard and new_s <= new_h_max
            if (
                early_stop
                and not guard_blocks_stop
                and new_h_max == h_max
                and new_s == s
            ):
                h, h_max, s = new_h, new_h_max, new_s
                early_stop_fired = True
                break
            h, h_max, s = new_h, new_h_max, new_s
            if not changed:
                break

    core_vertices = np.flatnonzero(h == h_max)
    rt.parfor(float(core_vertices.size + 1))  # extraction pass
    density = _core_density(graph, core_vertices)
    return UDSResult(
        algorithm="PKMC",
        vertices=core_vertices,
        density=density,
        iterations=iterations,
        k_star=h_max,
        simulated_seconds=rt.now,
        extras={
            "history": history,
            "early_stop_fired": early_stop_fired,
            "sweep": sweep,
            "frontier": frontier,
        },
    )
