"""h-index kernels shared by Local (Algorithm 1) and PKMC (Algorithm 2).

The h-index of a multiset of numbers is the largest k such that at least k
of the numbers are >= k.  Iterating "replace every vertex's value by the
h-index of its neighbours' values", starting from the degrees, converges to
the core numbers (Lü et al.; Sariyuce et al.).  The key facts the paper
relies on — and which the property tests verify — are:

* the iteration is *monotone*: values never increase between sweeps;
* every intermediate value upper-bounds the vertex's core number;
* update order does not affect the fixed point (only convergence speed).

Two sweep variants are provided: a synchronous (Jacobi) sweep in which all
updates read the previous iteration's values — the natural semantics of the
paper's "for v in V in parallel" loop — and an in-place (Gauss–Seidel)
sweep in a caller-chosen order, used by the update-order ablation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..analysis.race import declare_order_dependent
from ..graph.undirected import UndirectedGraph
from ..kernels.frontier import gauss_seidel_batches, hindex_sweep_values

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.simruntime import SimRuntime

__all__ = [
    "h_index",
    "synchronous_sweep",
    "inplace_sweep",
    "degree_descending_order",
]


def h_index(values: np.ndarray) -> int:
    """Return the h-index of a 1-D array of non-negative numbers.

    >>> h_index(np.array([4, 3, 3, 1]))
    3
    >>> h_index(np.array([], dtype=np.int64))
    0
    """
    values = np.asarray(values)
    if values.size == 0:
        return 0
    ordered = np.sort(values)[::-1]
    ranks = np.arange(1, ordered.size + 1)
    satisfied = ordered >= ranks
    return int(satisfied.sum())


def synchronous_sweep(
    graph: UndirectedGraph, h: np.ndarray, runtime: "SimRuntime | None" = None
) -> np.ndarray:
    """One Jacobi sweep: return new h-values computed from the old ones.

    Fully vectorised and sort-free: neighbour values are gathered through
    the CSR arrays and each adjacency segment's h-index is computed by the
    clipped-histogram + segment-suffix-sum kernel
    (:func:`~repro.kernels.segments.segment_h_index`) over the graph's
    cached ``heads()`` / ``hindex_bins()`` scratch buffers — O(m) per
    sweep instead of the O(m log m) per-sweep ``lexsort`` it replaces.
    The recomputation itself runs on the active array backend
    (:func:`~repro.kernels.frontier.hindex_sweep_values`), which may
    split the vertex range across worker processes; outputs are
    bit-identical whichever backend executes.

    When ``runtime`` is a sanitizing :class:`~repro.runtime.simruntime.
    SimRuntime`, the sweep instead executes its per-vertex kernel one
    iteration at a time under the race sanitizer (reads from the old array,
    writes to a fresh one — iteration-independent, so it always comes back
    clean).  Cost accounting is unaffected either way; callers declare the
    sweep's cost with :meth:`SimRuntime.parfor` as before.
    """
    n = graph.num_vertices
    if n == 0:
        return h.copy()
    if runtime is not None and runtime.sanitize:
        indptr, indices = graph.indptr, graph.indices
        new_h = h.copy()

        def jacobi_body(v, old, new):
            new[v] = h_index(old[indices[indptr[v]:indptr[v + 1]]])

        runtime.observe_parfor(
            n, jacobi_body, {"old": h, "new": new_h}, label="synchronous_sweep"
        )
        return new_h
    return hindex_sweep_values(graph, h).astype(h.dtype, copy=False)


def inplace_sweep(
    graph: UndirectedGraph,
    h: np.ndarray,
    order: np.ndarray | None = None,
    runtime: "SimRuntime | None" = None,
    batches: "list[np.ndarray] | None" = None,
) -> np.ndarray:
    """One Gauss–Seidel sweep updating ``h`` in place, in ``order``.

    Later updates observe earlier ones, which usually converges in fewer
    sweeps (the paper's Fig. 2 walkthrough updates in non-ascending degree
    order).  Returns ``h`` for convenience.

    The non-sanitized path no longer loops vertex by vertex: the order is
    pre-planned into maximal independent-set batches
    (:func:`~repro.kernels.frontier.gauss_seidel_batches`) and each batch
    is one vectorised segmented h-index computation.  Batch members are
    pairwise non-adjacent, so the simultaneous update is exactly the
    sequential one; callers running many sweeps can pass a precomputed
    ``batches`` plan to skip re-planning.

    This sweep is *intentionally* order-dependent — iterations read cells
    that earlier iterations wrote — so its sanitizer kernel carries the
    :func:`~repro.analysis.race.declare_order_dependent` annotation: under
    ``SimRuntime(sanitize=True)`` the read/write overlap is recorded in the
    loop report but not flagged as a race.
    """
    vertices = order if order is not None else np.arange(graph.num_vertices)
    if runtime is not None and runtime.sanitize:
        indptr, indices = graph.indptr, graph.indices

        @declare_order_dependent
        def gauss_seidel_body(i, h):
            v = int(vertices[i])
            h[v] = h_index(h[indices[indptr[v]:indptr[v + 1]]])

        runtime.observe_parfor(
            len(vertices), gauss_seidel_body, {"h": h}, label="inplace_sweep"
        )
        return h
    if batches is None:
        batches = gauss_seidel_batches(graph, order)
    for batch in batches:
        # Batch members are pairwise non-adjacent, so recomputing them
        # against the current ``h`` and writing back simultaneously is
        # exactly the sequential update — and safely range-splittable by
        # the parallel backends.
        h[batch] = hindex_sweep_values(graph, h, batch).astype(
            h.dtype, copy=False
        )
    return h


def degree_descending_order(graph: UndirectedGraph) -> np.ndarray:
    """Vertices sorted by non-ascending degree (stable), as in Example 1."""
    return np.argsort(-graph.degrees(), kind="stable")
