"""w-induced subgraphs and their decomposition (paper Section V-B).

Definitions 8–10: every directed edge (u, v) carries the weight
``d^+(u) * d^-(v)`` measured in the current subgraph; the *w-induced
subgraph* is the maximal subgraph whose every edge weight is >= w; an
edge's *induce-number* is the largest w for which a w-induced subgraph
contains it, and w* is the maximum induce-number.

Two engines are provided:

* :func:`wstar_subgraph` — the round-based parallel peeling of Algorithm 3
  specialised to what PWC needs (only the w*-induced subgraph, not every
  induce-number), including the paper's Remark: since
  ``w* >= d_max``, all edges with weight < d_max can be discarded before
  the main loop, which is what shrinks Twitter by ~50% in the first
  iteration (Table 7).
* :func:`winduced_decomposition` — an exact serial peeling that labels
  every edge with its induce-number (the directed analogue of core
  decomposition; used by tests, Table 3 reproduction, and the safe mode).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..errors import EmptyGraphError
from ..graph.directed import DirectedGraph
from ..kernels.segments import concat_ranges
from ..runtime.simruntime import SimRuntime

__all__ = [
    "edge_weights",
    "winduced_subgraph",
    "wstar_subgraph",
    "winduced_decomposition",
    "WStarResult",
]


def edge_weights(
    graph: DirectedGraph, edge_mask: np.ndarray | None = None
) -> np.ndarray:
    """Return the weight d^+(u) * d^-(v) of every edge (Definition 8).

    Degrees are measured within the subgraph selected by ``edge_mask``
    (default: the whole graph).  Entries for masked-out edges are 0.
    """
    src, dst = graph.edge_src, graph.edge_dst
    if edge_mask is None:
        dout = graph.out_degrees()
        din = graph.in_degrees()
        return dout[src] * din[dst]
    alive_src = src[edge_mask]
    alive_dst = dst[edge_mask]
    dout = np.bincount(alive_src, minlength=graph.num_vertices)
    din = np.bincount(alive_dst, minlength=graph.num_vertices)
    weights = np.zeros(graph.num_edges, dtype=np.int64)
    weights[edge_mask] = dout[alive_src] * din[alive_dst]
    return weights


def _touched_alive_edges(
    graph: DirectedGraph,
    alive: np.ndarray,
    touched_src: np.ndarray,
    touched_dst: np.ndarray,
) -> np.ndarray:
    """Alive edges whose weight may have changed after removing edges
    incident to ``touched_src`` (out-degree dropped) or ``touched_dst``
    (in-degree dropped): the alive out-edges of touched sources plus the
    alive in-edges of touched destinations."""
    out_starts = graph.out_indptr[touched_src]
    out_slots = concat_ranges(out_starts, graph.out_indptr[touched_src + 1] - out_starts)
    in_starts = graph.in_indptr[touched_dst]
    in_slots = concat_ranges(in_starts, graph.in_indptr[touched_dst + 1] - in_starts)
    candidates = np.unique(
        np.concatenate([graph.out_edge_ids[out_slots], graph.in_edge_ids[in_slots]])
    )
    return candidates[alive[candidates]]


def _cascade(
    graph: DirectedGraph,
    alive: np.ndarray,
    dout: np.ndarray,
    din: np.ndarray,
    threshold: int,
    strict: bool,
    runtime: SimRuntime | None,
    frontier: bool = True,
) -> int:
    """Remove edges with weight < threshold (strict) or <= threshold.

    Runs synchronous rounds to a fixpoint, mutating ``alive``/``dout``/
    ``din`` in place; returns the number of rounds executed.  Each round is
    one parallel sweep (Algorithm 3's inner while-loop body).

    With ``frontier=True`` (default) rounds after the first only re-check
    the edges adjacent to the previous round's removals — an edge weight
    ``d^+(u) * d^-(v)`` can only drop when an incident removal lowers one
    of its endpoint degrees, and weights only decrease, so an unchanged
    edge that once passed the threshold still passes it.  Removal sets and
    round counts are identical to the full re-scan; only the simulated
    parallel cost charged per round shrinks to the candidate set.
    """
    src, dst = graph.edge_src, graph.edge_dst
    rounds = 0
    remaining = int(np.count_nonzero(alive))
    candidates: np.ndarray | None = None  # None means "all alive edges".
    while True:
        if remaining == 0:
            return rounds
        if frontier and candidates is not None:
            cand_ids = candidates
        else:
            cand_ids = np.flatnonzero(alive)
        weights = dout[src[cand_ids]] * din[dst[cand_ids]]
        bad = weights < threshold if strict else weights <= threshold
        rounds += 1
        if runtime is not None:
            runtime.parfor(
                float(cand_ids.size), atomic_ops=int(np.count_nonzero(bad))
            )
        if not bad.any():
            return rounds
        dead_ids = cand_ids[bad]
        alive[dead_ids] = False
        remaining -= int(dead_ids.size)
        np.subtract.at(dout, src[dead_ids], 1)
        np.subtract.at(din, dst[dead_ids], 1)
        if frontier:
            candidates = _touched_alive_edges(
                graph, alive, np.unique(src[dead_ids]), np.unique(dst[dead_ids])
            )


def winduced_subgraph(
    graph: DirectedGraph,
    w: int,
    edge_mask: np.ndarray | None = None,
    runtime: SimRuntime | None = None,
    frontier: bool = True,
) -> np.ndarray:
    """Return the edge mask of the w-induced subgraph (Definition 9).

    Peels edges whose weight falls below ``w`` until none remain; the
    result may be empty.  The nested property (Proposition 3) — a larger w
    yields a subset — is property-tested.
    """
    alive = (
        np.ones(graph.num_edges, dtype=bool)
        if edge_mask is None
        else edge_mask.copy()
    )
    alive_src = graph.edge_src[alive]
    alive_dst = graph.edge_dst[alive]
    dout = np.bincount(alive_src, minlength=graph.num_vertices).astype(np.int64)
    din = np.bincount(alive_dst, minlength=graph.num_vertices).astype(np.int64)
    _cascade(
        graph, alive, dout, din, int(w), strict=True, runtime=runtime,
        frontier=frontier,
    )
    return alive


@dataclass
class WStarResult:
    """Outcome of the w*-induced subgraph computation (Algorithm 3)."""

    edge_mask: np.ndarray
    w_star: int
    rounds: int
    size_after_prune: int
    size_wstar: int
    level_sizes: list[tuple[int, int]] = field(default_factory=list)
    """(w level, alive-edge count at the start of that level) per level."""


def wstar_subgraph(
    graph: DirectedGraph,
    runtime: SimRuntime | None = None,
    start_at_dmax: bool = True,
    frontier: bool = True,
) -> WStarResult:
    """Compute the w*-induced subgraph by level-by-level edge peeling.

    The outer loop of Algorithm 3: at the start of every outer iteration
    the surviving graph *is* the w-induced subgraph for w = its minimum
    edge weight, so the last non-empty snapshot is the w*-induced subgraph.
    ``start_at_dmax`` applies the paper's Remark (w* >= d_max), discarding
    all edges with weight < d_max up front.
    """
    if graph.num_edges == 0:
        raise EmptyGraphError("w*-induced subgraph is undefined without edges")
    src, dst = graph.edge_src, graph.edge_dst
    alive = np.ones(graph.num_edges, dtype=bool)
    dout = graph.out_degrees().copy()
    din = graph.in_degrees().copy()
    rounds = 0
    if start_at_dmax:
        d_max = graph.max_degree()
        rounds += _cascade(
            graph, alive, dout, din, d_max, strict=True, runtime=runtime,
            frontier=frontier,
        )
    size_after_prune = int(np.count_nonzero(alive))

    snapshot = alive.copy()
    w_star = 0
    level_sizes: list[tuple[int, int]] = []
    while True:
        alive_ids = np.flatnonzero(alive)
        if alive_ids.size == 0:
            break
        weights = dout[src[alive_ids]] * din[dst[alive_ids]]
        if runtime is not None:
            runtime.parfor(float(alive_ids.size))  # min-weight reduction
        w_cur = int(weights.min())
        snapshot = alive.copy()
        w_star = w_cur
        level_sizes.append((w_cur, int(alive_ids.size)))
        rounds += _cascade(
            graph, alive, dout, din, w_cur, strict=False, runtime=runtime,
            frontier=frontier,
        )

    if w_star == 0:
        # Cannot happen on a non-empty simple digraph: every edge's weight
        # is at least 1, so at least one level executes.
        raise EmptyGraphError("input graph lost all edges before any level")
    return WStarResult(
        edge_mask=snapshot,
        w_star=w_star,
        rounds=rounds,
        size_after_prune=size_after_prune,
        size_wstar=int(np.count_nonzero(snapshot)),
        level_sizes=level_sizes,
    )


def winduced_decomposition(graph: DirectedGraph) -> tuple[np.ndarray, int]:
    """Label every edge with its induce-number; return ``(labels, w*)``.

    Exact serial peeling in the style of core decomposition: always remove
    a minimum-weight edge, assigning it the running maximum of the minimum
    weights seen so far (Definition 10; reproduces paper Table 3).  Uses a
    lazy-decrease binary heap, so it is intended for the moderate graph
    sizes used in tests and the safe extraction path — the scalable
    round-based engine is :func:`wstar_subgraph`.
    """
    m = graph.num_edges
    induce = np.zeros(m, dtype=np.int64)
    if m == 0:
        return induce, 0
    src, dst = graph.edge_src, graph.edge_dst
    dout = graph.out_degrees().copy()
    din = graph.in_degrees().copy()
    alive = np.ones(m, dtype=bool)
    heap: list[tuple[int, int]] = [
        (int(dout[src[e]] * din[dst[e]]), e) for e in range(m)
    ]
    heapq.heapify(heap)
    running_w = 0
    remaining = m
    while remaining:
        weight, edge = heapq.heappop(heap)
        if not alive[edge]:
            continue
        current = int(dout[src[edge]] * din[dst[edge]])
        if current != weight:
            # Stale entry: a fresher (smaller) one was pushed on decrease.
            continue
        running_w = max(running_w, current)
        induce[edge] = running_w
        alive[edge] = False
        remaining -= 1
        u, v = int(src[edge]), int(dst[edge])
        dout[u] -= 1
        din[v] -= 1
        # Push refreshed weights for every alive edge whose weight dropped.
        for slot in range(graph.out_indptr[u], graph.out_indptr[u + 1]):
            other = int(graph.out_edge_ids[slot])
            if alive[other]:
                heapq.heappush(
                    heap, (int(dout[u] * din[graph.out_indices[slot]]), other)
                )
        for slot in range(graph.in_indptr[v], graph.in_indptr[v + 1]):
            other = int(graph.in_edge_ids[slot])
            if alive[other]:
                heapq.heappush(
                    heap, (int(dout[graph.in_indices[slot]] * din[v]), other)
                )
    return induce, running_w
