"""Dynamic k*-core maintenance under edge insertions and deletions.

The paper's intro applications (fraud detection, community tracking) are
streaming by nature, and its related work cites fully-dynamic densest
subgraph (Sawlani & Wang).  This module provides the h-index-flavoured
dynamic counterpart of PKMC: a maintained vertex array h that always
upper-bounds the core numbers, re-converged lazily by warm-started sweeps.

Correctness rests on two standard facts the static tests already verify:

* the synchronous h-index sweep converges to the core numbers from *any*
  pointwise upper bound of them (monotone decreasing);
* a single edge insertion raises any core number by at most 1, and a
  deletion never raises one.

So after applying a batch of B insertions, ``old_h + B`` (bumped only in
the region an insertion can lift, clipped to the new degrees) is a valid
warm start; after deletions, ``old_h`` already is.

A practical caveat this module documents honestly: a +-1-tight warm
start does *not* shorten the sweep count in the worst case — a +1
plateau is locally self-consistent and erodes only from its boundary,
one hop per sweep, just like cold convergence.  The structure's real
value is *lazy, batched* maintenance: arbitrarily many mutations cost
nothing until the next query, which then pays one re-convergence for the
whole batch instead of one per edge (see
``tests/core/test_dynamic.py::test_batching_amortises_refreshes``).
"""

from __future__ import annotations

import numpy as np

from ..errors import EmptyGraphError, GraphError
from ..graph.undirected import UndirectedGraph
from ..kernels.density import induced_density
from ..kernels.frontier import frontier_synchronous_sweep
from .results import UDSResult

__all__ = ["DynamicKStarCore"]


class DynamicKStarCore:
    """Maintains core numbers (and the k*-core) of an evolving graph."""

    def __init__(self, num_vertices: int):
        if num_vertices < 1:
            raise GraphError("num_vertices must be positive")
        self._num_vertices = num_vertices
        self._edge_set: set[tuple[int, int]] = set()
        self._graph = UndirectedGraph.empty(num_vertices)
        self._h = np.zeros(num_vertices, dtype=np.int64)
        self._dirty_insertions = 0
        self._insertion_floor: int | None = None
        self._dirty = False
        self.total_sweeps = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _canonical(self, u: int, v: int) -> tuple[int, int]:
        if not (0 <= u < self._num_vertices and 0 <= v < self._num_vertices):
            raise GraphError("endpoint out of range")
        if u == v:
            raise GraphError("self-loops are not allowed")
        return (u, v) if u < v else (v, u)

    def insert_edge(self, u: int, v: int) -> bool:
        """Add edge {u, v}; return False if it was already present."""
        key = self._canonical(u, v)
        if key in self._edge_set:
            return False
        self._edge_set.add(key)
        self._dirty_insertions += 1
        # Standard localisation: an insertion can only raise the core
        # numbers of vertices whose current core is >= min(core(u), core(v)).
        threshold = int(min(self._h[key[0]], self._h[key[1]]))
        if self._insertion_floor is None:
            self._insertion_floor = threshold
        else:
            self._insertion_floor = min(self._insertion_floor, threshold)
        self._dirty = True
        return True

    def delete_edge(self, u: int, v: int) -> bool:
        """Remove edge {u, v}; return False if it was absent."""
        key = self._canonical(u, v)
        if key not in self._edge_set:
            return False
        self._edge_set.remove(key)
        self._dirty = True
        return True

    def insert_edges(self, edges) -> int:
        """Bulk insert; return how many edges were new."""
        return sum(1 for u, v in edges if self.insert_edge(int(u), int(v)))

    # ------------------------------------------------------------------
    # Re-convergence
    # ------------------------------------------------------------------
    def _refresh(self) -> None:
        if not self._dirty:
            return
        edges = np.array(sorted(self._edge_set), dtype=np.int64).reshape(-1, 2)
        self._graph = UndirectedGraph.from_edges(self._num_vertices, edges)
        degrees = self._graph.degrees()
        # Warm start: old h plus the insertion budget, but only for the
        # vertices an insertion can actually lift (core >= the smallest
        # endpoint core among the inserted edges); clipped by the new
        # degrees, which are always upper bounds themselves.
        bump = np.zeros(self._num_vertices, dtype=np.int64)
        if self._dirty_insertions:
            floor = self._insertion_floor or 0
            bump[self._h >= floor] = self._dirty_insertions
        warm = np.minimum(self._h + bump, degrees)
        h = np.maximum(warm, 0)
        # Frontier re-convergence: after the first full sweep only the
        # neighbourhood of the still-moving region is recomputed, which is
        # exactly the locality a warm start buys.
        active = None
        while True:
            h, active = frontier_synchronous_sweep(self._graph, h, frontier=active)
            self.total_sweeps += 1
            if active.size == 0:
                break
        self._h = h
        self._dirty = False
        self._dirty_insertions = 0
        self._insertion_floor = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Current number of edges."""
        return len(self._edge_set)

    def graph(self) -> UndirectedGraph:
        """The current graph (rebuilt lazily)."""
        self._refresh()
        return self._graph

    def core_numbers(self) -> np.ndarray:
        """Current core numbers (a copy)."""
        self._refresh()
        return self._h.copy()

    def k_star(self) -> int:
        """Current maximum core number."""
        self._refresh()
        return int(self._h.max(initial=0))

    def densest_subgraph(self) -> UDSResult:
        """Current k*-core as a 2-approximate densest subgraph."""
        self._refresh()
        if self.num_edges == 0:
            raise EmptyGraphError("UDS is undefined on a graph without edges")
        k_star = int(self._h.max())
        vertices = np.flatnonzero(self._h == k_star)
        density = induced_density(self._graph, vertices)
        return UDSResult(
            algorithm="DynamicK*Core",
            vertices=vertices,
            density=density,
            k_star=k_star,
            iterations=self.total_sweeps,
        )
