"""Dynamic k*-core maintenance under edge insertions and deletions.

The paper's intro applications (fraud detection, community tracking) are
streaming by nature, and its related work cites fully-dynamic densest
subgraph (Sawlani & Wang).  This module provides the h-index-flavoured
dynamic counterpart of PKMC: a maintained vertex array h that always
equals the core numbers between refreshes, re-converged lazily after
each batch of mutations — *locally* when the affected region is small,
by a full rebuild otherwise.

The incremental path replays the pending batch one update at a time
against the exact fixed point, using two standard localization facts
(Sarıyüce et al., "Local Algorithms for Hierarchical Dense Subgraph
Discovery"; see ``docs/streaming.md`` for the full argument):

* **no-change test** — h *is* the core array iff it is the fixed point
  of the neighbourhood h-index operator; one update only changes the
  two endpoint rows, so if both endpoints' recomputed h-indices are
  unchanged, h is still exact and the update costs O(deg).
* **subcore region** — an update of edge (u, v) with
  ``r = min(h[u], h[v])`` can only change core numbers of vertices with
  ``h == r`` reachable from the endpoints through vertices with
  ``h == r`` (an insertion raises them by at most 1, a deletion lowers
  by at most 1).  The affected region is that BFS closure plus the
  endpoints; a *min-clamped* Gauss–Seidel sweep over just that region
  (boundary values frozen at the old fixed point) terminates at the
  exact new core numbers.

A refresh falls back to the historical full rebuild when the batch or
any region exceeds ``region_fraction * n`` — the fallback keeps
worst-case cost at the rebuild-per-batch baseline.  Adjacency is kept
as an *overlay* (per-vertex added / deleted neighbour sets) over the
last materialized CSR, compacted amortizedly, so small batches never
pay an O(m) CSR rebuild.

Lint rule R015 keeps these internals (``_edge_set``/``_h``/overlay)
private to ``repro/core/`` and ``repro/stream/``.
"""

from __future__ import annotations

import numpy as np

from ..errors import EmptyGraphError, GraphError, StreamMutationError
from ..graph.undirected import UndirectedGraph
from ..kernels.density import induced_density
from ..kernels.frontier import frontier_synchronous_sweep
from ..kernels.segments import concat_ranges
from .results import UDSResult

__all__ = ["DynamicKStarCore"]

_EMPTY_EDGES = np.empty((0, 2), dtype=np.int64)

# Regions at or below this size re-converge through a scalar worklist
# instead of the vectorised local-subgraph sweep: typical single-update
# regions are a handful of vertices (often just the endpoints), where
# per-call array overhead dominates any vectorisation win.
_SCALAR_REGION = 64


class DynamicKStarCore:
    """Maintains core numbers (and the k*-core) of an evolving graph.

    ``incremental=False`` forces the historical rebuild-per-refresh
    behaviour (the bench baseline); by default a refresh replays the
    pending updates through the localized path and only falls back to a
    rebuild when an affected region exceeds ``region_fraction`` of the
    vertex set.  ``overlay_fraction`` bounds the adjacency overlay
    relative to the base CSR before it is compacted.
    """

    def __init__(
        self,
        num_vertices: int,
        *,
        incremental: bool = True,
        region_fraction: float = 0.25,
        overlay_fraction: float = 0.5,
    ):
        if num_vertices < 1:
            raise GraphError("num_vertices must be positive")
        if not 0.0 < region_fraction <= 1.0:
            raise GraphError("region_fraction must be in (0, 1]")
        if not 0.0 < overlay_fraction:
            raise GraphError("overlay_fraction must be positive")
        self._num_vertices = num_vertices
        self._incremental = incremental
        self._region_fraction = region_fraction
        self._overlay_fraction = overlay_fraction
        self._edge_set: set[tuple[int, int]] = set()
        # Adjacency at the last *converged* state = base CSR patched by a
        # symmetric overlay of added / deleted neighbour sets (each edge
        # recorded under both endpoints); ``_overlay_edges`` counts
        # canonical overlay edges.  Pending mutations are applied to the
        # overlay during refresh replay, not at mutation time.
        self._base_graph = UndirectedGraph.empty(num_vertices)
        self._ov_add: dict[int, set[int]] = {}
        self._ov_del: dict[int, set[int]] = {}
        self._overlay_edges = 0
        # Net mutations since the last converged fixed point: +1 for an
        # inserted edge, -1 for a deleted one; a revert cancels the entry,
        # so insert-then-delete of the same edge leaves nothing dirty.
        self._pending: dict[tuple[int, int], int] = {}
        self._h = np.zeros(num_vertices, dtype=np.int64)
        self._dirty = False
        self.total_sweeps = 0
        self.updates_applied = 0
        self.rebuilds = 0
        self.incremental_refreshes = 0
        self.affected_last = 0
        self.affected_total = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _canonical(self, u: int, v: int) -> tuple[int, int]:
        u, v = int(u), int(v)
        n = self._num_vertices
        if not (0 <= u < n and 0 <= v < n):
            raise StreamMutationError(
                f"edge ({u}, {v}): endpoint out of range for a graph "
                f"with {n} vertices"
            )
        if u == v:
            raise StreamMutationError(
                f"edge ({u}, {v}): self-loops are not allowed"
            )
        return (u, v) if u < v else (v, u)

    def _apply(self, key: tuple[int, int], op: int) -> bool:
        present = key in self._edge_set
        if op > 0:
            if present:
                return False
            self._edge_set.add(key)
        else:
            if not present:
                return False
            self._edge_set.remove(key)
        if self._pending.pop(key, None) is None:
            self._pending[key] = op
        self._dirty = bool(self._pending)
        self.updates_applied += 1
        return True

    def insert_edge(self, u: int, v: int) -> bool:
        """Add edge {u, v}; return False if it was already present."""
        return self._apply(self._canonical(u, v), +1)

    def delete_edge(self, u: int, v: int) -> bool:
        """Remove edge {u, v}; return False if it was absent."""
        return self._apply(self._canonical(u, v), -1)

    def insert_edges(self, edges) -> int:
        """Bulk insert; return how many edges were new.

        The whole batch is validated before any edge is applied, so a
        malformed row (:class:`~repro.errors.StreamMutationError`) leaves
        the edge set untouched.  An empty batch is a no-op and does not
        dirty the structure (nor change the graph fingerprint).
        """
        keys = [self._canonical(u, v) for u, v in edges]
        return sum(1 for key in keys if self._apply(key, +1))

    def delete_edges(self, edges) -> int:
        """Bulk delete; return how many edges were actually removed.

        The batching counterpart of :meth:`insert_edges`, with the same
        validate-everything-first contract; deleting an absent edge is a
        counted-out no-op, not an error.
        """
        keys = [self._canonical(u, v) for u, v in edges]
        return sum(1 for key in keys if self._apply(key, -1))

    # ------------------------------------------------------------------
    # Overlay adjacency (state: last converged graph + replayed updates)
    # ------------------------------------------------------------------
    def _overlay_apply(self, key: tuple[int, int], op: int) -> None:
        """Replay one pending mutation into the symmetric overlay."""
        u, v = key
        if op > 0:
            if v in self._ov_del.get(u, ()):  # re-adding a base edge
                self._ov_del[u].discard(v)
                self._ov_del[v].discard(u)
                self._overlay_edges -= 1
            else:
                self._ov_add.setdefault(u, set()).add(v)
                self._ov_add.setdefault(v, set()).add(u)
                self._overlay_edges += 1
        else:
            if v in self._ov_add.get(u, ()):  # deleting a never-built edge
                self._ov_add[u].discard(v)
                self._ov_add[v].discard(u)
                self._overlay_edges -= 1
            else:
                self._ov_del.setdefault(u, set()).add(v)
                self._ov_del.setdefault(v, set()).add(u)
                self._overlay_edges += 1

    def _materialize(self) -> UndirectedGraph:
        """Fold the (fully replayed) overlay into a fresh CSR."""
        if self._overlay_edges:
            edges = (
                np.array(sorted(self._edge_set), dtype=np.int64).reshape(-1, 2)
                if self._edge_set
                else _EMPTY_EDGES
            )
            self._base_graph = UndirectedGraph.from_edges(
                self._num_vertices, edges
            )
            self._ov_add.clear()
            self._ov_del.clear()
            self._overlay_edges = 0
        return self._base_graph

    def _current_neighbors(self, v: int) -> np.ndarray:
        """Neighbour ids of ``v`` in the replayed state (base + overlay)."""
        nbrs = self._base_graph.neighbors(v)
        dels = self._ov_del.get(v)
        if dels:
            nbrs = nbrs[~np.isin(nbrs, np.fromiter(dels, np.int64))]
        adds = self._ov_add.get(v)
        if adds:
            nbrs = np.concatenate(
                [np.asarray(nbrs, dtype=np.int64),
                 np.fromiter(adds, np.int64)]
            )
        return np.asarray(nbrs, dtype=np.int64)

    # ------------------------------------------------------------------
    # Re-convergence
    # ------------------------------------------------------------------
    def _refresh(self) -> None:
        if not self._dirty:
            return
        if self._incremental:
            self._refresh_incremental()
        else:
            self._refresh_rebuild()
        self._dirty = False

    def _refresh_rebuild(self, extra_insertions: list | None = None) -> None:
        """Full rebuild + warm-started global re-convergence (fallback).

        Replays whatever is still pending into the overlay first, so it
        is also the mid-batch fallback target of the incremental path;
        ``extra_insertions`` carries an already-replayed in-flight
        insertion whose warm-start bump must still be accounted for.
        """
        insertions = [key for key, op in self._pending.items() if op > 0]
        insertions.extend(extra_insertions or ())
        for key, op in self._pending.items():
            self._overlay_apply(key, op)
        self._pending.clear()
        graph = self._materialize()
        degrees = graph.degrees()
        # Warm start: old h plus the insertion budget, but only for the
        # vertices an insertion can actually lift (core >= the smallest
        # endpoint core among the inserted edges); clipped by the new
        # degrees, which are always upper bounds themselves.
        bump = np.zeros(self._num_vertices, dtype=np.int64)
        if insertions:
            floor = min(
                int(min(self._h[u], self._h[v])) for u, v in insertions
            )
            bump[self._h >= floor] = len(insertions)
        warm = np.minimum(self._h + bump, degrees)
        h = np.maximum(warm, 0)
        active = None
        while True:
            # Clamped: the warm state is an upper bound but not the
            # degrees, and the decrease-only frontier tracking needs the
            # iteration monotone (docs/streaming.md).
            h, active = frontier_synchronous_sweep(
                graph, h, frontier=active, clamp=True
            )
            self.total_sweeps += 1
            if active.size == 0:
                break
        self._h = h
        self.rebuilds += 1
        self.affected_last = self._num_vertices
        self.affected_total += self._num_vertices

    def _refresh_incremental(self) -> None:
        """Replay the pending batch update-at-a-time, locally.

        Each update sees the exact fixed point left by the previous one,
        so the single-update localization theorems apply directly — no
        batch slack needed.  Falls back to :meth:`_refresh_rebuild` (for
        the *remaining* updates) as soon as a region overflows the
        configured fraction of n, keeping the worst case at the
        rebuild-per-batch baseline.
        """
        max_region = max(1, int(self._region_fraction * self._num_vertices))
        if len(self._pending) > max_region:
            # A batch touching more endpoints than the whole region
            # budget: localization cannot pay for itself, rebuild once.
            self._refresh_rebuild()
            return
        if self._overlay_edges + len(self._pending) > max(
            256, int(self._overlay_fraction * self._base_graph.num_edges)
        ):
            # Amortized compaction: fold the *converged* adjacency before
            # overlay patching starts to dominate per-vertex reads.
            self._compact_overlay()
        affected = 0
        for key, op in list(self._pending.items()):
            del self._pending[key]
            self._overlay_apply(key, op)
            size = self._maintain_one(key, op, max_region)
            if size is None:
                self._refresh_rebuild(
                    extra_insertions=[key] if op > 0 else None
                )
                return
            affected += size
        self.incremental_refreshes += 1
        self.affected_last = affected
        self.affected_total += affected

    def _compact_overlay(self) -> None:
        """Rebuild the base CSR at the *converged* state (pending unreplayed).

        ``_edge_set`` already holds the final edge set, so the converged
        set is recovered by undoing the net pending ops.
        """
        edges = set(self._edge_set)
        for key, op in self._pending.items():
            if op > 0:
                edges.discard(key)
            else:
                edges.add(key)
        arr = (
            np.array(sorted(edges), dtype=np.int64).reshape(-1, 2)
            if edges
            else _EMPTY_EDGES
        )
        self._base_graph = UndirectedGraph.from_edges(self._num_vertices, arr)
        self._ov_add.clear()
        self._ov_del.clear()
        self._overlay_edges = 0

    def _endpoint_unchanged(self, x: int) -> bool:
        """Exact O(deg) test: is ``h[x]`` still x's recomputed h-index?

        Used on *deletions* only: there h stays a pointwise upper bound
        on the new cores, and only the two endpoint rows changed, so if
        both endpoints pass, h is still a fixed point of the h-index
        operator — hence at most the new cores — while also being at
        least them: h is still exact, no sweep needed.  (The same test
        is *not* sound for insertions: the stale h can be a smaller
        fixed point than the risen core array.)
        """
        hx = int(self._h[x])
        nbrs = self._current_neighbors(x)
        values = self._h[nbrs]
        if int((values >= hx).sum()) < hx:
            return False  # h-index dropped below hx
        if hx < nbrs.size and int((values >= hx + 1).sum()) >= hx + 1:
            return False  # h-index rose above hx
        return True

    def _insert_potential(self, x: int, r: int) -> bool:
        """Can ``x`` (with ``h == r``) possibly rise after an insertion?

        A riser needs at least ``r + 1`` neighbours whose *new* core is
        at least ``r + 1``; cores rise by at most one, so those
        neighbours all have old core at least ``r``.  Counting
        ``h >= r`` neighbours is therefore a sound O(deg) refutation.
        """
        values = self._h[self._current_neighbors(x)]
        return int((values >= r).sum()) >= r + 1

    def _potential_many(self, cand: np.ndarray, r: int) -> np.ndarray:
        """Vectorised :meth:`_insert_potential` over a candidate batch."""
        h = self._h
        base = self._base_graph
        degs = base.degrees()[cand]
        slots = concat_ranges(base.indptr[cand], degs)
        ok = (h[base.indices[slots]] >= r).astype(np.int64)
        csum = np.concatenate([[0], np.cumsum(ok)])
        ends = np.cumsum(degs)
        counts = csum[ends] - csum[ends - degs]
        if self._ov_add or self._ov_del:
            for i, c in enumerate(cand):
                c = int(c)
                adds = self._ov_add.get(c)
                if adds:
                    counts[i] += sum(1 for w in adds if h[w] >= r)
                dels = self._ov_del.get(c)
                if dels:
                    counts[i] -= sum(1 for w in dels if h[w] >= r)
        return counts >= r + 1

    def _subcore_closure(
        self, seeds: list[int], r: int, max_region: int, potential: bool
    ) -> np.ndarray | None:
        """Vertices with ``h == r`` reachable from ``seeds`` via ``h == r``.

        The classical single-update affected-region bound: changed
        vertices form a connected set of ``h == r`` vertices containing
        an endpoint whose row changed, so only this closure needs to be
        re-converged.  With ``potential=True`` (insertions) the walk is
        further restricted to vertices that pass
        :meth:`_insert_potential` — risers all do, and the restriction
        is what keeps regions small when a graph has one dominant core
        value.  Level-synchronised over the base CSR with the overlay
        patched in; returns None as soon as the region exceeds
        ``max_region``.
        """
        h = self._h
        n = self._num_vertices
        base = self._base_graph
        indptr, indices, degrees = base.indptr, base.indices, base.degrees()
        visited = np.zeros(n, dtype=bool)
        rejected = np.zeros(n, dtype=bool)
        frontier = np.fromiter(seeds, np.int64)
        visited[frontier] = True
        count = int(frontier.size)
        while frontier.size:
            if count > max_region:
                return None
            parts = [indices[concat_ranges(indptr[frontier], degrees[frontier])]]
            for x in frontier:
                adds = self._ov_add.get(int(x))
                if adds:
                    parts.append(np.fromiter(adds, np.int64))
            mask = np.zeros(n, dtype=bool)
            mask[np.concatenate(parts)] = True
            mask &= (h == r) & ~visited & ~rejected
            cand = np.flatnonzero(mask)
            if potential and cand.size:
                keep = self._potential_many(cand, r)
                rejected[cand[~keep]] = True
                cand = cand[keep]
            visited[cand] = True
            frontier = cand
            count += int(cand.size)
        # The walk ignores overlay deletions when expanding (a superset
        # of the true adjacency — sound, it can only enlarge the region).
        if count > max_region:
            return None
        return np.flatnonzero(visited)

    def _converge_scalar(self, region: np.ndarray, r: int, op: int) -> int:
        """Clamped Gauss–Seidel over a small region, scalar worklist style.

        Works directly against the global h array (region neighbours see
        each other's fresh values; everything outside the region is
        frozen boundary), so it needs no local subgraph.  Same clamp
        semantics — every change is a decrease from an upper bound — so
        the same exactness argument applies (docs/streaming.md).

        Per pop, the common no-change case is decided by one vectorised
        count (at least ``h[x]`` neighbour values ``>= h[x]`` means the
        clamped recompute is the identity); the sort-free clipped
        histogram h-index only runs on actual decreases.
        """
        h = self._h
        members = set(int(x) for x in region)
        nbr_cache: dict[int, np.ndarray] = {}

        def nbrs_of(x: int) -> np.ndarray:
            arr = nbr_cache.get(x)
            if arr is None:
                arr = self._current_neighbors(x)
                nbr_cache[x] = arr
            return arr

        if op > 0:
            h[region] += h[region] == r
        for x in region:
            x = int(x)
            degree = nbrs_of(x).size
            if h[x] > degree:
                h[x] = degree
        pending = list(members)
        in_list = set(pending)
        while pending:
            x = pending.pop()
            in_list.discard(x)
            nbrs = nbrs_of(x)
            values = h[nbrs]
            hx = int(h[x])
            if int((values >= hx).sum()) >= hx:
                continue  # min(hx, recomputed h-index) == hx
            counts = np.bincount(
                np.minimum(values, hx), minlength=hx + 1
            )
            suffix = np.cumsum(counts[::-1])[::-1]
            ks = np.arange(hx + 1)
            h[x] = int(ks[suffix >= ks].max())
            for w in nbrs:
                w = int(w)
                if w in members and w not in in_list:
                    pending.append(w)
                    in_list.add(w)
        self.total_sweeps += 1
        return int(region.size)

    def _maintain_one(
        self, key: tuple[int, int], op: int, max_region: int
    ) -> int | None:
        """Re-converge h after one replayed update; return region size.

        0 when the fast no-change test certifies h is still exact; None
        when the region overflows ``max_region`` (caller falls back to a
        rebuild — h is untouched in that case).
        """
        u, v = key
        h = self._h
        r = int(min(h[u], h[v]))
        if op > 0:
            # Cores rise only if triggered through a root endpoint that
            # can itself rise; a root that cannot certifies no change.
            seeds = [
                x for x in dict.fromkeys((u, v))
                if h[x] == r and self._insert_potential(x, r)
            ]
            if not seeds:
                return 0
        else:
            if self._endpoint_unchanged(u) and self._endpoint_unchanged(v):
                return 0
            seeds = [x for x in dict.fromkeys((u, v)) if h[x] == r]
        region = self._subcore_closure(seeds, r, max_region, op > 0)
        if region is None:
            return None
        if region.size <= _SCALAR_REGION:
            return self._converge_scalar(region, r, op)
        k = int(region.size)
        # Local subgraph: every current edge incident to the region,
        # relabelled; boundary neighbours come along as extra vertices
        # whose h stays frozen at the old fixed point.
        n = self._num_vertices
        indptr = self._base_graph.indptr
        indices = self._base_graph.indices
        degrees = self._base_graph.degrees()
        slots = concat_ranges(indptr[region], degrees[region])
        base_tails = np.asarray(indices[slots], dtype=np.int64)
        base_heads = np.repeat(region, degrees[region]).astype(np.int64)
        pair_heads: list[np.ndarray] = []
        pair_tails: list[np.ndarray] = []
        drop_keys: list[int] = []
        for x in region:
            x = int(x)
            dels = self._ov_del.get(x)
            if dels:
                drop_keys.extend(x * n + w for w in dels)
            adds = self._ov_add.get(x)
            if adds:
                added = np.fromiter(adds, np.int64)
                pair_heads.append(np.full(added.size, x, dtype=np.int64))
                pair_tails.append(added)
        if drop_keys:
            keep = ~np.isin(
                base_heads * n + base_tails,
                np.array(drop_keys, dtype=np.int64),
            )
            base_heads, base_tails = base_heads[keep], base_tails[keep]
        pair_heads.append(base_heads)
        pair_tails.append(base_tails)
        heads = np.concatenate(pair_heads)
        tails = np.concatenate(pair_tails)
        local_id = np.full(n, -1, dtype=np.int64)
        local_id[region] = np.arange(k, dtype=np.int64)
        boundary = np.unique(tails[local_id[tails] < 0])
        local_id[boundary] = k + np.arange(boundary.size, dtype=np.int64)
        local_n = k + int(boundary.size)
        local_graph = UndirectedGraph.from_edges(
            local_n, np.stack([local_id[heads], local_id[tails]], axis=1)
        )
        h_local = np.concatenate([h[region], h[boundary]])
        if op > 0:
            # Insertion: only subcore members (h == r) can rise, by one.
            h_local[:k] = h_local[:k] + (h_local[:k] == r)
        h_local[:k] = np.minimum(h_local[:k], local_graph.degrees()[:k])
        # Min-clamped Jacobi over the region only: clamping makes every
        # change a decrease (guaranteeing termination and completeness
        # of the decrease-only frontier), and with the region a superset
        # of all core changes the final state is the exact new core
        # array — see docs/streaming.md for the argument.  Jacobi rather
        # than Gauss–Seidel batches: dense local subgraphs degenerate
        # the independent-set batching into per-vertex calls.
        active = np.arange(k, dtype=np.int64)
        while active.size:
            h_local, nxt = frontier_synchronous_sweep(
                local_graph, h_local, frontier=active, clamp=True
            )
            self.total_sweeps += 1
            active = nxt[nxt < k]  # boundary values stay frozen
        self._h[region] = h_local[:k]
        return k

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Current number of edges."""
        return len(self._edge_set)

    @property
    def num_vertices(self) -> int:
        """Number of vertices (fixed at construction)."""
        return self._num_vertices

    def graph(self) -> UndirectedGraph:
        """The current graph (overlay folded into a CSR lazily)."""
        self._refresh()
        return self._materialize()

    def core_numbers(self) -> np.ndarray:
        """Current core numbers (a copy)."""
        self._refresh()
        return self._h.copy()

    def k_star(self) -> int:
        """Current maximum core number."""
        self._refresh()
        return int(self._h.max(initial=0))

    def _induced_edges_now(self, vertices: np.ndarray) -> int:
        """Edge count inside ``vertices`` under base CSR plus overlay."""
        member = np.zeros(self._num_vertices, dtype=bool)
        member[vertices] = True
        indptr = self._base_graph.indptr
        degrees = self._base_graph.degrees()
        slots = concat_ranges(indptr[vertices], degrees[vertices])
        twice = int(member[self._base_graph.indices[slots]].sum())
        count = twice // 2
        for u, adds in self._ov_add.items():
            if member[u]:
                count += sum(1 for w in adds if u < w and member[w])
        for u, dels in self._ov_del.items():
            if member[u]:
                count -= sum(1 for w in dels if u < w and member[w])
        return count

    def densest_subgraph(self) -> UDSResult:
        """Current k*-core as a 2-approximate densest subgraph.

        Warm-started end to end: the refresh is localized when possible
        and the density of the answer set is counted against the overlay
        without materializing a CSR — bit-identical to
        :func:`~repro.kernels.density.induced_density` on the rebuilt
        graph (same integer count, same division).
        """
        self._refresh()
        if self.num_edges == 0:
            raise EmptyGraphError("UDS is undefined on a graph without edges")
        k_star = int(self._h.max())
        vertices = np.flatnonzero(self._h == k_star)
        if self._overlay_edges:
            density = self._induced_edges_now(vertices) / vertices.size
        else:
            density = induced_density(self._base_graph, vertices)
        return UDSResult(
            algorithm="DynamicK*Core",
            vertices=vertices,
            density=density,
            k_star=k_star,
            iterations=self.total_sweeps,
        )

    def stats(self) -> dict[str, int]:
        """Maintenance counters for reports and the streaming bench."""
        return {
            "updates_applied": self.updates_applied,
            "rebuilds": self.rebuilds,
            "incremental_refreshes": self.incremental_refreshes,
            "affected_last": self.affected_last,
            "affected_total": self.affected_total,
            "total_sweeps": self.total_sweeps,
        }
