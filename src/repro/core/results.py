"""Result types returned by every UDS / DDS solver in the library.

All algorithms — the paper's PKMC/PWC and every baseline — return these
same two dataclasses so the benchmark harness, tests, and examples can
treat them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.report import RunReport

__all__ = ["UDSResult", "DDSResult"]


@dataclass
class UDSResult:
    """Outcome of an undirected densest-subgraph computation.

    ``vertices`` hold the ids of the returned subgraph (for k-core based
    algorithms: the k*-core), ``density`` its |E|/|V| density.  ``k_star``
    is filled by core-based algorithms; ``iterations`` counts the
    algorithm's outer iterations (the quantity of paper Table 6);
    ``simulated_seconds`` is the SimRuntime clock if one was supplied.
    ``report`` is the structured :class:`~repro.engine.report.RunReport`
    attached by :func:`repro.engine.run` (None for direct solver calls).
    """

    algorithm: str
    vertices: np.ndarray
    density: float
    iterations: int = 0
    k_star: int | None = None
    simulated_seconds: float = 0.0
    extras: dict[str, Any] = field(default_factory=dict)
    report: "RunReport | None" = None

    @property
    def num_vertices(self) -> int:
        """Size of the returned vertex set."""
        return int(np.asarray(self.vertices).size)

    def __repr__(self) -> str:
        core = f", k*={self.k_star}" if self.k_star is not None else ""
        return (
            f"UDSResult({self.algorithm}: |S|={self.num_vertices}, "
            f"rho={self.density:.4f}{core}, iters={self.iterations})"
        )


@dataclass
class DDSResult:
    """Outcome of a directed densest-subgraph computation.

    ``s`` and ``t`` are the two (not necessarily disjoint) vertex sets;
    ``density`` is |E(S,T)| / sqrt(|S||T|).  Core-based algorithms fill the
    maximum cn-pair ``(x, y)`` and PWC additionally reports ``w_star``.
    ``report`` is the structured :class:`~repro.engine.report.RunReport`
    attached by :func:`repro.engine.run` (None for direct solver calls).
    """

    algorithm: str
    s: np.ndarray
    t: np.ndarray
    density: float
    x: int | None = None
    y: int | None = None
    w_star: int | None = None
    iterations: int = 0
    simulated_seconds: float = 0.0
    extras: dict[str, Any] = field(default_factory=dict)
    report: "RunReport | None" = None

    @property
    def s_size(self) -> int:
        """|S| of the returned pair."""
        return int(np.asarray(self.s).size)

    @property
    def t_size(self) -> int:
        """|T| of the returned pair."""
        return int(np.asarray(self.t).size)

    def __repr__(self) -> str:
        pair = f", [x,y]=[{self.x},{self.y}]" if self.x is not None else ""
        wstar = f", w*={self.w_star}" if self.w_star is not None else ""
        return (
            f"DDSResult({self.algorithm}: |S|={self.s_size}, |T|={self.t_size}, "
            f"rho={self.density:.4f}{pair}{wstar})"
        )
