"""Graph substrate: CSR graphs, builders, I/O, generators, peeling state.

This package is self-contained — every other subsystem (the core PKMC/PWC
algorithms, all baselines, the benchmark harness) builds on these types and
nothing here depends on anything outside :mod:`repro.errors`.
"""

from .builder import DirectedGraphBuilder, GraphBuilder
from .components import (
    component_of_vertices,
    connected_components,
    densest_component,
    weakly_connected_components,
)
from .directed import DirectedGraph
from .generators import (
    chung_lu_directed,
    chung_lu_undirected,
    gnm_random_directed,
    gnm_random_undirected,
    planted_dense_subgraph,
    planted_st_subgraph,
    powerlaw_weights,
)
from .io import (
    edgelist_from_string,
    load_npz,
    read_directed_edgelist,
    read_undirected_edgelist,
    save_npz,
    write_edgelist,
)
from .peeling import DirectedPeelState, MinDegreeBucketQueue, VertexPeelState
from .sampling import DEFAULT_FRACTIONS, edge_fraction_series, sample_edges
from .stats import (
    DirectedGraphSummary,
    GraphSummary,
    degree_histogram,
    powerlaw_exponent_estimate,
    summarize,
    summarize_directed,
)
from .undirected import UndirectedGraph

__all__ = [
    "UndirectedGraph",
    "DirectedGraph",
    "connected_components",
    "component_of_vertices",
    "densest_component",
    "weakly_connected_components",
    "GraphBuilder",
    "DirectedGraphBuilder",
    "MinDegreeBucketQueue",
    "VertexPeelState",
    "DirectedPeelState",
    "read_undirected_edgelist",
    "read_directed_edgelist",
    "edgelist_from_string",
    "write_edgelist",
    "save_npz",
    "load_npz",
    "gnm_random_undirected",
    "gnm_random_directed",
    "chung_lu_undirected",
    "chung_lu_directed",
    "planted_dense_subgraph",
    "planted_st_subgraph",
    "powerlaw_weights",
    "sample_edges",
    "edge_fraction_series",
    "DEFAULT_FRACTIONS",
    "GraphSummary",
    "DirectedGraphSummary",
    "summarize",
    "summarize_directed",
    "degree_histogram",
    "powerlaw_exponent_estimate",
]
