"""Random-graph generators used for tests and synthetic dataset replicas.

All generators are deterministic given a ``seed`` and return the library's
CSR graph types.  The heavy-tailed generators (Chung–Lu style) are the
workhorse for replicating the paper's KONECT/LAW graphs: real web and social
graphs are power-law with a concentrated dense core, which is exactly the
regime in which PKMC's early-stop criterion fires after a handful of
iterations (paper, Exp-2 discussion).
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from .directed import DirectedGraph
from .undirected import UndirectedGraph

__all__ = [
    "gnm_random_undirected",
    "gnm_random_directed",
    "chung_lu_undirected",
    "chung_lu_directed",
    "planted_dense_subgraph",
    "planted_st_subgraph",
    "powerlaw_weights",
]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def powerlaw_weights(
    n: int, exponent: float = 2.2, w_min: float = 1.0, w_max: float | None = None,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Sample n weights from a bounded Pareto-like distribution.

    Used as expected degrees for Chung–Lu generation.  ``exponent`` is the
    power-law tail exponent (typical social/web graphs: 2.0–2.5).
    """
    if n <= 0:
        return np.empty(0)
    rng = _rng(seed)
    if w_max is None:
        w_max = max(w_min * 2, float(n) ** 0.75)
    u = rng.random(n)
    # Inverse-CDF sampling of a bounded Pareto with alpha = exponent - 1.
    alpha = max(exponent - 1.0, 0.05)
    lo, hi = w_min ** -alpha, w_max ** -alpha
    return (lo - u * (lo - hi)) ** (-1.0 / alpha)


def gnm_random_undirected(
    n: int, m: int, seed: int | np.random.Generator | None = None
) -> UndirectedGraph:
    """Uniform G(n, m)-style graph (m distinct edges, or fewer on collision).

    Edge count can fall slightly below ``m`` because sampled duplicate pairs
    and self-loops are discarded, which is irrelevant for our workloads.
    """
    if n < 0 or m < 0:
        raise GraphError("n and m must be non-negative")
    if n < 2 or m == 0:
        return UndirectedGraph.empty(n)
    rng = _rng(seed)
    # Oversample to compensate for collisions, then dedupe.
    draw = min(int(m * 1.3) + 16, n * (n - 1) // 2 * 4)
    u = rng.integers(0, n, size=draw)
    v = rng.integers(0, n, size=draw)
    edges = np.stack([u, v], axis=1)
    edges = edges[u != v]
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    uniq = np.unique(np.stack([lo, hi], axis=1), axis=0)
    return UndirectedGraph.from_edges(n, uniq[:m])


def gnm_random_directed(
    n: int, m: int, seed: int | np.random.Generator | None = None
) -> DirectedGraph:
    """Uniform directed G(n, m)-style graph (self-loops removed)."""
    if n < 0 or m < 0:
        raise GraphError("n and m must be non-negative")
    if n < 2 or m == 0:
        return DirectedGraph.empty(n)
    rng = _rng(seed)
    draw = min(int(m * 1.3) + 16, n * (n - 1) * 2)
    u = rng.integers(0, n, size=draw)
    v = rng.integers(0, n, size=draw)
    edges = np.stack([u, v], axis=1)
    edges = np.unique(edges[u != v], axis=0)
    rng.shuffle(edges, axis=0)
    return DirectedGraph.from_edges(n, edges[:m])


def chung_lu_undirected(
    n: int,
    target_edges: int,
    exponent: float = 2.2,
    max_weight: float | None = None,
    seed: int | np.random.Generator | None = None,
) -> UndirectedGraph:
    """Chung–Lu style power-law graph with roughly ``target_edges`` edges.

    Endpoints of each edge are sampled proportionally to power-law weights,
    giving a heavy-tailed degree distribution with hubs, the structure the
    paper's datasets share.
    """
    if n < 2 or target_edges <= 0:
        return UndirectedGraph.empty(max(n, 0))
    rng = _rng(seed)
    weights = powerlaw_weights(n, exponent=exponent, w_max=max_weight, seed=rng)
    prob = weights / weights.sum()
    draw = int(target_edges * 1.35) + 16
    u = rng.choice(n, size=draw, p=prob)
    v = rng.choice(n, size=draw, p=prob)
    edges = np.stack([u, v], axis=1)
    edges = edges[u != v]
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    uniq = np.unique(np.stack([lo, hi], axis=1), axis=0)
    rng.shuffle(uniq, axis=0)
    return UndirectedGraph.from_edges(n, uniq[:target_edges])


def chung_lu_directed(
    n: int,
    target_edges: int,
    out_exponent: float = 2.2,
    in_exponent: float = 2.0,
    max_weight: float | None = None,
    seed: int | np.random.Generator | None = None,
) -> DirectedGraph:
    """Directed Chung–Lu style graph with separate out/in weight tails.

    A smaller ``in_exponent`` produces heavier in-degree hubs, matching the
    paper's directed graphs where d_max^- far exceeds d_max^+ (Table 5).
    """
    if n < 2 or target_edges <= 0:
        return DirectedGraph.empty(max(n, 0))
    rng = _rng(seed)
    out_w = powerlaw_weights(n, exponent=out_exponent, w_max=max_weight, seed=rng)
    in_w = powerlaw_weights(n, exponent=in_exponent, w_max=max_weight, seed=rng)
    draw = int(target_edges * 1.35) + 16
    u = rng.choice(n, size=draw, p=out_w / out_w.sum())
    v = rng.choice(n, size=draw, p=in_w / in_w.sum())
    edges = np.stack([u, v], axis=1)
    edges = np.unique(edges[u != v], axis=0)
    rng.shuffle(edges, axis=0)
    return DirectedGraph.from_edges(n, edges[:target_edges])


def planted_dense_subgraph(
    n: int,
    background_edges: int,
    core_size: int,
    core_probability: float = 0.9,
    exponent: float = 2.3,
    max_weight: float | None = None,
    seed: int | np.random.Generator | None = None,
) -> tuple[UndirectedGraph, np.ndarray]:
    """Power-law background plus a planted near-clique core.

    Returns ``(graph, core_vertices)``.  The planted core is what both the
    k*-core and the densest subgraph should (approximately) recover, which
    tests and examples exploit.
    """
    if core_size > n:
        raise GraphError("core_size cannot exceed n")
    rng = _rng(seed)
    background = chung_lu_undirected(
        n, background_edges, exponent=exponent, max_weight=max_weight, seed=rng
    )
    core = rng.choice(n, size=core_size, replace=False)
    pairs = []
    for i in range(core_size):
        for j in range(i + 1, core_size):
            if rng.random() < core_probability:
                pairs.append((core[i], core[j]))
    all_edges = background.edges()
    if pairs:
        all_edges = np.concatenate([all_edges, np.asarray(pairs, dtype=np.int64)])
    return UndirectedGraph.from_edges(n, all_edges), np.sort(core)


def planted_st_subgraph(
    n: int,
    background_edges: int,
    s_size: int,
    t_size: int,
    block_probability: float = 0.9,
    max_weight: float | None = None,
    seed: int | np.random.Generator | None = None,
) -> tuple[DirectedGraph, np.ndarray, np.ndarray]:
    """Directed power-law background plus a planted dense S -> T block.

    Returns ``(graph, S, T)`` where S and T are disjoint vertex sets and
    nearly all S x T edges exist.  This is the directed analogue of a
    planted near-clique, giving DDS algorithms a known target.
    """
    if s_size + t_size > n:
        raise GraphError("s_size + t_size cannot exceed n")
    rng = _rng(seed)
    background = chung_lu_directed(
        n, background_edges, max_weight=max_weight, seed=rng
    )
    chosen = rng.choice(n, size=s_size + t_size, replace=False)
    s_vertices, t_vertices = chosen[:s_size], chosen[s_size:]
    pairs = []
    for u in s_vertices:
        for v in t_vertices:
            if rng.random() < block_probability:
                pairs.append((u, v))
    all_edges = background.edges()
    if pairs:
        all_edges = np.concatenate([all_edges, np.asarray(pairs, dtype=np.int64)])
    graph = DirectedGraph.from_edges(n, all_edges)
    return graph, np.sort(s_vertices), np.sort(t_vertices)
