"""Connected components (undirected; weak components for digraphs).

The paper notes that a k*-core (and likewise an [x*, y*]-core) "may have
multiple connected components, and any one of them can be regarded as a
2-approximation solution".  These helpers let callers split a returned
core into its components and pick one — e.g. the densest.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .directed import DirectedGraph
from .undirected import UndirectedGraph

__all__ = [
    "connected_components",
    "component_of_vertices",
    "densest_component",
]


def connected_components(graph: UndirectedGraph) -> np.ndarray:
    """Label every vertex with its component id (0-based, BFS order)."""
    n = graph.num_vertices
    labels = np.full(n, -1, dtype=np.int64)
    next_label = 0
    for start in range(n):
        if labels[start] >= 0:
            continue
        labels[start] = next_label
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if labels[v] < 0:
                    labels[v] = next_label
                    queue.append(v)
        next_label += 1
    return labels


def component_of_vertices(
    graph: UndirectedGraph, vertices: np.ndarray
) -> list[np.ndarray]:
    """Split ``vertices`` into the connected components of their induced
    subgraph, largest first."""
    vertices = np.asarray(vertices, dtype=np.int64)
    if vertices.size == 0:
        return []
    sub, original_ids = graph.induced_subgraph(vertices)
    labels = connected_components(sub)
    groups = [
        original_ids[labels == label] for label in range(int(labels.max()) + 1)
    ]
    groups.sort(key=len, reverse=True)
    return groups


def densest_component(
    graph: UndirectedGraph, vertices: np.ndarray
) -> tuple[np.ndarray, float]:
    """Return the densest connected component of the induced subgraph.

    For a k*-core every component has density >= k*/2, so each is a valid
    2-approximation; this picks the best of them.
    """
    best_vertices = np.asarray(vertices, dtype=np.int64)
    best_density = -1.0
    for component in component_of_vertices(graph, vertices):
        sub, _ = graph.induced_subgraph(component)
        density = sub.density()
        if density > best_density:
            best_density = density
            best_vertices = component
    return best_vertices, best_density


def weakly_connected_components(graph: DirectedGraph) -> np.ndarray:
    """Label every vertex with its weak-component id."""
    return connected_components(graph.to_undirected())
