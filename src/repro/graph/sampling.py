"""Edge sampling used by the scalability experiments (Exp-4 and Exp-8).

The paper builds its scalability curves by "randomly selecting 20%, 40%,
60%, 80% and 100% of the edges" of each graph and running every algorithm on
the induced subgraphs.  :func:`edge_fraction_series` reproduces exactly that
protocol with nested samples (the 40% sample contains the 20% one), so the
series is monotone in work.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import GraphError
from .directed import DirectedGraph
from .undirected import UndirectedGraph

__all__ = ["sample_edges", "edge_fraction_series", "DEFAULT_FRACTIONS"]

DEFAULT_FRACTIONS: tuple[float, ...] = (0.2, 0.4, 0.6, 0.8, 1.0)

Graph = UndirectedGraph | DirectedGraph


def sample_edges(graph: Graph, fraction: float, seed: int | None = None) -> Graph:
    """Return the subgraph keeping a uniform ``fraction`` of the edges.

    The vertex set is unchanged (isolated vertices remain), matching the
    paper's "subgraphs induced by these edges" protocol where density is
    driven by the retained edges.
    """
    if not 0.0 <= fraction <= 1.0:
        raise GraphError(f"fraction must be in [0, 1], got {fraction}")
    if fraction == 1.0:
        return graph
    rng = np.random.default_rng(seed)
    m = graph.num_edges
    keep_count = int(round(m * fraction))
    mask = np.zeros(m, dtype=bool)
    mask[rng.permutation(m)[:keep_count]] = True
    return graph.subgraph_from_edge_mask(mask)


def edge_fraction_series(
    graph: Graph,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    seed: int | None = 0,
) -> list[tuple[float, Graph]]:
    """Return ``[(fraction, subgraph), ...]`` with *nested* edge samples.

    A single random permutation of the edges is drawn; the f-fraction sample
    keeps the first ``round(f * m)`` edges of it.  Larger fractions therefore
    strictly contain smaller ones.
    """
    for fraction in fractions:
        if not 0.0 < fraction <= 1.0:
            raise GraphError(f"fractions must be in (0, 1], got {fraction}")
    rng = np.random.default_rng(seed)
    m = graph.num_edges
    order = rng.permutation(m)
    series: list[tuple[float, Graph]] = []
    for fraction in sorted(fractions):
        if fraction == 1.0:
            series.append((1.0, graph))
            continue
        keep_count = int(round(m * fraction))
        mask = np.zeros(m, dtype=bool)
        mask[order[:keep_count]] = True
        series.append((fraction, graph.subgraph_from_edge_mask(mask)))
    return series
