"""Edge-list I/O in the formats used by KONECT / SNAP style dumps.

Supported text format: one edge per line, whitespace-separated endpoints,
``#`` or ``%`` comment lines ignored, optional trailing columns (weights,
timestamps) ignored.  Vertex labels may be arbitrary tokens; they are
interned to dense integer ids in first-seen order.

A compact binary ``.npz`` round-trip is also provided for cached synthetic
datasets.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Union

import numpy as np

from ..errors import GraphFormatError
from .builder import DirectedGraphBuilder, GraphBuilder
from .directed import DirectedGraph
from .undirected import UndirectedGraph

__all__ = [
    "read_undirected_edgelist",
    "read_directed_edgelist",
    "write_edgelist",
    "save_npz",
    "load_npz",
]

PathLike = Union[str, Path]
_COMMENT_PREFIXES = ("#", "%")


def _parse_lines(stream: TextIO, builder, path_hint: str) -> None:
    for line_number, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line or line.startswith(_COMMENT_PREFIXES):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise GraphFormatError(
                f"{path_hint}:{line_number}: expected at least two columns, "
                f"got {line!r}"
            )
        builder.add_edge(parts[0], parts[1])


def read_undirected_edgelist(
    source: PathLike | TextIO,
) -> tuple[UndirectedGraph, list]:
    """Parse an undirected edge list; return ``(graph, labels)``.

    ``labels[i]`` is the original token for vertex id ``i``.
    """
    builder = GraphBuilder()
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as stream:
            _parse_lines(stream, builder, str(source))
    else:
        _parse_lines(source, builder, "<stream>")
    return builder.build_with_labels()


def read_directed_edgelist(
    source: PathLike | TextIO,
) -> tuple[DirectedGraph, list]:
    """Parse a directed edge list (u -> v per line); return ``(graph, labels)``."""
    builder = DirectedGraphBuilder()
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as stream:
            _parse_lines(stream, builder, str(source))
    else:
        _parse_lines(source, builder, "<stream>")
    return builder.build_with_labels()


def write_edgelist(
    graph: UndirectedGraph | DirectedGraph,
    target: PathLike | TextIO,
    header: str | None = None,
) -> None:
    """Write a graph as a plain edge list (one ``u v`` line per edge)."""

    def _write(stream: TextIO) -> None:
        if header:
            for header_line in header.splitlines():
                stream.write(f"# {header_line}\n")
        stream.write(f"# vertices={graph.num_vertices} edges={graph.num_edges}\n")
        for u, v in graph.iter_edges():
            stream.write(f"{u} {v}\n")

    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as stream:
            _write(stream)
    else:
        _write(target)


def save_npz(graph: UndirectedGraph | DirectedGraph, path: PathLike) -> None:
    """Save a graph to a compressed ``.npz`` file."""
    edges = graph.edges()
    kind = "directed" if isinstance(graph, DirectedGraph) else "undirected"
    np.savez_compressed(
        path,
        kind=np.array(kind),
        num_vertices=np.array(graph.num_vertices, dtype=np.int64),
        edges=edges.astype(np.int64),
    )


def load_npz(path: PathLike) -> UndirectedGraph | DirectedGraph:
    """Load a graph saved by :func:`save_npz`."""
    with np.load(path, allow_pickle=False) as data:
        try:
            kind = str(data["kind"])
            num_vertices = int(data["num_vertices"])
            edges = data["edges"]
        except KeyError as exc:
            raise GraphFormatError(f"{path}: missing field {exc}") from exc
    if kind == "directed":
        return DirectedGraph.from_edges(num_vertices, edges)
    if kind == "undirected":
        return UndirectedGraph.from_edges(num_vertices, edges)
    raise GraphFormatError(f"{path}: unknown graph kind {kind!r}")


def edgelist_from_string(text: str, directed: bool = False):
    """Parse an edge list held in a string; convenience for tests/examples."""
    reader = read_directed_edgelist if directed else read_undirected_edgelist
    return reader(io.StringIO(text))
