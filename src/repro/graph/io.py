"""Edge-list I/O in the formats used by KONECT / SNAP style dumps.

Supported text format: one edge per line, whitespace-separated endpoints,
``#`` or ``%`` comment lines ignored, optional trailing columns (weights,
timestamps) ignored.  Vertex labels may be arbitrary tokens; they are
interned to dense integer ids in first-seen order.

Parsing is vectorized by default (:mod:`repro.store.reader`: chunked
reads, ``np.fromstring`` numeric fast path, ``np.unique`` label
interning); pass ``vectorized=False`` for the strict line-by-line
reference path.  Both produce identical graphs, labels and errors.

Binary ``.npz`` snapshots (:mod:`repro.store.snapshot`) store the built
CSR arrays and load mmap-backed — the fast path for repeated runs over
the same dataset.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Union

import numpy as np

from ..errors import GraphFormatError
from ..store import reader as store_reader
from ..store import snapshot as store_snapshot
from .builder import DirectedGraphBuilder, GraphBuilder
from .directed import DirectedGraph
from .undirected import UndirectedGraph

__all__ = [
    "read_undirected_edgelist",
    "read_directed_edgelist",
    "write_edgelist",
    "save_npz",
    "load_npz",
]

PathLike = Union[str, Path]
_COMMENT_PREFIXES = ("#", "%")


def _parse_lines(stream: TextIO, builder, path_hint: str) -> None:
    """Strict line-by-line reference parser (one add_edge per line)."""
    for line_number, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line or line.startswith(_COMMENT_PREFIXES):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise GraphFormatError(
                f"{path_hint}:{line_number}: expected at least two columns, "
                f"got {line!r}"
            )
        builder.add_edge(parts[0], parts[1])


def _read_edgelist(source, builder, graph_cls, vectorized: bool):
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as stream:
            return _read_edgelist_stream(
                stream, builder, graph_cls, str(source), vectorized
            )
    return _read_edgelist_stream(
        source, builder, graph_cls, "<stream>", vectorized
    )


def _read_edgelist_stream(stream, builder, graph_cls, hint, vectorized):
    if vectorized:
        edge_ids, labels = store_reader.read_edges_vectorized(stream, hint)
        return graph_cls.from_edges(len(labels), edge_ids), labels
    _parse_lines(stream, builder, hint)
    return builder.build_with_labels()


def read_undirected_edgelist(
    source: PathLike | TextIO, vectorized: bool = True
) -> tuple[UndirectedGraph, list]:
    """Parse an undirected edge list; return ``(graph, labels)``.

    ``labels[i]`` is the original token for vertex id ``i``.
    ``vectorized=False`` selects the strict line-by-line reference
    parser (identical output, one Python call per edge).
    """
    return _read_edgelist(source, GraphBuilder(), UndirectedGraph, vectorized)


def read_directed_edgelist(
    source: PathLike | TextIO, vectorized: bool = True
) -> tuple[DirectedGraph, list]:
    """Parse a directed edge list (u -> v per line); return ``(graph, labels)``."""
    return _read_edgelist(
        source, DirectedGraphBuilder(), DirectedGraph, vectorized
    )


def write_edgelist(
    graph: UndirectedGraph | DirectedGraph,
    target: PathLike | TextIO,
    header: str | None = None,
) -> None:
    """Write a graph as a plain edge list (one ``u v`` line per edge)."""

    def _write(stream: TextIO) -> None:
        if header:
            for header_line in header.splitlines():
                stream.write(f"# {header_line}\n")
        stream.write(f"# vertices={graph.num_vertices} edges={graph.num_edges}\n")
        edges = graph.edges()
        if edges.shape[0]:
            # Vectorized rendering: two U-string columns joined per row,
            # one C-level join for the body — no per-edge Python loop.
            left = np.char.add(edges[:, 0].astype(np.str_), " ")
            lines = np.char.add(left, edges[:, 1].astype(np.str_))
            stream.write("\n".join(lines.tolist()))
            stream.write("\n")

    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as stream:
            _write(stream)
    else:
        _write(target)


def save_npz(graph: UndirectedGraph | DirectedGraph, path: PathLike) -> None:
    """Save a graph as a binary snapshot (uncompressed ``.npz``).

    Stores the built CSR arrays plus the content fingerprint, so
    :func:`load_npz` skips parsing and CSR construction entirely; see
    :mod:`repro.store.snapshot`.
    """
    store_snapshot.save_snapshot(graph, path)


def load_npz(
    path: PathLike, mmap: bool = True
) -> UndirectedGraph | DirectedGraph:
    """Load a graph saved by :func:`save_npz` (mmap-backed by default).

    Also accepts the legacy edge-list ``.npz`` layout.  Malformed or
    truncated files raise :class:`GraphFormatError`.
    """
    return store_snapshot.load_snapshot(path, mmap=mmap)


def edgelist_from_string(text: str, directed: bool = False):
    """Parse an edge list held in a string; convenience for tests/examples."""
    reader = read_directed_edgelist if directed else read_undirected_edgelist
    return reader(io.StringIO(text))
