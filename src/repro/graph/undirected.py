"""Immutable CSR representation of a simple undirected graph.

The whole library works on vertex ids ``0 .. n-1``.  Graphs are stored in
compressed sparse row (CSR) form: ``indptr`` has ``n + 1`` entries and the
neighbours of vertex ``v`` are ``indices[indptr[v]:indptr[v + 1]]``, sorted
ascending.  Each undirected edge appears twice in ``indices`` (once per
endpoint), so ``len(indices) == 2 * num_edges``.

Construction normalises the input: self-loops are dropped and parallel edges
are collapsed, matching the simple graphs used throughout the paper.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from ..errors import GraphError
from ..store.compact import index_dtype
from ..store.csr import _COMBINED_KEY_MAX_VERTICES, csr_from_sorted_canonical
from ..store.fingerprint import fingerprint_arrays

__all__ = ["UndirectedGraph"]


def _normalize_edges(n: int, edges: np.ndarray) -> np.ndarray:
    """Return unique, self-loop-free edges as (u, v) rows with u < v."""
    if edges.size == 0:
        return edges.reshape(0, 2)
    if edges.min() < 0 or edges.max() >= n:
        raise GraphError(
            f"edge endpoint out of range for a graph with {n} vertices"
        )
    u = np.minimum(edges[:, 0], edges[:, 1]).astype(np.int64, copy=False)
    v = np.maximum(edges[:, 0], edges[:, 1]).astype(np.int64, copy=False)
    keep = u != v
    u, v = u[keep], v[keep]
    if u.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    if n <= _COMBINED_KEY_MAX_VERTICES:
        # Dedup + lex sort through the single combined key u*n + v
        # (n**2 < 2**63 by the guard) — one int64 sort instead of the
        # structured-row comparisons of np.unique(axis=0).
        key = np.unique(u * np.int64(n) + v)
        canon = np.empty((key.size, 2), dtype=np.int64)
        np.floor_divide(key, n, out=canon[:, 0])
        np.subtract(key, canon[:, 0] * np.int64(n), out=canon[:, 1])
        return canon
    return np.unique(np.stack([u, v], axis=1), axis=0)


class UndirectedGraph:
    """A simple undirected graph in CSR form.

    Instances are conceptually immutable; algorithms that "peel" vertices or
    edges keep their own alive-masks and degree arrays instead of mutating
    the graph.
    """

    __slots__ = ("indptr", "indices", "_num_edges", "_scratch",
                 "_fingerprint")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray):
        indptr = np.ascontiguousarray(indptr)
        indices = np.ascontiguousarray(indices)
        if not np.issubdtype(indptr.dtype, np.integer):
            indptr = indptr.astype(np.int64)
        if not np.issubdtype(indices.dtype, np.integer):
            indices = indices.astype(np.int64)
        if indptr.ndim != 1 or indptr.size == 0:
            raise GraphError("indptr must be a 1-D array with >= 1 entry")
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise GraphError("indptr does not describe the indices array")
        if np.any(np.diff(indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        if indices.size % 2 != 0:
            raise GraphError(
                "undirected CSR must contain each edge twice; got an odd "
                "number of adjacency entries"
            )
        # Auto-narrow index arrays (validated above, so the cast cannot
        # wrap): int32 halves the footprint, and the widest value any
        # index-typed buffer must hold is the last hindex-bin offset,
        # 2m + n (see repro.store.compact).
        dtype = index_dtype(indptr.size - 1, indices.size + indptr.size - 1)
        self.indptr = np.ascontiguousarray(indptr, dtype=dtype)
        self.indices = np.ascontiguousarray(indices, dtype=dtype)
        # Lazily-built, read-only scratch buffers derived from the CSR
        # arrays (heads, degree views, h-index histogram layout).  Owned
        # per instance: derived graphs always start with an empty cache.
        self._scratch: dict[str, np.ndarray] = {}
        self._fingerprint: Optional[str] = None
        self._num_edges = self.indices.size // 2

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, num_vertices: int, edges: Iterable[Sequence[int]] | np.ndarray
    ) -> "UndirectedGraph":
        """Build a graph from an iterable of (u, v) pairs.

        Self-loops are dropped and duplicate edges collapsed.

        >>> g = UndirectedGraph.from_edges(3, [(0, 1), (1, 2), (1, 0)])
        >>> g.num_edges
        2
        >>> g.neighbors(1).tolist()
        [0, 2]
        """
        if num_vertices < 0:
            raise GraphError("num_vertices must be non-negative")
        edge_array = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
        if edge_array.size == 0:
            edge_array = edge_array.reshape(0, 2)
        edge_array = edge_array.astype(np.int64, copy=False).reshape(-1, 2)
        canon = _normalize_edges(num_vertices, edge_array)
        return cls._from_canonical_edges(num_vertices, canon)

    @classmethod
    def _from_canonical_edges(
        cls, num_vertices: int, canon: np.ndarray
    ) -> "UndirectedGraph":
        """Build CSR from deduplicated, lex-sorted (u < v) edge rows.

        Every call site hands over ``np.unique(..., axis=0)`` output or a
        CSR-ordered ``edges()`` slice, so the O(m) counting-sort builder
        applies (``repro.store.csr``); it verifies sortedness and falls
        back to the lexsort reference otherwise.
        """
        dtype = index_dtype(num_vertices,
                            2 * canon.shape[0] + num_vertices)
        indptr, indices = csr_from_sorted_canonical(
            num_vertices, canon, dtype=dtype
        )
        return cls(indptr, indices)

    @classmethod
    def empty(cls, num_vertices: int = 0) -> "UndirectedGraph":
        """Return a graph with ``num_vertices`` vertices and no edges."""
        return cls(np.zeros(num_vertices + 1, dtype=np.int64), np.empty(0, dtype=np.int64))

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self.indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``."""
        return self._num_edges

    def _cached(self, key: str, build) -> np.ndarray:
        """Memoize a derived buffer; returned arrays are frozen read-only.

        The scratch cache mirrors the frozen-CSR contract (lint rule
        R005): cached buffers are views of graph structure, never
        per-algorithm state, and writing into one raises at runtime.
        """
        array = self._scratch.get(key)
        if array is None:
            array = build()
            array.setflags(write=False)
            self._scratch[key] = array
        return array

    def degrees(self) -> np.ndarray:
        """Return the degree of every vertex (cached, read-only)."""
        return self._cached("degrees", lambda: np.diff(self.indptr))

    def heads(self) -> np.ndarray:
        """Row id of every adjacency slot (cached, read-only).

        Equivalent to ``np.repeat(np.arange(n), degrees)`` — the other
        half of the CSR coordinate view that nearly every vectorised edge
        scan needs.  Memoized because it is as large as ``indices``.
        """
        return self._cached(
            "heads",
            lambda: np.repeat(
                np.arange(self.num_vertices, dtype=self.indptr.dtype),
                self.degrees(),
            ),
        )

    def hindex_bins(self) -> tuple[np.ndarray, np.ndarray]:
        """Histogram layout for the sort-free segmented h-index kernel.

        Returns ``(bin_ptr, bin_rows)``: vertex ``v`` owns the
        ``degree(v) + 1`` histogram bins ``bin_ptr[v]:bin_ptr[v + 1]``
        (one per attainable h-value), and ``bin_rows`` maps each global
        bin back to its vertex.  Cached and read-only, like ``heads``.
        """
        bin_ptr = self._cached("hindex_bin_ptr", self._build_hindex_bin_ptr)
        bin_rows = self._cached(
            "hindex_bin_rows",
            lambda: np.repeat(
                np.arange(self.num_vertices, dtype=self.indptr.dtype),
                self.degrees() + 1,
            ),
        )
        return bin_ptr, bin_rows

    def _build_hindex_bin_ptr(self) -> np.ndarray:
        # Offsets reach 2m + n — the bound index_dtype() narrowed for.
        bin_ptr = np.zeros(self.num_vertices + 1, dtype=self.indptr.dtype)
        np.cumsum(self.degrees() + 1, out=bin_ptr[1:])
        return bin_ptr

    def degree(self, v: int) -> int:
        """Return the degree of vertex ``v``."""
        return int(self.indptr[v + 1] - self.indptr[v])

    def max_degree(self) -> int:
        """Return the maximum degree, or 0 for an edgeless graph."""
        if self.num_vertices == 0:
            return 0
        return int(self.degrees().max(initial=0))

    def neighbors(self, v: int) -> np.ndarray:
        """Return the sorted neighbour ids of ``v`` (a CSR slice view)."""
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Return True iff the edge {u, v} is present."""
        nbrs = self.neighbors(u)
        pos = np.searchsorted(nbrs, v)
        return bool(pos < nbrs.size and nbrs[pos] == v)

    def edges(self) -> np.ndarray:
        """Return all edges as an (m, 2) array with u < v per row."""
        heads = self.heads()
        mask = heads < self.indices
        return np.stack([heads[mask], self.indices[mask]], axis=1)

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Yield edges as (u, v) tuples with u < v.

        Debugging convenience only: one Python tuple per edge. Hot paths
        should use the vectorised :meth:`edges` array instead.
        """
        for u, v in self.edges():
            yield int(u), int(v)

    def density(self) -> float:
        """Return the paper's undirected density rho = |E| / |V|.

        Returns 0.0 for the empty graph so callers comparing candidate
        subgraphs never divide by zero.
        """
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def induced_subgraph(
        self, vertices: Iterable[int] | np.ndarray
    ) -> tuple["UndirectedGraph", np.ndarray]:
        """Return ``(subgraph, original_ids)`` induced by ``vertices``.

        Vertices are relabelled to ``0..k-1``; ``original_ids[i]`` maps the
        new id ``i`` back to its id in this graph.
        """
        keep = np.unique(np.asarray(list(vertices) if not isinstance(vertices, np.ndarray) else vertices, dtype=np.int64))
        if keep.size and (keep[0] < 0 or keep[-1] >= self.num_vertices):
            raise GraphError("induced vertex id out of range")
        new_id = np.full(self.num_vertices, -1, dtype=np.int64)
        new_id[keep] = np.arange(keep.size)
        heads = self.heads()
        mask = (new_id[heads] >= 0) & (new_id[self.indices] >= 0) & (heads < self.indices)
        canon = np.stack([new_id[heads[mask]], new_id[self.indices[mask]]], axis=1)
        sub = UndirectedGraph._from_canonical_edges(keep.size, np.unique(canon, axis=0) if canon.size else canon)
        return sub, keep

    def subgraph_from_edge_mask(self, edge_mask: np.ndarray) -> "UndirectedGraph":
        """Return a graph on the same vertex set keeping masked edges only.

        ``edge_mask`` indexes the rows of :meth:`edges`.
        """
        all_edges = self.edges()
        if edge_mask.shape[0] != all_edges.shape[0]:
            raise GraphError("edge mask length must equal num_edges")
        return UndirectedGraph._from_canonical_edges(self.num_vertices, all_edges[edge_mask])

    def relabeled(self, permutation: np.ndarray) -> "UndirectedGraph":
        """Return an isomorphic graph with vertex ``v`` renamed to ``permutation[v]``."""
        perm = np.asarray(permutation, dtype=np.int64)
        if perm.size != self.num_vertices or np.unique(perm).size != perm.size:
            raise GraphError("permutation must be a bijection on the vertex set")
        old = self.edges()
        return UndirectedGraph.from_edges(
            self.num_vertices, np.stack([perm[old[:, 0]], perm[old[:, 1]]], axis=1)
        )

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UndirectedGraph):
            return NotImplemented
        return (
            self.num_vertices == other.num_vertices
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing only
        return id(self)

    def __repr__(self) -> str:
        return f"UndirectedGraph(n={self.num_vertices}, m={self.num_edges})"

    def fingerprint(self) -> str:
        """Stable content hash of the CSR structure (cached).

        Two graphs with identical ``indptr``/``indices`` (and dtype)
        fingerprint identically however they were built; the engine's
        result cache keys on this.
        """
        if self._fingerprint is None:
            self._fingerprint = fingerprint_arrays(
                "undirected", self.num_vertices, self.indptr, self.indices
            )
        return self._fingerprint

    def memory_bytes(self, include_scratch: bool = True) -> int:
        """Resident size in bytes of the CSR arrays.

        By default this includes the lazily-built scratch buffers
        (``degrees``/``heads``/``hindex_bins``) currently cached on the
        instance — they are as resident as the CSR arrays themselves.
        Pass ``include_scratch=False`` for the bare structural size.
        """
        total = int(self.indptr.nbytes + self.indices.nbytes)
        if include_scratch:
            total += sum(a.nbytes for a in self._scratch.values())
        return total
