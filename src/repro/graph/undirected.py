"""Immutable CSR representation of a simple undirected graph.

The whole library works on vertex ids ``0 .. n-1``.  Graphs are stored in
compressed sparse row (CSR) form: ``indptr`` has ``n + 1`` entries and the
neighbours of vertex ``v`` are ``indices[indptr[v]:indptr[v + 1]]``, sorted
ascending.  Each undirected edge appears twice in ``indices`` (once per
endpoint), so ``len(indices) == 2 * num_edges``.

Construction normalises the input: self-loops are dropped and parallel edges
are collapsed, matching the simple graphs used throughout the paper.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import GraphError

__all__ = ["UndirectedGraph"]


def _normalize_edges(n: int, edges: np.ndarray) -> np.ndarray:
    """Return unique, self-loop-free edges as (u, v) rows with u < v."""
    if edges.size == 0:
        return edges.reshape(0, 2)
    if edges.min() < 0 or edges.max() >= n:
        raise GraphError(
            f"edge endpoint out of range for a graph with {n} vertices"
        )
    u = np.minimum(edges[:, 0], edges[:, 1])
    v = np.maximum(edges[:, 0], edges[:, 1])
    keep = u != v
    canon = np.stack([u[keep], v[keep]], axis=1)
    if canon.size == 0:
        return canon.reshape(0, 2)
    return np.unique(canon, axis=0)


class UndirectedGraph:
    """A simple undirected graph in CSR form.

    Instances are conceptually immutable; algorithms that "peel" vertices or
    edges keep their own alive-masks and degree arrays instead of mutating
    the graph.
    """

    __slots__ = ("indptr", "indices", "_num_edges", "_scratch")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray):
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        # Lazily-built, read-only scratch buffers derived from the CSR
        # arrays (heads, degree views, h-index histogram layout).  Owned
        # per instance: derived graphs always start with an empty cache.
        self._scratch: dict[str, np.ndarray] = {}
        if self.indptr.ndim != 1 or self.indptr.size == 0:
            raise GraphError("indptr must be a 1-D array with >= 1 entry")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise GraphError("indptr does not describe the indices array")
        if np.any(np.diff(self.indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        if self.indices.size % 2 != 0:
            raise GraphError(
                "undirected CSR must contain each edge twice; got an odd "
                "number of adjacency entries"
            )
        self._num_edges = self.indices.size // 2

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, num_vertices: int, edges: Iterable[Sequence[int]] | np.ndarray
    ) -> "UndirectedGraph":
        """Build a graph from an iterable of (u, v) pairs.

        Self-loops are dropped and duplicate edges collapsed.

        >>> g = UndirectedGraph.from_edges(3, [(0, 1), (1, 2), (1, 0)])
        >>> g.num_edges
        2
        >>> g.neighbors(1).tolist()
        [0, 2]
        """
        if num_vertices < 0:
            raise GraphError("num_vertices must be non-negative")
        edge_array = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
        if edge_array.size == 0:
            edge_array = edge_array.reshape(0, 2)
        edge_array = edge_array.astype(np.int64, copy=False).reshape(-1, 2)
        canon = _normalize_edges(num_vertices, edge_array)
        return cls._from_canonical_edges(num_vertices, canon)

    @classmethod
    def _from_canonical_edges(
        cls, num_vertices: int, canon: np.ndarray
    ) -> "UndirectedGraph":
        """Build CSR from deduplicated (u < v) edge rows."""
        heads = np.concatenate([canon[:, 0], canon[:, 1]])
        tails = np.concatenate([canon[:, 1], canon[:, 0]])
        order = np.lexsort((tails, heads))
        heads = heads[order]
        tails = tails[order]
        degrees = np.bincount(heads, minlength=num_vertices)
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        return cls(indptr, tails)

    @classmethod
    def empty(cls, num_vertices: int = 0) -> "UndirectedGraph":
        """Return a graph with ``num_vertices`` vertices and no edges."""
        return cls(np.zeros(num_vertices + 1, dtype=np.int64), np.empty(0, dtype=np.int64))

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self.indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``."""
        return self._num_edges

    def _cached(self, key: str, build) -> np.ndarray:
        """Memoize a derived buffer; returned arrays are frozen read-only.

        The scratch cache mirrors the frozen-CSR contract (lint rule
        R005): cached buffers are views of graph structure, never
        per-algorithm state, and writing into one raises at runtime.
        """
        array = self._scratch.get(key)
        if array is None:
            array = build()
            array.setflags(write=False)
            self._scratch[key] = array
        return array

    def degrees(self) -> np.ndarray:
        """Return the degree of every vertex (cached, read-only)."""
        return self._cached("degrees", lambda: np.diff(self.indptr))

    def heads(self) -> np.ndarray:
        """Row id of every adjacency slot (cached, read-only).

        Equivalent to ``np.repeat(np.arange(n), degrees)`` — the other
        half of the CSR coordinate view that nearly every vectorised edge
        scan needs.  Memoized because it is as large as ``indices``.
        """
        return self._cached(
            "heads",
            lambda: np.repeat(
                np.arange(self.num_vertices, dtype=np.int64), self.degrees()
            ),
        )

    def hindex_bins(self) -> tuple[np.ndarray, np.ndarray]:
        """Histogram layout for the sort-free segmented h-index kernel.

        Returns ``(bin_ptr, bin_rows)``: vertex ``v`` owns the
        ``degree(v) + 1`` histogram bins ``bin_ptr[v]:bin_ptr[v + 1]``
        (one per attainable h-value), and ``bin_rows`` maps each global
        bin back to its vertex.  Cached and read-only, like ``heads``.
        """
        bin_ptr = self._cached("hindex_bin_ptr", self._build_hindex_bin_ptr)
        bin_rows = self._cached(
            "hindex_bin_rows",
            lambda: np.repeat(
                np.arange(self.num_vertices, dtype=np.int64), self.degrees() + 1
            ),
        )
        return bin_ptr, bin_rows

    def _build_hindex_bin_ptr(self) -> np.ndarray:
        bin_ptr = np.zeros(self.num_vertices + 1, dtype=np.int64)
        np.cumsum(self.degrees() + 1, out=bin_ptr[1:])
        return bin_ptr

    def degree(self, v: int) -> int:
        """Return the degree of vertex ``v``."""
        return int(self.indptr[v + 1] - self.indptr[v])

    def max_degree(self) -> int:
        """Return the maximum degree, or 0 for an edgeless graph."""
        if self.num_vertices == 0:
            return 0
        return int(self.degrees().max(initial=0))

    def neighbors(self, v: int) -> np.ndarray:
        """Return the sorted neighbour ids of ``v`` (a CSR slice view)."""
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Return True iff the edge {u, v} is present."""
        nbrs = self.neighbors(u)
        pos = np.searchsorted(nbrs, v)
        return bool(pos < nbrs.size and nbrs[pos] == v)

    def edges(self) -> np.ndarray:
        """Return all edges as an (m, 2) array with u < v per row."""
        heads = self.heads()
        mask = heads < self.indices
        return np.stack([heads[mask], self.indices[mask]], axis=1)

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Yield edges as (u, v) tuples with u < v."""
        for u, v in self.edges():
            yield int(u), int(v)

    def density(self) -> float:
        """Return the paper's undirected density rho = |E| / |V|.

        Returns 0.0 for the empty graph so callers comparing candidate
        subgraphs never divide by zero.
        """
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def induced_subgraph(
        self, vertices: Iterable[int] | np.ndarray
    ) -> tuple["UndirectedGraph", np.ndarray]:
        """Return ``(subgraph, original_ids)`` induced by ``vertices``.

        Vertices are relabelled to ``0..k-1``; ``original_ids[i]`` maps the
        new id ``i`` back to its id in this graph.
        """
        keep = np.unique(np.asarray(list(vertices) if not isinstance(vertices, np.ndarray) else vertices, dtype=np.int64))
        if keep.size and (keep[0] < 0 or keep[-1] >= self.num_vertices):
            raise GraphError("induced vertex id out of range")
        new_id = np.full(self.num_vertices, -1, dtype=np.int64)
        new_id[keep] = np.arange(keep.size)
        heads = self.heads()
        mask = (new_id[heads] >= 0) & (new_id[self.indices] >= 0) & (heads < self.indices)
        canon = np.stack([new_id[heads[mask]], new_id[self.indices[mask]]], axis=1)
        sub = UndirectedGraph._from_canonical_edges(keep.size, np.unique(canon, axis=0) if canon.size else canon)
        return sub, keep

    def subgraph_from_edge_mask(self, edge_mask: np.ndarray) -> "UndirectedGraph":
        """Return a graph on the same vertex set keeping masked edges only.

        ``edge_mask`` indexes the rows of :meth:`edges`.
        """
        all_edges = self.edges()
        if edge_mask.shape[0] != all_edges.shape[0]:
            raise GraphError("edge mask length must equal num_edges")
        return UndirectedGraph._from_canonical_edges(self.num_vertices, all_edges[edge_mask])

    def relabeled(self, permutation: np.ndarray) -> "UndirectedGraph":
        """Return an isomorphic graph with vertex ``v`` renamed to ``permutation[v]``."""
        perm = np.asarray(permutation, dtype=np.int64)
        if perm.size != self.num_vertices or np.unique(perm).size != perm.size:
            raise GraphError("permutation must be a bijection on the vertex set")
        old = self.edges()
        return UndirectedGraph.from_edges(
            self.num_vertices, np.stack([perm[old[:, 0]], perm[old[:, 1]]], axis=1)
        )

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UndirectedGraph):
            return NotImplemented
        return (
            self.num_vertices == other.num_vertices
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing only
        return id(self)

    def __repr__(self) -> str:
        return f"UndirectedGraph(n={self.num_vertices}, m={self.num_edges})"

    def memory_bytes(self) -> int:
        """Approximate resident size of the CSR arrays in bytes."""
        return int(self.indptr.nbytes + self.indices.nbytes)
