"""Descriptive statistics over graphs (degree distributions, summaries).

Used by the dataset registry to report how closely a synthetic replica
matches its real counterpart, and by examples for exploratory output.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .directed import DirectedGraph
from .undirected import UndirectedGraph

__all__ = [
    "GraphSummary",
    "DirectedGraphSummary",
    "summarize",
    "summarize_directed",
    "degree_histogram",
    "powerlaw_exponent_estimate",
]


@dataclass(frozen=True)
class GraphSummary:
    """Headline statistics of an undirected graph (cf. paper Table 4)."""

    num_vertices: int
    num_edges: int
    max_degree: int
    mean_degree: float
    density: float

    def as_row(self) -> dict[str, float | int]:
        """Return the summary as a flat dict for table rendering."""
        return {
            "|V|": self.num_vertices,
            "|E|": self.num_edges,
            "d_max": self.max_degree,
            "mean_deg": round(self.mean_degree, 2),
            "rho": round(self.density, 3),
        }


@dataclass(frozen=True)
class DirectedGraphSummary:
    """Headline statistics of a directed graph (cf. paper Table 5)."""

    num_vertices: int
    num_edges: int
    max_out_degree: int
    max_in_degree: int
    mean_degree: float

    def as_row(self) -> dict[str, float | int]:
        """Return the summary as a flat dict for table rendering."""
        return {
            "|V|": self.num_vertices,
            "|E|": self.num_edges,
            "d+_max": self.max_out_degree,
            "d-_max": self.max_in_degree,
            "mean_deg": round(self.mean_degree, 2),
        }


def summarize(graph: UndirectedGraph) -> GraphSummary:
    """Compute a :class:`GraphSummary` for ``graph``."""
    n = graph.num_vertices
    degrees = graph.degrees()
    return GraphSummary(
        num_vertices=n,
        num_edges=graph.num_edges,
        max_degree=int(degrees.max(initial=0)),
        mean_degree=float(degrees.mean()) if n else 0.0,
        density=graph.density(),
    )


def summarize_directed(graph: DirectedGraph) -> DirectedGraphSummary:
    """Compute a :class:`DirectedGraphSummary` for ``graph``."""
    n = graph.num_vertices
    return DirectedGraphSummary(
        num_vertices=n,
        num_edges=graph.num_edges,
        max_out_degree=graph.max_out_degree(),
        max_in_degree=graph.max_in_degree(),
        mean_degree=(2.0 * graph.num_edges / n) if n else 0.0,
    )


def degree_histogram(graph: UndirectedGraph) -> np.ndarray:
    """Return ``hist`` where ``hist[k]`` counts vertices of degree k."""
    degrees = graph.degrees()
    return np.bincount(degrees, minlength=int(degrees.max(initial=0)) + 1)


def powerlaw_exponent_estimate(degrees: np.ndarray, d_min: int = 2) -> float:
    """Hill estimator of the power-law tail exponent of a degree sample.

    alpha_hat = 1 + k / sum(ln(d_i / (d_min - 1/2))) over degrees >= d_min.
    Returns NaN when fewer than two qualifying degrees exist.
    """
    tail = np.asarray(degrees, dtype=np.float64)
    tail = tail[tail >= d_min]
    if tail.size < 2:
        return float("nan")
    return float(1.0 + tail.size / np.log(tail / (d_min - 0.5)).sum())
