"""Shared mutable peeling state used by the serial peeling algorithms.

The CSR graphs are immutable, so "removing" a vertex or edge during peeling
is represented by alive-masks plus incrementally maintained degree arrays.
:class:`MinDegreeBucketQueue` is the classic Batagelj–Zaversnik bin-sort
structure giving O(m) full core decomposition and O(m + n) Charikar peeling.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from .directed import DirectedGraph
from .undirected import UndirectedGraph

__all__ = [
    "MinDegreeBucketQueue",
    "VertexPeelState",
    "DirectedPeelState",
]


class MinDegreeBucketQueue:
    """Bin-sorted vertex queue keyed by (decrease-only) degree.

    Vertices live in an array sorted by current key; ``pop_min`` removes a
    vertex of globally minimum key, ``decrease_key`` moves a vertex one
    bucket down in O(1).  This is the engine behind the O(m) core
    decomposition of Batagelj & Zaversnik used by several baselines.
    """

    def __init__(self, keys: np.ndarray):
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size and keys.min() < 0:
            raise GraphError("bucket queue keys must be non-negative")
        n = keys.size
        self._key = keys.copy()
        order = np.argsort(keys, kind="stable")
        self._vert = order.astype(np.int64)          # vertices sorted by key
        self._pos = np.empty(n, dtype=np.int64)      # position of v in _vert
        self._pos[order] = np.arange(n)
        max_key = int(keys.max(initial=0))
        counts = np.bincount(keys, minlength=max_key + 2)
        self._bin_start = np.zeros(max_key + 2, dtype=np.int64)
        np.cumsum(counts[:-1], out=self._bin_start[1:])
        self._head = 0                               # first not-yet-popped slot

    def __len__(self) -> int:
        return self._vert.size - self._head

    def key(self, v: int) -> int:
        """Return the current key of ``v``."""
        return int(self._key[v])

    def pop_min(self) -> tuple[int, int]:
        """Remove and return ``(vertex, key)`` with the minimum key."""
        if self._head >= self._vert.size:
            raise GraphError("pop from an empty bucket queue")
        v = int(self._vert[self._head])
        key = int(self._key[v])
        self._head += 1
        return v, key

    def peek_min_key(self) -> int:
        """Return the minimum key without popping."""
        if self._head >= self._vert.size:
            raise GraphError("peek on an empty bucket queue")
        return int(self._key[self._vert[self._head]])

    def decrease_key(self, v: int) -> None:
        """Decrease the key of ``v`` by one (no-op if already popped/zero)."""
        pos = self._pos[v]
        if pos < self._head:
            return  # already removed from the queue
        key = self._key[v]
        if key == 0:
            return
        bucket_front = max(int(self._bin_start[key]), self._head)
        front_vertex = int(self._vert[bucket_front])
        if front_vertex != v:
            # Swap v with the first vertex of its bucket.
            self._vert[bucket_front], self._vert[pos] = v, front_vertex
            self._pos[v], self._pos[front_vertex] = bucket_front, pos
        self._bin_start[key] = bucket_front + 1
        self._key[v] = key - 1


class VertexPeelState:
    """Alive-mask + degree tracking for undirected vertex peeling."""

    def __init__(self, graph: UndirectedGraph):
        self.graph = graph
        self.alive = np.ones(graph.num_vertices, dtype=bool)
        self.degree = graph.degrees().copy()
        self.num_alive_vertices = graph.num_vertices
        self.num_alive_edges = graph.num_edges

    def remove_vertex(self, v: int) -> int:
        """Remove ``v``; return the number of edges deleted with it."""
        if not self.alive[v]:
            return 0
        self.alive[v] = False
        self.num_alive_vertices -= 1
        removed = 0
        for u in self.graph.neighbors(v):
            if self.alive[u]:
                self.degree[u] -= 1
                removed += 1
        self.degree[v] = 0
        self.num_alive_edges -= removed
        return removed

    def remove_vertices(self, vertices: np.ndarray) -> int:
        """Remove a batch of vertices; return the number of edges deleted."""
        before = self.num_alive_edges
        for v in np.asarray(vertices).ravel():
            self.remove_vertex(int(v))
        return before - self.num_alive_edges

    def alive_vertices(self) -> np.ndarray:
        """Return the ids of the vertices still alive."""
        return np.flatnonzero(self.alive)

    def density(self) -> float:
        """Density |E|/|V| of the remaining subgraph (0 if empty)."""
        if self.num_alive_vertices == 0:
            return 0.0
        return self.num_alive_edges / self.num_alive_vertices


class DirectedPeelState:
    """S/T membership + alive-edge tracking for directed peeling.

    In the DDS setting a vertex may sit in S (as an edge source), in T (as a
    target), or both.  An edge (u, v) is alive iff ``u in S`` and ``v in T``.
    ``dout``/``din`` count alive incident edges, i.e. d^+_{H}(u), d^-_{H}(v)
    of the current (S, T)-induced subgraph H.
    """

    def __init__(self, graph: DirectedGraph):
        self.graph = graph
        self.in_s = np.ones(graph.num_vertices, dtype=bool)
        self.in_t = np.ones(graph.num_vertices, dtype=bool)
        self.edge_alive = np.ones(graph.num_edges, dtype=bool)
        self.dout = graph.out_degrees().copy()
        self.din = graph.in_degrees().copy()
        self.num_alive_edges = graph.num_edges

    def remove_from_s(self, u: int) -> int:
        """Drop ``u`` from S, killing its alive out-edges; return the count."""
        if not self.in_s[u]:
            return 0
        self.in_s[u] = False
        graph = self.graph
        removed = 0
        for slot in range(graph.out_indptr[u], graph.out_indptr[u + 1]):
            edge_id = graph.out_edge_ids[slot]
            if self.edge_alive[edge_id]:
                self.edge_alive[edge_id] = False
                self.din[graph.out_indices[slot]] -= 1
                removed += 1
        self.dout[u] = 0
        self.num_alive_edges -= removed
        return removed

    def remove_from_t(self, v: int) -> int:
        """Drop ``v`` from T, killing its alive in-edges; return the count."""
        if not self.in_t[v]:
            return 0
        self.in_t[v] = False
        graph = self.graph
        removed = 0
        for slot in range(graph.in_indptr[v], graph.in_indptr[v + 1]):
            edge_id = graph.in_edge_ids[slot]
            if self.edge_alive[edge_id]:
                self.edge_alive[edge_id] = False
                self.dout[graph.in_indices[slot]] -= 1
                removed += 1
        self.din[v] = 0
        self.num_alive_edges -= removed
        return removed

    def remove_edge(self, edge_id: int) -> bool:
        """Kill a single edge by id; return True if it was alive."""
        if not self.edge_alive[edge_id]:
            return False
        self.edge_alive[edge_id] = False
        self.dout[self.graph.edge_src[edge_id]] -= 1
        self.din[self.graph.edge_dst[edge_id]] -= 1
        self.num_alive_edges -= 1
        return True

    def s_vertices(self) -> np.ndarray:
        """Return S members that still have an alive out-edge."""
        return np.flatnonzero(self.in_s & (self.dout > 0))

    def t_vertices(self) -> np.ndarray:
        """Return T members that still have an alive in-edge."""
        return np.flatnonzero(self.in_t & (self.din > 0))

    def density(self) -> float:
        """rho(S, T) of the current non-isolated S/T sets (0 if empty)."""
        s_count = self.s_vertices().size
        t_count = self.t_vertices().size
        if s_count == 0 or t_count == 0:
            return 0.0
        return self.num_alive_edges / float(np.sqrt(s_count * t_count))
