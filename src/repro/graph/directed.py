"""Immutable dual-CSR representation of a simple directed graph.

Stores both an out-adjacency CSR (``out_indptr`` / ``out_indices``) and an
in-adjacency CSR (``in_indptr`` / ``in_indices``) so that both peeling
directions used by the DDS algorithms are O(degree).

Additionally each out-CSR slot carries the *edge id* of the corresponding
edge (``out_edge_ids``), and likewise for the in-CSR, so edge-indexed state
(alive masks, induce-numbers, weights) can be shared across both views.
Edge ids enumerate the rows of :meth:`DirectedGraph.edges`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from ..errors import GraphError
from ..store.compact import index_dtype
from ..store.csr import counting_sort_csr
from ..store.fingerprint import fingerprint_arrays

__all__ = ["DirectedGraph"]


class DirectedGraph:
    """A simple directed graph with out- and in-CSR plus edge ids."""

    __slots__ = (
        "out_indptr",
        "out_indices",
        "out_edge_ids",
        "in_indptr",
        "in_indices",
        "in_edge_ids",
        "_edge_src",
        "_edge_dst",
        "_scratch",
        "_fingerprint",
    )

    def __init__(self, num_vertices: int, edge_src: np.ndarray, edge_dst: np.ndarray):
        if num_vertices < 0:
            raise GraphError("num_vertices must be non-negative")
        edge_src = np.ascontiguousarray(edge_src, dtype=np.int64)
        edge_dst = np.ascontiguousarray(edge_dst, dtype=np.int64)
        if edge_src.shape != edge_dst.shape or edge_src.ndim != 1:
            raise GraphError("edge_src and edge_dst must be equal-length 1-D arrays")
        if edge_src.size and (
            min(edge_src.min(), edge_dst.min()) < 0
            or max(edge_src.max(), edge_dst.max()) >= num_vertices
        ):
            raise GraphError(
                f"edge endpoint out of range for a graph with {num_vertices} vertices"
            )
        n, m = num_vertices, edge_src.size
        # Auto-narrow every index-typed array (vertex ids, CSR offsets,
        # edge ids are all bounded by max(n, m); see repro.store.compact).
        dtype = index_dtype(n, max(n, m))
        self._edge_src = np.ascontiguousarray(edge_src, dtype=dtype)
        self._edge_dst = np.ascontiguousarray(edge_dst, dtype=dtype)

        # One stable radix pass per direction (repro.store.csr) instead
        # of the old two-key lexsorts; orderings are identical.
        self.out_indptr, self.out_indices, out_order = counting_sort_csr(
            n, edge_src, edge_dst, dtype=dtype
        )
        self.out_edge_ids = out_order.astype(dtype, copy=False)
        self.in_indptr, self.in_indices, in_order = counting_sort_csr(
            n, edge_dst, edge_src, dtype=dtype
        )
        self.in_edge_ids = in_order.astype(dtype, copy=False)
        # Lazily-built, read-only scratch buffers (degree views); owned
        # per instance so derived graphs always start with a fresh cache.
        self._scratch: dict[str, np.ndarray] = {}
        self._fingerprint: Optional[str] = None

    def _cached(self, key: str, build) -> np.ndarray:
        """Memoize a derived buffer; returned arrays are frozen read-only."""
        array = self._scratch.get(key)
        if array is None:
            array = build()
            array.setflags(write=False)
            self._scratch[key] = array
        return array

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, num_vertices: int, edges: Iterable[Sequence[int]] | np.ndarray
    ) -> "DirectedGraph":
        """Build a graph from (u, v) pairs meaning an edge u -> v.

        Self-loops are dropped and duplicate edges collapsed, matching the
        simple directed graphs used in the paper.

        >>> d = DirectedGraph.from_edges(3, [(0, 1), (0, 1), (1, 2), (2, 2)])
        >>> d.num_edges
        2
        """
        edge_array = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
        if edge_array.size == 0:
            edge_array = edge_array.reshape(0, 2)
        edge_array = edge_array.astype(np.int64, copy=False).reshape(-1, 2)
        if edge_array.size:
            if edge_array.min() < 0 or edge_array.max() >= num_vertices:
                raise GraphError(
                    f"edge endpoint out of range for a graph with {num_vertices} vertices"
                )
            edge_array = edge_array[edge_array[:, 0] != edge_array[:, 1]]
            edge_array = np.unique(edge_array, axis=0)
        return cls(num_vertices, edge_array[:, 0], edge_array[:, 1])

    @classmethod
    def empty(cls, num_vertices: int = 0) -> "DirectedGraph":
        """Return a graph with ``num_vertices`` vertices and no edges."""
        zero = np.empty(0, dtype=np.int64)
        return cls(num_vertices, zero, zero)

    @classmethod
    def _from_csr_arrays(
        cls,
        num_vertices: int,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        out_indptr: np.ndarray,
        out_indices: np.ndarray,
        out_edge_ids: np.ndarray,
        in_indptr: np.ndarray,
        in_indices: np.ndarray,
        in_edge_ids: np.ndarray,
    ) -> "DirectedGraph":
        """Adopt pre-built dual-CSR arrays (snapshot loads).

        Skips the per-direction sorts — the snapshot stores the exact
        arrays a fresh build would produce — but still checks the cheap
        structural invariants so a corrupted file cannot produce a graph
        with inconsistent views.
        """
        m = edge_src.size
        if (
            out_indptr.size != num_vertices + 1
            or in_indptr.size != num_vertices + 1
            or edge_dst.size != m
            or out_indices.size != m
            or in_indices.size != m
            or out_edge_ids.size != m
            or in_edge_ids.size != m
            or (m > 0 and (out_indptr[-1] != m or in_indptr[-1] != m))
        ):
            raise GraphError("inconsistent dual-CSR arrays")
        graph = cls.__new__(cls)
        graph._edge_src = np.ascontiguousarray(edge_src)
        graph._edge_dst = np.ascontiguousarray(edge_dst)
        graph.out_indptr = np.ascontiguousarray(out_indptr)
        graph.out_indices = np.ascontiguousarray(out_indices)
        graph.out_edge_ids = np.ascontiguousarray(out_edge_ids)
        graph.in_indptr = np.ascontiguousarray(in_indptr)
        graph.in_indices = np.ascontiguousarray(in_indices)
        graph.in_edge_ids = np.ascontiguousarray(in_edge_ids)
        graph._scratch = {}
        graph._fingerprint = None
        return graph

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self.out_indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``m``."""
        return self._edge_src.size

    def edges(self) -> np.ndarray:
        """Return all edges as an (m, 2) array in edge-id order."""
        return np.stack([self._edge_src, self._edge_dst], axis=1)

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Yield (u, v) tuples in edge-id order.

        Debugging convenience only: one Python tuple per edge. Hot paths
        should use the vectorised :meth:`edges` array instead.
        """
        for u, v in zip(self._edge_src, self._edge_dst):
            yield int(u), int(v)

    @property
    def edge_src(self) -> np.ndarray:
        """Source vertex of every edge, indexed by edge id."""
        return self._edge_src

    @property
    def edge_dst(self) -> np.ndarray:
        """Destination vertex of every edge, indexed by edge id."""
        return self._edge_dst

    def out_degrees(self) -> np.ndarray:
        """Return all out-degrees (cached, read-only)."""
        return self._cached("out_degrees", lambda: np.diff(self.out_indptr))

    def in_degrees(self) -> np.ndarray:
        """Return all in-degrees (cached, read-only)."""
        return self._cached("in_degrees", lambda: np.diff(self.in_indptr))

    def out_degree(self, v: int) -> int:
        """Return the out-degree of vertex ``v``."""
        return int(self.out_indptr[v + 1] - self.out_indptr[v])

    def in_degree(self, v: int) -> int:
        """Return the in-degree of vertex ``v``."""
        return int(self.in_indptr[v + 1] - self.in_indptr[v])

    def max_out_degree(self) -> int:
        """Return the maximum out-degree (0 when edgeless)."""
        return int(self.out_degrees().max(initial=0)) if self.num_vertices else 0

    def max_in_degree(self) -> int:
        """Return the maximum in-degree (0 when edgeless)."""
        return int(self.in_degrees().max(initial=0)) if self.num_vertices else 0

    def max_degree(self) -> int:
        """Return d_max = max over vertices of max(out-degree, in-degree)."""
        return max(self.max_out_degree(), self.max_in_degree())

    def out_neighbors(self, v: int) -> np.ndarray:
        """Return the sorted out-neighbour ids of ``v``."""
        return self.out_indices[self.out_indptr[v]:self.out_indptr[v + 1]]

    def in_neighbors(self, v: int) -> np.ndarray:
        """Return the sorted in-neighbour ids of ``v``."""
        return self.in_indices[self.in_indptr[v]:self.in_indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Return True iff the edge u -> v is present."""
        nbrs = self.out_neighbors(u)
        pos = np.searchsorted(nbrs, v)
        return bool(pos < nbrs.size and nbrs[pos] == v)

    def density(self, s: Iterable[int], t: Iterable[int]) -> float:
        """Return rho(S, T) = |E(S, T)| / sqrt(|S| |T|) (Definition 3).

        Returns 0.0 when either set is empty.
        """
        s_set = np.zeros(self.num_vertices, dtype=bool)
        t_set = np.zeros(self.num_vertices, dtype=bool)
        s_ids = np.asarray(list(s) if not isinstance(s, np.ndarray) else s, dtype=np.int64)
        t_ids = np.asarray(list(t) if not isinstance(t, np.ndarray) else t, dtype=np.int64)
        if s_ids.size == 0 or t_ids.size == 0:
            return 0.0
        s_set[s_ids] = True
        t_set[t_ids] = True
        count = int(np.count_nonzero(s_set[self._edge_src] & t_set[self._edge_dst]))
        return count / float(np.sqrt(np.count_nonzero(s_set) * np.count_nonzero(t_set)))

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subgraph_from_edge_mask(self, edge_mask: np.ndarray) -> "DirectedGraph":
        """Return a graph on the same vertex set keeping masked edge ids."""
        if edge_mask.shape[0] != self.num_edges:
            raise GraphError("edge mask length must equal num_edges")
        return DirectedGraph(
            self.num_vertices, self._edge_src[edge_mask], self._edge_dst[edge_mask]
        )

    def induced_subgraph(
        self, vertices: Iterable[int] | np.ndarray
    ) -> tuple["DirectedGraph", np.ndarray]:
        """Return ``(subgraph, original_ids)`` induced by ``vertices``."""
        keep = np.unique(
            np.asarray(list(vertices) if not isinstance(vertices, np.ndarray) else vertices, dtype=np.int64)
        )
        if keep.size and (keep[0] < 0 or keep[-1] >= self.num_vertices):
            raise GraphError("induced vertex id out of range")
        new_id = np.full(self.num_vertices, -1, dtype=np.int64)
        new_id[keep] = np.arange(keep.size)
        mask = (new_id[self._edge_src] >= 0) & (new_id[self._edge_dst] >= 0)
        return (
            DirectedGraph(keep.size, new_id[self._edge_src[mask]], new_id[self._edge_dst[mask]]),
            keep,
        )

    def st_induced_subgraph(
        self, s: Iterable[int], t: Iterable[int]
    ) -> "DirectedGraph":
        """Return the (S, T)-induced subgraph on the original vertex ids.

        Keeps exactly the edges from S to T (Section III-A).
        """
        s_set = np.zeros(self.num_vertices, dtype=bool)
        t_set = np.zeros(self.num_vertices, dtype=bool)
        s_ids = np.asarray(list(s) if not isinstance(s, np.ndarray) else s, dtype=np.int64)
        t_ids = np.asarray(list(t) if not isinstance(t, np.ndarray) else t, dtype=np.int64)
        if s_ids.size:
            s_set[s_ids] = True
        if t_ids.size:
            t_set[t_ids] = True
        mask = s_set[self._edge_src] & t_set[self._edge_dst]
        return self.subgraph_from_edge_mask(mask)

    def reversed(self) -> "DirectedGraph":
        """Return the graph with every edge direction flipped."""
        return DirectedGraph(self.num_vertices, self._edge_dst, self._edge_src)

    def to_undirected(self) -> "UndirectedGraph":
        """Return the underlying undirected graph (edge directions erased)."""
        from .undirected import UndirectedGraph

        return UndirectedGraph.from_edges(self.num_vertices, self.edges())

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DirectedGraph):
            return NotImplemented
        if self.num_vertices != other.num_vertices:
            return False
        mine = self.edges()
        theirs = other.edges()
        if mine.shape != theirs.shape:
            return False
        order_a = np.lexsort((mine[:, 1], mine[:, 0]))
        order_b = np.lexsort((theirs[:, 1], theirs[:, 0]))
        return bool(np.array_equal(mine[order_a], theirs[order_b]))

    def __hash__(self) -> int:  # pragma: no cover - identity hashing only
        return id(self)

    def __repr__(self) -> str:
        return f"DirectedGraph(n={self.num_vertices}, m={self.num_edges})"

    def fingerprint(self) -> str:
        """Stable content hash of the graph structure (cached).

        Hashes the edge-id-ordered arc arrays, from which both CSR
        views are a deterministic function; the engine's result cache
        keys on this.
        """
        if self._fingerprint is None:
            self._fingerprint = fingerprint_arrays(
                "directed", self.num_vertices, self._edge_src, self._edge_dst
            )
        return self._fingerprint

    def memory_bytes(self, include_scratch: bool = True) -> int:
        """Resident size in bytes of the dual-CSR arrays.

        By default this includes the lazily-built scratch buffers
        (``out_degrees``/``in_degrees``) currently cached on the
        instance. Pass ``include_scratch=False`` for the bare size.
        """
        arrays = (
            self.out_indptr,
            self.out_indices,
            self.out_edge_ids,
            self.in_indptr,
            self.in_indices,
            self.in_edge_ids,
            self._edge_src,
            self._edge_dst,
        )
        total = int(sum(a.nbytes for a in arrays))
        if include_scratch:
            total += sum(a.nbytes for a in self._scratch.values())
        return total
