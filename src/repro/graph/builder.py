"""Incremental edge-list builders for both graph types.

The CSR graph classes are immutable; these builders collect edges (with
amortised O(1) appends into growing NumPy buffers) and produce a graph once.
They also handle string/arbitrary vertex labels by interning them to dense
integer ids, which the loaders in :mod:`repro.graph.io` rely on.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from ..errors import GraphError
from .directed import DirectedGraph
from .undirected import UndirectedGraph

__all__ = ["GraphBuilder", "DirectedGraphBuilder"]

_INITIAL_CAPACITY = 1024


class _EdgeBuffer:
    """Append-only (src, dst) buffer with geometric growth."""

    def __init__(self) -> None:
        self._src = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._dst = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._size = 0

    def append(self, u: int, v: int) -> None:
        if self._size == self._src.size:
            new_cap = self._src.size * 2
            self._src = np.resize(self._src, new_cap)
            self._dst = np.resize(self._dst, new_cap)
        self._src[self._size] = u
        self._dst[self._size] = v
        self._size += 1

    def extend(self, edges: np.ndarray) -> None:
        count = edges.shape[0]
        needed = self._size + count
        if needed > self._src.size:
            new_cap = max(needed, self._src.size * 2)
            self._src = np.resize(self._src, new_cap)
            self._dst = np.resize(self._dst, new_cap)
        self._src[self._size:needed] = edges[:, 0]
        self._dst[self._size:needed] = edges[:, 1]
        self._size = needed

    def view(self) -> np.ndarray:
        return np.stack([self._src[: self._size], self._dst[: self._size]], axis=1)

    def __len__(self) -> int:
        return self._size


class _LabelInterner:
    """Maps arbitrary hashable labels to dense ids 0..n-1.

    Labels are compared by dict semantics (``hash`` + ``==``), never by
    textual rendering: the int ``1`` and the string ``"1"`` are distinct
    vertices, while ``True`` and ``1`` (equal and hash-equal in Python)
    intern to one vertex whose label is whichever token appeared first.
    The text readers never mix types — every parsed token is interned as
    ``str`` — so this only matters for programmatic ``add_edge`` calls.
    """

    def __init__(self) -> None:
        self._ids: dict[Hashable, int] = {}
        self._labels: list[Hashable] = []

    def intern(self, label: Hashable) -> int:
        existing = self._ids.get(label)
        if existing is not None:
            return existing
        new_id = len(self._labels)
        self._ids[label] = new_id
        self._labels.append(label)
        return new_id

    @property
    def labels(self) -> list[Hashable]:
        return self._labels

    def __len__(self) -> int:
        return len(self._labels)


class GraphBuilder:
    """Accumulates undirected edges and produces an :class:`UndirectedGraph`.

    >>> b = GraphBuilder()
    >>> b.add_edge("a", "b").add_edge("b", "c")  # doctest: +ELLIPSIS
    <repro.graph.builder.GraphBuilder object at ...>
    >>> g, labels = b.build_with_labels()
    >>> g.num_edges, labels
    (2, ['a', 'b', 'c'])
    """

    def __init__(self) -> None:
        self._buffer = _EdgeBuffer()
        self._interner = _LabelInterner()
        self._explicit_n: int | None = None

    def add_edge(self, u: Hashable, v: Hashable) -> "GraphBuilder":
        """Add an undirected edge between two (possibly labelled) vertices."""
        self._buffer.append(self._interner.intern(u), self._interner.intern(v))
        return self

    def add_edges_from_ids(self, edges: np.ndarray, num_vertices: int) -> "GraphBuilder":
        """Bulk-add edges that already use integer ids in [0, num_vertices)."""
        if len(self._interner):
            raise GraphError("cannot mix labelled and pre-numbered edges")
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        self._buffer.extend(edges)
        self._explicit_n = max(self._explicit_n or 0, num_vertices)
        return self

    def num_pending_edges(self) -> int:
        """Return the number of edges added so far (before dedup)."""
        return len(self._buffer)

    def build(self) -> UndirectedGraph:
        """Return the accumulated graph."""
        n = self._explicit_n if self._explicit_n is not None else len(self._interner)
        return UndirectedGraph.from_edges(n, self._buffer.view())

    def build_with_labels(self) -> tuple[UndirectedGraph, list[Hashable]]:
        """Return ``(graph, labels)`` where labels[i] is vertex i's label."""
        return self.build(), self._interner.labels


class DirectedGraphBuilder:
    """Accumulates directed edges and produces a :class:`DirectedGraph`."""

    def __init__(self) -> None:
        self._buffer = _EdgeBuffer()
        self._interner = _LabelInterner()
        self._explicit_n: int | None = None

    def add_edge(self, u: Hashable, v: Hashable) -> "DirectedGraphBuilder":
        """Add a directed edge u -> v between (possibly labelled) vertices."""
        self._buffer.append(self._interner.intern(u), self._interner.intern(v))
        return self

    def add_edges_from_ids(
        self, edges: np.ndarray, num_vertices: int
    ) -> "DirectedGraphBuilder":
        """Bulk-add edges that already use integer ids in [0, num_vertices)."""
        if len(self._interner):
            raise GraphError("cannot mix labelled and pre-numbered edges")
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        self._buffer.extend(edges)
        self._explicit_n = max(self._explicit_n or 0, num_vertices)
        return self

    def num_pending_edges(self) -> int:
        """Return the number of edges added so far (before dedup)."""
        return len(self._buffer)

    def build(self) -> DirectedGraph:
        """Return the accumulated graph."""
        n = self._explicit_n if self._explicit_n is not None else len(self._interner)
        return DirectedGraph.from_edges(n, self._buffer.view())

    def build_with_labels(self) -> tuple[DirectedGraph, list[Hashable]]:
        """Return ``(graph, labels)`` where labels[i] is vertex i's label."""
        return self.build(), self._interner.labels
