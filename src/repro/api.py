"""High-level entry points for densest-subgraph discovery.

These are the two functions a downstream user calls; every algorithm in
the library is reachable through the ``method`` parameter, with the
paper's parallel algorithms (PKMC, PWC) as defaults.  Both dispatch
through :func:`repro.engine.run`, so every result carries a structured
:class:`~repro.engine.report.RunReport` in ``.report``.

>>> from repro import densest_subgraph
>>> from repro.graph import UndirectedGraph
>>> g = UndirectedGraph.from_edges(5, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)])
>>> result = densest_subgraph(g)
>>> sorted(result.vertices.tolist())
[0, 1, 2]
"""

from __future__ import annotations

from .core.results import DDSResult, UDSResult
from .engine import ExecutionContext, get_solver, methods_view
from .engine import run as _engine_run

__all__ = [
    "densest_subgraph",
    "directed_densest_subgraph",
    "UDS_METHODS",
    "DDS_METHODS",
]

#: Live view of the registered UDS solvers.
#:
#: .. deprecated:: kept as a compatibility shim over the solver registry;
#:    use :func:`repro.engine.get_solver` / :func:`repro.engine.run` (or
#:    ``repro-dsd --list-methods``) in new code.
UDS_METHODS = methods_view("uds")

#: Live view of the registered DDS solvers (same deprecation note as
#: :data:`UDS_METHODS`).
DDS_METHODS = methods_view("dds")


def densest_subgraph(
    graph,
    method: str = "pkmc",
    num_threads: int = 1,
    **options,
) -> UDSResult:
    """Find a densest subgraph of an undirected graph.

    ``method`` selects the algorithm (see ``repro-dsd --list-methods`` or
    :data:`UDS_METHODS`); the default PKMC is the paper's parallel
    2-approximation.  ``num_threads`` configures the simulated parallel
    runtime; extra keyword ``options`` are forwarded to the algorithm
    (e.g. ``epsilon`` for ``"pbu"``).  A ``runtime=`` option is honoured
    for runtime-capable solvers and ignored by serial ones, exactly as
    :func:`repro.engine.run` documents.
    """
    spec = get_solver("uds", method)
    ctx = ExecutionContext(num_threads=num_threads)
    return _engine_run(spec, graph, ctx, **options)


def directed_densest_subgraph(
    graph,
    method: str = "pwc",
    num_threads: int = 1,
    **options,
) -> DDSResult:
    """Find a densest (S, T)-subgraph of a directed graph.

    ``method`` selects the algorithm (see ``repro-dsd --list-methods`` or
    :data:`DDS_METHODS`); the default PWC is the paper's parallel
    2-approximation based on the w*-induced subgraph.
    """
    spec = get_solver("dds", method)
    ctx = ExecutionContext(num_threads=num_threads)
    return _engine_run(spec, graph, ctx, **options)
