"""High-level entry points for densest-subgraph discovery.

These are the two functions a downstream user calls; every algorithm in
the library is reachable through the ``method`` parameter, with the
paper's parallel algorithms (PKMC, PWC) as defaults.

>>> from repro import densest_subgraph
>>> from repro.graph import UndirectedGraph
>>> g = UndirectedGraph.from_edges(5, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)])
>>> result = densest_subgraph(g)
>>> sorted(result.vertices.tolist())
[0, 1, 2]
"""

from __future__ import annotations

from typing import Callable

from .algorithms.directed import (
    brute_force_dds,
    exact_dds_flow,
    pbd_dds,
    pbs_dds,
    pfks_dds,
    pfw_directed_dds,
    pxy_dds,
)
from .algorithms.undirected import (
    brute_force_uds,
    charikar_peel,
    coreexact_uds,
    exact_uds_goldberg,
    greedypp_uds,
    kstar_binary_search_uds,
    local_uds,
    max_truss_uds,
    pbu_uds,
    pfw_uds,
    pkc_uds,
)
from .core.pkmc import pkmc
from .core.pwc import pwc
from .core.results import DDSResult, UDSResult
from .errors import AlgorithmError
from .graph.directed import DirectedGraph
from .graph.undirected import UndirectedGraph
from .runtime.simruntime import SimRuntime

__all__ = [
    "densest_subgraph",
    "directed_densest_subgraph",
    "UDS_METHODS",
    "DDS_METHODS",
]

UDS_METHODS: dict[str, Callable[..., UDSResult]] = {
    "pkmc": pkmc,
    "local": local_uds,
    "pkc": pkc_uds,
    "pbu": pbu_uds,
    "pfw": pfw_uds,
    "charikar": charikar_peel,
    "greedypp": greedypp_uds,
    "exact": exact_uds_goldberg,
    "core-exact": coreexact_uds,
    "binary-search": kstar_binary_search_uds,
    "max-truss": max_truss_uds,
    "brute-force": brute_force_uds,
}

DDS_METHODS: dict[str, Callable[..., DDSResult]] = {
    "pwc": pwc,
    "pxy": pxy_dds,
    "pbd": pbd_dds,
    "pfw": pfw_directed_dds,
    "pbs": pbs_dds,
    "pfks": pfks_dds,
    "exact": exact_dds_flow,
    "brute-force": brute_force_dds,
}

_NO_RUNTIME_METHODS = {"exact", "brute-force", "core-exact", "max-truss"}


def densest_subgraph(
    graph: UndirectedGraph,
    method: str = "pkmc",
    num_threads: int = 1,
    **options,
) -> UDSResult:
    """Find a densest subgraph of an undirected graph.

    ``method`` selects the algorithm (see :data:`UDS_METHODS`); the
    default PKMC is the paper's parallel 2-approximation.  ``num_threads``
    configures the simulated parallel runtime; extra keyword ``options``
    are forwarded to the algorithm (e.g. ``epsilon`` for ``"pbu"``).
    """
    solver = UDS_METHODS.get(method)
    if solver is None:
        raise AlgorithmError(
            f"unknown UDS method {method!r}; choose from {sorted(UDS_METHODS)}"
        )
    runtime = options.pop("runtime", None)
    if method in _NO_RUNTIME_METHODS:
        # Serial solvers take no runtime; a caller-provided one (e.g. the
        # CLI's --sanitize) is accepted and simply has nothing to observe.
        return solver(graph, **options)
    runtime = runtime or SimRuntime(num_threads=num_threads)
    return solver(graph, runtime=runtime, **options)


def directed_densest_subgraph(
    graph: DirectedGraph,
    method: str = "pwc",
    num_threads: int = 1,
    **options,
) -> DDSResult:
    """Find a densest (S, T)-subgraph of a directed graph.

    ``method`` selects the algorithm (see :data:`DDS_METHODS`); the
    default PWC is the paper's parallel 2-approximation based on the
    w*-induced subgraph.
    """
    solver = DDS_METHODS.get(method)
    if solver is None:
        raise AlgorithmError(
            f"unknown DDS method {method!r}; choose from {sorted(DDS_METHODS)}"
        )
    runtime = options.pop("runtime", None)
    if method in _NO_RUNTIME_METHODS:
        # Serial solvers take no runtime; a caller-provided one (e.g. the
        # CLI's --sanitize) is accepted and simply has nothing to observe.
        return solver(graph, **options)
    runtime = runtime or SimRuntime(num_threads=num_threads)
    return solver(graph, runtime=runtime, **options)
