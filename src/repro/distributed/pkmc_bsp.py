"""Distributed PKMC on the simulated BSP cluster (future work, realised).

PKMC is naturally vertex-centric — the h-index update reads only
neighbour values — so the Pregel port is direct:

* **superstep 0**: every vertex initialises h(v) = d(v) and messages its
  value to its neighbours;
* **superstep t**: every vertex that received messages recomputes its
  h-index from the latest neighbour values; vertices whose value
  *changed* message the new value to their neighbours (the standard
  Pregel "halt until woken" optimisation — unchanged vertices stay
  silent and cost nothing);
* a global aggregator tracks (h_max, count-at-h_max) each superstep and
  fires the paper's Theorem-1 early stop exactly as in shared memory.

Messages to same-worker neighbours are free; only cross-partition
messages pay network cost, so the partition's cross-edge fraction drives
the communication bill — the quantity a real GraphX port would tune.
"""

from __future__ import annotations

import numpy as np

from ..core.results import UDSResult
from ..engine.spec import register_solver
from ..errors import EmptyGraphError
from ..graph.undirected import UndirectedGraph
from ..kernels.density import induced_density
from ..kernels.frontier import frontier_synchronous_sweep
from ..runtime.simruntime import SimRuntime
from .cluster import BSPCluster, ClusterConfig

__all__ = ["distributed_pkmc"]

_H_UPDATE_UNITS = 4.0


def _cross_neighbor_counts(graph: UndirectedGraph, owner: np.ndarray) -> np.ndarray:
    """Per-vertex count of neighbours living on a different worker."""
    heads = graph.heads()
    cross = owner[heads] != owner[graph.indices]
    counts = np.zeros(graph.num_vertices, dtype=np.int64)
    np.add.at(counts, heads[cross], 1)
    return counts


@register_solver(
    "pkmc-bsp", kind="uds", guarantee="2-approx", cost="bsp",
    supports_cluster=True, supports_sanitize=True, supports_shards=True,
)
def distributed_pkmc(
    graph: UndirectedGraph,
    config: ClusterConfig | None = None,
    early_stop: bool = True,
    max_supersteps: int | None = None,
    sanitize: bool = False,
) -> UDSResult:
    """Run PKMC as a vertex-centric BSP program; return the k*-core.

    The returned :class:`UDSResult` carries the simulated cluster time in
    ``simulated_seconds`` and, in ``extras``: the superstep count, total
    messages, and the partition's cross-edge fraction.

    ``sanitize=True`` routes every superstep's h-recomputation through
    the parfor race sanitizer.  The BSP port charges all costs to the
    simulated *cluster*, not to a SimRuntime, so it drives a local
    sanitizing runtime of its own — the cluster clock, supersteps and
    results are unchanged; the sweep kernels are simply executed under
    :meth:`~repro.runtime.simruntime.SimRuntime.observe_parfor`.  This
    is the kwarg the engine forwards for ``repro-dsd --sanitize``
    (declared ``supports_sanitize`` matches what the contract verifier
    infers from the sweep's dataflow).

    A :class:`~repro.store.shard.ShardedGraph` input runs the same
    program out-of-core (one worker per shard, boundary h-value exchange
    from the shard manifests) via
    :func:`~repro.distributed.sharded.sharded_pkmc` — identical core,
    density and superstep trace; only the cost model's partition differs.
    """
    from ..store.shard import ShardedGraph

    if isinstance(graph, ShardedGraph):
        from .sharded import sharded_pkmc

        return sharded_pkmc(
            graph,
            config=config,
            early_stop=early_stop,
            max_supersteps=max_supersteps,
            sanitize=sanitize,
        )
    if graph.num_edges == 0:
        raise EmptyGraphError("UDS is undefined on a graph without edges")
    sanitizer = SimRuntime(sanitize=True) if sanitize else None
    cluster = BSPCluster(graph, config)
    cross_counts = _cross_neighbor_counts(graph, cluster.owner)
    degrees = graph.degrees().astype(np.float64)
    limit = max_supersteps if max_supersteps is not None else graph.num_vertices + 2

    h = graph.degrees().astype(np.int64)
    h_max = int(h.max())
    count_at_max = int(np.count_nonzero(h == h_max))
    # Superstep 0: initialise h = degree, send to all neighbours.
    cluster.superstep(
        compute_units_per_vertex=np.full(graph.num_vertices, 2.0),
        message_counts_per_vertex=cross_counts.astype(np.float64),
    )

    supersteps = 1
    # Frontier of vertices that received a message last superstep; None
    # means everyone (superstep 0 messaged all neighbours).
    frontier: np.ndarray | None = None
    early_stop_fired = False
    history = [(h_max, count_at_max)]
    while supersteps < limit:
        # Work: only vertices that received a message recompute — exactly
        # the frontier the sweep kernel tracks (neighbours of vertices
        # that changed last superstep).
        new_h, woken = frontier_synchronous_sweep(
            graph, h, frontier=frontier, runtime=sanitizer
        )
        changed = new_h < h
        if frontier is None:
            compute = degrees + _H_UPDATE_UNITS
        else:
            compute = np.zeros(graph.num_vertices, dtype=np.float64)
            compute[frontier] = degrees[frontier] + _H_UPDATE_UNITS
        messages = np.where(changed, cross_counts, 0).astype(np.float64)
        cluster.superstep(compute, messages)
        supersteps += 1

        new_h_max = int(new_h.max())
        new_count = int(np.count_nonzero(new_h == new_h_max))
        history.append((new_h_max, new_count))
        guard_blocks = new_count <= new_h_max
        if (
            early_stop
            and not guard_blocks
            and new_h_max == h_max
            and new_count == count_at_max
        ):
            h = new_h
            early_stop_fired = True
            break
        # Next superstep: only neighbours of changed vertices recompute.
        h, h_max, count_at_max = new_h, new_h_max, new_count
        frontier = woken
        if woken.size == 0:
            break

    core_vertices = np.flatnonzero(h == int(h.max()))
    density = induced_density(graph, core_vertices)
    return UDSResult(
        algorithm="PKMC-BSP",
        vertices=core_vertices,
        density=density,
        iterations=supersteps,
        k_star=int(h.max()),
        simulated_seconds=cluster.now,
        extras={
            "supersteps": cluster.supersteps,
            "total_messages": cluster.total_messages,
            "cross_edge_fraction": cluster.cross_edge_fraction(),
            "early_stop_fired": early_stop_fired,
            "history": history,
            "num_workers": cluster.config.num_workers,
        },
    )
