"""Distributed PWC on the simulated BSP cluster (future work, realised).

Algorithm 3's edge peeling is also message-driven: an edge's weight
d⁺(u)·d⁻(v) changes only when one endpoint loses an edge, so a Pregel
port keeps each vertex's out/in-degree as vertex state and propagates
*degree-change* messages:

* **superstep 0**: every vertex learns its degrees; edges with weight
  below the d_max prune threshold are scheduled for deletion;
* **superstep t**: each vertex applies the deletions it owns, decrements
  its degrees, and messages its new degree to the affected remote
  neighbours; edges whose refreshed weight drops to the current level w
  join the next deletion wave; when a level drains, a global aggregator
  finds the next minimum weight (one extra round per level).

As with the shared-memory version, the final non-empty level is the
w*-induced subgraph; cn-pair extraction then runs on that small remnant
(cheap enough to centralise on one worker, as a GraphX driver would).
"""

from __future__ import annotations

import numpy as np

from ..core.pwc import derive_cn_pair_collapse, derive_cn_pair_divisor
from ..core.results import DDSResult
from ..core.winduced import WStarResult
from ..core.xycore import xy_core
from ..engine.spec import register_solver
from ..errors import EmptyGraphError
from ..graph.directed import DirectedGraph
from .cluster import ClusterConfig

__all__ = ["distributed_pwc"]


class _EdgeBSPAccountant:
    """Superstep accounting for edge-centric peeling on a directed graph.

    Mirrors :class:`~repro.distributed.cluster.BSPCluster` (which is
    vertex-centric over an undirected graph) for the directed case:
    an edge (u, v) is owned by u's worker; deleting it sends one degree
    message to v's worker when the two differ.
    """

    def __init__(self, graph: DirectedGraph, config: ClusterConfig):
        self.config = config
        self.owner = np.arange(graph.num_vertices) % config.num_workers
        self.src_owner = self.owner[graph.edge_src]
        self.dst_owner = self.owner[graph.edge_dst]
        self.now = 0.0
        self.supersteps = 0
        self.total_messages = 0

    def superstep(self, scanned_edge_ids: np.ndarray, deleted_edge_ids: np.ndarray) -> None:
        config = self.config
        scan_work = np.bincount(
            self.src_owner[scanned_edge_ids], minlength=config.num_workers
        ).astype(np.float64)
        cross = self.src_owner[deleted_edge_ids] != self.dst_owner[deleted_edge_ids]
        messages = np.bincount(
            self.src_owner[deleted_edge_ids[cross]], minlength=config.num_workers
        ).astype(np.float64)
        compute_seconds = float(scan_work.max(initial=0.0) * 3.0) * config.work_unit_seconds
        network_seconds = (
            float(messages.max(initial=0.0)) * config.bytes_per_message
            / config.network_bandwidth_bytes_per_s
            + config.network_latency_seconds
        )
        self.now += (
            compute_seconds
            + network_seconds
            + config.barrier_seconds
            + config.aggregator_seconds
        )
        self.supersteps += 1
        self.total_messages += int(np.count_nonzero(cross))

    def cross_edge_fraction(self) -> float:
        """Fraction of edges whose endpoints live on different workers."""
        if self.src_owner.size == 0:
            return 0.0
        return float(np.mean(self.src_owner != self.dst_owner))


@register_solver(
    "pwc-bsp", kind="dds", guarantee="2-approx", cost="bsp",
    supports_cluster=True, supports_shards=True,
)
def distributed_pwc(
    graph: DirectedGraph,
    config: ClusterConfig | None = None,
    start_at_dmax: bool = True,
) -> DDSResult:
    """Run PWC's w*-peeling as a BSP program; return the [x*, y*]-core.

    The answer is identical to shared-memory :func:`repro.core.pwc`;
    ``simulated_seconds`` is the cluster time and ``extras`` carries the
    superstep/message counters plus the usual Table-7 sizes.

    A :class:`~repro.store.shard.ShardedGraph` input streams the same
    peeling waves shard by shard
    (:func:`~repro.distributed.sharded.sharded_pwc`) — identical w*,
    levels and [x*, y*]-core; only the cost model's partition differs.
    """
    from ..store.shard import ShardedGraph

    if isinstance(graph, ShardedGraph):
        from .sharded import sharded_pwc

        return sharded_pwc(graph, config=config, start_at_dmax=start_at_dmax)
    if graph.num_edges == 0:
        raise EmptyGraphError("DDS is undefined on a graph without edges")
    cluster = _EdgeBSPAccountant(graph, config or ClusterConfig())
    src, dst = graph.edge_src, graph.edge_dst
    alive = np.ones(graph.num_edges, dtype=bool)
    dout = graph.out_degrees().copy()
    din = graph.in_degrees().copy()

    def cascade(threshold: int, strict: bool) -> None:
        while True:
            alive_ids = np.flatnonzero(alive)
            if alive_ids.size == 0:
                return
            weights = dout[src[alive_ids]] * din[dst[alive_ids]]
            bad = weights < threshold if strict else weights <= threshold
            dead_ids = alive_ids[bad]
            cluster.superstep(alive_ids, dead_ids)
            if dead_ids.size == 0:
                return
            alive[dead_ids] = False
            np.subtract.at(dout, src[dead_ids], 1)
            np.subtract.at(din, dst[dead_ids], 1)

    if start_at_dmax:
        cascade(graph.max_degree(), strict=True)
    size_after_prune = int(np.count_nonzero(alive))

    snapshot = alive.copy()
    w_star = 0
    levels = 0
    while True:
        alive_ids = np.flatnonzero(alive)
        if alive_ids.size == 0:
            break
        weights = dout[src[alive_ids]] * din[dst[alive_ids]]
        w_cur = int(weights.min())
        snapshot = alive.copy()
        w_star = w_cur
        levels += 1
        cascade(w_cur, strict=False)

    wstar = WStarResult(
        edge_mask=snapshot,
        w_star=w_star,
        rounds=cluster.supersteps,
        size_after_prune=size_after_prune,
        size_wstar=int(np.count_nonzero(snapshot)),
    )
    # cn-pair extraction on the (small) remnant, centralised on one worker
    # as a driver-side step; the cost is negligible next to the peeling.
    pair = derive_cn_pair_collapse(graph, wstar)
    core = None
    if pair is not None:
        x, y = pair
        core = xy_core(graph, x, y, edge_mask=wstar.edge_mask)
        if not core.exists:
            core = None
    if core is None:
        x, y, core = derive_cn_pair_divisor(graph, wstar)
    return DDSResult(
        algorithm="PWC-BSP",
        s=core.s,
        t=core.t,
        density=core.density(),
        x=x,
        y=y,
        w_star=w_star,
        iterations=levels,
        simulated_seconds=cluster.now,
        extras={
            "supersteps": cluster.supersteps,
            "total_messages": cluster.total_messages,
            "cross_edge_fraction": cluster.cross_edge_fraction(),
            "size_first": size_after_prune,
            "size_wstar": wstar.size_wstar,
            "num_workers": cluster.config.num_workers,
        },
    )
