"""Simulated distributed (BSP/Pregel) execution — the paper's future work.

The conclusion of the paper proposes porting the algorithms to a
distributed platform such as GraphX for graphs that exceed one machine.
This package realises that direction in simulation: a deterministic BSP
cluster model and a vertex-centric port of PKMC, so the shared-memory vs.
distributed trade-off (communication per superstep vs. per-core work) can
be studied quantitatively.  See ``examples/distributed_study.py``.
"""

from .cluster import BSPCluster, ClusterConfig, Partition
from .pkmc_bsp import distributed_pkmc
from .pwc_bsp import distributed_pwc
from .sharded import (
    ShardedBSPAccountant,
    ShardedPartition,
    sharded_pkmc,
    sharded_pwc,
)

__all__ = [
    "BSPCluster",
    "ClusterConfig",
    "Partition",
    "ShardedBSPAccountant",
    "ShardedPartition",
    "distributed_pkmc",
    "distributed_pwc",
    "sharded_pkmc",
    "sharded_pwc",
]
