"""Simulated BSP cluster (the paper's GraphX future-work direction).

The paper's conclusion proposes porting PKMC/PWC to a distributed
platform "when the graph is too large to be kept by a single machine".
This package provides the substrate for that study: a deterministic
bulk-synchronous-parallel (BSP / Pregel-style) cluster simulation in the
same spirit as :class:`~repro.runtime.SimRuntime` — vertex-centric
programs execute their kernels once, while the cluster model charges per
superstep:

    T_superstep = max_w(compute_w) / core_speed
                + max_w(bytes_in_w, bytes_out_w) / bandwidth
                + network latency (one exchange round)
                + barrier + aggregator round-trip

which captures the two facts any distributed port must confront: the
slowest partition gates every superstep, and message volume — not work —
usually dominates for sparse iterative algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SimulationError
from ..graph.undirected import UndirectedGraph

__all__ = ["ClusterConfig", "Partition", "BSPCluster"]


@dataclass(frozen=True)
class ClusterConfig:
    """Hardware model of the simulated cluster."""

    num_workers: int = 8
    work_unit_seconds: float = 5e-9
    """Per work unit (one adjacency touch) on a worker core."""

    network_bandwidth_bytes_per_s: float = 1.25e9
    """Per-worker NIC bandwidth (10 GbE)."""

    network_latency_seconds: float = 5e-5
    """One bulk message exchange round (within-rack RTT)."""

    barrier_seconds: float = 1e-4
    """Global superstep barrier (coordinator round)."""

    aggregator_seconds: float = 5e-5
    """Cost of one global aggregation (h_max / counts) per superstep."""

    bytes_per_message: int = 12
    """One (target vertex id, value) message record."""

    def __post_init__(self):
        if self.num_workers < 1:
            raise SimulationError("num_workers must be >= 1")


@dataclass
class Partition:
    """The vertices owned by one worker (hash partitioning by default)."""

    worker: int
    vertices: np.ndarray
    internal_degree_sum: int
    cross_degree_sum: int


class BSPCluster:
    """Deterministic simulated BSP execution over a partitioned graph."""

    def __init__(self, graph: UndirectedGraph, config: ClusterConfig | None = None):
        self.graph = graph
        self.config = config or ClusterConfig()
        self.owner = self._hash_partition()
        self.partitions = self._build_partitions()
        self._now = 0.0
        self.supersteps = 0
        self.total_messages = 0
        self.total_compute_units = 0.0

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------
    def _hash_partition(self) -> np.ndarray:
        """Assign vertex v to worker v mod W (GraphX-style hash partition)."""
        return np.arange(self.graph.num_vertices) % self.config.num_workers

    def _build_partitions(self) -> list[Partition]:
        graph, owner = self.graph, self.owner
        heads = graph.heads()
        same_owner = owner[heads] == owner[graph.indices]
        partitions = []
        for worker in range(self.config.num_workers):
            mine = owner == worker
            vertex_ids = np.flatnonzero(mine)
            slots = mine[heads]
            internal = int(np.count_nonzero(slots & same_owner))
            cross = int(np.count_nonzero(slots & ~same_owner))
            partitions.append(
                Partition(worker, vertex_ids, internal, cross)
            )
        return partitions

    def cross_edge_fraction(self) -> float:
        """Fraction of adjacency slots whose endpoints live on different
        workers — the replication/communication factor of the partition."""
        cross = sum(p.cross_degree_sum for p in self.partitions)
        total = int(self.graph.degrees().sum())
        return cross / total if total else 0.0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Simulated seconds elapsed."""
        return self._now

    def superstep(
        self,
        compute_units_per_vertex: np.ndarray,
        message_counts_per_vertex: np.ndarray,
        aggregate: bool = True,
    ) -> float:
        """Account one BSP superstep; return its simulated seconds.

        ``compute_units_per_vertex[v]`` is the local work executed at v
        this superstep; ``message_counts_per_vertex[v]`` the number of
        messages v sends to *remote* neighbours (same-worker delivery is
        free).  Both arrays are reduced per worker; the slowest worker
        gates the step.
        """
        config = self.config
        compute_units = np.asarray(compute_units_per_vertex, dtype=np.float64)
        messages = np.asarray(message_counts_per_vertex, dtype=np.float64)
        if compute_units.shape != (self.graph.num_vertices,):
            raise SimulationError("per-vertex compute array has wrong shape")
        if messages.shape != (self.graph.num_vertices,):
            raise SimulationError("per-vertex message array has wrong shape")

        worker_compute = np.bincount(
            self.owner, weights=compute_units, minlength=config.num_workers
        )
        worker_out_bytes = (
            np.bincount(self.owner, weights=messages, minlength=config.num_workers)
            * config.bytes_per_message
        )
        compute_seconds = float(worker_compute.max()) * config.work_unit_seconds
        network_seconds = (
            float(worker_out_bytes.max()) / config.network_bandwidth_bytes_per_s
            + config.network_latency_seconds
        )
        elapsed = compute_seconds + network_seconds + config.barrier_seconds
        if aggregate:
            elapsed += config.aggregator_seconds
        self._now += elapsed
        self.supersteps += 1
        self.total_messages += int(messages.sum())
        self.total_compute_units += float(compute_units.sum())
        return elapsed

    def __repr__(self) -> str:
        return (
            f"BSPCluster(workers={self.config.num_workers}, "
            f"supersteps={self.supersteps}, now={self._now:.4g}s)"
        )
