"""BSP supersteps over mmap-backed shards (out-of-core pkmc/pwc).

The monolithic BSP ports (:mod:`.pkmc_bsp` / :mod:`.pwc_bsp`) slice one
in-RAM graph into mod-W hash partitions.  This module is the same
algorithms over a :class:`~repro.store.shard.ShardedGraph`: each vertex
shard *is* a worker's partition, supersteps stream the shards through
the facade's memory budget, and the only cross-worker traffic is the
explicit boundary h-value / degree-message exchange the shard's boundary
tables describe.

Bit-identity contract: the h-array / alive-mask evolution — and with it
the density, decomposition, iteration counts and Theorem-1 early stop —
is **identical** to the monolithic solvers, superstep for superstep.
Per-vertex updates depend only on neighbour values, which shards
preserve exactly; only the *cost* model differs, because range
partitioning by balanced edge mass is not hash partitioning (different
cross-edge fraction, hence different simulated seconds and message
counts — that difference is the experiment this layer enables).

:class:`ShardedBSPAccountant` additionally splits every superstep's bill
into compute / boundary-exchange / overhead seconds and tracks the bytes
crossing shard boundaries, feeding the ``boundary_messages_bytes``
column of :class:`~repro.engine.report.RunReport`.
"""

from __future__ import annotations

import numpy as np

from ..core.pwc import derive_cn_pair_collapse, derive_cn_pair_divisor
from ..core.results import DDSResult, UDSResult
from ..core.winduced import WStarResult
from ..core.xycore import xy_core
from ..errors import EmptyGraphError
from ..kernels.frontier import _scalar_h_index
from ..kernels.shard import (
    shard_adjacency_slots,
    shard_induced_edge_count,
    shard_sweep_values,
)
from ..runtime.simruntime import SimRuntime
from ..store.shard import ShardedGraph
from .cluster import ClusterConfig

__all__ = [
    "ShardedPartition",
    "ShardedBSPAccountant",
    "sharded_pkmc",
    "sharded_pwc",
]

_H_UPDATE_UNITS = 4.0
_EDGE_SCAN_UNITS = 3.0
_EMPTY = np.empty(0, dtype=np.int64)


class ShardedPartition:
    """A :class:`ShardedGraph`'s vertex ranges viewed as BSP partitions.

    Worker ``s`` owns the contiguous global range
    ``[bounds[s], bounds[s + 1])`` — the shard itself.  The partition
    geometry (ownership, cross fraction) comes straight from the
    manifest; :meth:`cross_neighbor_counts` streams the boundary tables
    once through the budget to build the per-vertex remote-neighbour
    counts the vertex-centric cost model charges messages from.
    """

    def __init__(self, graph: ShardedGraph):
        self.graph = graph
        self.bounds = graph.bounds
        self.num_workers = graph.num_shards

    def owners(self, vertex_ids: np.ndarray) -> np.ndarray:
        """Owning shard/worker of every given global vertex id."""
        return self.graph.owners(vertex_ids)

    def cross_edge_fraction(self) -> float:
        """Fraction of adjacency slots crossing a shard boundary."""
        return self.graph.cross_adjacency_fraction()

    def cross_neighbor_counts(self) -> np.ndarray:
        """Per-vertex count of neighbours living on a different shard.

        The sharded analogue of the hash-partition cross counts: shard
        ``s``'s boundary table lists exactly the adjacency slots whose
        tail is off-shard, keyed by the owning (source) vertex.
        """
        graph = self.graph
        counts = np.zeros(graph.num_vertices, dtype=np.int64)
        for index in range(graph.num_shards):
            shard = graph.shard(index)
            if shard.boundary_src.size:
                counts += np.bincount(
                    shard.boundary_src, minlength=graph.num_vertices
                )
        return counts


class ShardedBSPAccountant:
    """Superstep cost accounting with one worker per shard.

    Same hardware model and per-superstep formula as
    :class:`~repro.distributed.cluster.BSPCluster` — the slowest worker
    gates compute, the busiest NIC gates the exchange, plus one latency
    round, the barrier and (optionally) the aggregator round-trip — but
    reduced over per-*shard* totals, and with the bill split three ways
    so reports can separate compute from boundary exchange.
    """

    def __init__(self, config: ClusterConfig, num_shards: int):
        self.config = config
        self.num_shards = num_shards
        self.compute_seconds = 0.0
        self.exchange_seconds = 0.0
        self.overhead_seconds = 0.0
        self.supersteps = 0
        self.total_messages = 0
        self.boundary_messages_bytes = 0

    @property
    def now(self) -> float:
        """Simulated seconds elapsed across all supersteps."""
        return self.compute_seconds + self.exchange_seconds + self.overhead_seconds

    def superstep(
        self,
        compute_units_per_shard: np.ndarray,
        message_counts_per_shard: np.ndarray,
        aggregate: bool = True,
    ) -> None:
        """Account one superstep from per-shard work/message totals."""
        config = self.config
        compute = np.asarray(compute_units_per_shard, dtype=np.float64)
        messages = np.asarray(message_counts_per_shard, dtype=np.float64)
        self.compute_seconds += (
            float(compute.max(initial=0.0)) * config.work_unit_seconds
        )
        self.exchange_seconds += (
            float(messages.max(initial=0.0))
            * config.bytes_per_message
            / config.network_bandwidth_bytes_per_s
            + config.network_latency_seconds
        )
        self.overhead_seconds += config.barrier_seconds
        if aggregate:
            self.overhead_seconds += config.aggregator_seconds
        self.supersteps += 1
        sent = int(messages.sum())
        self.total_messages += sent
        self.boundary_messages_bytes += sent * config.bytes_per_message


def _shard_heads(shard) -> np.ndarray:
    """Global source id of every adjacency slot in a directed shard."""
    return np.repeat(
        np.arange(shard.lo, shard.hi, dtype=np.int64),
        np.diff(np.asarray(shard.out_indptr, dtype=np.int64)),
    )


def _sharded_density(graph: ShardedGraph, vertices: np.ndarray) -> float:
    """Induced density of a vertex set, summed shard by shard.

    Matches :func:`repro.kernels.density.induced_density` exactly: each
    undirected edge appears once per endpoint across the shards and the
    ``head < tail`` convention in the shard kernel counts it once.
    """
    if vertices.size == 0:
        return 0.0
    member = np.zeros(graph.num_vertices, dtype=bool)
    member[vertices] = True
    count = 0
    for index in range(graph.num_shards):
        shard = graph.shard(index)
        count += shard_induced_edge_count(
            shard.indptr, shard.indices, member, vertex_offset=shard.lo
        )
    return count / vertices.size


def _shard_stats(graph: ShardedGraph, accountant: ShardedBSPAccountant) -> dict:
    """The per-shard breakdown a RunReport lifts out of solver extras."""
    stats = graph.stats()
    stats["boundary_messages_bytes"] = accountant.boundary_messages_bytes
    return stats


def sharded_pkmc(
    graph: ShardedGraph,
    config: ClusterConfig | None = None,
    early_stop: bool = True,
    max_supersteps: int | None = None,
    sanitize: bool = False,
) -> UDSResult:
    """PKMC's vertex-centric BSP program over mmap-backed shards.

    The per-superstep h-array evolution, early stop, k* and core are
    bit-identical to :func:`~repro.distributed.pkmc_bsp.distributed_pkmc`
    on the assembled graph; each shard plays the role of one worker, and
    boundary h-value messages are counted from the shards' boundary
    tables instead of a hash partition.
    """
    if graph.num_edges == 0:
        raise EmptyGraphError("UDS is undefined on a graph without edges")
    graph.reset_stats()
    sanitizer = SimRuntime(sanitize=True) if sanitize else None
    partition = ShardedPartition(graph)
    accountant = ShardedBSPAccountant(
        config or ClusterConfig(), graph.num_shards
    )
    num_shards = graph.num_shards
    bounds = graph.bounds
    cross_counts = partition.cross_neighbor_counts()
    degrees = graph.degrees().astype(np.float64)
    n = graph.num_vertices
    limit = max_supersteps if max_supersteps is not None else n + 2

    h = graph.degrees().astype(np.int64)
    h_max = int(h.max())
    count_at_max = int(np.count_nonzero(h == h_max))
    # Superstep 0: initialise h = degree, send to all boundary neighbours.
    step0_compute = 2.0 * np.diff(bounds).astype(np.float64)
    step0_messages = np.asarray(
        [
            float(cross_counts[bounds[s]:bounds[s + 1]].sum())
            for s in range(num_shards)
        ]
    )
    accountant.superstep(step0_compute, step0_messages)

    supersteps = 1
    frontier: np.ndarray | None = None
    early_stop_fired = False
    history = [(h_max, count_at_max)]
    while supersteps < limit:
        new_h = h.copy()
        woken_mask = np.zeros(n, dtype=bool)
        compute = np.zeros(num_shards, dtype=np.float64)
        messages = np.zeros(num_shards, dtype=np.float64)
        for index in range(num_shards):
            lo, hi = int(bounds[index]), int(bounds[index + 1])
            if frontier is None:
                members = None
            else:
                i0, i1 = np.searchsorted(frontier, (lo, hi))
                if i0 == i1:
                    continue  # nothing woken here: the shard stays cold
                members = frontier[i0:i1]
            shard = graph.shard(index)
            indptr_l, indices_l = shard.indptr, shard.indices
            if members is None:
                if sanitizer is not None:

                    def full_body(i, old, new, ptr=indptr_l, idx=indices_l, lo=lo):
                        new[lo + i] = _scalar_h_index(old[idx[ptr[i]:ptr[i + 1]]])

                    sanitizer.observe_parfor(
                        hi - lo,
                        full_body,
                        {"old": h, "new": new_h},
                        label="sharded_synchronous_sweep",
                    )
                else:
                    new_h[lo:hi] = shard_sweep_values(
                        indptr_l, indices_l, h, vertices=None, vertex_offset=lo
                    ).astype(h.dtype, copy=False)
                changed_local = lo + np.flatnonzero(new_h[lo:hi] < h[lo:hi])
                compute[index] = float(degrees[lo:hi].sum()) + _H_UPDATE_UNITS * (
                    hi - lo
                )
            else:
                if sanitizer is not None:

                    def frontier_body(
                        i, old, new, ids=members, ptr=indptr_l, idx=indices_l, lo=lo
                    ):
                        v = int(ids[i])
                        r = v - lo
                        new[v] = _scalar_h_index(old[idx[ptr[r]:ptr[r + 1]]])

                    sanitizer.observe_parfor(
                        members.size,
                        frontier_body,
                        {"old": h, "new": new_h},
                        label="sharded_frontier_sweep",
                    )
                else:
                    new_h[members] = shard_sweep_values(
                        indptr_l, indices_l, h, vertices=members, vertex_offset=lo
                    ).astype(h.dtype, copy=False)
                changed_local = members[new_h[members] < h[members]]
                compute[index] = (
                    float(degrees[members].sum()) + _H_UPDATE_UNITS * members.size
                )
            if changed_local.size:
                slots = shard_adjacency_slots(indptr_l, changed_local, lo)
                woken_mask[indices_l[slots]] = True
                messages[index] = float(cross_counts[changed_local].sum())
        accountant.superstep(compute, messages)
        supersteps += 1

        new_h_max = int(new_h.max())
        new_count = int(np.count_nonzero(new_h == new_h_max))
        history.append((new_h_max, new_count))
        guard_blocks = new_count <= new_h_max
        if (
            early_stop
            and not guard_blocks
            and new_h_max == h_max
            and new_count == count_at_max
        ):
            h = new_h
            early_stop_fired = True
            break
        h, h_max, count_at_max = new_h, new_h_max, new_count
        frontier = np.flatnonzero(woken_mask)
        if frontier.size == 0:
            break

    core_vertices = np.flatnonzero(h == int(h.max()))
    density = _sharded_density(graph, core_vertices)
    return UDSResult(
        algorithm="PKMC-BSP",
        vertices=core_vertices,
        density=density,
        iterations=supersteps,
        k_star=int(h.max()),
        simulated_seconds=accountant.now,
        extras={
            "supersteps": accountant.supersteps,
            "total_messages": accountant.total_messages,
            "cross_edge_fraction": partition.cross_edge_fraction(),
            "early_stop_fired": early_stop_fired,
            "history": history,
            "num_workers": graph.num_shards,
            "compute_seconds": accountant.compute_seconds,
            "exchange_seconds": accountant.exchange_seconds,
            "overhead_seconds": accountant.overhead_seconds,
            "shard_stats": _shard_stats(graph, accountant),
        },
    )


class _RemnantEdgeView:
    """Driver-side edge list duck-typed for the cn-pair extraction.

    :func:`~repro.core.pwc.derive_cn_pair_collapse` and
    :func:`~repro.core.xycore.xy_core` read only ``edge_src`` /
    ``edge_dst`` / ``num_vertices`` / ``num_edges`` plus an edge mask, so
    the (small, Table-7-sized) w*-remnant collected off the shards stands
    in for the full graph without materializing its CSR.  Vertex ids stay
    global, hence S/T of the resulting core match the monolithic answer.
    """

    def __init__(self, num_vertices: int, edge_src: np.ndarray, edge_dst: np.ndarray):
        self.num_vertices = num_vertices
        self.edge_src = edge_src
        self.edge_dst = edge_dst

    @property
    def num_edges(self) -> int:
        """Number of remnant edges."""
        return self.edge_src.size


def _collect_masked_edges(
    graph: ShardedGraph, edge_mask: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """(src, dst) of the masked edges, in global edge-id order."""
    eid_parts: list[np.ndarray] = []
    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    for index in range(graph.num_shards):
        shard = graph.shard(index)
        selected = edge_mask[shard.out_edge_ids]
        if not selected.any():
            continue
        eid_parts.append(np.asarray(shard.out_edge_ids[selected], dtype=np.int64))
        src_parts.append(_shard_heads(shard)[selected])
        dst_parts.append(np.asarray(shard.out_indices[selected], dtype=np.int64))
    if not eid_parts:
        return _EMPTY, _EMPTY
    eids = np.concatenate(eid_parts)
    order = np.argsort(eids, kind="stable")
    return np.concatenate(src_parts)[order], np.concatenate(dst_parts)[order]


def sharded_pwc(
    graph: ShardedGraph,
    config: ClusterConfig | None = None,
    start_at_dmax: bool = True,
) -> DDSResult:
    """PWC's edge-centric w*-peeling over mmap-backed shards.

    Every deletion wave scans the still-alive edges shard by shard
    against the wave's *frozen* degree vectors and applies all deletions
    at the barrier — exactly the monolithic cascade's semantics, so the
    alive-mask evolution, w*, level count and the final [x*, y*]-core
    are bit-identical to
    :func:`~repro.distributed.pwc_bsp.distributed_pwc`.  cn-pair
    extraction runs driver-side on the collected remnant; only the
    Theorem-2-gap divisor descent (never taken on the replicas) falls
    back to materializing the monolithic graph.
    """
    if graph.num_edges == 0:
        raise EmptyGraphError("DDS is undefined on a graph without edges")
    graph.reset_stats()
    accountant = ShardedBSPAccountant(
        config or ClusterConfig(), graph.num_shards
    )
    num_shards = graph.num_shards
    alive = np.ones(graph.num_edges, dtype=bool)
    dout = graph.out_degrees().copy()
    din = graph.in_degrees().copy()

    def scan_wave(threshold: int, strict: bool):
        """One frozen-degree scan over every shard; no mutations."""
        scanned = np.zeros(num_shards, dtype=np.float64)
        messages = np.zeros(num_shards, dtype=np.float64)
        dead_eids: list[np.ndarray] = []
        dead_src: list[np.ndarray] = []
        dead_dst: list[np.ndarray] = []
        total_live = 0
        for index in range(num_shards):
            shard = graph.shard(index)
            eids = shard.out_edge_ids
            live = alive[eids]
            live_count = int(live.sum())
            scanned[index] = float(live_count)
            total_live += live_count
            if live_count == 0:
                continue
            srcs = _shard_heads(shard)[live]
            dsts = shard.out_indices[live]
            weights = dout[srcs] * din[dsts]
            bad = weights < threshold if strict else weights <= threshold
            if bad.any():
                dead_eids.append(np.asarray(eids[live][bad], dtype=np.int64))
                dead_src.append(srcs[bad])
                dead_dst.append(np.asarray(dsts[bad], dtype=np.int64))
                messages[index] = float(
                    ((dsts[bad] < shard.lo) | (dsts[bad] >= shard.hi)).sum()
                )
        return scanned, messages, dead_eids, dead_src, dead_dst, total_live

    def cascade(threshold: int, strict: bool) -> None:
        """Peel below/at ``threshold`` to a fixed point, one wave per step."""
        while True:
            scanned, messages, dead_eids, dead_src, dead_dst, total_live = (
                scan_wave(threshold, strict)
            )
            if total_live == 0:
                return
            accountant.superstep(scanned * _EDGE_SCAN_UNITS, messages)
            if not dead_eids:
                return
            alive[np.concatenate(dead_eids)] = False
            np.subtract.at(dout, np.concatenate(dead_src), 1)
            np.subtract.at(din, np.concatenate(dead_dst), 1)

    def min_alive_weight() -> int | None:
        """Driver-side aggregation of the next level's minimum weight."""
        current: int | None = None
        for index in range(num_shards):
            shard = graph.shard(index)
            live = alive[shard.out_edge_ids]
            if not live.any():
                continue
            weights = dout[_shard_heads(shard)[live]] * din[shard.out_indices[live]]
            low = int(weights.min())
            current = low if current is None else min(current, low)
        return current

    if start_at_dmax:
        d_max = max(
            int(dout.max(initial=0)), int(din.max(initial=0))
        )
        cascade(d_max, strict=True)
    size_after_prune = int(np.count_nonzero(alive))

    snapshot = alive.copy()
    w_star = 0
    levels = 0
    while True:
        w_cur = min_alive_weight()
        if w_cur is None:
            break
        snapshot = alive.copy()
        w_star = w_cur
        levels += 1
        cascade(w_cur, strict=False)

    size_wstar = int(np.count_nonzero(snapshot))
    remnant_src, remnant_dst = _collect_masked_edges(graph, snapshot)
    view = _RemnantEdgeView(graph.num_vertices, remnant_src, remnant_dst)
    wstar_view = WStarResult(
        edge_mask=np.ones(view.num_edges, dtype=bool),
        w_star=w_star,
        rounds=accountant.supersteps,
        size_after_prune=size_after_prune,
        size_wstar=size_wstar,
    )
    pair = derive_cn_pair_collapse(view, wstar_view)
    core = None
    if pair is not None:
        x, y = pair
        core = xy_core(view, x, y, edge_mask=wstar_view.edge_mask)
        if not core.exists:
            core = None
    if core is None:
        # Theorem-2-gap descent: rebuilding P-induced subgraphs needs the
        # full CSR, so this (replica-untaken) path materializes it once.
        wstar_full = WStarResult(
            edge_mask=snapshot,
            w_star=w_star,
            rounds=accountant.supersteps,
            size_after_prune=size_after_prune,
            size_wstar=size_wstar,
        )
        x, y, core = derive_cn_pair_divisor(graph.to_graph(), wstar_full)
    return DDSResult(
        algorithm="PWC-BSP",
        s=core.s,
        t=core.t,
        density=core.density(),
        x=x,
        y=y,
        w_star=w_star,
        iterations=levels,
        simulated_seconds=accountant.now,
        extras={
            "supersteps": accountant.supersteps,
            "total_messages": accountant.total_messages,
            "cross_edge_fraction": graph.cross_adjacency_fraction(),
            "size_first": size_after_prune,
            "size_wstar": size_wstar,
            "num_workers": graph.num_shards,
            "compute_seconds": accountant.compute_seconds,
            "exchange_seconds": accountant.exchange_seconds,
            "overhead_seconds": accountant.overhead_seconds,
            "shard_stats": _shard_stats(graph, accountant),
        },
    )
