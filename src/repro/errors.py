"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for structurally invalid graphs or malformed graph inputs."""


class GraphFormatError(GraphError):
    """Raised when parsing an on-disk graph representation fails."""


class StreamMutationError(GraphError, ValueError):
    """Raised for invalid streamed edge mutations (self-loop, bad ids).

    The streaming layer validates whole batches *before* applying any of
    them, so a raised batch leaves the maintained edge set untouched.
    Inherits :class:`ValueError` as well as :class:`GraphError`: callers
    treating malformed update payloads as plain bad arguments and callers
    catching library graph errors both work.
    """


class EmptyGraphError(GraphError):
    """Raised when an algorithm requires a non-empty graph but got none.

    Densest-subgraph density is undefined on a graph without edges, so the
    solvers refuse such inputs explicitly rather than returning a bogus
    zero-density answer.
    """


class AlgorithmError(ReproError):
    """Raised when an algorithm reaches an internally inconsistent state."""


class EngineError(ReproError):
    """Raised by :mod:`repro.engine` for solver-registry misuse.

    Covers conflicting registrations, malformed :class:`~repro.engine.
    spec.SolverSpec` declarations, and solvers that violate their declared
    capabilities at run time (e.g. a ``supports_runtime`` solver that
    finishes without charging anything to its :class:`~repro.runtime.
    simruntime.SimRuntime`).
    """


class BackendError(ReproError):
    """Raised by :mod:`repro.backends` for array-backend failures.

    Covers unknown backend names, explicit selection of a backend whose
    optional dependency is missing (e.g. ``numba`` without numba
    installed), and worker-side failures surfaced by the multiprocessing
    backend.
    """


class SimulationError(ReproError):
    """Base class for simulated-runtime failures."""


class SimTimeLimitExceeded(SimulationError):
    """The simulated clock passed the experiment's time budget.

    Mirrors the paper's 10^5-second wall-clock cutoff in Exp-5: algorithms
    whose simulated cost exceeds the budget are reported as DNF instead of
    being run to completion.
    """

    def __init__(self, elapsed: float, limit: float):
        super().__init__(
            f"simulated time {elapsed:.3g}s exceeded the limit of {limit:.3g}s"
        )
        self.elapsed = elapsed
        self.limit = limit


class ParforRaceError(SimulationError):
    """The race sanitizer observed a cross-iteration conflict in a parfor.

    Raised by :class:`repro.analysis.race.RaceSanitizer` (enabled through
    ``SimRuntime(sanitize=True)``) when two iterations of a declared
    parallel loop touch the same shared-array cell and at least one of
    them writes it, without the loop being annotated as intentionally
    order-dependent.  Carries the full :class:`LoopRaceReport` as
    ``report``.
    """

    def __init__(self, report):
        super().__init__(f"parfor race detected: {report.summary()}")
        self.report = report


class SimMemoryLimitExceeded(SimulationError):
    """The simulated peak memory passed the configured budget.

    Mirrors the paper's observation that PXY and PBD, which keep one graph
    copy per thread, overflow 255 GB on the Twitter graph once p > 4.
    """

    def __init__(self, peak_bytes: float, limit_bytes: float):
        super().__init__(
            f"simulated memory {peak_bytes / 2**30:.2f} GiB exceeded the "
            f"limit of {limit_bytes / 2**30:.2f} GiB"
        )
        self.peak_bytes = peak_bytes
        self.limit_bytes = limit_bytes


class DatasetError(ReproError):
    """Raised for unknown dataset names or invalid dataset specifications."""


class ServeRejected(ReproError):
    """A query was shed by the serving layer's admission control.

    Raised by :meth:`repro.serve.DsdServer.submit` when the bounded
    request queue is full (``reason="queue_full"``) or the query's
    tenant has exhausted its token-bucket quota (``reason="quota"``).
    ``retry_after_s`` carries the earliest time (seconds from now) at
    which retrying can succeed: the tenant bucket's next-token delay for
    quota rejections, ``0.0`` for queue-full rejections (the queue frees
    up as soon as the server drains).  Shedding is structured backpressure,
    not failure — the query was never admitted, so no partial work exists.
    """

    def __init__(self, reason: str, retry_after_s: float = 0.0, detail: str = ""):
        suffix = f" ({detail})" if detail else ""
        super().__init__(
            f"query rejected: {reason}, retry after {retry_after_s:.3g}s{suffix}"
        )
        self.reason = reason
        self.retry_after_s = retry_after_s
        self.detail = detail
