"""repro.serve — the long-lived DSD query service.

The layer that turns the library into a system serving heavy traffic:
a :class:`DsdServer` accepts a stream of
:class:`Query(dataset, solver, params, tenant) <Query>` requests,
applies admission control (bounded queue + per-tenant
:class:`~repro.serve.quota.TenantQuotas` token buckets, shedding with
:class:`~repro.errors.ServeRejected` retry-after metadata), coalesces
duplicate queries onto single-flight computations keyed by the memo
fingerprint, batches flights per graph so CSR scratch and backend
shared-memory segments are set up once per batch, and serves repeats
from a TTL-aware :class:`~repro.store.memo.ResultCache`.  Every
response is bit-identical to a direct :func:`repro.engine.run` of the
same query, and carries the engine's
:class:`~repro.engine.report.RunReport` augmented with
queue-wait/batch-size/coalesced-count serving fields.

Typical use::

    from repro.serve import DsdServer, Query
    server = DsdServer(cache_ttl=30.0)
    server.submit(Query("PT", "pkmc"))
    server.submit(Query("PT", "pkmc", tenant="other"))  # coalesces
    first, second = server.drain()
    assert second.coalesced == 2

``repro-bench serve`` replays Zipf-skewed mixes
(:mod:`repro.serve.workload`) against an unbatched/uncached serial
baseline and gates the measured throughput (``BENCH_serve.json``);
``docs/serving.md`` has the architecture and methodology.
"""

from .query import Query, Response
from .quota import TenantQuotas, TokenBucket
from .server import DsdServer, ServerStats
from .workload import QUERY_MIXES, build_query_mix

__all__ = [
    "Query",
    "Response",
    "TokenBucket",
    "TenantQuotas",
    "DsdServer",
    "ServerStats",
    "QUERY_MIXES",
    "build_query_mix",
]
