"""Query/response records for the DSD serving layer.

A :class:`Query` names *what* to compute — dataset (or explicit graph),
registry solver name, solver options, and the tenant submitting it — and
deliberately carries none of the *how* (threads, backend, cache): those
are server policy, fixed per :class:`~repro.serve.server.DsdServer` so
that identical queries from different users are identical work and can
be coalesced.  A :class:`Response` pairs the query with either the
engine result (report augmented with queue-wait/batch/coalescing fields
via :func:`repro.engine.report.attach_serve_stats`) or a structured
rejection mirroring :class:`~repro.errors.ServeRejected`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["Query", "Response"]


@dataclass(frozen=True)
class Query:
    """One densest-subgraph request in a serving stream.

    ``dataset`` is a graph name the server can resolve (a replica
    abbreviation like ``"PT"`` by default, or any key of the server's
    explicit graph table); ``solver`` is a registry name (``"pkmc"``,
    ``"charikar"``, ...); ``params`` are solver options forwarded to
    :func:`repro.engine.run` and participate in the single-flight key,
    so two queries differing only in ``params`` never coalesce;
    ``tenant`` is the quota-accounting principal.
    """

    dataset: str
    solver: str
    params: Mapping[str, Any] = field(default_factory=dict)
    tenant: str = "default"

    def __post_init__(self):
        # Defensive copy: queries are shared across the queue and
        # responses, so a caller mutating its dict must not retroactively
        # change an enqueued query (or its flight key).
        object.__setattr__(self, "params", dict(self.params))


@dataclass
class Response:
    """Outcome of one submitted query.

    ``status`` is ``"ok"`` or ``"rejected"``.  For ``"ok"``, ``result``
    is the engine result (bit-identical to a direct ``engine.run`` of
    the same query) and the serve statistics are mirrored both here and
    in ``result.report``; ``worker_id`` is the simulated worker the
    query's batch was scheduled on.  For ``"rejected"``, ``result`` is
    None and ``reason``/``retry_after_s`` carry the admission-control
    verdict (see :class:`~repro.errors.ServeRejected`); the serve
    statistics stay at their zero defaults.  ``latency_s`` is wall-clock
    submit-to-completion time under the server's clock (0.0 for
    rejections, which never enter the queue).
    """

    query: Query
    status: str
    result: Any = None
    reason: str | None = None
    retry_after_s: float | None = None
    worker_id: int = -1
    queue_wait_s: float = 0.0
    batch_size: int = 0
    coalesced: int = 0
    latency_s: float = 0.0

    @property
    def ok(self) -> bool:
        """True when the query was admitted and served."""
        return self.status == "ok"
