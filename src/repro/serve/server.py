"""`DsdServer` — the long-lived, simulated-concurrent DSD query front-end.

The serving loop that turns the fast library into a system (ROADMAP item
1): queries stream in through :meth:`DsdServer.submit`, pass admission
control (bounded queue depth, per-tenant token-bucket quotas — shed work
raises :class:`~repro.errors.ServeRejected` instead of growing the queue
without bound), and are answered in :meth:`DsdServer.drain` cycles that
exploit the two redundancies real traffic has:

* **single-flight coalescing** — queries that are the *same work* (same
  graph fingerprint, solver, options and server policy, i.e. the same
  :func:`repro.store.memo.make_cache_key`) share one in-flight
  computation; followers receive independent clones of the leader's
  result, bit-identical to running the solver themselves;
* **per-graph batching** — flights are grouped by graph fingerprint so
  the per-graph setup (CSR scratch warming, the multiproc backend's
  published shared-memory segment) is paid once per batch and stays hot
  in the backend's LRU instead of thrashing across interleaved graphs.

Below the coalescing sits the TTL-aware
:class:`~repro.store.memo.ResultCache`, so repetition *across* drain
cycles is also near-free.  Concurrency is simulated, in line with the
library's `SimRuntime` philosophy: one Python process executes batches
serially, attributing each batch to a worker of the bounded pool
round-robin — scheduling is deterministic, and all wall-clock
measurements come from one injectable monotonic clock.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional

from ..backends import resolve_backend_name
from ..datasets.registry import get_spec, load_directed, load_undirected
from ..engine import ExecutionContext, attach_serve_stats, resolve_solver
from ..engine import run as engine_run
from ..errors import ServeRejected
from ..store.memo import ResultCache, clone_result, make_cache_key
from .query import Query, Response
from .quota import TenantQuotas

__all__ = ["DsdServer", "ServerStats"]


@dataclass
class ServerStats:
    """Monotonic counters describing a server's lifetime of traffic.

    ``solver_runs`` counts actual solver executions (cache misses);
    ``cache_hits`` counts flights answered by the result cache;
    ``coalesced_queries`` counts queries that attached to another
    query's flight (followers only, so ``completed = solver_runs +
    cache_hits + coalesced_queries``). ``peak_queue_depth`` is the
    admission queue's observed high-water mark — bounded by
    ``max_queue_depth`` by construction, which is the "no unbounded
    queue growth" guarantee the overload bench asserts.
    """

    submitted: int = 0
    accepted: int = 0
    completed: int = 0
    rejected_queue_full: int = 0
    rejected_quota: int = 0
    solver_runs: int = 0
    cache_hits: int = 0
    coalesced_queries: int = 0
    batches: int = 0
    flights: int = 0
    peak_queue_depth: int = 0

    def as_dict(self) -> dict[str, int]:
        """JSON-serialisable counter snapshot."""
        return {
            "submitted": self.submitted,
            "accepted": self.accepted,
            "completed": self.completed,
            "rejected_queue_full": self.rejected_queue_full,
            "rejected_quota": self.rejected_quota,
            "solver_runs": self.solver_runs,
            "cache_hits": self.cache_hits,
            "coalesced_queries": self.coalesced_queries,
            "batches": self.batches,
            "flights": self.flights,
            "peak_queue_depth": self.peak_queue_depth,
        }


@dataclass
class _Pending:
    """One admitted query waiting for the next drain cycle."""

    seq: int
    query: Query
    graph: Any
    spec: Any
    flight_key: tuple
    enqueued_at: float


class DsdServer:
    """Batched, cache-backed, admission-controlled DSD query service.

    ``graphs`` maps dataset names to pre-built graph objects; names not
    in the table fall back to the synthetic replica registry
    (:mod:`repro.datasets`), so ``Query(dataset="PT", solver="pkmc")``
    works out of the box.  Execution policy — ``num_threads``,
    ``backend``, ``frontier`` — is fixed per server, *not* per query:
    that is what makes equal queries equal work, so coalescing and
    caching can be exact rather than heuristic.

    ``max_queue_depth`` bounds the admission queue; ``quotas`` (a
    :class:`~repro.serve.quota.TenantQuotas`) bounds each tenant's
    sustained rate.  :meth:`submit` checks queue capacity first (a shed
    query never spends quota tokens), then the tenant bucket, and
    raises :class:`~repro.errors.ServeRejected` with retry-after
    metadata on either failure — FIFO shedding order: earlier
    submissions hold their queue slots, later ones are shed.

    The result cache defaults to a server-private TTL-aware
    :class:`~repro.store.memo.ResultCache` sharing the server's clock;
    pass ``cache=`` to share one across servers, or ``cache_entries=0``
    to disable caching (coalescing still applies within a drain).
    ``clock`` is a zero-argument monotonic-seconds callable used for
    every timestamp (queue wait, latency, TTL, quota refill) — inject a
    fake clock for deterministic tests.
    """

    def __init__(
        self,
        graphs: Optional[Mapping[str, Any]] = None,
        *,
        num_workers: int = 2,
        max_queue_depth: int = 64,
        cache: Optional[ResultCache] = None,
        cache_entries: int = 256,
        cache_ttl: Optional[float] = None,
        quotas: Optional[TenantQuotas] = None,
        num_threads: int = 1,
        backend: Optional[str] = None,
        frontier: Optional[bool] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        self.num_workers = num_workers
        self.max_queue_depth = max_queue_depth
        self.num_threads = num_threads
        # Resolving eagerly makes an unknown backend fail at server
        # construction, not on the first unlucky query.
        self.backend = resolve_backend_name(backend)
        self.frontier = frontier
        # Serving measures real elapsed time by definition; tests and
        # the replay bench inject deterministic clocks instead.
        self._clock = clock if clock is not None else time.monotonic  # repro-lint: disable=R001 (injectable serving clock)
        if cache is not None:
            self._cache: Optional[ResultCache] = cache
        elif cache_entries > 0:
            self._cache = ResultCache(
                max_entries=cache_entries, ttl=cache_ttl, clock=self._clock
            )
        else:
            self._cache = None
        self._quotas = quotas
        self._graphs: dict[str, Any] = dict(graphs or {})
        self._queue: deque[_Pending] = deque()
        self._seq = 0
        self.stats = ServerStats()

    # -- graph resolution -------------------------------------------------

    def _resolve_graph(self, dataset: str) -> Any:
        graph = self._graphs.get(dataset)
        if graph is None:
            spec = get_spec(dataset)  # DatasetError on unknown names
            graph = (
                load_undirected(dataset)
                if spec.kind == "undirected"
                else load_directed(dataset)
            )
            self._graphs[dataset] = graph
        return graph

    def _flight_key(self, graph: Any, spec: Any, query: Query, seq: int) -> tuple:
        """Single-flight identity of a query: the memo cache key.

        Queries whose engine run would be uncacheable (unhashable
        options) get a unique per-sequence key — they never coalesce,
        matching the cache's refusal to serve them.
        """
        merged = dict(spec.default_options)
        merged.update(query.params)
        template = ExecutionContext(
            num_threads=self.num_threads,
            frontier=self.frontier,
        )
        key = make_cache_key(
            graph.fingerprint(), spec.kind, spec.name, template, merged,
            backend=self.backend,
        )
        if key is None:
            return ("__uncacheable__", seq)
        return key

    # -- admission --------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Queries currently admitted and waiting for a drain cycle."""
        return len(self._queue)

    def submit(self, query: Query) -> int:
        """Admit ``query``; return its sequence number.

        Validation (unknown dataset/solver) raises the library's normal
        errors.  Admission control raises
        :class:`~repro.errors.ServeRejected`: ``queue_full`` when the
        bounded queue has no slot (checked first — shed queries never
        spend quota tokens), ``quota`` when the tenant's token bucket is
        empty (with the exact next-token delay as ``retry_after_s``).
        """
        now = self._clock()
        self.stats.submitted += 1
        graph = self._resolve_graph(query.dataset)
        spec = resolve_solver(query.solver, graph)
        if len(self._queue) >= self.max_queue_depth:
            self.stats.rejected_queue_full += 1
            raise ServeRejected(
                "queue_full",
                retry_after_s=0.0,
                detail=f"queue depth {len(self._queue)} at capacity",
            )
        if self._quotas is not None:
            delay = self._quotas.admit(query.tenant, now)
            if delay > 0.0:
                self.stats.rejected_quota += 1
                raise ServeRejected(
                    "quota",
                    retry_after_s=delay,
                    detail=f"tenant {query.tenant!r} out of tokens",
                )
        seq = self._seq
        self._seq += 1
        self._queue.append(
            _Pending(
                seq=seq,
                query=query,
                graph=graph,
                spec=spec,
                flight_key=self._flight_key(graph, spec, query, seq),
                enqueued_at=now,
            )
        )
        self.stats.accepted += 1
        self.stats.peak_queue_depth = max(
            self.stats.peak_queue_depth, len(self._queue)
        )
        return seq

    # -- execution --------------------------------------------------------

    @staticmethod
    def _prewarm(graph: Any) -> None:
        """Touch the graph's cached scratch accessors once per batch.

        The accessors memoize on the graph object, so the first flight
        of a batch pays the build and every later flight (and batch on
        the same graph) reuses the frozen buffers.
        """
        if hasattr(graph, "degrees"):
            graph.degrees()
        else:
            graph.out_degrees()
            graph.in_degrees()

    def _run_flight(self, leader: _Pending) -> Any:
        """Execute one flight's computation under the server's policy."""
        ctx = ExecutionContext(
            num_threads=self.num_threads,
            frontier=self.frontier,
            backend=self.backend,
            cache=self._cache,
        )
        result = engine_run(leader.spec, leader.graph, ctx, **leader.query.params)
        if result.report.cache_hit:
            self.stats.cache_hits += 1
        else:
            self.stats.solver_runs += 1
        return result

    def drain(self) -> list[Response]:
        """Serve everything queued; return responses in submission order.

        One drain cycle: group admitted queries into single-flight
        groups by flight key, group flights into batches by graph
        fingerprint (ordered by each batch's earliest submission),
        schedule batches round-robin over the simulated worker pool, and
        run each flight once — leader result via the engine (which may
        itself answer from the TTL cache), follower responses as
        independent clones.  Every response's report carries its own
        ``queue_wait_s`` and the flight's ``batch_size``/``coalesced``.
        """
        pending = list(self._queue)
        self._queue.clear()
        if not pending:
            return []

        flights: "OrderedDict[tuple, list[_Pending]]" = OrderedDict()
        for item in pending:
            flights.setdefault(item.flight_key, []).append(item)
        batches: "OrderedDict[str, list[list[_Pending]]]" = OrderedDict()
        for members in flights.values():
            batches.setdefault(members[0].graph.fingerprint(), []).append(members)

        ordered: list[tuple[int, Response]] = []
        for batch_index, batch_flights in enumerate(batches.values()):
            worker_id = batch_index % self.num_workers
            batch_size = sum(len(members) for members in batch_flights)
            self._prewarm(batch_flights[0][0].graph)
            self.stats.batches += 1
            for members in batch_flights:
                leader = members[0]
                started = self._clock()
                result = self._run_flight(leader)
                finished = self._clock()
                self.stats.flights += 1
                self.stats.coalesced_queries += len(members) - 1
                for index, item in enumerate(members):
                    answer = result if index == 0 else clone_result(result)
                    queue_wait = max(0.0, started - item.enqueued_at)
                    attach_serve_stats(
                        answer,
                        queue_wait_s=queue_wait,
                        batch_size=batch_size,
                        coalesced=len(members),
                    )
                    ordered.append(
                        (
                            item.seq,
                            Response(
                                query=item.query,
                                status="ok",
                                result=answer,
                                worker_id=worker_id,
                                queue_wait_s=queue_wait,
                                batch_size=batch_size,
                                coalesced=len(members),
                                latency_s=max(0.0, finished - item.enqueued_at),
                            ),
                        )
                    )
                    self.stats.completed += 1

        ordered.sort(key=lambda pair: pair[0])
        return [response for _, response in ordered]

    def serve(self, queries: list[Query]) -> list[Response]:
        """Submit a burst then drain: one response per query, in order.

        Rejected queries become ``status="rejected"`` responses instead
        of raising, so replay harnesses can account shed traffic without
        try/except at every call site.
        """
        admitted: list[int] = []
        rejections: dict[int, Response] = {}
        for position, query in enumerate(queries):
            try:
                self.submit(query)
            except ServeRejected as shed:
                rejections[position] = Response(
                    query=query,
                    status="rejected",
                    reason=shed.reason,
                    retry_after_s=shed.retry_after_s,
                )
            else:
                admitted.append(position)
        served = self.drain()
        merged: list[Response] = []
        served_iter = iter(served)
        for position in range(len(queries)):
            if position in rejections:
                merged.append(rejections[position])
            else:
                merged.append(next(served_iter))
        return merged

    def cache_stats(self) -> dict[str, int]:
        """Hit/miss/expired counters of the result cache (zeros if off)."""
        if self._cache is None:
            return {"hits": 0, "misses": 0, "expired": 0, "entries": 0}
        return {
            "hits": self._cache.hits,
            "misses": self._cache.misses,
            "expired": self._cache.expired,
            "entries": len(self._cache),
        }

    def close(self) -> None:
        """Drop queued work and resolved graphs; the server stays usable."""
        self._queue.clear()
        self._graphs.clear()
