"""Per-tenant token-bucket quotas for the serving layer.

The classic rate limiter: each tenant owns a bucket holding up to
``burst`` tokens that refills continuously at ``rate`` tokens/second;
admitting a query spends one token, and an empty bucket yields the exact
delay until the next token — which the server surfaces as the
``retry_after_s`` metadata on a :class:`~repro.errors.ServeRejected`.
Time is supplied by the caller on every operation (the server passes its
own injectable clock reading), so quota arithmetic is pure and
deterministic under test — no hidden wall-clock reads.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = ["TokenBucket", "TenantQuotas"]


class TokenBucket:
    """One tenant's continuously-refilling token bucket."""

    def __init__(self, rate: float, burst: float, now: float = 0.0):
        if rate <= 0:
            raise ValueError("rate must be positive (tokens per second)")
        if burst < 1:
            raise ValueError("burst must admit at least one query")
        self.rate = rate
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last_refill = now

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._last_refill)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self._last_refill = now

    def try_take(self, now: float) -> float:
        """Spend one token at time ``now``; return the retry delay.

        ``0.0`` means the token was taken and the query may be admitted.
        A positive value means the bucket is empty: no token was spent,
        and the returned seconds are exactly how long until one
        accumulates (the ``retry_after_s`` contract).
        """
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate

    def peek(self, now: float) -> float:
        """Tokens available at ``now`` without spending any."""
        self._refill(now)
        return self.tokens


class TenantQuotas:
    """Lazily-built per-tenant buckets with a shared default shape.

    Every unseen tenant gets a fresh ``(rate, burst)`` bucket on first
    use; ``overrides`` pins specific tenants to their own shape (e.g. a
    trusted bulk tenant with a larger burst).  ``admit`` is the server's
    one entry point: it charges the submitting tenant's bucket and
    returns the retry-after delay (``0.0`` = admitted).
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        overrides: Dict[str, Tuple[float, float]] | None = None,
    ):
        self.rate = rate
        self.burst = burst
        self.overrides = dict(overrides or {})
        self._buckets: Dict[str, TokenBucket] = {}
        # Validate shapes eagerly so a bad override fails at construction,
        # not on the unlucky tenant's first query.
        TokenBucket(rate, burst)
        for shape in self.overrides.values():
            TokenBucket(*shape)

    def bucket(self, tenant: str, now: float = 0.0) -> TokenBucket:
        """The tenant's bucket, created at ``now`` on first use."""
        bucket = self._buckets.get(tenant)
        if bucket is None:
            rate, burst = self.overrides.get(tenant, (self.rate, self.burst))
            bucket = TokenBucket(rate, burst, now=now)
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: str, now: float) -> float:
        """Charge one query to ``tenant``; return retry-after seconds."""
        return self.bucket(tenant, now=now).try_take(now)
