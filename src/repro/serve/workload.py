"""Seeded query-mix generators for traffic replay.

Real serving traffic is never uniform: a few datasets and a few solvers
absorb most queries (the query-reuse setting the serving layer is built
to exploit).  :func:`build_query_mix` turns that observation into
reproducible replay streams over the Zipf sampler from
:func:`repro.datasets.synth.sample_zipf`:

* ``"hot-graph"`` — dataset choice is Zipf-skewed, solver choice mildly
  skewed: many users probing the same graph, the headline mix for
  coalescing/caching and the bench's acceptance gate;
* ``"hot-solver"`` — solver choice is Zipf-skewed across uniformly
  chosen datasets: one popular algorithm fanned over many graphs;
* ``"uniform"`` — independent uniform choices, the adversarial mix with
  the least redundancy to exploit.

Tenants are assigned round-robin so per-tenant quotas see interleaved
traffic.  The same ``(mix, datasets, solvers, num_queries, seed)`` tuple
always yields the same stream.
"""

from __future__ import annotations

from typing import Sequence

from ..datasets.synth import sample_zipf
from .query import Query

__all__ = ["QUERY_MIXES", "build_query_mix"]

#: The replay mixes the serve bench (and CLI) understand.
QUERY_MIXES = ("hot-graph", "hot-solver", "uniform")

#: Skew of the hot dimension in a skewed mix; chosen so roughly half the
#: probability mass lands on the first two ranks.
_HOT_EXPONENT = 1.4
#: Mild skew of the secondary dimension of ``hot-graph``.
_WARM_EXPONENT = 0.8


def build_query_mix(
    mix: str,
    datasets: Sequence[str],
    solvers: Sequence[str],
    num_queries: int,
    seed: int = 0,
    tenants: Sequence[str] = ("default",),
) -> list[Query]:
    """Return a deterministic stream of ``num_queries`` queries.

    ``datasets``/``solvers`` are ordered hottest-first: rank 0 of the
    Zipf draw maps to the first element.  ``tenants`` are assigned
    round-robin over the stream.
    """
    if mix not in QUERY_MIXES:
        raise ValueError(f"unknown mix {mix!r}; expected one of {QUERY_MIXES}")
    if not datasets or not solvers or not tenants:
        raise ValueError("datasets, solvers and tenants must be non-empty")
    if num_queries < 0:
        raise ValueError("num_queries must be non-negative")

    if mix == "hot-graph":
        graph_exp, solver_exp = _HOT_EXPONENT, _WARM_EXPONENT
    elif mix == "hot-solver":
        graph_exp, solver_exp = 0.0, _HOT_EXPONENT
    else:  # uniform
        graph_exp = solver_exp = 0.0
    dataset_ranks = sample_zipf(
        len(datasets), num_queries, exponent=graph_exp, seed=seed
    )
    solver_ranks = sample_zipf(
        len(solvers), num_queries, exponent=solver_exp, seed=seed + 1
    )
    return [
        Query(
            dataset=datasets[int(dataset_ranks[i])],
            solver=solvers[int(solver_ranks[i])],
            tenant=tenants[i % len(tenants)],
        )
        for i in range(num_queries)
    ]
