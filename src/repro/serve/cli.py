"""``repro-serve`` command line: replay a query mix through a DsdServer.

The smallest useful front door to :mod:`repro.serve`: build a server
over the synthetic replica datasets, generate a seeded Zipf query mix
(:func:`repro.serve.workload.build_query_mix`), replay it in submission
waves, and print per-response serving metadata plus the server's
counter summary.  Examples::

    repro-serve --mix hot-graph --num-queries 40
    repro-serve --datasets PT,EW --solvers pkmc,charikar --ttl 30
    repro-serve --mix uniform --max-queue-depth 8 --quota-rate 2 --quota-burst 4
"""

from __future__ import annotations

import argparse

from .quota import TenantQuotas
from .server import DsdServer
from .workload import QUERY_MIXES, build_query_mix

__all__ = ["main"]

#: Default replay datasets: small synthetic replicas that load fast.
_DEFAULT_DATASETS = "PT,EW"
#: Default replay solvers: the fast exact/approximate UDS pair.
_DEFAULT_SOLVERS = "pkmc,charikar"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Replay a seeded Zipf-skewed query mix through the batched, "
            "cache-backed DSD query service and report serving metadata."
        ),
    )
    parser.add_argument(
        "--mix", choices=QUERY_MIXES, default="hot-graph",
        help="traffic shape of the replay (default: hot-graph)",
    )
    parser.add_argument(
        "--datasets", default=_DEFAULT_DATASETS,
        help=f"comma-separated dataset names, hottest first "
             f"(default: {_DEFAULT_DATASETS})",
    )
    parser.add_argument(
        "--solvers", default=_DEFAULT_SOLVERS,
        help=f"comma-separated solver names, hottest first "
             f"(default: {_DEFAULT_SOLVERS})",
    )
    parser.add_argument(
        "--num-queries", type=int, default=40,
        help="queries in the replay stream (default: 40)",
    )
    parser.add_argument(
        "--wave", type=int, default=20,
        help="queries submitted per drain cycle (default: 20)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="mix RNG seed (default: 0)"
    )
    parser.add_argument(
        "--tenants", default="default",
        help="comma-separated tenant names assigned round-robin",
    )
    parser.add_argument(
        "--num-workers", type=int, default=2,
        help="simulated worker pool size (default: 2)",
    )
    parser.add_argument(
        "--max-queue-depth", type=int, default=64,
        help="admission queue bound; beyond it queries are shed (default: 64)",
    )
    parser.add_argument(
        "--ttl", type=float, default=None,
        help="result-cache TTL in seconds (default: no expiry)",
    )
    parser.add_argument(
        "--cache-entries", type=int, default=256,
        help="result-cache capacity; 0 disables caching (default: 256)",
    )
    parser.add_argument(
        "--quota-rate", type=float, default=None,
        help="per-tenant token refill rate in queries/sec (default: no quotas)",
    )
    parser.add_argument(
        "--quota-burst", type=float, default=8.0,
        help="per-tenant token bucket capacity (default: 8)",
    )
    parser.add_argument(
        "--threads", type=int, default=1,
        help="simulated threads per solver run (default: 1)",
    )
    parser.add_argument(
        "--backend", default=None,
        help="array backend for solver runs (default: environment default)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.num_queries < 1 or args.wave < 1:
        print("--num-queries and --wave must be >= 1")
        return 2
    quotas = None
    if args.quota_rate is not None:
        quotas = TenantQuotas(rate=args.quota_rate, burst=args.quota_burst)
    server = DsdServer(
        num_workers=args.num_workers,
        max_queue_depth=args.max_queue_depth,
        cache_entries=args.cache_entries,
        cache_ttl=args.ttl,
        quotas=quotas,
        num_threads=args.threads,
        backend=args.backend,
    )
    queries = build_query_mix(
        args.mix,
        datasets=[name.strip() for name in args.datasets.split(",") if name.strip()],
        solvers=[name.strip() for name in args.solvers.split(",") if name.strip()],
        num_queries=args.num_queries,
        seed=args.seed,
        tenants=[name.strip() for name in args.tenants.split(",") if name.strip()],
    )
    print(
        f"replaying {len(queries)} '{args.mix}' queries in waves of "
        f"{args.wave} (backend={server.backend})"
    )
    for offset in range(0, len(queries), args.wave):
        for response in server.serve(queries[offset:offset + args.wave]):
            query = response.query
            head = f"  {query.dataset:>6}/{query.solver:<10} {query.tenant:<10}"
            if response.ok:
                report = response.result.report
                print(
                    f"{head} ok      density={response.result.density:.6g} "
                    f"wait={report.queue_wait_s * 1e3:6.2f}ms "
                    f"batch={report.batch_size:<3d} "
                    f"coalesced={report.coalesced:<3d} "
                    f"cache_hit={report.cache_hit}"
                )
            else:
                print(
                    f"{head} SHED    reason={response.reason} "
                    f"retry_after={response.retry_after_s:.3g}s"
                )
    stats = server.stats.as_dict()
    cache = server.cache_stats()
    print(
        f"served {stats['completed']}/{stats['submitted']} "
        f"(rejected: queue_full={stats['rejected_queue_full']} "
        f"quota={stats['rejected_quota']}) | solver_runs={stats['solver_runs']} "
        f"cache_hits={stats['cache_hits']} coalesced={stats['coalesced_queries']} "
        f"batches={stats['batches']} peak_depth={stats['peak_queue_depth']}"
    )
    print(
        f"cache: hits={cache['hits']} misses={cache['misses']} "
        f"expired={cache['expired']} entries={cache['entries']}"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
