"""repro — scalable densest subgraph discovery.

A from-scratch reproduction of Luo, Tang, Fang, Ma & Zhou, *Scalable
Algorithms for Densest Subgraph Discovery* (ICDE 2023): the PKMC and PWC
parallel 2-approximation algorithms, every baseline the paper compares
against, a simulated shared-memory runtime standing in for OpenMP, and a
benchmark harness regenerating each of the paper's tables and figures.

Quick start::

    from repro import densest_subgraph, directed_densest_subgraph
    from repro.graph import UndirectedGraph

    g = UndirectedGraph.from_edges(4, [(0, 1), (0, 2), (1, 2), (2, 3)])
    print(densest_subgraph(g))            # PKMC: the k*-core
"""

from .api import DDS_METHODS, UDS_METHODS, densest_subgraph, directed_densest_subgraph
from .core.results import DDSResult, UDSResult
from .engine import ExecutionContext, RunReport, SolverSpec
from .errors import (
    AlgorithmError,
    DatasetError,
    EmptyGraphError,
    EngineError,
    GraphError,
    GraphFormatError,
    ReproError,
    SimMemoryLimitExceeded,
    SimTimeLimitExceeded,
    SimulationError,
)
from .graph.directed import DirectedGraph
from .graph.undirected import UndirectedGraph
from .runtime.cost import CostModel
from .runtime.simruntime import SimRuntime

__version__ = "1.0.0"

__all__ = [
    "densest_subgraph",
    "directed_densest_subgraph",
    "UDS_METHODS",
    "DDS_METHODS",
    "UDSResult",
    "DDSResult",
    "ExecutionContext",
    "RunReport",
    "SolverSpec",
    "UndirectedGraph",
    "DirectedGraph",
    "SimRuntime",
    "CostModel",
    "ReproError",
    "GraphError",
    "GraphFormatError",
    "EmptyGraphError",
    "AlgorithmError",
    "EngineError",
    "SimulationError",
    "SimTimeLimitExceeded",
    "SimMemoryLimitExceeded",
    "DatasetError",
    "__version__",
]
