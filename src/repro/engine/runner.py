"""The execution engine: one dispatch path for every registered solver.

:func:`run` resolves a solver (by :class:`~repro.engine.spec.SolverSpec`
or registry name), forwards exactly the context fields the spec's
capability flags claim, executes it, verifies the runtime contract
(a ``supports_runtime`` solver must have charged costs to the runtime it
was given), and attaches a :class:`~repro.engine.report.RunReport` to
the result.  API, CLI, benchmark harness and examples all dispatch
through here, so behaviours like budgets, sanitizing and frontier
toggles are configured in one place.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any

from ..backends import resolve_backend_name, use_backend
from ..errors import EngineError
from ..graph.directed import DirectedGraph
from ..graph.undirected import UndirectedGraph
from ..store.memo import get_default_cache, make_cache_key
from ..store.shard import ShardedGraph
from .context import ExecutionContext
from .report import RunReport
from .spec import SolverSpec, get_solver, solver_specs

__all__ = ["run", "resolve_solver", "registry_table"]


def resolve_solver(solver: SolverSpec | str, graph: Any) -> SolverSpec:
    """Resolve ``solver`` to a spec, inferring the kind from ``graph``.

    A string is looked up in the registry under the kind matching the
    graph's type (:class:`UndirectedGraph` → ``uds``,
    :class:`DirectedGraph` → ``dds``); a spec passes through unchanged.
    """
    if isinstance(solver, SolverSpec):
        return solver
    if isinstance(graph, ShardedGraph):
        kind = "dds" if graph.kind == "directed" else "uds"
    elif isinstance(graph, DirectedGraph):
        kind = "dds"
    elif isinstance(graph, UndirectedGraph):
        kind = "uds"
    else:
        raise EngineError(
            f"cannot infer solver kind from graph of type {type(graph).__name__}"
        )
    return get_solver(kind, solver)


def run(
    solver: SolverSpec | str,
    graph: Any,
    ctx: ExecutionContext | None = None,
    **options: Any,
) -> Any:
    """Execute ``solver`` on ``graph`` under ``ctx``; return its result.

    ``options`` override the spec's ``default_options`` and are forwarded
    verbatim (e.g. ``epsilon=0.5`` for PBU).  Context fields are mapped to
    solver kwargs strictly by capability: ``runtime`` only when the spec
    declares ``supports_runtime`` (built lazily from the context's thread
    count, budgets and sanitize flag), ``frontier`` only when
    ``supports_frontier`` and the context sets it, ``seed`` only when
    ``supports_seed``, ``config`` only when ``supports_cluster``, and
    ``sanitize`` only when ``supports_sanitize`` on a solver with no
    runtime to carry it.  The whole run executes under the context's
    array backend (``ctx.backend``, resolved through
    :func:`repro.backends.resolve_backend_name`); the resolved name is
    recorded in the report and participates in the memoization key.

    After the run, a ``supports_runtime`` solver must have charged work to
    the runtime it received (a parallel loop or a serial section) —
    anything else means the solver silently ignored its runtime, which
    would corrupt the simulated-time experiments; :class:`~repro.errors.
    EngineError` is raised in that case.  The returned result carries a
    populated :class:`~repro.engine.report.RunReport` in ``.report``.
    """
    spec = resolve_solver(solver, graph)
    ctx = ctx or ExecutionContext()
    # Resolve the array backend up front: an unknown name fails fast
    # (before any cache lookup), and the resolved name is part of the
    # cache key and the report either way.
    backend = resolve_backend_name(ctx.backend)
    kwargs: dict[str, Any] = dict(spec.default_options)
    kwargs.update(options)
    # A caller-supplied runtime kwarg is honoured for runtime-capable
    # solvers and dropped otherwise (the old api.py contract: serial
    # solvers accept and ignore one, e.g. under ``repro-dsd --sanitize``).
    explicit_runtime = kwargs.pop("runtime", None)
    if explicit_runtime is not None and ctx.runtime is None:
        ctx.runtime = explicit_runtime

    # Result memoization (repro.store.memo): opt-in via ctx.cache or the
    # process-wide default.  The key covers the graph's content
    # fingerprint, the solver identity, every behaviour-relevant context
    # field and the merged options; a pre-supplied runtime or unhashable
    # option makes the run uncacheable (key is None).
    cache = ctx.cache if ctx.cache is not None else get_default_cache()
    cache_key = None
    if cache is not None and hasattr(graph, "fingerprint"):
        cache_key = make_cache_key(
            graph.fingerprint(), spec.kind, spec.name, ctx, kwargs,
            backend=backend,
        )
        cached = cache.get(cache_key)
        if cached is not None:
            cached.report = replace(cached.report, cache_hit=True)
            return cached

    # Shard-aware solvers run their supersteps straight over the facade;
    # for every other solver the engine assembles the monolithic graph
    # (an explicit escape hatch — the budget does not apply to it).  The
    # report and the memo key keep the caller's graph either way, which
    # is what makes sharded and monolithic runs share cache entries.
    solver_graph = graph
    if isinstance(graph, ShardedGraph) and not spec.supports_shards:
        solver_graph = graph.to_graph()

    runtime = None
    charged_loops = charged_serial = 0.0
    if spec.supports_runtime:
        runtime = ctx.ensure_runtime()
        charged_loops = runtime.metrics.parallel_loops
        charged_serial = runtime.metrics.breakdown.serial
        kwargs["runtime"] = runtime
    if spec.supports_frontier and ctx.frontier is not None:
        kwargs["frontier"] = ctx.frontier
    if spec.supports_seed and ctx.seed is not None:
        kwargs["seed"] = ctx.seed
    if spec.supports_cluster and ctx.cluster_config is not None:
        kwargs.setdefault("config", ctx.cluster_config)
    if spec.supports_sanitize and not spec.supports_runtime and ctx.sanitize:
        # Runtime-capable solvers receive the sanitize flag inside the
        # SimRuntime built above; solvers that sanitize *without* a
        # runtime (the BSP ports drive a local sanitizing runtime of
        # their own) get it as an explicit kwarg.
        kwargs["sanitize"] = True

    with use_backend(backend):
        result = spec.func(solver_graph, **kwargs)

    if runtime is not None:
        charged = (
            runtime.metrics.parallel_loops > charged_loops
            or runtime.metrics.breakdown.serial > charged_serial
        )
        if not charged:
            raise EngineError(
                f"solver {spec.kind}:{spec.name} declares supports_runtime "
                "but charged nothing to the SimRuntime it was given"
            )
    result.report = RunReport.from_run(
        spec, result, runtime, graph=graph, backend=backend
    )
    if cache is not None:
        cache.put(cache_key, result)
    return result


def registry_table(kind: str | None = None) -> str:
    """Render the solver registry as an aligned text table.

    One row per spec: name, kind, guarantee, cost tag and capability
    list.  Backs ``repro-dsd --list-methods``.
    """
    headers = ("name", "kind", "guarantee", "cost", "capabilities", "summary")
    rows = [
        (
            spec.name,
            spec.kind,
            spec.guarantee,
            spec.cost,
            ",".join(spec.capabilities) or "-",
            spec.summary,
        )
        for spec in solver_specs(kind)
    ]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in rows)) if rows else len(headers[col])
        for col in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))).rstrip())
    return "\n".join(lines)
