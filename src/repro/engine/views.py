"""Read-only method tables generated live from the solver registry.

.. deprecated:: these views exist so downstream ``from repro import
   UDS_METHODS`` keeps working after the registry refactor.  They are
   *views*, not dicts: the content always mirrors the registered
   :class:`~repro.engine.spec.SolverSpec` set and cannot be mutated.
   New code should use :func:`repro.engine.get_solver` /
   :func:`repro.engine.run` instead.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any, Callable, Iterator

from .spec import solver_names, solver_specs

__all__ = ["MethodsView", "methods_view"]


class MethodsView(Mapping):
    """Live ``{name: callable}`` mapping over one kind's registered solvers.

    .. deprecated:: thin compatibility shim over the solver registry —
       prefer :func:`repro.engine.get_solver` (for the full
       :class:`~repro.engine.spec.SolverSpec`) or :func:`repro.engine.run`.
       Mutation is impossible by design; register solvers with
       ``@register_solver`` (lint rule R006 enforces this).
    """

    def __init__(self, kind: str):
        if kind not in ("uds", "dds"):
            raise ValueError(f"kind must be 'uds' or 'dds', got {kind!r}")
        self._kind = kind

    @property
    def kind(self) -> str:
        """The solver kind ('uds' or 'dds') this view projects."""
        return self._kind

    def __getitem__(self, name: str) -> Callable[..., Any]:
        for spec in solver_specs(self._kind):
            if spec.name == name:
                return spec.func
        raise KeyError(name)

    def __iter__(self) -> Iterator[str]:
        return iter(solver_names(self._kind))

    def __len__(self) -> int:
        return len(solver_names(self._kind))

    def __repr__(self) -> str:
        return f"MethodsView({self._kind}: {', '.join(solver_names(self._kind))})"


def methods_view(kind: str) -> MethodsView:
    """Return the live method table for ``kind`` ('uds' or 'dds')."""
    return MethodsView(kind)
