"""Solver registry: :class:`SolverSpec` + the ``@register_solver`` decorator.

Every solver module under ``repro.algorithms``, ``repro.core`` and
``repro.distributed`` declares itself with ``@register_solver(...)`` at
import time; nothing in the library hand-maintains a method dict any
more.  The registry is the single source of truth for dispatch
(:func:`repro.engine.run`), the public method tables
(:data:`repro.api.UDS_METHODS` / :data:`repro.api.DDS_METHODS` are thin
views over it), the CLI's method list, and the benchmark harness.

Lint rule R006 (:mod:`repro.analysis.rules.registry`) enforces the
convention: solver-shaped functions must carry the decorator, and no
code may poke solver tables directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Literal

from ..errors import AlgorithmError, EngineError

__all__ = [
    "SolverSpec",
    "register_solver",
    "registry_manifest",
    "unregister_solver",
    "get_solver",
    "solver_names",
    "solver_specs",
    "temporary_solver",
]

Kind = Literal["uds", "dds"]
Guarantee = Literal["exact", "2-approx", "heuristic"]

#: Cost-model tags describing how a solver's work is accounted.
COST_TAGS = ("parallel", "serial", "stream", "bsp")


@dataclass(frozen=True)
class SolverSpec:
    """Declarative description of one registered solver.

    ``name`` is the registry key (the CLI / API method string), ``kind``
    selects the problem (``"uds"`` undirected, ``"dds"`` directed),
    ``guarantee`` the solution quality class, and ``cost`` the
    cost-model tag (``"parallel"`` charges a :class:`~repro.runtime.
    simruntime.SimRuntime` via ``parfor``; ``"serial"`` charges serial
    sections; ``"stream"`` marks pass-based streaming accounting;
    ``"bsp"`` runs on the simulated cluster instead of a SimRuntime).

    The capability flags tell the execution engine which pieces of an
    :class:`~repro.engine.context.ExecutionContext` the solver can
    consume; the engine never forwards a kwarg the spec does not claim.
    """

    name: str
    kind: Kind
    func: Callable[..., Any]
    guarantee: Guarantee
    cost: str
    supports_runtime: bool = False
    supports_frontier: bool = False
    supports_sanitize: bool = False
    supports_seed: bool = False
    supports_cluster: bool = False
    supports_shards: bool = False
    """Whether the solver can execute directly on a
    :class:`~repro.store.shard.ShardedGraph` (out-of-core supersteps).
    Not a context-forwarding capability — the engine materializes the
    monolithic graph for solvers without it — so it is deliberately
    absent from :meth:`capability_flags` and the contracts manifest."""

    supports_streaming: bool = False
    """Whether the solver's answer can be maintained incrementally under
    edge mutations (``repro.stream`` wraps it in a warm-started
    :class:`~repro.core.dynamic.DynamicKStarCore` session instead of
    re-running it per batch).  Like ``supports_shards`` this is not a
    context-forwarding capability — the engine never passes a stream to
    a solver — so it is deliberately absent from
    :meth:`capability_flags` and the contracts manifest."""

    default_options: dict[str, Any] = field(default_factory=dict)
    summary: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("uds", "dds"):
            raise EngineError(f"solver kind must be 'uds' or 'dds', got {self.kind!r}")
        if self.guarantee not in ("exact", "2-approx", "heuristic"):
            raise EngineError(
                f"solver guarantee must be exact/2-approx/heuristic, got {self.guarantee!r}"
            )
        if self.cost not in COST_TAGS:
            raise EngineError(
                f"solver cost tag must be one of {COST_TAGS}, got {self.cost!r}"
            )
        if self.supports_frontier and not self.supports_runtime:
            raise EngineError(
                f"{self.name}: supports_frontier requires supports_runtime"
            )
        if not self.summary:
            doc = (self.func.__doc__ or "").strip().splitlines()
            object.__setattr__(self, "summary", doc[0] if doc else self.name)

    def capability_flags(self) -> dict[str, bool]:
        """All capability names with their declared values.

        The same key set (``runtime``/``frontier``/``sanitize``/``seed``/
        ``cluster``) the static contract verifier emits in its
        ``--contracts-manifest`` records, so declared-vs-inferred diffs
        are a dict comparison.
        """
        return {
            "runtime": self.supports_runtime,
            "frontier": self.supports_frontier,
            "sanitize": self.supports_sanitize,
            "seed": self.supports_seed,
            "cluster": self.supports_cluster,
        }

    @property
    def capabilities(self) -> tuple[str, ...]:
        """The supported capability names, for tables and reports."""
        return tuple(
            name for name, on in self.capability_flags().items() if on
        )


# The one solver store.  Keyed (kind, name); only register_solver /
# unregister_solver may touch it (R006 guards outside mutation).
_REGISTRY: dict[tuple[str, str], SolverSpec] = {}
_DISCOVERED = False

#: Modules whose import registers the canonical solver set.  Adding a new
#: solver module means decorating its entry point and, if it lives outside
#: these packages, listing it here — never editing a method dict.
_SOLVER_MODULES = (
    "repro.algorithms.undirected",
    "repro.algorithms.directed",
    "repro.core.pkmc",
    "repro.core.pwc",
    "repro.distributed",
)


def register_solver(
    name: str,
    *,
    kind: Kind,
    guarantee: Guarantee,
    cost: str,
    supports_runtime: bool = False,
    supports_frontier: bool = False,
    supports_sanitize: bool = False,
    supports_seed: bool = False,
    supports_cluster: bool = False,
    supports_shards: bool = False,
    supports_streaming: bool = False,
    default_options: dict[str, Any] | None = None,
    summary: str = "",
) -> Callable[[Callable], Callable]:
    """Class the decorated callable as a solver and add it to the registry.

    The callable is returned unchanged (direct calls keep working); a
    :class:`SolverSpec` describing it becomes available through
    :func:`get_solver` / :func:`solver_specs`.  Registering the same
    (kind, name) twice with a different callable raises
    :class:`~repro.errors.EngineError` — re-imports of the same module
    are idempotent.
    """

    def decorate(func: Callable) -> Callable:
        spec = SolverSpec(
            name=name,
            kind=kind,
            func=func,
            guarantee=guarantee,
            cost=cost,
            supports_runtime=supports_runtime,
            supports_frontier=supports_frontier,
            supports_sanitize=supports_sanitize,
            supports_seed=supports_seed,
            supports_cluster=supports_cluster,
            supports_shards=supports_shards,
            supports_streaming=supports_streaming,
            default_options=dict(default_options or {}),
            summary=summary,
        )
        key = (spec.kind, spec.name)
        existing = _REGISTRY.get(key)
        if existing is not None and existing.func is not func:
            raise EngineError(
                f"solver {spec.kind}:{spec.name} is already registered "
                f"by {existing.func.__module__}.{existing.func.__qualname__}"
            )
        _REGISTRY[key] = spec
        return func

    return decorate


def unregister_solver(kind: str, name: str) -> None:
    """Remove one spec from the registry (test scaffolding only)."""
    _REGISTRY.pop((kind, name), None)


class temporary_solver:
    """Context manager registering a spec for the ``with`` block only.

    Used by tests that need a throwaway solver without leaking it into
    the global registry.
    """

    def __init__(self, **register_kwargs: Any):
        self._kwargs = register_kwargs
        self._key: tuple[str, str] | None = None

    def __call__(self, func: Callable) -> "temporary_solver":
        self._func = func
        return self

    def __enter__(self) -> SolverSpec:
        register_solver(**self._kwargs)(self._func)
        self._key = (self._kwargs["kind"], self._kwargs["name"])
        return _REGISTRY[self._key]

    def __exit__(self, *exc_info: object) -> None:
        if self._key is not None:
            _REGISTRY.pop(self._key, None)


def _ensure_discovered() -> None:
    """Import the canonical solver modules once so decorators have run."""
    global _DISCOVERED
    if _DISCOVERED:
        return
    _DISCOVERED = True  # set first: solver modules may query the registry
    import importlib

    for module in _SOLVER_MODULES:
        importlib.import_module(module)


def get_solver(kind: str, name: str) -> SolverSpec:
    """Return the spec registered as (kind, name).

    Raises :class:`~repro.errors.AlgorithmError` with the historical
    "unknown UDS/DDS method" message on a miss, so registry lookups keep
    the error contract of the old hand-maintained dicts.
    """
    _ensure_discovered()
    spec = _REGISTRY.get((kind, name))
    if spec is None:
        raise AlgorithmError(
            f"unknown {kind.upper()} method {name!r}; "
            f"choose from {solver_names(kind)}"
        )
    return spec


def solver_names(kind: str) -> list[str]:
    """Sorted registry names of one kind."""
    _ensure_discovered()
    return sorted(name for k, name in _REGISTRY if k == kind)


def solver_specs(kind: str | None = None) -> Iterator[SolverSpec]:
    """Iterate registered specs (optionally one kind), sorted by key."""
    _ensure_discovered()
    for key in sorted(_REGISTRY):
        if kind is None or key[0] == kind:
            yield _REGISTRY[key]


def registry_manifest() -> list[dict]:
    """Runtime capability manifest: one record per registered solver.

    The dynamic counterpart of the static verifier's
    ``--contracts-manifest``: same sort order (kind, name) and the same
    ``capability_flags`` schema, so tests can assert the decorator
    literals the dataflow pass extracted match what actually registered.
    """
    _ensure_discovered()
    return [
        {
            "kind": spec.kind,
            "name": spec.name,
            "function": spec.func.__qualname__,
            "module": spec.func.__module__,
            "guarantee": spec.guarantee,
            "cost": spec.cost,
            "capabilities": spec.capability_flags(),
        }
        for spec in solver_specs()
    ]
