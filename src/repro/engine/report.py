"""Structured run reports attached to every engine-dispatched result.

A :class:`RunReport` is the uniform "what happened" record the paper's
tables need: which solver ran, under which guarantee, how many
sweeps/rounds it took, the simulated parallel seconds, the peak frontier
(largest single parallel loop), and the solution density.  The engine
attaches one to every :class:`~repro.core.results.UDSResult` /
:class:`~repro.core.results.DDSResult` it returns; the construction is a
pure function of (spec, result, runtime), so a report built from a
direct solver call with the same runtime is equal to the engine's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.simruntime import SimRuntime
    from .spec import SolverSpec

__all__ = ["RunReport", "attach_serve_stats", "attach_stream_stats"]


def _shard_fields(result: Any, graph: Any) -> dict[str, int]:
    """Per-shard breakdown for the report, when the run was sharded.

    Solvers that executed over a :class:`~repro.store.shard.ShardedGraph`
    stamp their residency/exchange counters into
    ``result.extras["shard_stats"]``; runs where the engine materialized
    the monolithic graph for a shard-unaware solver still report the
    facade's own load counters (with no boundary traffic).  Monolithic
    runs return no fields, leaving the zero defaults.
    """
    stats = None
    extras = getattr(result, "extras", None)
    if isinstance(extras, dict):
        stats = extras.get("shard_stats")
    if stats is None and hasattr(graph, "num_shards") and hasattr(graph, "stats"):
        stats = dict(graph.stats())
    if not isinstance(stats, dict):
        return {}
    return {
        "shards": int(stats.get("shards", 0)),
        "shard_loads": int(stats.get("shard_loads", 0)),
        "peak_resident_bytes": int(stats.get("peak_resident_bytes", 0)),
        "boundary_messages_bytes": int(stats.get("boundary_messages_bytes", 0)),
    }


@dataclass(frozen=True)
class RunReport:
    """Uniform outcome record for one solver run.

    ``iterations`` is the solver's own outer-iteration count (sweeps for
    the h-index family, peeling passes or rounds elsewhere — the paper's
    Table-6 quantity).  ``peak_frontier`` is the largest number of items
    any single parallel loop processed (the frontier kernels' high-water
    mark); ``parallel_loops``, ``peak_memory_bytes`` and ``breakdown``
    come from the run's :class:`~repro.runtime.metrics.RunMetrics` and
    are zero/empty for solvers that run without a simulated runtime.
    ``graph_memory_bytes`` is the *actual* resident size of the input
    graph's CSR + cached scratch buffers (``graph.memory_bytes()``) —
    distinct from the simulated ``peak_memory_bytes``.  ``cache_hit``
    marks results served from the engine's memoization cache without
    re-running the solver.  ``backend`` is the resolved array backend
    (:mod:`repro.backends`) the run's kernels executed on; it affects
    wall-clock only — never results or simulated seconds.

    The shard fields are zero outside sharded runs: ``shards`` is the
    partition count of the :class:`~repro.store.shard.ShardedGraph` the
    solver executed over, ``shard_loads`` / ``peak_resident_bytes`` the
    facade's residency counters for this run, and
    ``boundary_messages_bytes`` the bytes the BSP cost model moved
    across shard boundaries.  They come from the solver's
    ``extras["shard_stats"]`` when present, else from the sharded
    graph's own counters.

    The serve fields are zero outside :mod:`repro.serve`:
    ``queue_wait_s`` is how long the query sat in the server's admission
    queue before its flight started, ``batch_size`` how many queries
    shared the graph-fingerprint batch that amortised CSR/scratch/
    backend-segment setup, and ``coalesced`` how many queries were
    answered by the one single-flight computation this report describes
    (1 = no duplicate attached). They are stamped through
    :func:`attach_serve_stats` — reports stay engine-owned (lint rule
    R012) and the stamping never changes the solver-outcome fields.

    The streaming fields are zero outside :mod:`repro.stream`:
    ``updates_applied`` is how many edge mutations the maintained
    structure has absorbed so far, ``affected_vertices`` how many
    vertices all its refreshes re-converged in total (a full rebuild
    counts all n), ``incremental_fraction`` the fraction of refreshes
    served by the localized path rather than a rebuild, and
    ``rebuilds`` the full-rebuild count (fallbacks included).  They are
    stamped through :func:`attach_stream_stats`, the streaming
    counterpart of :func:`attach_serve_stats`.
    """

    solver: str
    kind: str
    guarantee: str
    cost: str
    density: float
    iterations: int
    simulated_seconds: float
    num_threads: int = 1
    peak_frontier: int = 0
    parallel_loops: int = 0
    peak_memory_bytes: int = 0
    graph_memory_bytes: int = 0
    cache_hit: bool = False
    backend: str = "numpy"
    shards: int = 0
    shard_loads: int = 0
    peak_resident_bytes: int = 0
    boundary_messages_bytes: int = 0
    queue_wait_s: float = 0.0
    batch_size: int = 0
    coalesced: int = 0
    updates_applied: int = 0
    affected_vertices: int = 0
    incremental_fraction: float = 0.0
    rebuilds: int = 0
    breakdown: dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_run(
        cls,
        spec: "SolverSpec",
        result: Any,
        runtime: "SimRuntime | None" = None,
        graph: Any = None,
        backend: str | None = None,
    ) -> "RunReport":
        """Build the report for ``result`` produced by ``spec``'s solver.

        Deterministic in its inputs: the engine and a direct solver call
        that used the same runtime (and graph) produce equal reports.
        ``backend=None`` records the currently active array backend —
        what a direct solver call just executed on.
        """
        if backend is None:
            from ..backends import backend_name

            backend = backend_name()
        graph_memory = (
            int(graph.memory_bytes())
            if graph is not None and hasattr(graph, "memory_bytes")
            else 0
        )
        shard_fields = _shard_fields(result, graph)
        if runtime is not None:
            metrics = runtime.metrics
            return cls(
                solver=spec.name,
                kind=spec.kind,
                guarantee=spec.guarantee,
                cost=spec.cost,
                density=result.density,
                iterations=result.iterations,
                simulated_seconds=runtime.now,
                num_threads=runtime.num_threads,
                peak_frontier=metrics.max_parfor_items,
                parallel_loops=metrics.parallel_loops,
                peak_memory_bytes=metrics.peak_memory_bytes,
                graph_memory_bytes=graph_memory,
                backend=backend,
                breakdown=metrics.breakdown.as_dict(),
                **shard_fields,
            )
        return cls(
            solver=spec.name,
            kind=spec.kind,
            guarantee=spec.guarantee,
            cost=spec.cost,
            density=result.density,
            iterations=result.iterations,
            simulated_seconds=result.simulated_seconds,
            graph_memory_bytes=graph_memory,
            backend=backend,
            **shard_fields,
        )

    def as_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (for bench records and CLI output)."""
        return {
            "solver": self.solver,
            "kind": self.kind,
            "guarantee": self.guarantee,
            "cost": self.cost,
            "density": self.density,
            "iterations": self.iterations,
            "simulated_seconds": self.simulated_seconds,
            "num_threads": self.num_threads,
            "peak_frontier": self.peak_frontier,
            "parallel_loops": self.parallel_loops,
            "peak_memory_bytes": self.peak_memory_bytes,
            "graph_memory_bytes": self.graph_memory_bytes,
            "cache_hit": self.cache_hit,
            "backend": self.backend,
            "shards": self.shards,
            "shard_loads": self.shard_loads,
            "peak_resident_bytes": self.peak_resident_bytes,
            "boundary_messages_bytes": self.boundary_messages_bytes,
            "queue_wait_s": self.queue_wait_s,
            "batch_size": self.batch_size,
            "coalesced": self.coalesced,
            "updates_applied": self.updates_applied,
            "affected_vertices": self.affected_vertices,
            "incremental_fraction": self.incremental_fraction,
            "rebuilds": self.rebuilds,
            "breakdown": dict(self.breakdown),
        }


def attach_serve_stats(
    result: Any,
    queue_wait_s: float,
    batch_size: int,
    coalesced: int,
) -> Any:
    """Stamp serving-layer fields onto ``result``'s report, in place.

    The one sanctioned way for :mod:`repro.serve` to annotate a response:
    reports are engine-owned (lint rule R012 flags ``.report`` writes
    outside ``repro/engine/``), so the server hands its per-query
    queue-wait, batch and coalescing numbers to this helper instead of
    rewriting the frozen dataclass itself.  Only the serve fields change
    — the solver-outcome fields are untouched, so stripping the serve
    fields back to their defaults recovers a report equal to what a
    direct ``engine.run`` produced.  Returns ``result`` for chaining.
    """
    if result.report is None:
        raise ValueError("attach_serve_stats needs an engine-attached report")
    if queue_wait_s < 0:
        raise ValueError("queue_wait_s must be non-negative")
    if batch_size < 1 or coalesced < 1:
        raise ValueError("batch_size and coalesced count this query: >= 1")
    from dataclasses import replace

    result.report = replace(
        result.report,
        queue_wait_s=queue_wait_s,
        batch_size=batch_size,
        coalesced=coalesced,
    )
    return result


def attach_stream_stats(
    result: Any,
    *,
    spec: "SolverSpec",
    updates_applied: int,
    affected_vertices: int,
    incremental_fraction: float,
    rebuilds: int,
    graph: Any = None,
    cache_hit: bool = False,
) -> Any:
    """Stamp streaming-layer fields onto ``result``'s report, in place.

    The one sanctioned way for :mod:`repro.stream` to annotate a
    maintained answer (reports are engine-owned — lint rule R012).
    Unlike the serving layer, a streaming query never went through
    ``engine.run`` — the answer comes warm from the maintained
    structure — so when ``result`` carries no report yet one is built
    first with :meth:`RunReport.from_run` (pass ``graph`` to record its
    resident size).  Only the streaming fields and ``cache_hit`` are
    then replaced; the solver-outcome fields stay whatever the
    construction produced.  Returns ``result`` for chaining.
    """
    if updates_applied < 0 or affected_vertices < 0 or rebuilds < 0:
        raise ValueError("streaming counters must be non-negative")
    if not 0.0 <= incremental_fraction <= 1.0:
        raise ValueError("incremental_fraction must be within [0, 1]")
    if result.report is None:
        result.report = RunReport.from_run(spec, result, graph=graph)
    from dataclasses import replace

    result.report = replace(
        result.report,
        cache_hit=cache_hit,
        updates_applied=updates_applied,
        affected_vertices=affected_vertices,
        incremental_fraction=incremental_fraction,
        rebuilds=rebuilds,
    )
    return result
