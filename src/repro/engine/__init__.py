"""repro.engine — unified solver registry and execution engine.

The three layers every solver run goes through:

* **registry** (:mod:`repro.engine.spec`): each solver module declares
  itself with ``@register_solver(name, kind=..., guarantee=..., cost=...,
  supports_...)``; import-time auto-discovery means no central method
  dict is ever edited (lint rule R006 enforces the convention);
* **context** (:mod:`repro.engine.context`): an
  :class:`ExecutionContext` carries the SimRuntime, thread count, seed,
  budgets, sanitize and frontier toggles — the engine forwards each field
  only to solvers whose spec claims the capability;
* **report** (:mod:`repro.engine.report`): :func:`run` attaches a
  structured :class:`RunReport` (guarantee, sweeps/rounds, simulated
  seconds, peak frontier, density) to every result.

Typical use::

    from repro.engine import ExecutionContext, run
    result = run("pkmc", graph, ExecutionContext(num_threads=32))
    print(result.report.simulated_seconds, result.report.guarantee)

See ``docs/architecture.md`` for the full design.
"""

from __future__ import annotations

from ..store.memo import (
    ResultCache,
    disable_default_cache,
    enable_default_cache,
)
from .context import ExecutionContext
from .report import RunReport, attach_serve_stats, attach_stream_stats
from .runner import registry_table, resolve_solver, run
from .spec import (
    SolverSpec,
    get_solver,
    register_solver,
    solver_names,
    solver_specs,
    temporary_solver,
    unregister_solver,
)
from .views import MethodsView, methods_view

__all__ = [
    "ExecutionContext",
    "ResultCache",
    "enable_default_cache",
    "disable_default_cache",
    "RunReport",
    "attach_serve_stats",
    "attach_stream_stats",
    "SolverSpec",
    "MethodsView",
    "run",
    "resolve_solver",
    "registry_table",
    "register_solver",
    "unregister_solver",
    "temporary_solver",
    "get_solver",
    "solver_names",
    "solver_specs",
    "methods_view",
]
