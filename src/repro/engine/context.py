"""Execution context: the one object threading run configuration to solvers.

Before the engine existed, every call site hand-threaded ``runtime=``,
``frontier=`` and thread counts into each solver, and each solver
re-implemented the ``runtime or SimRuntime(...)`` dance.  An
:class:`ExecutionContext` replaces that: build one per run (or let
:func:`repro.engine.run` build a default), and the engine forwards each
field only to solvers whose :class:`~repro.engine.spec.SolverSpec`
declares the matching capability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..runtime.simruntime import SimRuntime

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..distributed.cluster import ClusterConfig
    from ..store.memo import ResultCache

__all__ = ["ExecutionContext"]


@dataclass
class ExecutionContext:
    """Everything a solver run may consume, in one place.

    ``runtime`` is created lazily by :meth:`ensure_runtime` (honouring
    ``num_threads``, ``sanitize`` and the budgets) the first time a
    runtime-capable solver runs, so serial solvers never pay for one and
    an explicitly supplied :class:`~repro.runtime.simruntime.SimRuntime`
    is always respected.  ``frontier=None`` means "solver default";
    ``seed`` reaches only solvers declaring ``supports_seed``;
    ``cluster_config`` reaches only the BSP ports.  ``extras`` is a
    free-form metrics sink call sites may use to stash run annotations.
    ``cache`` opts the run into result memoization
    (:mod:`repro.store.memo`): hits are served without re-executing the
    solver, keyed on the graph fingerprint plus every behavior-relevant
    context field; when unset, the process-wide default cache (if any)
    applies.  ``backend`` selects the array backend
    (:mod:`repro.backends`) the solver's kernels execute on for the
    duration of the run — ``None`` defers to the ``REPRO_BACKEND``
    environment variable, then the numpy default.  Outputs are
    bit-identical whichever backend runs, so the field only affects
    wall-clock (and is recorded in the
    :class:`~repro.engine.report.RunReport`).
    """

    num_threads: int = 1
    runtime: SimRuntime | None = None
    seed: int | None = None
    sanitize: bool = False
    frontier: bool | None = None
    time_limit: float | None = None
    memory_limit_bytes: float | None = None
    cluster_config: "ClusterConfig | None" = None
    cache: "ResultCache | None" = None
    backend: str | None = None
    extras: dict[str, Any] = field(default_factory=dict)

    def ensure_runtime(self) -> SimRuntime:
        """Return the context's runtime, building one on first use."""
        if self.runtime is None:
            self.runtime = SimRuntime(
                num_threads=self.num_threads,
                time_limit=self.time_limit,
                memory_limit_bytes=self.memory_limit_bytes,
                sanitize=self.sanitize,
            )
        return self.runtime

    @property
    def simulated_seconds(self) -> float:
        """Simulated seconds charged so far (0.0 before any runtime work)."""
        return self.runtime.now if self.runtime is not None else 0.0
