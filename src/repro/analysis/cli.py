"""``repro-lint`` — run the project lint rules over sources.

Examples::

    repro-lint src/                      # lint a tree with all rules
    repro-lint src/ --strict             # non-zero exit on warnings too
    repro-lint src/repro/core --select R001,R005
    repro-lint --list-rules              # print the rule catalogue

Exit codes: 0 clean (warnings allowed unless ``--strict``), 1 findings,
2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys

from .engine import LintEngine
from .rules import DEFAULT_RULES

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Determinism & API lint for the repro codebase (R001-R005).",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warnings as well as errors",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _split_ids(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def _print_rules() -> None:
    for rule in DEFAULT_RULES:
        print(f"{rule.rule_id} [{rule.severity:<7}] {rule.title}")
        print(f"     hint: {rule.fix_hint}")


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        _print_rules()
        return 0
    if not args.paths:
        print("error: no paths given (try `repro-lint src/`)", file=sys.stderr)
        return 2

    engine = LintEngine(select=_split_ids(args.select), ignore=_split_ids(args.ignore))
    if not engine.rules:
        print("error: --select/--ignore left no rules to run", file=sys.stderr)
        return 2
    try:
        findings = engine.lint_paths(args.paths)
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors

    if args.format == "json":
        print(json.dumps([f.as_dict() for f in findings], indent=2))
    else:
        for finding in findings:
            print(finding.format())
        if findings:
            print(f"\n{errors} error(s), {warnings} warning(s)")
        else:
            print("clean: no findings")

    if errors or (args.strict and warnings):
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
