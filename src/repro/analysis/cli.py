"""``repro-lint`` — run the project lint rules over sources.

Examples::

    repro-lint src/                      # lint a tree with all rules
    repro-lint src/ --strict             # non-zero exit on warnings too
    repro-lint src/repro/core --select R001,R005
    repro-lint src --select R007-R012    # the dataflow contract family
    repro-lint src --format json         # stable, sorted finding records
    repro-lint src --select R007-R012 --check-baseline analysis/baseline.json
    repro-lint src --contracts-manifest manifest.json
    repro-lint --list-rules              # print the rule catalogue

Exit codes: 0 clean (warnings allowed unless ``--strict``), 1 findings,
2 usage error.  With ``--check-baseline`` only findings *not* in the
baseline gate; ``--write-baseline`` records the current findings and
exits 0.
"""

from __future__ import annotations

import argparse
import json
import re
import sys

from .baseline import BaselineError, load_baseline, match_baseline, write_baseline
from .engine import LintEngine
from .rules import DEFAULT_RULES, rule_range

__all__ = ["main"]

_RANGE_RE = re.compile(r"^([A-Za-z]+)(\d+)-(?:[A-Za-z]+)?(\d+)$")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Determinism, API & contract lint for the repro codebase "
            f"({rule_range()})."
        ),
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warnings as well as errors",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run; ranges allowed (R007-R012)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to skip; ranges allowed",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default text); json records are stable-sorted",
    )
    parser.add_argument(
        "--check-baseline",
        default=None,
        metavar="FILE",
        help="gate only on findings not present in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="write the current findings to FILE as a baseline and exit 0",
    )
    parser.add_argument(
        "--contracts-manifest",
        default=None,
        metavar="FILE",
        help=(
            "dump the declared-vs-inferred solver capability manifest as "
            "JSON to FILE ('-' prints it and skips linting)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _split_ids(raw: str | None) -> list[str] | None:
    """Parse a comma list of rule ids, expanding ``R007-R012`` ranges."""
    if raw is None:
        return None
    ids: list[str] = []
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        match = _RANGE_RE.match(part)
        if match:
            prefix, lo, hi = match.group(1), int(match.group(2)), int(match.group(3))
            width = len(match.group(2))
            step = 1 if hi >= lo else -1
            ids.extend(
                f"{prefix}{num:0{width}d}" for num in range(lo, hi + step, step)
            )
        else:
            ids.append(part)
    return ids


def _print_rules() -> None:
    for rule in DEFAULT_RULES:
        print(f"{rule.rule_id} [{rule.severity:<7}] {rule.title}")
        print(f"     hint: {rule.fix_hint}")


def _emit_manifest(paths: list[str], destination: str) -> None:
    engine = LintEngine()
    manifest = engine.build_project(paths).contracts_manifest()
    text = json.dumps(manifest, indent=2, sort_keys=True)
    if destination == "-":
        print(text)
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        _print_rules()
        return 0
    if not args.paths:
        print("error: no paths given (try `repro-lint src/`)", file=sys.stderr)
        return 2

    if args.contracts_manifest is not None:
        try:
            _emit_manifest(args.paths, args.contracts_manifest)
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if args.contracts_manifest == "-":
            return 0

    engine = LintEngine(select=_split_ids(args.select), ignore=_split_ids(args.ignore))
    if not engine.rules:
        print("error: --select/--ignore left no rules to run", file=sys.stderr)
        return 2
    try:
        findings = engine.lint_paths(args.paths)
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.write_baseline is not None:
        try:
            write_baseline(args.write_baseline, findings)
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(f"baseline: wrote {len(findings)} finding(s) to {args.write_baseline}")
        return 0

    stale_count = 0
    baselined_count = 0
    if args.check_baseline is not None:
        try:
            records = load_baseline(args.check_baseline)
        except BaselineError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        findings, baselined, stale = match_baseline(findings, records)
        baselined_count = len(baselined)
        stale_count = len(stale)

    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors

    if args.format == "json":
        print(json.dumps([f.as_dict() for f in findings], indent=2))
    else:
        for finding in findings:
            print(finding.format())
        summary = (
            f"{errors} error(s), {warnings} warning(s)"
            if findings
            else "clean: no findings"
        )
        if args.check_baseline is not None:
            summary += (
                f" [baseline: {baselined_count} suppressed, {stale_count} stale]"
            )
            if stale_count:
                summary += " — rerun with --write-baseline to ratchet down"
        print(("\n" if findings else "") + summary)

    if errors or (args.strict and warnings):
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
