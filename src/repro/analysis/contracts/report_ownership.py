"""R012: ``RunReport`` is engine-owned — nobody else writes it.

Every solver result carries a ``report`` attached by
``repro.engine.runner`` (``RunReport.from_run``, plus the
``cache_hit=True`` restamp via ``dataclasses.replace``).  The dataclass
is frozen, so a direct field write raises at run time — but only on the
lines a test happens to execute, and dict-valued fields
(``breakdown``) mutate silently.  R012 makes the ownership boundary
static: any assignment whose target chain passes through a ``.report``
attribute — ``x.report = ...``, ``x.report.density = ...``,
``x.report.breakdown["k"] = ...`` — is flagged outside
``repro/engine/``.

Exemption: ``self.report = ...`` inside ``__init__``/``__post_init__``
stays legal everywhere, because carrier objects (e.g.
``ParforRaceError``) legitimately *hold* a report they were given; they
just must not rewrite its fields afterwards.
"""

from __future__ import annotations

import ast

from ..engine import Rule

__all__ = ["ReportOwnershipRule"]

_ENGINE_FRAGMENT = "repro/engine/"
_CTOR_NAMES = frozenset({"__init__", "__post_init__"})


def _chain_report_attr(expr: ast.expr) -> ast.Attribute | None:
    """The ``.report`` attribute inside a target chain, if any."""
    node: ast.AST | None = expr
    while node is not None:
        if isinstance(node, ast.Attribute):
            if node.attr == "report":
                return node
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        else:
            return None
    return None


class ReportOwnershipRule(Rule):
    """Flag RunReport writes outside ``repro.engine``."""

    rule_id = "R012"
    title = "RunReport written outside repro.engine"
    severity = "error"
    fix_hint = (
        "reports are produced by RunReport.from_run inside the engine and "
        "are read-only everywhere else; derive new values with "
        "dataclasses.replace inside repro.engine instead of mutating"
    )

    def __init__(self, context):
        super().__init__(context)
        self._function_stack: list[str] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Track the enclosing function for the constructor exemption."""
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def _exempt(self, attr: ast.Attribute, direct_target: bool) -> bool:
        if _ENGINE_FRAGMENT in self.context.posix_path:
            return True
        return (
            direct_target
            and bool(self._function_stack)
            and self._function_stack[-1] in _CTOR_NAMES
            and isinstance(attr.value, ast.Name)
            and attr.value.id == "self"
        )

    def _check_target(self, target: ast.expr) -> None:
        attr = _chain_report_attr(target)
        if attr is None:
            return
        direct = target is attr
        if self._exempt(attr, direct_target=direct):
            return
        what = (
            "assigns a `.report`"
            if direct
            else "writes through a `.report` field"
        )
        self.report(
            target,
            f"{what} outside repro.engine — RunReport construction and "
            "updates are engine-owned",
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        """Check plain assignments."""
        for target in node.targets:
            self._check_target(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        """Check annotated assignments."""
        self._check_target(node.target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        """Check augmented assignments."""
        self._check_target(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        """Check attribute deletions."""
        for target in node.targets:
            self._check_target(target)
        self.generic_visit(node)
