"""R008: graph-sized Python loops in runtime-capable code must be costed.

The paper's scalability claims assume each peeling/sweep pass charges
O(m) simulated work.  A Python-level ``for`` loop over a graph-sized
iterable — ``graph.edges()``, a raw CSR ``indices`` array,
``range(num_vertices)`` / ``range(num_edges)`` — inside a function that
holds a SimRuntime but never charges it is uncosted O(n)/O(m) work: the
bench harness reports simulated seconds that do not include it, which is
exactly the silent-perf-bug class this rule exists to catch.  It fires
as a *warning*: the fix is usually to vectorize through
:mod:`repro.kernels`, not to sprinkle charges.

A loop is only flagged when the *enclosing function* contains no charge
event at all: per-iteration metering (``while num_alive > 0: ...
rt.parfor(...)``) and the bulk-charge idiom (``charikar_peel`` runs its
Python peel loop, then prices the whole pass at once with
``charge_serial_peel``) both stay clean — the rule targets functions
whose graph-sized work is entirely invisible to the cost model.
Functions without any runtime-holding name are skipped too: serial
brute-force solvers are allowed their Python loops, the cost model
prices them as ``cost="serial"``.
"""

from __future__ import annotations

import ast

from ..dataflow.index import FunctionInfo, ProjectIndex
from ..engine import Rule

__all__ = ["UnchargedGraphLoopRule"]

_SIZE_ATTRS = frozenset({"num_vertices", "num_edges"})
_GRAPH_SIZED_CALLS = frozenset({"edges"})
_GRAPH_SIZED_ATTRS = frozenset({"indices"})


def _graph_sized_names(func: ast.AST) -> set[str]:
    """Names bound (anywhere in ``func``) to a graph-sized quantity."""
    sized: set[str] = set()

    def value_is_sized(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Attribute) and expr.attr in _SIZE_ATTRS:
            return True
        if isinstance(expr, ast.Name) and expr.id in sized:
            return True
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id == "int"
            and expr.args
        ):
            return value_is_sized(expr.args[0])
        return False

    changed = True
    while changed:
        changed = False
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and value_is_sized(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id not in sized:
                        sized.add(target.id)
                        changed = True
    return sized


def _iterable_description(expr: ast.expr, sized: set[str]) -> str | None:
    """A human description if ``expr`` iterates a graph-sized object."""
    if isinstance(expr, ast.Call):
        callee = expr.func
        if isinstance(callee, ast.Attribute) and callee.attr in _GRAPH_SIZED_CALLS:
            return f".{callee.attr}()"
        if isinstance(callee, ast.Name) and callee.id == "range" and expr.args:
            stop = expr.args[1] if len(expr.args) >= 2 else expr.args[0]
            if isinstance(stop, ast.Attribute) and stop.attr in _SIZE_ATTRS:
                return f"range(.{stop.attr})"
            if isinstance(stop, ast.Name) and stop.id in sized:
                return f"range({stop.id})"
    if isinstance(expr, ast.Attribute) and expr.attr in _GRAPH_SIZED_ATTRS:
        return f".{expr.attr}"
    if isinstance(expr, ast.Name) and expr.id in sized:
        return expr.id
    return None


class UnchargedGraphLoopRule(Rule):
    """Flag uncharged Python-level loops over graph-sized iterables."""

    rule_id = "R008"
    title = "graph-sized Python loop without a SimRuntime charge"
    severity = "warning"
    fix_hint = (
        "vectorize the loop through repro.kernels (parfor/frontier/segment "
        "kernels) or charge it explicitly with rt.parfor/rt.charge_serial "
        "so the cost model sees the work"
    )
    requires_project = True

    def run(self, tree: ast.Module) -> list:
        """Scan every runtime-capable function in the current module."""
        project: ProjectIndex | None = self.context.project
        if project is None:
            return self.findings
        module = project.module(self.context.path)
        if module is None:
            return self.findings
        for function in module.functions.values():
            self._check(project, function)
        return self.findings

    def _check(self, project: ProjectIndex, fn: FunctionInfo) -> None:
        runtime_names = fn.runtime_names
        if not runtime_names:
            return
        if project.expr_charges(fn.node, runtime_names):
            return  # metered somewhere: per-iteration or bulk-charged
        sized = _graph_sized_names(fn.node)
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables = [node.iter]
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iterables = [gen.iter for gen in node.generators]
            else:
                continue
            described = None
            for iterable in iterables:
                described = _iterable_description(iterable, sized)
                if described is not None:
                    break
            if described is None:
                continue
            self.report(
                node,
                f"Python-level loop over graph-sized `{described}` in a "
                "runtime-capable function, with no SimRuntime charge inside "
                "the loop — this work is invisible to the cost model",
            )
