"""R009: ``supports_frontier=True`` must be backed by frontier plumbing.

The engine forwards ``ctx.frontier`` only to solvers that declared
``supports_frontier`` — if the implementation then ignores the argument
(or never accepts it), ``--no-frontier`` silently does nothing and every
frontier-vs-full-sweep comparison in the bench suite measures the same
code twice.  That is capability drift: the declaration and the
implementation disagree.

A solver *consumes* the frontier capability when it accepts a
``frontier`` parameter and either tests it, calls into
:mod:`repro.kernels.frontier` (resolved through import origins), or
forwards the parameter to a helper that consumes it — the fixed-point
closure computed by the
:class:`~repro.analysis.dataflow.index.ProjectIndex`.  This accepts the
``pwc`` pattern, where the frontier strategy lives in a core helper
rather than a direct kernel call.
"""

from __future__ import annotations

import ast

from ..dataflow.index import ProjectIndex
from ..engine import Rule

__all__ = ["FrontierCapabilityRule"]


class FrontierCapabilityRule(Rule):
    """Flag declared-but-unimplemented frontier capability."""

    rule_id = "R009"
    title = "supports_frontier declared but the frontier is never used"
    severity = "error"
    fix_hint = (
        "wire the frontier parameter into repro.kernels.frontier (or a "
        "helper that consumes it), or drop supports_frontier=True from "
        "@register_solver"
    )
    requires_project = True

    def run(self, tree: ast.Module) -> list:
        """Check every ``supports_frontier=True`` registration here."""
        project: ProjectIndex | None = self.context.project
        if project is None:
            return self.findings
        module = project.module(self.context.path)
        if module is None:
            return self.findings
        for reg in module.solvers:
            if not reg.declared.get("supports_frontier"):
                continue
            fn = reg.function
            if not fn.has_frontier_param:
                self.report(
                    fn.node,
                    f"solver `{reg.name}` declares supports_frontier=True "
                    "but accepts no `frontier` parameter — the engine has "
                    "nothing to forward ctx.frontier into",
                )
            elif not project.consumes_frontier(fn):
                self.report(
                    fn.node,
                    f"solver `{reg.name}` accepts a `frontier` parameter "
                    "but never tests or forwards it — capability drift: "
                    "--no-frontier silently selects the same code path",
                )
        return self.findings
