"""R007: ``supports_runtime=True`` solvers must charge on every path.

The engine's runner enforces the cost-model contract dynamically: after
a ``supports_runtime`` solver returns, ``metrics.parallel_loops`` or
``metrics.breakdown.serial`` must have advanced, else ``EngineError``.
That check only fires on the inputs a test happens to run — PR 3's audit
found exactly this bug class in ``binary-search``.  R007 is the static
twin: it searches the solver's CFG for a path from entry to a ``return``
that never charges the runtime.

Modelling choices (all biased against false positives):

* a *charge event* is ``<rt>.parfor/par_tasks/charge_serial(...)`` on a
  runtime-holding name, or a call forwarding such a name to a callee the
  :class:`~repro.analysis.dataflow.index.ProjectIndex` cannot prove
  non-charging;
* the engine always passes a runtime to a ``supports_runtime`` solver,
  so edges guarded by ``runtime is None`` (or falsy ``runtime``) are
  unreachable and excluded from the search;
* graph-sized loops are assumed to run at least once (an empty graph
  raises ``EmptyGraphError`` before any solver loop), so zero-trip loop
  exits are excluded — charging inside the main peeling loop satisfies
  the contract;
* paths ending in ``raise`` never reach the engine's post-run check and
  are ignored.
"""

from __future__ import annotations

import ast

from ..dataflow.cfg import CFG, build_cfg
from ..dataflow.index import ProjectIndex, SolverRegistration
from ..engine import Rule

__all__ = ["RuntimeChargeRule"]


class RuntimeChargeRule(Rule):
    """Flag uncharged reachable returns in ``supports_runtime`` solvers."""

    rule_id = "R007"
    title = "supports_runtime solver with an uncharged return path"
    severity = "error"
    fix_hint = (
        "charge the path with rt.parfor(...)/rt.par_tasks(...)/"
        "rt.charge_serial(...) (or a helper that does), or drop "
        "supports_runtime=True from @register_solver"
    )
    requires_project = True

    def run(self, tree: ast.Module) -> list:
        """Check every ``@register_solver(supports_runtime=True)`` here."""
        project: ProjectIndex | None = self.context.project
        if project is None:
            return self.findings
        module = project.module(self.context.path)
        if module is None:
            return self.findings
        for registration in module.solvers:
            if registration.declared.get("supports_runtime"):
                self._check(project, registration)
        return self.findings

    def _check(self, project: ProjectIndex, reg: SolverRegistration) -> None:
        fn = reg.function
        runtime_names = fn.runtime_names
        if not runtime_names:
            self.report(
                fn.node,
                f"solver `{reg.name}` declares supports_runtime=True but "
                "takes no runtime parameter, so it can never charge the "
                "SimRuntime the engine passes",
            )
            return
        cfg = build_cfg(fn.node)
        blocked = frozenset(
            node.index
            for node in cfg.nodes
            if node.scan_exprs
            and any(
                project.expr_charges(expr, runtime_names)
                for expr in node.scan_exprs
            )
        )
        forbidden = frozenset(
            (kind, name)
            for name in fn.optional_runtime
            for kind in ("is_none", "falsy")
        )
        reachable = cfg.reachable(
            cfg.entry.index,
            blocked_nodes=blocked,
            forbidden_guards=forbidden,
            allow_zero_trip=False,
        )
        if cfg.exit.index not in reachable:
            return
        seen_lines: set[int] = set()
        for edge in cfg.predecessors(cfg.exit.index):
            if edge.guard is not None and edge.guard in forbidden:
                continue
            if edge.zero_trip:
                continue
            src = edge.src
            if src not in reachable or src in blocked:
                continue
            node = cfg.nodes[src]
            if node.stmt is None or node.lineno in seen_lines:
                continue
            seen_lines.add(node.lineno)
            where = (
                "this return"
                if isinstance(node.stmt, ast.Return)
                else "the implicit return after this statement"
            )
            self.report(
                node.stmt,
                f"solver `{reg.name}` declares supports_runtime=True but "
                f"{where} is reachable without any runtime charge "
                "(no parfor/par_tasks/charge_serial on the path) — the "
                "engine would raise EngineError at run time",
            )
