"""R011: memoized results are clone-on-get / clone-on-put, everywhere.

``repro.store.memo.ResultCache`` guarantees aliasing safety by cloning
on both sides of the cache boundary; the engine then freely stamps
``cache_hit`` onto what it got back.  Two ways consumers can break that
guarantee, both invisible to the runtime tests until a mutation lands:

* reaching around the API: touching another object's ``_entries``
  OrderedDict hands out the *stored* result object, so any mutation
  corrupts every future cache hit.  Flagged outside
  ``store/memo.py`` whenever the attribute base is not ``self``.
* cache classes that skip the clone helper: a ``*Cache.get`` that
  returns a raw stored entry, or a ``*Cache.put``/``__setitem__`` that
  stores a caller's object without ``clone_result`` (or another
  copying call), aliases cache memory with live solver state.
"""

from __future__ import annotations

import ast

from ..engine import Rule

__all__ = ["MemoCloneRule"]

_MEMO_MODULE_SUFFIX = "store/memo.py"
_STORE_ATTR = "_entries"
_GET_METHODS = frozenset({"get", "__getitem__"})
_PUT_METHODS = frozenset({"put", "__setitem__"})


def _is_entries_access(expr: ast.expr) -> bool:
    return isinstance(expr, ast.Attribute) and expr.attr == _STORE_ATTR


def _raw_entry_expr(expr: ast.expr, raw_names: set[str]) -> bool:
    """Is ``expr`` (syntactically) a raw stored entry?"""
    if isinstance(expr, ast.Name):
        return expr.id in raw_names
    if isinstance(expr, ast.Subscript):
        return _is_entries_access(expr.value)
    if isinstance(expr, ast.Call):
        # self._entries.get(key) / .pop(key) / .popitem() return entries raw
        return isinstance(expr.func, ast.Attribute) and _is_entries_access(
            expr.func.value
        )
    if isinstance(expr, ast.IfExp):
        return _raw_entry_expr(expr.body, raw_names) or _raw_entry_expr(
            expr.orelse, raw_names
        )
    if isinstance(expr, ast.BoolOp):
        return any(_raw_entry_expr(v, raw_names) for v in expr.values)
    return False


class MemoCloneRule(Rule):
    """Flag raw-entry aliasing around the result-cache clone boundary."""

    rule_id = "R011"
    title = "memoized result aliased without clone_result"
    severity = "error"
    fix_hint = (
        "go through the cache API and wrap both directions with "
        "repro.store.memo.clone_result so cached results never alias "
        "live solver state"
    )

    def run(self, tree: ast.Module) -> list:
        """Scan external ``_entries`` pokes and *Cache clone discipline."""
        in_memo = self.context.posix_path.endswith(_MEMO_MODULE_SUFFIX)
        if not in_memo:
            for node in ast.walk(tree):
                if (
                    _is_entries_access(node)
                    and not (
                        isinstance(node.value, ast.Name)
                        and node.value.id == "self"
                    )
                ):
                    self.report(
                        node,
                        "raw access to a result cache's `_entries` store "
                        "bypasses the clone-on-get/clone-on-put guarantee",
                    )
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and node.name.endswith("Cache"):
                self._check_cache_class(node)
        return self.findings

    def _check_cache_class(self, cls: ast.ClassDef) -> None:
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name in _GET_METHODS:
                self._check_get(item)
            elif item.name in _PUT_METHODS:
                self._check_put(item)

    @staticmethod
    def _raw_names(method: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
        """Local names bound to a raw stored entry inside ``method``."""
        raw: set[str] = set()
        changed = True
        while changed:
            changed = False
            for node in ast.walk(method):
                if isinstance(node, ast.Assign) and _raw_entry_expr(
                    node.value, raw
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name) and target.id not in raw:
                            raw.add(target.id)
                            changed = True
        return raw

    def _check_get(self, method: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        raw = self._raw_names(method)
        for node in ast.walk(method):
            if (
                isinstance(node, ast.Return)
                and node.value is not None
                and _raw_entry_expr(node.value, raw)
            ):
                self.report(
                    node,
                    f"`{method.name}` returns the stored entry itself — a "
                    "caller mutation corrupts every future cache hit; wrap "
                    "it with clone_result",
                )

    def _check_put(self, method: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        params = {
            arg.arg
            for arg in [
                *method.args.posonlyargs,
                *method.args.args,
                *method.args.kwonlyargs,
            ]
            if arg.arg != "self"
        }
        rebound = {
            target.id
            for node in ast.walk(method)
            if isinstance(node, ast.Assign)
            for target in node.targets
            if isinstance(target, ast.Name)
        }
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign):
                continue
            stored_into_entries = any(
                isinstance(target, ast.Subscript)
                and _is_entries_access(target.value)
                for target in node.targets
            )
            if not stored_into_entries:
                continue
            value = node.value
            if (
                isinstance(value, ast.Name)
                and value.id in params
                and value.id not in rebound
            ):
                self.report(
                    node,
                    f"`{method.name}` stores the caller's `{value.id}` "
                    "object without clone_result — the cache now aliases "
                    "live solver state",
                )
