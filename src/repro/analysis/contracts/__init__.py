"""Contract rules R007–R012: capability, cost, and cache-safety proofs.

Where :mod:`repro.analysis.rules` pattern-matches single AST nodes,
these rules consume the :mod:`repro.analysis.dataflow` layer — CFG path
searches, reaching-tag taint, and the interprocedural
:class:`~repro.analysis.dataflow.index.ProjectIndex` — to verify at
analysis time the contracts the engine and store otherwise only enforce
dynamically:

========  ==========================================================
R007      ``supports_runtime=True`` solver with an uncharged return
          path (static twin of the engine's post-run ``EngineError``)
R008      graph-sized Python loop with no SimRuntime charge
R009      ``supports_frontier=True`` never consumed (capability drift)
R010      frozen scratch/CSR buffer escaping into a mutating sink
R011      memoized result aliased without ``clone_result``
R012      ``RunReport`` written outside ``repro.engine``
========  ==========================================================
"""

from .cost_loops import UnchargedGraphLoopRule
from .frontier_capability import FrontierCapabilityRule
from .memo_clone import MemoCloneRule
from .report_ownership import ReportOwnershipRule
from .runtime_charge import RuntimeChargeRule
from .scratch_escape import ScratchEscapeRule

#: The contract family, in rule-id order.
CONTRACT_RULES = (
    RuntimeChargeRule,
    UnchargedGraphLoopRule,
    FrontierCapabilityRule,
    ScratchEscapeRule,
    MemoCloneRule,
    ReportOwnershipRule,
)

__all__ = [
    "CONTRACT_RULES",
    "FrontierCapabilityRule",
    "MemoCloneRule",
    "ReportOwnershipRule",
    "RuntimeChargeRule",
    "ScratchEscapeRule",
    "UnchargedGraphLoopRule",
]
