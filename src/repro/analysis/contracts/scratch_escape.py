"""R010: frozen scratch/CSR buffers must not *escape* into mutation.

R005 catches direct writes — ``graph.degrees()[0] = 1`` — but an alias
laundered through a local defeats it::

    deg = graph.degrees()      # shared, read-only scratch
    np.subtract.at(deg, hits, 1)   # mutates every future caller's view

R010 closes that hole with the flow-sensitive tag analysis from
:mod:`repro.analysis.dataflow.reaching`: locals bound to a scratch
accessor (``degrees()/heads()/hindex_bins()/out_degrees()/in_degrees()``)
or a frozen CSR attribute (``indptr``/``indices``) carry a ``scratch``
taint; basic slices and ``astype(copy=False)`` keep it, ``.copy()`` and
value-producing calls kill it.  A tainted *name* flowing into a mutating
method, an ``out=`` argument, a ufunc ``.at()`` call, or an element
write is an escape.

Direct accessor-call mutations stay R005's findings — this rule only
fires through aliases (plus ``out=``/``.at()`` sinks, which R005 never
checked), so the two rules never double-report one line.  The graph
construction modules own these buffers and are exempt, same as R005.
"""

from __future__ import annotations

import ast

from ..dataflow.cfg import build_cfg
from ..dataflow.reaching import TagEnv, analyze_tags
from ..engine import Rule

__all__ = ["ScratchEscapeRule"]

_SCRATCH = "scratch"
_SCRATCH_ACCESSORS = frozenset(
    {"degrees", "heads", "hindex_bins", "out_degrees", "in_degrees"}
)
_FROZEN_ATTRS = frozenset({"indptr", "indices"})
_ALIASING_METHODS = frozenset({"view", "reshape", "ravel"})
_MUTATING_METHODS = frozenset(
    {"fill", "sort", "partition", "put", "resize", "itemset", "setfield",
     "setflags", "byteswap"}
)
_MUTATING_FUNCTIONS = frozenset({"copyto", "put", "place", "putmask"})
#: Same owner exemptions as R005: these modules build and own the buffers.
_EXEMPT_SUFFIXES = (
    "graph/builder.py",
    "graph/undirected.py",
    "graph/directed.py",
)


def _classify(expr: ast.expr, env: TagEnv) -> frozenset[str]:
    """Scratch-taint classifier for the reaching-tags analysis."""
    empty: frozenset[str] = frozenset()
    tainted: frozenset[str] = frozenset({_SCRATCH})
    if isinstance(expr, ast.Name):
        return env.get(expr.id, empty)
    if isinstance(expr, ast.Attribute):
        return tainted if expr.attr in _FROZEN_ATTRS else empty
    if isinstance(expr, ast.Call):
        callee = expr.func
        if isinstance(callee, ast.Attribute):
            if (
                callee.attr in _SCRATCH_ACCESSORS
                and not expr.args
                and not expr.keywords
            ):
                return tainted
            base = _classify(callee.value, env)
            if _SCRATCH in base:
                if callee.attr in _ALIASING_METHODS:
                    return tainted
                if callee.attr == "astype":
                    for kw in expr.keywords:
                        if (
                            kw.arg == "copy"
                            and isinstance(kw.value, ast.Constant)
                            and kw.value.value is False
                        ):
                            return tainted
                    return empty
                return empty  # .copy(), reductions, etc. produce fresh data
        if (
            isinstance(callee, ast.Attribute)
            and callee.attr == "asarray"
            or isinstance(callee, ast.Name)
            and callee.id == "asarray"
        ) and expr.args:
            return _classify(expr.args[0], env)  # asarray may alias
        return empty
    if isinstance(expr, ast.Subscript):
        base = _classify(expr.value, env)
        if _SCRATCH in base and isinstance(expr.slice, ast.Slice):
            return tainted  # basic slicing returns a view
        return empty
    if isinstance(expr, ast.IfExp):
        return _classify(expr.body, env) | _classify(expr.orelse, env)
    if isinstance(expr, ast.BoolOp):
        tags: frozenset[str] = frozenset()
        for value in expr.values:
            tags |= _classify(value, env)
        return tags
    if isinstance(expr, ast.NamedExpr):
        return _classify(expr.value, env)
    return empty


def _tainted_name(expr: ast.expr, env: TagEnv) -> str | None:
    """The name if ``expr`` is a tainted Name (or a subscript of one)."""
    if isinstance(expr, ast.Subscript):
        expr = expr.value
    if isinstance(expr, ast.Name) and _SCRATCH in env.get(expr.id, frozenset()):
        return expr.id
    return None


def _walk_shallow(root: ast.AST):
    """``ast.walk`` that does not descend into nested function/class defs."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            stack.append(child)


class ScratchEscapeRule(Rule):
    """Flag aliased scratch buffers escaping into mutating sinks."""

    rule_id = "R010"
    title = "frozen scratch buffer escapes into a mutating call"
    severity = "error"
    fix_hint = (
        "take a private copy first (arr = graph.degrees().copy()) before "
        "mutating, or write into a buffer you allocated"
    )

    def run(self, tree: ast.Module) -> list:
        """Analyze every function definition in the module."""
        if self.context.posix_path.endswith(_EXEMPT_SUFFIXES):
            return self.findings
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(node)
        return self.findings

    def _check_function(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        cfg = build_cfg(func)
        envs = analyze_tags(cfg, _classify)
        for node in cfg.nodes:
            if not node.scan_exprs:
                continue
            env = envs.get(node.index)
            if not env or not any(_SCRATCH in tags for tags in env.values()):
                continue
            for expr in node.scan_exprs:
                self._scan(expr, env)

    def _scan(self, root: ast.AST, env: TagEnv) -> None:
        for node in _walk_shallow(root):
            if isinstance(node, ast.Call):
                self._scan_call(node, env)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        name = _tainted_name(target, env)
                        if name is not None:
                            self.report(
                                target,
                                f"element write into `{name}`, an alias of a "
                                "frozen scratch/CSR buffer",
                            )
            elif isinstance(node, ast.AugAssign):
                name = _tainted_name(node.target, env)
                if name is not None:
                    self.report(
                        node,
                        f"in-place arithmetic on `{name}`, an alias of a "
                        "frozen scratch/CSR buffer",
                    )

    def _scan_call(self, call: ast.Call, env: TagEnv) -> None:
        callee = call.func
        # alias.sort() / alias.fill(0) ... — mutating method on a tainted name
        if isinstance(callee, ast.Attribute) and callee.attr in _MUTATING_METHODS:
            if isinstance(callee.value, ast.Name):
                name = _tainted_name(callee.value, env)
                if name is not None:
                    self.report(
                        call,
                        f"mutating `.{callee.attr}()` on `{name}`, an alias "
                        "of a frozen scratch/CSR buffer",
                    )
        # np.add.at(alias, ...) — ufunc scatter into a tainted name
        if (
            isinstance(callee, ast.Attribute)
            and callee.attr == "at"
            and call.args
        ):
            name = _tainted_name(call.args[0], env)
            if name is not None:
                self.report(
                    call,
                    f"ufunc `.at()` scatter into `{name}`, an alias of a "
                    "frozen scratch/CSR buffer",
                )
        # np.copyto(alias, ...) / np.put(alias, ...) / np.place / putmask
        callee_name = (
            callee.attr
            if isinstance(callee, ast.Attribute)
            else callee.id if isinstance(callee, ast.Name) else None
        )
        if callee_name in _MUTATING_FUNCTIONS and call.args:
            name = _tainted_name(call.args[0], env)
            if name is not None:
                self.report(
                    call,
                    f"`{callee_name}()` writes into `{name}`, an alias of a "
                    "frozen scratch/CSR buffer",
                )
        # f(..., out=alias) — any call writing into a tainted name
        for kw in call.keywords:
            if kw.arg != "out":
                continue
            out_exprs = (
                list(kw.value.elts)
                if isinstance(kw.value, ast.Tuple)
                else [kw.value]
            )
            for out_expr in out_exprs:
                name = _tainted_name(out_expr, env)
                if name is not None:
                    self.report(
                        call,
                        f"`out={name}` targets an alias of a frozen "
                        "scratch/CSR buffer",
                    )
                elif _SCRATCH in _classify(out_expr, env):
                    self.report(
                        call,
                        "`out=` targets a frozen scratch/CSR buffer "
                        "accessor directly",
                    )
