"""R013 — kernel hot-path primitives go through the array-backend dispatch.

The :mod:`repro.kernels` package is a thin contract layer: the public
functions document the algorithms and delegate the heavy array work to
the active :class:`~repro.backends.base.ArrayBackend`, so that the
multiproc (and, when available, numba) backends accelerate every caller
at once.  A raw ``np.bincount`` / ``np.lexsort`` / sort-family call
inside the package silently reintroduces a single-threaded hot path the
backend layer can never see — the kernels keep *glue* numpy (shape
casts, cumsums, range arithmetic), but the dispatch-worthy primitives
must come from ``get_backend()``.

The rule is path-scoped to ``repro/kernels/`` package files (tests and
the backend implementations themselves are fair game); reference
formulations kept for property tests carry an inline
``# repro-lint: disable=R013`` with a justification, exactly like the
``reference_segment_h_index`` lexsort.
"""

from __future__ import annotations

import ast

from ..engine import Rule

__all__ = ["BackendDispatchRule"]

# Names the numpy module is commonly bound to.
_NUMPY_ALIASES = {"np", "numpy"}

# Dispatch-worthy primitives: the histogram / sort / selection family
# the backends implement (or deliberately route around).  Glue ops —
# asarray, arange, cumsum, repeat, diff, concatenate — stay fair game.
_DISPATCHED_FUNCS = {
    "argpartition",
    "argsort",
    "bincount",
    "count_nonzero",
    "lexsort",
    "partition",
    "searchsorted",
    "sort",
    "unique",
}

# Ufunc reduction methods: ``np.add.reduceat(...)`` and friends are the
# other way segment histograms get built behind the dispatch's back.
_UFUNC_REDUCTIONS = {"reduce", "reduceat", "accumulate"}


def _is_numpy_name(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id in _NUMPY_ALIASES


class BackendDispatchRule(Rule):
    """R013: no direct numpy kernel primitives inside ``repro/kernels/``."""

    rule_id = "R013"
    title = "kernel primitives route through the array-backend dispatch"
    severity = "error"
    fix_hint = (
        "call the active backend (repro.backends.get_backend()) or move the "
        "raw numpy formulation into repro/backends/numpy_backend.py"
    )

    def _in_scope(self) -> bool:
        return "repro/kernels/" in self.context.posix_path

    def visit_Call(self, node: ast.Call) -> None:
        """Flag ``np.<primitive>(...)`` and ``np.<ufunc>.reduceat(...)``."""
        if self._in_scope() and isinstance(node.func, ast.Attribute):
            func = node.func
            if _is_numpy_name(func.value) and func.attr in _DISPATCHED_FUNCS:
                self.report(
                    node,
                    f"direct `np.{func.attr}` call in the kernels package "
                    "bypasses the array-backend dispatch",
                )
            elif (
                func.attr in _UFUNC_REDUCTIONS
                and isinstance(func.value, ast.Attribute)
                and _is_numpy_name(func.value.value)
            ):
                self.report(
                    node,
                    f"direct `np.{func.value.attr}.{func.attr}` call in the "
                    "kernels package bypasses the array-backend dispatch",
                )
        self.generic_visit(node)
