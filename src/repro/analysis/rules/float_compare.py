"""R004 — no float ``==`` / ``!=`` on densities.

Densities in this library are ratios of integer counts (|E(S)|/|S|,
|E(S,T)|/sqrt(|S||T|)) computed in floating point; two mathematically
equal densities routinely differ in the last ulp once a sqrt or a division
is involved.  Exact comparisons on them silently flip branch decisions
between platforms, which is precisely the class of nondeterminism this
analyzer exists to remove.
"""

from __future__ import annotations

import ast

from ..engine import Rule

__all__ = ["FloatDensityCompareRule"]

_DENSITY_MARKERS = ("density", "densities", "rho")


def _mentions_density(node: ast.expr) -> bool:
    """True when the expression reads like a density value."""
    for sub in ast.walk(node):
        name: str | None = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        elif isinstance(sub, ast.Call):
            func = sub.func
            if isinstance(func, ast.Attribute):
                name = func.attr
            elif isinstance(func, ast.Name):
                name = func.id
        if name and any(marker in name.lower() for marker in _DENSITY_MARKERS):
            return True
    return False


class FloatDensityCompareRule(Rule):
    """R004: flag exact equality comparisons involving density values."""

    rule_id = "R004"
    title = "no float == / != comparisons on densities"
    severity = "warning"
    fix_hint = (
        "compare densities with math.isclose(a, b, rel_tol=...) or an explicit "
        "epsilon (tests: pytest.approx); exact float equality is platform-"
        "dependent"
    )

    def visit_Compare(self, node: ast.Compare) -> None:
        """Check each comparison chain for density == / != operands."""
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _mentions_density(left) or _mentions_density(right):
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                self.report(
                    node,
                    f"exact float comparison `{symbol}` on a density value",
                )
                break
        self.generic_visit(node)
