"""R014 — shard ``.npz`` members are opened only by the shard store.

:mod:`repro.store.shard` owns the on-disk sharded layout: per-shard
``shard_*.npz`` files whose members are mmap-loaded, budget-accounted
and fingerprint-verified behind the :class:`ShardedGraph` facade.  Any
other code that opens a shard file directly — ``np.load``,
``np.memmap``, ``zipfile.ZipFile`` or a bare ``open`` on a
``shard_*.npz`` path — bypasses the facade's memory budget, its
eviction accounting *and* the manifest fingerprint chain, so a stale or
tampered shard would be read without detection and the resident-bytes
guarantee silently breaks.

The rule is path-scoped: files under ``repro/store/shard`` (the facade
and any siblings it grows) are exempt; everywhere else a call that opens
something with a ``shard_``-named ``.npz`` literal in its arguments is
flagged.  Deliberate low-level access in tests or fixtures carries an
inline ``# repro-lint: disable=R014`` with a justification.
"""

from __future__ import annotations

import ast

from ..engine import Rule

__all__ = ["ShardAccessRule"]

# Names the numpy module is commonly bound to.
_NUMPY_ALIASES = {"np", "numpy"}

# numpy entry points that open (or rewrite) an .npz container.
_NUMPY_OPENERS = {"load", "memmap", "savez", "savez_compressed"}

# Call names that open files regardless of module: builtins and zipfile.
_BARE_OPENERS = {"open"}
_ZIPFILE_OPENERS = {"ZipFile"}


def _string_constants(node: ast.expr):
    """Yield every string literal inside ``node`` (f-string pieces too)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            yield sub.value


def _mentions_shard_file(node: ast.Call) -> bool:
    """Whether any argument carries a ``shard_*.npz``-looking literal."""
    for arg in [*node.args, *(kw.value for kw in node.keywords)]:
        for text in _string_constants(arg):
            if "shard_" in text and (".npz" in text or text.endswith("_")):
                return True
    return False


def _opener_name(node: ast.Call) -> str | None:
    """The dotted name of a file-opening callee, or ``None``."""
    func = node.func
    if isinstance(func, ast.Name) and func.id in _BARE_OPENERS:
        return func.id
    if isinstance(func, ast.Attribute):
        value = func.value
        if isinstance(value, ast.Name):
            if value.id in _NUMPY_ALIASES and func.attr in _NUMPY_OPENERS:
                return f"{value.id}.{func.attr}"
            if value.id == "zipfile" and func.attr in _ZIPFILE_OPENERS:
                return f"zipfile.{func.attr}"
    return None


class ShardAccessRule(Rule):
    """R014: shard ``.npz`` members are read only via ``ShardedGraph``."""

    rule_id = "R014"
    title = "shard files are opened only through the ShardedGraph facade"
    severity = "error"
    fix_hint = (
        "go through repro.store.shard (load_sharded / ShardedGraph.shard); "
        "direct np.load / open on shard_*.npz skips the memory budget and "
        "the manifest fingerprint chain"
    )

    def _in_scope(self) -> bool:
        return "repro/store/shard" not in self.context.posix_path

    def visit_Call(self, node: ast.Call) -> None:
        """Flag file-opening calls aimed at a ``shard_*.npz`` literal."""
        if self._in_scope():
            opener = _opener_name(node)
            if opener is not None and _mentions_shard_file(node):
                self.report(
                    node,
                    f"`{opener}` on a shard .npz bypasses the ShardedGraph "
                    "facade (memory budget + fingerprint chain)",
                )
        self.generic_visit(node)
