"""R003 — every public name in ``__all__`` carries a docstring.

``__all__`` is this project's public-API declaration; tests and docs are
generated against it, so an exported function or class without a docstring
is an undocumented API commitment.
"""

from __future__ import annotations

import ast

from ..engine import Rule

__all__ = ["PublicDocstringRule"]


def _module_all(tree: ast.Module) -> set[str]:
    """Extract the literal string entries of a module-level ``__all__``."""
    exported: set[str] = set()
    for stmt in tree.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AugAssign):
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        if not any(isinstance(t, ast.Name) and t.id == "__all__" for t in targets):
            continue
        if isinstance(value, (ast.List, ast.Tuple)):
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(element.value, str):
                    exported.add(element.value)
    return exported


class PublicDocstringRule(Rule):
    """R003: exported functions/classes must have docstrings."""

    rule_id = "R003"
    title = "public API (names in __all__) must be documented"
    severity = "warning"
    fix_hint = (
        "add a docstring stating what the function/class computes and any "
        "guarantee it carries (approximation ratio, complexity, determinism)"
    )

    def visit_Module(self, node: ast.Module) -> None:
        """Resolve ``__all__`` and check every exported definition."""
        exported = _module_all(node)
        if not exported:
            return
        for stmt in node.body:
            if not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if stmt.name in exported and not ast.get_docstring(stmt):
                kind = "class" if isinstance(stmt, ast.ClassDef) else "function"
                self.report(
                    stmt,
                    f"public {kind} {stmt.name!r} is exported via __all__ but has "
                    "no docstring",
                )
