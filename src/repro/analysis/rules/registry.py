"""R006 — solvers go through the registry, never around it.

The solver registry (:mod:`repro.engine.spec`) is the single source of
truth for which algorithms exist: ``repro.api``, the CLI, the benchmark
harness and the tests all enumerate it.  A solver that is defined but not
registered is invisible to every one of them, and code that pokes entries
into the method tables by hand bypasses the :class:`~repro.engine.spec.
SolverSpec` capability checks the engine relies on.  Two patterns are
flagged:

* a module-level solver entry point (a public function named ``*_uds`` /
  ``*_dds``, or one of the paper algorithms ``pkmc`` / ``pwc`` /
  ``distributed_pkmc`` / ``distributed_pwc``) inside a solver package
  without an ``@register_solver(...)`` decorator;
* any mutation of the method tables or the registry itself
  (``UDS_METHODS[...] = ...``, ``DDS_METHODS.pop(...)``,
  ``SOLVER_REGISTRY.update(...)``, ``del _REGISTRY[...]``) outside
  ``engine/spec.py``, which owns the storage.
"""

from __future__ import annotations

import ast

from ..engine import Rule

__all__ = ["SolverRegistryRule"]

# Packages whose module-level solver entry points must self-register.
_SOLVER_PACKAGE_MARKERS = (
    "algorithms/undirected/",
    "algorithms/directed/",
    "repro/distributed/",
)
_SOLVER_MODULE_SUFFIXES = ("core/pkmc.py", "core/pwc.py")

# Function names that denote a solver entry point.
_SOLVER_EXACT_NAMES = {"pkmc", "pwc", "distributed_pkmc", "distributed_pwc"}
_SOLVER_NAME_SUFFIXES = ("_uds", "_dds")

# Names holding the registry or its public method-table views.
_REGISTRY_NAMES = {"UDS_METHODS", "DDS_METHODS", "SOLVER_REGISTRY", "_REGISTRY"}

# dict methods that mutate the receiver.
_MUTATING_METHODS = {"update", "pop", "clear", "setdefault", "popitem"}

# The registry's owner may mutate its own storage.
_EXEMPT_SUFFIXES = ("engine/spec.py",)


def _is_solver_name(name: str) -> bool:
    return not name.startswith("_") and (
        name in _SOLVER_EXACT_NAMES or name.endswith(_SOLVER_NAME_SUFFIXES)
    )


def _is_register_decorator(decorator: ast.expr) -> bool:
    target = decorator.func if isinstance(decorator, ast.Call) else decorator
    if isinstance(target, ast.Attribute):
        return target.attr == "register_solver"
    return isinstance(target, ast.Name) and target.id == "register_solver"


def _registry_name(node: ast.expr) -> str | None:
    """Return the registry/table name if ``node`` refers to one."""
    if isinstance(node, ast.Name) and node.id in _REGISTRY_NAMES:
        return node.id
    if isinstance(node, ast.Attribute) and node.attr in _REGISTRY_NAMES:
        return node.attr
    return None


class SolverRegistryRule(Rule):
    """R006: solver modules register via @register_solver; nobody hand-edits the tables."""

    rule_id = "R006"
    title = "solvers register through @register_solver; method tables are read-only"
    severity = "error"
    fix_hint = (
        "decorate the solver with @register_solver(name, kind=..., "
        "guarantee=..., cost=...) from repro.engine.spec; never assign "
        "into UDS_METHODS/DDS_METHODS or the registry"
    )

    def _in_solver_module(self) -> bool:
        path = self.context.posix_path
        return (
            any(marker in path for marker in _SOLVER_PACKAGE_MARKERS)
            or path.endswith(_SOLVER_MODULE_SUFFIXES)
        )

    def _exempt(self) -> bool:
        return self.context.posix_path.endswith(_EXEMPT_SUFFIXES)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Flag module-level solver entry points missing the decorator."""
        if (
            node.col_offset == 0
            and self._in_solver_module()
            and _is_solver_name(node.name)
            and not any(_is_register_decorator(d) for d in node.decorator_list)
        ):
            self.report(
                node,
                f"solver entry point `{node.name}` is not registered; "
                "add @register_solver(...) so the engine, API and CLI "
                "can dispatch to it",
            )
        self.generic_visit(node)

    def _check_store_target(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_store_target(element)
            return
        if isinstance(target, ast.Subscript):
            name = _registry_name(target.value)
            if name is not None:
                self.report(
                    target,
                    f"entry write into solver table `{name}`; register the "
                    "solver with @register_solver instead",
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        """Check plain assignments into the tables."""
        if not self._exempt():
            for target in node.targets:
                self._check_store_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        """Check augmented assignments into the tables."""
        if not self._exempt():
            self._check_store_target(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        """Check ``del`` of table entries."""
        if not self._exempt():
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    name = _registry_name(target.value)
                    if name is not None:
                        self.report(
                            target,
                            f"entry delete from solver table `{name}`; use "
                            "repro.engine.spec.unregister_solver (tests: "
                            "temporary_solver)",
                        )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        """Check mutating dict-method calls on the tables."""
        if (
            not self._exempt()
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATING_METHODS
        ):
            name = _registry_name(node.func.value)
            if name is not None:
                self.report(
                    node,
                    f"mutating `{node.func.attr}()` on solver table "
                    f"`{name}`; the tables are read-only registry views",
                )
        self.generic_visit(node)
