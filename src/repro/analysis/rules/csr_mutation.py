"""R005 — CSR buffers (``indptr`` / ``indices``) are frozen outside the builder.

:class:`~repro.graph.undirected.UndirectedGraph` and
:class:`~repro.graph.directed.DirectedGraph` are conceptually immutable:
algorithms that peel vertices keep their own alive-masks instead of
mutating the shared CSR arrays, which is what makes it safe for the
simulated parallel kernels (and the race sanitizer) to treat a graph as a
read-only shared structure.  Only ``graph/builder.py`` — and the graph
classes' own constructors (``self.indptr = ...``) — may write these
buffers.

The same contract covers the *memoized scratch buffers* the graph classes
hand out (``degrees()`` / ``heads()`` / ``hindex_bins()`` /
``out_degrees()`` / ``in_degrees()``): they are cached once per graph and
shared by every kernel, so writing into an accessor's return value —
``graph.heads()[0] = ...`` — corrupts every later caller.  The caches are
marked read-only at runtime (``setflags(write=False)``), and this rule
catches the pattern statically, together with direct pokes at the
``_scratch`` cache dict outside the owning graph modules.
"""

from __future__ import annotations

import ast

from ..engine import Rule

__all__ = ["CsrMutationRule"]

_FROZEN_ATTRS = {"indptr", "indices"}

# ndarray methods that mutate the receiver in place.
_MUTATING_METHODS = {"fill", "itemset", "partition", "put", "resize", "sort", "setfield"}

# Files allowed to construct / rewrite CSR buffers wholesale.
_EXEMPT_SUFFIXES = ("graph/builder.py",)

# Zero-argument accessors returning shared memoized scratch buffers.
_SCRATCH_ACCESSORS = {"degrees", "heads", "hindex_bins", "out_degrees", "in_degrees"}

# The cache dict itself; only the graph classes may touch it.
_SCRATCH_DICT = "_scratch"

# Files allowed to populate the memoization cache.
_SCRATCH_EXEMPT_SUFFIXES = ("graph/undirected.py", "graph/directed.py")


def _frozen_attribute(node: ast.expr) -> ast.Attribute | None:
    """Return the node if it is an ``<expr>.indptr`` / ``<expr>.indices``."""
    if isinstance(node, ast.Attribute) and node.attr in _FROZEN_ATTRS:
        return node
    return None


def _scratch_accessor_call(node: ast.expr) -> str | None:
    """Return the accessor name if ``node`` is ``<expr>.heads()`` etc."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _SCRATCH_ACCESSORS
    ):
        return node.func.attr
    return None


def _scratch_dict_attribute(node: ast.expr) -> ast.Attribute | None:
    """Return the node if it is an ``<expr>._scratch``."""
    if isinstance(node, ast.Attribute) and node.attr == _SCRATCH_DICT:
        return node
    return None


def _base_is_self(node: ast.Attribute) -> bool:
    return isinstance(node.value, ast.Name) and node.value.id == "self"


class CsrMutationRule(Rule):
    """R005: flag writes to frozen graph CSR buffers."""

    rule_id = "R005"
    title = "no mutation of frozen graph CSR buffers outside graph/builder.py"
    severity = "error"
    fix_hint = (
        "graphs are immutable: keep a per-algorithm alive-mask / degree copy, "
        "or build a new graph via repro.graph.builder"
    )

    def _exempt(self) -> bool:
        return self.context.posix_path.endswith(_EXEMPT_SUFFIXES)

    def _scratch_exempt(self) -> bool:
        return self.context.posix_path.endswith(
            _EXEMPT_SUFFIXES + _SCRATCH_EXEMPT_SUFFIXES
        )

    def _check_store_target(self, target: ast.expr, *, allow_self_rebind: bool) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_store_target(element, allow_self_rebind=allow_self_rebind)
            return
        if isinstance(target, ast.Starred):
            self._check_store_target(target.value, allow_self_rebind=allow_self_rebind)
            return
        if isinstance(target, ast.Subscript):
            attr = _frozen_attribute(target.value)
            if attr is not None:
                self.report(
                    target,
                    f"element write into frozen CSR buffer `.{attr.attr}`",
                )
            accessor = _scratch_accessor_call(target.value)
            if accessor is not None:
                self.report(
                    target,
                    f"element write into memoized scratch buffer "
                    f"`.{accessor}()` (shared by all kernels; copy first)",
                )
            if not self._scratch_exempt():
                scratch = _scratch_dict_attribute(target.value)
                if scratch is not None:
                    self.report(
                        target,
                        "write into the `_scratch` cache dict outside the "
                        "owning graph class",
                    )
            return
        attr = _frozen_attribute(target)
        if attr is not None and not (allow_self_rebind and _base_is_self(attr)):
            self.report(
                target,
                f"rebinding of frozen CSR buffer `.{attr.attr}` outside the "
                "owning constructor",
            )
        if not self._scratch_exempt():
            scratch = _scratch_dict_attribute(target)
            if scratch is not None:
                self.report(
                    target,
                    "rebinding of the `_scratch` cache dict outside the "
                    "owning graph class",
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        """Check plain assignment targets."""
        if not self._exempt():
            for target in node.targets:
                self._check_store_target(target, allow_self_rebind=True)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        """Check annotated assignment targets."""
        if not self._exempt():
            self._check_store_target(node.target, allow_self_rebind=True)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        """Check augmented assignments (always a buffer mutation)."""
        if not self._exempt():
            # In-place ops mutate the buffer even when the target is `self.x`.
            self._check_store_target(node.target, allow_self_rebind=False)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        """Check method calls that mutate an ndarray receiver in place."""
        if not self._exempt() and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATING_METHODS:
                attr = _frozen_attribute(node.func.value)
                if attr is not None:
                    self.report(
                        node,
                        f"in-place `{node.func.attr}()` on frozen CSR buffer "
                        f"`.{attr.attr}`",
                    )
                accessor = _scratch_accessor_call(node.func.value)
                if accessor is not None:
                    self.report(
                        node,
                        f"in-place `{node.func.attr}()` on memoized scratch "
                        f"buffer `.{accessor}()` (shared by all kernels; "
                        "copy first)",
                    )
        self.generic_visit(node)
