"""Project-specific lint rules: the registry behind ``repro-lint``.

Each rule is a small :class:`~repro.analysis.engine.Rule` visitor with an
id, severity, and fix hint; ``DEFAULT_RULES`` is the registry the engine
and the ``repro-lint`` CLI load.  R001–R006 and R013–R015 are
single-node pattern rules living in this package; R007–R012 are the dataflow
contract rules from :mod:`repro.analysis.contracts`.  The catalogue,
with rationale and examples, is documented in
``docs/static_analysis.md``.

The advertised id range is derived from the registry —
:func:`rule_range` — so CLI help and module docs can never go stale
against the actual rule set again.
"""

from __future__ import annotations

from ..contracts import CONTRACT_RULES
from .backend_dispatch import BackendDispatchRule
from .csr_mutation import CsrMutationRule
from .determinism import DeterminismRule
from .docstrings import PublicDocstringRule
from .exceptions import ExceptionHygieneRule
from .float_compare import FloatDensityCompareRule
from .registry import SolverRegistryRule
from .shard_access import ShardAccessRule
from .stream_mutation import StreamMutationRule

DEFAULT_RULES = (
    DeterminismRule,
    ExceptionHygieneRule,
    PublicDocstringRule,
    FloatDensityCompareRule,
    CsrMutationRule,
    SolverRegistryRule,
    *CONTRACT_RULES,
    BackendDispatchRule,
    ShardAccessRule,
    StreamMutationRule,
)


def rule_range(rules=DEFAULT_RULES) -> str:
    """The advertised id range of a rule registry, e.g. ``"R001-R015"``."""
    ids = sorted(rule.rule_id for rule in rules)
    if not ids:
        return ""
    if len(ids) == 1:
        return ids[0]
    return f"{ids[0]}-{ids[-1]}"


__all__ = [
    "DEFAULT_RULES",
    "BackendDispatchRule",
    "ShardAccessRule",
    "StreamMutationRule",
    "DeterminismRule",
    "ExceptionHygieneRule",
    "PublicDocstringRule",
    "FloatDensityCompareRule",
    "CsrMutationRule",
    "SolverRegistryRule",
    "rule_range",
]
