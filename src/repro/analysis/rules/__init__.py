"""Project-specific lint rules (R001–R006).

Each rule is a small :class:`~repro.analysis.engine.Rule` visitor with an
id, severity, and fix hint; ``DEFAULT_RULES`` is the registry the engine
and the ``repro-lint`` CLI load.  The catalogue, with rationale and
examples, is documented in ``docs/static_analysis.md``.
"""

from __future__ import annotations

from .csr_mutation import CsrMutationRule
from .determinism import DeterminismRule
from .docstrings import PublicDocstringRule
from .exceptions import ExceptionHygieneRule
from .float_compare import FloatDensityCompareRule
from .registry import SolverRegistryRule

DEFAULT_RULES = (
    DeterminismRule,
    ExceptionHygieneRule,
    PublicDocstringRule,
    FloatDensityCompareRule,
    CsrMutationRule,
    SolverRegistryRule,
)

__all__ = [
    "DEFAULT_RULES",
    "DeterminismRule",
    "ExceptionHygieneRule",
    "PublicDocstringRule",
    "FloatDensityCompareRule",
    "CsrMutationRule",
    "SolverRegistryRule",
]
