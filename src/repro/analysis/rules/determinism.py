"""R001 — no wall clock, no unseeded randomness.

The simulated runtime's contract (see ``runtime/simruntime.py``) is that a
given (algorithm, graph, p) triple always yields the same simulated time,
so nothing under ``src/repro`` may consult the wall clock or an unseeded
random source.  Benchmark code that deliberately measures real elapsed
time suppresses this rule inline (``# repro-lint: disable=R001``).
"""

from __future__ import annotations

import ast

from ..engine import Rule

__all__ = ["DeterminismRule"]

# Fully-resolved call targets that read the wall clock.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.clock",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

# Functions of the stdlib ``random`` module that draw from (or reseed) the
# hidden global generator.
_GLOBAL_RANDOM_FUNCS = {
    "betavariate",
    "choice",
    "choices",
    "expovariate",
    "gauss",
    "getrandbits",
    "lognormvariate",
    "normalvariate",
    "paretovariate",
    "randbytes",
    "randint",
    "random",
    "randrange",
    "sample",
    "seed",
    "shuffle",
    "triangular",
    "uniform",
    "vonmisesvariate",
    "weibullvariate",
}

# numpy.random attributes that are fine to touch: explicit generator /
# seeding machinery (default_rng is checked separately for a seed arg).
_NUMPY_RANDOM_OK = {"default_rng", "Generator", "SeedSequence", "BitGenerator",
                    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64"}


class _ImportAliases(ast.NodeVisitor):
    """Collects a best-effort alias -> dotted-module-path map."""

    def __init__(self) -> None:
        self.aliases: dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level or node.module is None:  # relative imports: in-project
            return
        for alias in node.names:
            self.aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"


def _dotted_name(node: ast.expr) -> str | None:
    """Return ``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class DeterminismRule(Rule):
    """R001: flag wall-clock reads and unseeded randomness."""

    rule_id = "R001"
    title = "no wall clock or unseeded randomness in simulation code"
    severity = "error"
    fix_hint = (
        "simulation code must be deterministic: use SimRuntime.now for time "
        "and np.random.default_rng(seed) with an explicit seed for randomness"
    )

    def visit_Module(self, node: ast.Module) -> None:
        """Collect import aliases first, then walk the module body."""
        collector = _ImportAliases()
        collector.visit(node)
        self._aliases = collector.aliases
        self.generic_visit(node)

    def _resolve(self, node: ast.expr) -> str | None:
        dotted = _dotted_name(node)
        if dotted is None:
            return None
        root, _, rest = dotted.partition(".")
        expansion = self._aliases.get(root)
        if expansion is None:
            return dotted
        return f"{expansion}.{rest}" if rest else expansion

    @staticmethod
    def _has_seed_argument(node: ast.Call) -> bool:
        if node.args and not isinstance(node.args[0], ast.Starred):
            return True
        return any(kw.arg in ("seed", "x") or kw.arg is None for kw in node.keywords)

    def visit_Call(self, node: ast.Call) -> None:
        """Check each call site against the banned-target tables."""
        target = self._resolve(node.func)
        if target is not None:
            self._check_target(node, target)
        self.generic_visit(node)

    def _check_target(self, node: ast.Call, target: str) -> None:
        if target in _WALL_CLOCK:
            self.report(node, f"wall-clock call {target}() breaks simulation determinism")
            return
        if target in ("numpy.random.default_rng", "numpy.random.Generator"):
            if target.endswith("default_rng") and not self._has_seed_argument(node):
                self.report(node, "numpy.random.default_rng() without an explicit seed")
            return
        if target.startswith("numpy.random."):
            attr = target.rsplit(".", 1)[1]
            if attr not in _NUMPY_RANDOM_OK:
                self.report(
                    node,
                    f"legacy global numpy RNG call {target}() (hidden, unseeded state)",
                )
            return
        if target == "random.Random" and not self._has_seed_argument(node):
            self.report(node, "random.Random() without an explicit seed")
            return
        if target.startswith("random."):
            attr = target.rsplit(".", 1)[1]
            if attr in _GLOBAL_RANDOM_FUNCS:
                self.report(
                    node,
                    f"stdlib global-RNG call {target}() (process-wide hidden state)",
                )
