"""R002 — no bare ``except`` / blanket ``except Exception`` / silent ``pass``.

The library's error contract (``errors.py``) is that deliberate failures
derive from :class:`~repro.errors.ReproError` so callers can catch library
errors without swallowing programming errors.  Blanket handlers and silent
``pass`` bodies defeat that and hide the very bugs the determinism rules
exist to surface.
"""

from __future__ import annotations

import ast

from ..engine import Rule

__all__ = ["ExceptionHygieneRule"]

_BLANKET_TYPES = {"Exception", "BaseException"}


def _caught_names(handler_type: ast.expr | None) -> list[str]:
    """Return the exception class names a handler catches (best effort)."""
    if handler_type is None:
        return []
    nodes = handler_type.elts if isinstance(handler_type, ast.Tuple) else [handler_type]
    names = []
    for node in nodes:
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
    return names


def _is_silent_body(body: list[ast.stmt]) -> bool:
    """True when the handler body does nothing at all."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or Ellipsis
        return False
    return True


class ExceptionHygieneRule(Rule):
    """R002: flag bare excepts, blanket Exception handlers, silent passes."""

    rule_id = "R002"
    title = "no bare except / blanket Exception / silently swallowed errors"
    severity = "error"
    fix_hint = (
        "catch the narrowest ReproError subclass that applies, and handle or "
        "re-raise it; never swallow an exception with a bare pass"
    )

    def visit_Try(self, node: ast.Try) -> None:
        """Inspect each handler of a try statement."""
        for handler in node.handlers:
            silent = _is_silent_body(handler.body)
            if handler.type is None:
                self.report(
                    handler,
                    "bare `except:` catches everything, including KeyboardInterrupt"
                    + (" and silently discards it" if silent else ""),
                )
                continue
            blanket = [n for n in _caught_names(handler.type) if n in _BLANKET_TYPES]
            if blanket:
                self.report(
                    handler,
                    f"blanket `except {blanket[0]}` hides programming errors"
                    + (" and silently discards them" if silent else ""),
                )
            elif silent:
                self.report(
                    handler,
                    "exception handler silently swallows the error (body is only "
                    "`pass`)",
                )
        self.generic_visit(node)
