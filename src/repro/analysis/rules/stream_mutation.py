"""R015 — DynamicKStarCore internals mutate only inside the stream stack.

:class:`~repro.core.dynamic.DynamicKStarCore` maintains one invariant
that everything above it depends on: between refreshes, its ``_h``
array *is* the core-number fixed point of the edge set in ``_edge_set``
as patched by the adjacency overlay (``_ov_add``/``_ov_del``) and the
pending net-op log (``_pending``).  Code that pokes any of those fields
directly — adding to ``_edge_set`` without logging a pending op,
overwriting a slice of ``_h``, clearing the overlay — silently breaks
the fixed-point invariant, and every later ``k_star()`` /
``core_numbers()`` / ``densest_subgraph()`` answer is wrong with no
error raised.

The rule is path-scoped like R014: files under ``repro/core/`` (the
maintainer itself) and ``repro/stream/`` (the session layer that is
allowed to reach around the public API) are exempt; everywhere else any
*mutation* of an attribute with one of the maintainer's internal names
is flagged — assignment or augmented assignment (subscripted or not)
and the standard container mutators (``.add``, ``.clear``, ``.pop``,
…).  Reads are fine (they cannot break the invariant) and the public
mutators (``insert_edge``/``delete_edge`` and the batch forms) are the
sanctioned path.  Deliberate surgery in tests carries an inline
``# repro-lint: disable=R015`` with a justification.
"""

from __future__ import annotations

import ast

from ..engine import Rule

__all__ = ["StreamMutationRule"]

#: The maintainer's invariant-bearing fields (see repro/core/dynamic.py).
_INTERNALS = {
    "_edge_set",
    "_h",
    "_ov_add",
    "_ov_del",
    "_overlay_edges",
    "_pending",
    "_base_graph",
    "_dirty",
}

#: Method names that mutate a container in place.
_MUTATORS = {
    "add",
    "append",
    "clear",
    "discard",
    "extend",
    "fill",
    "pop",
    "popitem",
    "remove",
    "setdefault",
    "sort",
    "update",
}

_EXEMPT_PATHS = ("repro/core/", "repro/stream/")


def _internal_attribute(node: ast.expr) -> str | None:
    """The internal field name a (possibly subscripted) target touches."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute) and node.attr in _INTERNALS:
        return node.attr
    return None


class StreamMutationRule(Rule):
    """R015: DynamicKStarCore internals mutate only in core/ and stream/."""

    rule_id = "R015"
    title = "dynamic-core internals are mutated only by repro.core/repro.stream"
    severity = "error"
    fix_hint = (
        "go through the public mutators (insert_edge/delete_edge, "
        "insert_edges/delete_edges) or repro.stream.StreamSession; direct "
        "writes to _edge_set/_h/overlay state desynchronize the maintained "
        "core numbers from the edge set"
    )

    def _in_scope(self) -> bool:
        return not any(
            fragment in self.context.posix_path for fragment in _EXEMPT_PATHS
        )

    def _flag(self, node: ast.AST, attr: str, how: str) -> None:
        self.report(
            node,
            f"direct {how} of DynamicKStarCore internal `{attr}` outside "
            "repro/core/ and repro/stream/ breaks the maintained "
            "fixed-point invariant",
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        """Flag plain/subscripted assignment onto an internal field."""
        if self._in_scope():
            for target in node.targets:
                attr = _internal_attribute(target)
                if attr is not None:
                    self._flag(node, attr, "assignment")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        """Flag augmented assignment onto an internal field."""
        if self._in_scope():
            attr = _internal_attribute(node.target)
            if attr is not None:
                self._flag(node, attr, "augmented assignment")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        """Flag in-place container mutators called on an internal field."""
        if self._in_scope():
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                attr = _internal_attribute(func.value)
                if attr is not None:
                    self._flag(node, attr, f"`.{func.attr}()` mutation")
        self.generic_visit(node)
