"""AST lint engine behind ``repro-lint``.

The engine parses each Python file once, runs every registered
:class:`Rule` (an :class:`ast.NodeVisitor` subclass) over the tree, and
filters the collected :class:`Finding` objects through the suppression
comments::

    x = time.time()          # repro-lint: disable=R001
    # repro-lint: disable-file=R003

A same-line ``disable=`` comment silences the named rules (comma
separated, or ``all``) for that line only; a ``disable-file=`` comment
anywhere in the file silences them for the whole file.  Rules live in
:mod:`repro.analysis.rules`; each carries an id, a severity (``error`` or
``warning``), and a fix hint that is printed next to the finding.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

__all__ = [
    "Finding",
    "LintContext",
    "LintEngine",
    "Rule",
    "lint_paths",
    "lint_source",
]

SEVERITIES = ("error", "warning")

_DISABLE_LINE_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")
_DISABLE_FILE_RE = re.compile(r"#\s*repro-lint:\s*disable-file=([A-Za-z0-9_,\s]+)")

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".hypothesis", "build", "dist"}


@dataclass(frozen=True)
class Finding:
    """One lint violation at a specific source location."""

    rule_id: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    fix_hint: str = ""

    def format(self, show_hint: bool = True) -> str:
        """Render the finding as a compiler-style one/two-liner."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule_id} [{self.severity}] {self.message}"
        if show_hint and self.fix_hint:
            text += f"\n    hint: {self.fix_hint}"
        return text

    def as_dict(self) -> dict:
        """Return a JSON-serialisable representation."""
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fix_hint": self.fix_hint,
        }


class LintContext:
    """Per-file state shared by every rule run over that file.

    ``project`` carries the whole-run
    :class:`~repro.analysis.dataflow.index.ProjectIndex` when at least
    one selected rule sets ``requires_project``; for single-source lints
    the engine builds a one-file index so the contract rules degrade
    gracefully (unknown callees are treated forgivingly).
    """

    def __init__(self, path: str, source: str, project=None):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.project = project

    @property
    def posix_path(self) -> str:
        """The file path with forward slashes, for suffix matching."""
        return self.path.replace("\\", "/")


class Rule(ast.NodeVisitor):
    """Base class for lint rules: one visitor instance per (rule, file).

    Subclasses set the class attributes and call :meth:`report` from their
    ``visit_*`` methods.  ``severity`` is ``"error"`` (correctness /
    determinism) or ``"warning"`` (style with teeth); ``fix_hint`` is a
    one-line remediation shown under each finding.
    """

    rule_id: str = "R000"
    title: str = ""
    severity: str = "error"
    fix_hint: str = ""
    #: Set by dataflow rules that need ``context.project`` populated.
    requires_project: bool = False

    def __init__(self, context: LintContext):
        self.context = context
        self.findings: list[Finding] = []

    def report(
        self,
        node: ast.AST,
        message: str,
        fix_hint: str | None = None,
        severity: str | None = None,
    ) -> None:
        """Record a finding anchored at ``node``."""
        self.findings.append(
            Finding(
                rule_id=self.rule_id,
                severity=severity or self.severity,
                path=self.context.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                message=message,
                fix_hint=fix_hint if fix_hint is not None else self.fix_hint,
            )
        )

    def run(self, tree: ast.Module) -> list[Finding]:
        """Visit the tree and return the findings collected on the way."""
        self.visit(tree)
        return self.findings


def _parse_rule_list(raw: str) -> set[str]:
    return {part.strip().upper() for part in raw.split(",") if part.strip()}


def _suppressions(lines: Sequence[str]) -> tuple[dict[int, set[str]], set[str]]:
    """Return (line -> suppressed ids, file-level suppressed ids)."""
    per_line: dict[int, set[str]] = {}
    file_level: set[str] = set()
    for lineno, line in enumerate(lines, start=1):
        match = _DISABLE_FILE_RE.search(line)
        if match:
            file_level |= _parse_rule_list(match.group(1))
            continue
        match = _DISABLE_LINE_RE.search(line)
        if match:
            per_line.setdefault(lineno, set()).update(_parse_rule_list(match.group(1)))
    return per_line, file_level


def _suppressed(finding: Finding, per_line: dict[int, set[str]], file_level: set[str]) -> bool:
    if "ALL" in file_level or finding.rule_id.upper() in file_level:
        return True
    ids = per_line.get(finding.line)
    return bool(ids) and ("ALL" in ids or finding.rule_id.upper() in ids)


class LintEngine:
    """Runs a set of rules over sources, files, and directory trees."""

    def __init__(
        self,
        rules: Sequence[type[Rule]] | None = None,
        select: Iterable[str] | None = None,
        ignore: Iterable[str] | None = None,
    ):
        if rules is None:
            from .rules import DEFAULT_RULES

            rules = DEFAULT_RULES
        selected = {r.upper() for r in select} if select else None
        ignored = {r.upper() for r in ignore} if ignore else set()
        self.rules: list[type[Rule]] = [
            rule
            for rule in rules
            if (selected is None or rule.rule_id in selected)
            and rule.rule_id not in ignored
        ]

    @property
    def needs_project(self) -> bool:
        """True when any selected rule wants a project index."""
        return any(rule.requires_project for rule in self.rules)

    def lint_source(
        self, source: str, path: str = "<string>", project=None
    ) -> list[Finding]:
        """Lint one source string; a syntax error yields a single E000."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            return [
                Finding(
                    rule_id="E000",
                    severity="error",
                    path=path,
                    line=error.lineno or 0,
                    col=error.offset or 0,
                    message=f"syntax error: {error.msg}",
                )
            ]
        if project is None and self.needs_project:
            from .dataflow.index import ProjectIndex

            project = ProjectIndex.from_sources(
                [(Path(path).as_posix(), tree)]
            )
        context = LintContext(path, source, project=project)
        findings: list[Finding] = []
        for rule_cls in self.rules:
            findings.extend(rule_cls(context).run(tree))
        per_line, file_level = _suppressions(context.lines)
        findings = [f for f in findings if not _suppressed(f, per_line, file_level)]
        findings.sort(key=lambda f: (f.line, f.col, f.rule_id))
        return findings

    def lint_file(self, path: str | Path, project=None) -> list[Finding]:
        """Lint one file on disk."""
        text = Path(path).read_text(encoding="utf-8")
        return self.lint_source(text, path=str(path), project=project)

    @staticmethod
    def _collect_files(paths: Iterable[str | Path]) -> list[Path]:
        files: list[Path] = []
        for path in paths:
            path = Path(path)
            if path.is_dir():
                for file in sorted(path.rglob("*.py")):
                    if any(part in _SKIP_DIR_NAMES or part.endswith(".egg-info")
                           for part in file.parts):
                        continue
                    files.append(file)
            else:
                files.append(path)
        return files

    def build_project(self, paths: Iterable[str | Path]):
        """Build the interprocedural index for every file under ``paths``."""
        from .dataflow.index import ProjectIndex

        return ProjectIndex.from_paths(self._collect_files(paths))

    def lint_paths(self, paths: Iterable[str | Path]) -> list[Finding]:
        """Lint files and (recursively) directories of ``*.py`` files.

        When a selected rule needs interprocedural facts, every file is
        parsed up front into one shared
        :class:`~repro.analysis.dataflow.index.ProjectIndex` so the
        contract rules see the whole program, not one file at a time.
        Findings come back in one stable global order:
        (path, line, col, rule id).
        """
        files = self._collect_files(paths)
        project = self.build_project(files) if self.needs_project else None
        findings: list[Finding] = []
        for file in files:
            findings.extend(self.lint_file(file, project=project))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        return findings


def lint_source(source: str, path: str = "<string>", **engine_kwargs) -> list[Finding]:
    """Convenience wrapper: lint one source string with the default rules."""
    return LintEngine(**engine_kwargs).lint_source(source, path=path)


def lint_paths(paths: Iterable[str | Path], **engine_kwargs) -> list[Finding]:
    """Convenience wrapper: lint files/directories with the default rules."""
    return LintEngine(**engine_kwargs).lint_paths(paths)
