"""Baseline (ratchet) support for ``repro-lint``.

A committed baseline file lets a new rule family land without blocking
on every pre-existing finding: CI gates only on *regressions* (findings
not in the baseline), while stale baseline entries — fixed findings —
are reported so the file ratchets down over time.

The file is plain JSON and round-trips through the same schema as
``repro-lint --format json`` (each record is
:meth:`repro.analysis.engine.Finding.as_dict`)::

    {"version": 1, "findings": [{"rule": "R008", "path": "...", ...}]}

Matching is by ``(rule, path, message)`` multiset — line and column are
deliberately excluded so unrelated edits that shift a suppressed finding
do not break the gate.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from .engine import Finding

__all__ = ["BaselineError", "load_baseline", "match_baseline", "write_baseline"]

_VERSION = 1


class BaselineError(ValueError):
    """Raised when a baseline file is malformed."""


def _key(record: dict) -> tuple[str, str, str]:
    return (
        str(record.get("rule", "")),
        str(record.get("path", "")).replace("\\", "/"),
        str(record.get("message", "")),
    )


def load_baseline(path: str | Path) -> list[dict]:
    """Load and validate a baseline file; return its finding records."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as error:
        raise BaselineError(f"cannot read baseline {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise BaselineError(f"baseline {path} is not valid JSON: {error}") from error
    if not isinstance(payload, dict) or "findings" not in payload:
        raise BaselineError(
            f"baseline {path} must be an object with a 'findings' list"
        )
    findings = payload["findings"]
    if not isinstance(findings, list) or not all(
        isinstance(record, dict) for record in findings
    ):
        raise BaselineError(f"baseline {path}: 'findings' must be a list of objects")
    return findings


def write_baseline(path: str | Path, findings: list[Finding]) -> None:
    """Write ``findings`` as a baseline file (sorted, stable schema)."""
    records = [f.as_dict() for f in findings]
    records.sort(key=lambda r: (r["path"], r["line"], r["col"], r["rule"]))
    payload = {"version": _VERSION, "findings": records}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def match_baseline(
    findings: list[Finding], baseline_records: list[dict]
) -> tuple[list[Finding], list[Finding], list[dict]]:
    """Partition findings against a baseline.

    Returns ``(new, baselined, stale)``: findings not covered by the
    baseline (these gate), findings the baseline suppresses, and
    baseline records that no longer correspond to any finding (safe to
    drop — rerun with ``--write-baseline`` to ratchet).
    """
    budget = Counter(_key(record) for record in baseline_records)
    new: list[Finding] = []
    baselined: list[Finding] = []
    for finding in findings:
        key = _key(finding.as_dict())
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            baselined.append(finding)
        else:
            new.append(finding)
    stale: list[dict] = []
    leftovers = Counter(budget)
    for record in baseline_records:
        key = _key(record)
        if leftovers.get(key, 0) > 0:
            leftovers[key] -= 1
            stale.append(record)
    return new, baselined, stale
