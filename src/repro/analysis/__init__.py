"""Static analysis for the reproduction: lint, contracts, race sanitizer.

Three complementary checkers guard the invariants every solver in this
library leans on (deterministic simulated time, iteration-independent
``parfor`` bodies, honest cost charging, frozen shared buffers):

* :mod:`repro.analysis.engine` — an AST lint engine with project-specific
  rules (single-node pattern rules in :mod:`repro.analysis.rules`, the
  advertised id range comes from
  :func:`repro.analysis.rules.rule_range` so it cannot go stale),
  exposed on the command line as ``repro-lint`` and run over
  ``src/repro`` inside the tier-1 test suite
  (``tests/analysis/test_self_lint.py``);
* :mod:`repro.analysis.contracts` — dataflow contract rules (R007–R012)
  built on :mod:`repro.analysis.dataflow` (per-function CFGs,
  reaching-tag taint, an interprocedural project index) that prove
  solver capability declarations, cost charging, and cache clone-safety
  at analysis time;
* :mod:`repro.analysis.race` — a dynamic parfor race sanitizer enabled via
  ``SimRuntime(sanitize=True)``, which records per-iteration read/write
  footprints of shared arrays and reports write-write / read-write
  conflicts between iterations of a declared parallel loop.

See ``docs/static_analysis.md`` for the full rule catalogue, the
CFG/dataflow architecture, and the baseline (ratchet) workflow.
"""

from __future__ import annotations

from .baseline import load_baseline, match_baseline, write_baseline
from .engine import Finding, LintEngine, Rule, lint_paths, lint_source
from .race import (
    Conflict,
    LoopRaceReport,
    RaceSanitizer,
    TrackedArray,
    declare_order_dependent,
    is_order_dependent,
)
from .rules import rule_range

__all__ = [
    "Finding",
    "LintEngine",
    "Rule",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "match_baseline",
    "rule_range",
    "write_baseline",
    "Conflict",
    "LoopRaceReport",
    "RaceSanitizer",
    "TrackedArray",
    "declare_order_dependent",
    "is_order_dependent",
]
