"""Static analysis for the reproduction: determinism lint + race sanitizer.

Two complementary checkers guard the invariants every solver in this
library leans on (deterministic simulated time, iteration-independent
``parfor`` bodies):

* :mod:`repro.analysis.engine` — an AST lint engine with project-specific
  rules (R001–R005, see :mod:`repro.analysis.rules`), exposed on the
  command line as ``repro-lint`` and run over ``src/repro`` inside the
  tier-1 test suite (``tests/analysis/test_self_lint.py``);
* :mod:`repro.analysis.race` — a dynamic parfor race sanitizer enabled via
  ``SimRuntime(sanitize=True)``, which records per-iteration read/write
  footprints of shared arrays and reports write-write / read-write
  conflicts between iterations of a declared parallel loop.

See ``docs/static_analysis.md`` for the full rule catalogue and the
sanitizer's execution model.
"""

from __future__ import annotations

from .engine import Finding, LintEngine, Rule, lint_paths, lint_source
from .race import (
    Conflict,
    LoopRaceReport,
    RaceSanitizer,
    TrackedArray,
    declare_order_dependent,
    is_order_dependent,
)

__all__ = [
    "Finding",
    "LintEngine",
    "Rule",
    "lint_paths",
    "lint_source",
    "Conflict",
    "LoopRaceReport",
    "RaceSanitizer",
    "TrackedArray",
    "declare_order_dependent",
    "is_order_dependent",
]
