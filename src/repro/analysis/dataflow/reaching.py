"""Reaching-definition tag analysis over a :mod:`~repro.analysis.dataflow.cfg` CFG.

The contract rules do not need full reaching definitions — they need to
know, at each program point, *which abstract origins* a local name may
hold: "came from a frozen scratch accessor", "is the optional runtime
parameter", "is graph-sized".  :func:`analyze_tags` runs a forward
may-analysis over the statement-level CFG: the environment maps names to
sets of tag strings, joins are set unions, and a pluggable *classifier*
decides the tags of every right-hand side.

Flow sensitivity matters for precision: after ::

    deg = graph.degrees()      # deg: {scratch}
    deg = deg.copy()           # deg: {}  (the copy killed the taint)
    deg.sort()                 # clean — a flow-insensitive union would
                               # still see {scratch} here and misfire

Uses inside a statement observe the environment *entering* that
statement, so ``x = x.copy()`` classifies the right-hand ``x`` with its
old tags before the assignment rebinds it.
"""

from __future__ import annotations

import ast
from collections.abc import Callable

from .cfg import CFG

__all__ = ["TagEnv", "analyze_tags", "env_at"]

#: Environment at one program point: name -> set of origin tags.
TagEnv = dict[str, frozenset[str]]

#: ``classifier(expr, env) -> tags`` decides which origin tags an
#: expression produces.  It receives the environment entering the
#: statement so it can propagate tags through local names.
Classifier = Callable[[ast.expr, TagEnv], frozenset[str]]

_EMPTY: frozenset[str] = frozenset()


def _join(into: TagEnv, other: TagEnv) -> bool:
    """Union ``other`` into ``into``; return True if anything changed."""
    changed = False
    for name, tags in other.items():
        merged = into.get(name, _EMPTY) | tags
        if merged != into.get(name, _EMPTY):
            into[name] = merged
            changed = True
    return changed


def _bind_target(target: ast.expr, tags: frozenset[str], env: TagEnv) -> None:
    """Rebind an assignment target in ``env``.

    Name targets take the new tags; tuple/list targets conservatively
    clear every element name (destructuring loses the origin).  Writes
    through attributes or subscripts do not rebind any local name.
    """
    if isinstance(target, ast.Name):
        if tags:
            env[target.id] = tags
        else:
            env.pop(target.id, None)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _bind_target(element, _EMPTY, env)
    elif isinstance(target, ast.Starred):
        _bind_target(target.value, _EMPTY, env)


def _transfer(stmt: ast.stmt, env: TagEnv, classify: Classifier) -> TagEnv:
    """Apply one statement's bindings to a copy of ``env``."""
    out = dict(env)
    if isinstance(stmt, ast.Assign):
        tags = classify(stmt.value, env)
        for target in stmt.targets:
            _bind_target(target, tags, out)
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        _bind_target(stmt.target, classify(stmt.value, env), out)
    elif isinstance(stmt, ast.AugAssign):
        # ``x += y`` mutates in place: x keeps its tags.
        pass
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        # Iteration elements: classify the iterable, but element origin
        # is weaker than the container's — drop tags unless the
        # classifier explicitly propagates through iteration via the
        # dedicated "iter:" pseudo-expression convention.
        _bind_target(stmt.target, _EMPTY, out)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                _bind_target(
                    item.optional_vars, classify(item.context_expr, env), out
                )
    elif isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                out.pop(target.id, None)
    # Walrus assignments anywhere in the statement's expressions.
    for node in ast.walk(stmt):
        if isinstance(node, ast.NamedExpr) and isinstance(node.target, ast.Name):
            out[node.target.id] = classify(node.value, env)
    return out


def analyze_tags(
    cfg: CFG,
    classify: Classifier,
    initial: TagEnv | None = None,
) -> dict[int, TagEnv]:
    """Fixed-point tag environments for every CFG node.

    Returns ``{node_index: env}`` where ``env`` is the environment
    *entering* the node (uses inside the node's statement see it before
    the node's own bindings apply).  ``initial`` seeds the entry node —
    typically the function parameters' tags.
    """
    envs: dict[int, TagEnv] = {cfg.entry.index: dict(initial or {})}
    worklist = [cfg.entry.index]
    while worklist:
        index = worklist.pop()
        node = cfg.nodes[index]
        env_in = envs.get(index, {})
        if node.stmt is not None and node.kind == "stmt":
            env_out = _transfer(node.stmt, env_in, classify)
        elif node.stmt is not None and node.kind == "loop":
            env_out = _transfer(node.stmt, env_in, classify)
        else:
            env_out = env_in
        for edge in cfg.successors(index):
            first_visit = edge.dst not in envs
            dst_env = envs.setdefault(edge.dst, {})
            if _join(dst_env, env_out) or first_visit:
                worklist.append(edge.dst)
    return envs


def env_at(envs: dict[int, TagEnv], index: int) -> TagEnv:
    """The environment entering node ``index`` (empty if unreachable)."""
    return envs.get(index, {})
