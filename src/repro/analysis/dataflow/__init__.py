"""Dataflow layer under the contract rules (R007–R012).

Three pieces, each usable on its own:

* :mod:`~repro.analysis.dataflow.cfg` — per-function statement-level
  control-flow graphs with guard-annotated edges and distinguishable
  zero-trip loop exits;
* :mod:`~repro.analysis.dataflow.reaching` — a forward reaching-tags
  may-analysis over the CFG (pluggable classifier: scratch taint,
  runtime origins, graph-sized values);
* :mod:`~repro.analysis.dataflow.index` — the interprocedural
  :class:`~repro.analysis.dataflow.index.ProjectIndex`: import origins,
  ``@register_solver`` keyword literals, and fixed-point charge /
  frontier / sanitize closures over the call graph.
"""

from .cfg import CFG, CFGEdge, CFGNode, branch_guards, build_cfg
from .index import (
    CHARGE_METHODS,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    SolverRegistration,
    runtime_locals,
)
from .reaching import TagEnv, analyze_tags, env_at

__all__ = [
    "CFG",
    "CFGEdge",
    "CFGNode",
    "CHARGE_METHODS",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "SolverRegistration",
    "TagEnv",
    "analyze_tags",
    "branch_guards",
    "build_cfg",
    "env_at",
    "runtime_locals",
]
