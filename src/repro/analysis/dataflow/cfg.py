"""Per-function control-flow graphs over the ``ast`` module.

The contract rules (R007–R012) need more than single-node pattern
matching: "every path out of this solver charges the runtime" is a
property of the control-flow graph, not of any one statement.
:func:`build_cfg` lowers one ``ast.FunctionDef`` into a small
statement-level CFG:

* every simple statement becomes one node; compound statements (``if`` /
  ``while`` / ``for`` / ``with`` / ``try``) contribute a *header* node
  whose ``scan_exprs`` cover only the header expressions (test,
  iterable, context managers) — bodies get their own nodes, so scanning
  a node never accidentally sees code from a nested block;
* edges carry an optional *guard* describing what the branch condition
  established about a name: the else edge of ``if runtime is not None:``
  is guarded ``("is_none", "runtime")``.  The charge analysis uses the
  guards to model the engine's calling convention (a ``supports_runtime``
  solver is always handed a runtime, so ``is_none`` edges are off-limits
  when searching for uncharged paths);
* loops get a first-evaluation header and a re-evaluation header so the
  zero-trip exit is a distinguishable edge (``zero_trip=True``).
  Analyses that assume graph-sized loops execute at least once (an
  empty graph raises ``EmptyGraphError`` before any solver loop runs)
  simply refuse to traverse zero-trip edges;
* ``return`` edges flow to ``cfg.exit``; ``raise`` edges to
  ``cfg.raise_exit``.  Paths that raise never reach the engine's
  post-run contract check, so the two exits are kept apart.

The graph is deliberately coarse around ``try`` (one edge from the
header into every handler) — precise exception flow is not needed for
the cost-charging contracts.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["CFG", "CFGEdge", "CFGNode", "branch_guards", "build_cfg"]

#: Guard kinds attached to branch edges.
GUARD_KINDS = ("is_none", "not_none", "truthy", "falsy")

Guard = tuple[str, str]


@dataclass
class CFGNode:
    """One CFG node: a statement, a loop header, or a synthetic exit."""

    index: int
    stmt: ast.stmt | None
    kind: str  # "entry" | "exit" | "raise_exit" | "stmt" | "loop"
    #: Expressions an analysis may scan when visiting this node.  For a
    #: compound statement this is only the header (test / iter / context
    #: managers); for a simple statement, the statement itself.
    scan_exprs: tuple[ast.AST, ...] = ()

    @property
    def lineno(self) -> int:
        """Source line of the underlying statement (0 for synthetic nodes)."""
        return getattr(self.stmt, "lineno", 0)


@dataclass(frozen=True)
class CFGEdge:
    """Directed edge ``src -> dst`` with an optional branch guard."""

    src: int
    dst: int
    guard: Guard | None = None
    zero_trip: bool = False


@dataclass
class CFG:
    """Statement-level control-flow graph of one function body."""

    nodes: list[CFGNode] = field(default_factory=list)
    edges: list[CFGEdge] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._succ: dict[int, list[CFGEdge]] = {}
        self._pred: dict[int, list[CFGEdge]] = {}

    @property
    def entry(self) -> CFGNode:
        """The synthetic entry node (always node 0)."""
        return self.nodes[0]

    @property
    def exit(self) -> CFGNode:
        """The synthetic normal-exit node (returns and fallthrough)."""
        return self.nodes[1]

    @property
    def raise_exit(self) -> CFGNode:
        """The synthetic exceptional-exit node (``raise`` paths)."""
        return self.nodes[2]

    def add_node(
        self,
        stmt: ast.stmt | None,
        kind: str,
        scan_exprs: tuple[ast.AST, ...] = (),
    ) -> CFGNode:
        """Append a node and return it."""
        node = CFGNode(len(self.nodes), stmt, kind, scan_exprs)
        self.nodes.append(node)
        return node

    def add_edge(
        self,
        src: int,
        dst: int,
        guard: Guard | None = None,
        zero_trip: bool = False,
    ) -> None:
        """Append the edge ``src -> dst``."""
        edge = CFGEdge(src, dst, guard, zero_trip)
        self.edges.append(edge)
        self._succ.setdefault(src, []).append(edge)
        self._pred.setdefault(dst, []).append(edge)

    def successors(self, index: int) -> list[CFGEdge]:
        """Outgoing edges of node ``index``."""
        return self._succ.get(index, [])

    def predecessors(self, index: int) -> list[CFGEdge]:
        """Incoming edges of node ``index``."""
        return self._pred.get(index, [])

    def reachable(
        self,
        start: int,
        *,
        blocked_nodes: frozenset[int] | set[int] = frozenset(),
        forbidden_guards: frozenset[Guard] | set[Guard] = frozenset(),
        allow_zero_trip: bool = True,
        backward: bool = False,
    ) -> set[int]:
        """Nodes reachable from ``start`` under the given restrictions.

        ``blocked_nodes`` may be entered but never traversed *through*
        (they terminate the walk — the start node itself is exempt);
        edges whose guard is forbidden, or that are zero-trip when
        ``allow_zero_trip`` is false, are never taken.  ``backward=True``
        walks predecessor edges instead.
        """
        seen = {start}
        stack = [start]
        while stack:
            index = stack.pop()
            if index != start and index in blocked_nodes:
                continue
            edges = self.predecessors(index) if backward else self.successors(index)
            for edge in edges:
                if edge.guard is not None and edge.guard in forbidden_guards:
                    continue
                if edge.zero_trip and not allow_zero_trip:
                    continue
                nxt = edge.src if backward else edge.dst
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen


def _negate(guard: Guard | None) -> Guard | None:
    if guard is None:
        return None
    kind, name = guard
    opposite = {
        "is_none": "not_none",
        "not_none": "is_none",
        "truthy": "falsy",
        "falsy": "truthy",
    }
    return (opposite[kind], name)


def branch_guards(test: ast.expr) -> tuple[Guard | None, Guard | None]:
    """Return ``(then_guard, else_guard)`` established by ``test``.

    Recognises the None-test shapes the codebase uses around optional
    runtimes — ``x is None`` / ``x is not None`` / ``x`` / ``not x`` —
    and returns ``(None, None)`` for anything else.
    """
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        then_guard, else_guard = branch_guards(test.operand)
        return else_guard, then_guard
    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.left, ast.Name)
        and len(test.comparators) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        name = test.left.id
        if isinstance(test.ops[0], ast.Is):
            return ("is_none", name), ("not_none", name)
        if isinstance(test.ops[0], ast.IsNot):
            return ("not_none", name), ("is_none", name)
    if isinstance(test, ast.Name):
        return ("truthy", test.id), ("falsy", test.id)
    return None, None


def _is_const_true(test: ast.expr) -> bool:
    return isinstance(test, ast.Constant) and test.value is True


#: A dangling edge awaiting its destination: (src index, guard, zero_trip).
_Frontier = list[tuple[int, Guard | None, bool]]


class _Builder:
    """Single-use lowering of one function body into a :class:`CFG`."""

    def __init__(self) -> None:
        self.cfg = CFG()
        self.cfg.add_node(None, "entry")
        self.cfg.add_node(None, "exit")
        self.cfg.add_node(None, "raise_exit")
        # Stacks for break/continue resolution: each entry is the list of
        # dangling break edges / the re-evaluation header index.
        self._break_stack: list[_Frontier] = []
        self._continue_stack: list[int] = []

    def build(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
        frontier = self._emit_block(func.body, [(self.cfg.entry.index, None, False)])
        self._connect(frontier, self.cfg.exit.index)
        return self.cfg

    # ------------------------------------------------------------------
    def _connect(self, frontier: _Frontier, dst: int) -> None:
        for src, guard, zero_trip in frontier:
            self.cfg.add_edge(src, dst, guard, zero_trip)

    def _emit_block(self, stmts: list[ast.stmt], frontier: _Frontier) -> _Frontier:
        for stmt in stmts:
            frontier = self._emit_stmt(stmt, frontier)
            if not frontier:  # every path returned/raised/jumped
                break
        return frontier

    def _emit_stmt(self, stmt: ast.stmt, frontier: _Frontier) -> _Frontier:
        if isinstance(stmt, ast.If):
            return self._emit_if(stmt, frontier)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._emit_loop(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._emit_with(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._emit_try(stmt, frontier)
        return self._emit_simple(stmt, frontier)

    def _emit_simple(self, stmt: ast.stmt, frontier: _Frontier) -> _Frontier:
        node = self.cfg.add_node(stmt, "stmt", (stmt,))
        self._connect(frontier, node.index)
        if isinstance(stmt, ast.Return):
            self.cfg.add_edge(node.index, self.cfg.exit.index)
            return []
        if isinstance(stmt, ast.Raise):
            self.cfg.add_edge(node.index, self.cfg.raise_exit.index)
            return []
        if isinstance(stmt, ast.Break):
            if self._break_stack:
                self._break_stack[-1].append((node.index, None, False))
            return []
        if isinstance(stmt, ast.Continue):
            if self._continue_stack:
                self.cfg.add_edge(node.index, self._continue_stack[-1])
            return []
        return [(node.index, None, False)]

    def _emit_if(self, stmt: ast.If, frontier: _Frontier) -> _Frontier:
        node = self.cfg.add_node(stmt, "stmt", (stmt.test,))
        self._connect(frontier, node.index)
        then_guard, else_guard = branch_guards(stmt.test)
        out = self._emit_block(stmt.body, [(node.index, then_guard, False)])
        if stmt.orelse:
            out += self._emit_block(stmt.orelse, [(node.index, else_guard, False)])
        else:
            out += [(node.index, else_guard, False)]
        return out

    def _emit_loop(
        self, stmt: ast.While | ast.For | ast.AsyncFor, frontier: _Frontier
    ) -> _Frontier:
        if isinstance(stmt, ast.While):
            scan: tuple[ast.AST, ...] = (stmt.test,)
            infinite = _is_const_true(stmt.test)
            then_guard, else_guard = branch_guards(stmt.test)
        else:
            scan = (stmt.iter,)
            infinite = False
            then_guard = else_guard = None
        first = self.cfg.add_node(stmt, "loop", scan)
        again = self.cfg.add_node(stmt, "loop", scan)
        self._connect(frontier, first.index)

        self._break_stack.append([])
        self._continue_stack.append(again.index)
        body = self._emit_block(stmt.body, [(first.index, then_guard, False)])
        self._connect(body, again.index)
        self.cfg.add_edge(again.index, first.index, then_guard)
        breaks = self._break_stack.pop()
        self._continue_stack.pop()

        out: _Frontier = list(breaks)
        if not infinite:
            # Zero-trip exit from the first evaluation; normal exit from
            # any re-evaluation.
            out.append((first.index, else_guard, True))
            out.append((again.index, else_guard, False))
        if stmt.orelse:
            out = self._emit_block(stmt.orelse, out) + list(breaks)
        return out

    def _emit_with(self, stmt: ast.With | ast.AsyncWith, frontier: _Frontier) -> _Frontier:
        scan = tuple(item.context_expr for item in stmt.items)
        node = self.cfg.add_node(stmt, "stmt", scan)
        self._connect(frontier, node.index)
        return self._emit_block(stmt.body, [(node.index, None, False)])

    def _emit_try(self, stmt: ast.Try, frontier: _Frontier) -> _Frontier:
        node = self.cfg.add_node(stmt, "stmt", ())
        self._connect(frontier, node.index)
        body_out = self._emit_block(stmt.body, [(node.index, None, False)])
        if stmt.orelse:
            body_out = self._emit_block(stmt.orelse, body_out)
        out = list(body_out)
        for handler in stmt.handlers:
            # Coarse: the exception may occur anywhere in the body, so the
            # handler is entered straight from the try header.
            out += self._emit_block(handler.body, [(node.index, None, False)])
        if stmt.finalbody:
            out = self._emit_block(stmt.finalbody, out)
        return out


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the statement-level CFG of one function definition."""
    return _Builder().build(func)
