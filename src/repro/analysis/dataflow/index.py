"""Interprocedural project index for the contract rules.

One :class:`ProjectIndex` is built per lint run from every file being
linted.  It records, per module, the import origins of every name, every
function definition with the *facts* the contract rules consume
(runtime-parameter names, direct SimRuntime charges, which callees a
runtime or frontier argument is forwarded to), and every
``@register_solver`` decoration with its keyword literals — the static
mirror of :mod:`repro.engine.spec`'s runtime registry.

On top of the per-function facts the index computes three fixed-point
closures over the (simple-name resolved) call graph:

* :meth:`ProjectIndex.function_charges` — may the function charge a
  SimRuntime it was handed (directly via ``rt.parfor`` /
  ``rt.par_tasks`` / ``rt.charge_serial``, or by forwarding its runtime
  to a callee that charges)?  Unknown callees receiving a runtime are
  assumed to charge, so single-file linting stays forgiving while
  whole-project linting is precise.
* :meth:`ProjectIndex.consumes_frontier` — does the function use the
  frontier capability (defined in ``kernels/frontier.py``, calls into
  it, tests its own ``frontier`` parameter, or forwards it to a
  consumer)?
* :meth:`ProjectIndex.observes_runtime` — does it reach an
  ``observe_parfor`` call (the sanitizer hook), used to infer
  ``supports_sanitize``?

Call resolution is by simple name: the codebase keeps helper names
unique, and a collision merges conservatively (any charging candidate
makes the name charging).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "CHARGE_METHODS",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "SolverRegistration",
    "runtime_locals",
]

#: SimRuntime methods that satisfy the engine's charged-runtime check
#: (``run`` errors unless ``parallel_loops`` or ``breakdown.serial``
#: advanced — ``parallel_region``/``observe_parfor``/``allocate`` do not).
CHARGE_METHODS = frozenset({"parfor", "par_tasks", "charge_serial"})

#: Parameter names conventionally holding a SimRuntime.
RUNTIME_PARAM_NAMES = frozenset({"runtime", "rt"})

#: Builtins that receive a runtime argument without ever charging it.
_NON_CHARGING_BUILTINS = frozenset(
    {"isinstance", "id", "repr", "str", "print", "len", "type", "getattr",
     "hasattr", "setattr", "callable", "format", "vars"}
)

#: The capability keywords accepted by ``@register_solver``.
CAPABILITY_KEYWORDS = (
    "supports_runtime",
    "supports_frontier",
    "supports_sanitize",
    "supports_seed",
    "supports_cluster",
)

_FRONTIER_MODULE_SUFFIX = "kernels/frontier.py"
_FRONTIER_ORIGIN_FRAGMENT = "kernels.frontier"


def _annotation_mentions(annotation: ast.expr | None, needle: str) -> bool:
    if annotation is None:
        return False
    try:
        return needle in ast.unparse(annotation)
    except ValueError:
        return False


def _all_params(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[ast.arg]:
    a = func.args
    return [*a.posonlyargs, *a.args, *a.kwonlyargs]


def runtime_locals(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> tuple[frozenset[str], frozenset[str]]:
    """``(optional, definite)`` runtime-holding names in ``func``.

    *Optional* names are runtime parameters (the caller may pass
    ``None``); *definite* names are locals bound to a constructed or
    defaulted runtime — ``SimRuntime(...)``, ``runtime or SimRuntime(...)``,
    ``ctx.ensure_runtime()`` — which can never be ``None``.  Aliases
    propagate to a fixed point.
    """
    optional = {
        arg.arg
        for arg in _all_params(func)
        if arg.arg in RUNTIME_PARAM_NAMES
        or _annotation_mentions(arg.annotation, "SimRuntime")
    }
    definite: set[str] = set()

    def is_definite_expr(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Call):
            callee = expr.func
            if isinstance(callee, ast.Name) and callee.id == "SimRuntime":
                return True
            if isinstance(callee, ast.Attribute) and callee.attr in (
                "SimRuntime",
                "ensure_runtime",
            ):
                return True
        if isinstance(expr, ast.BoolOp) and isinstance(expr.op, ast.Or):
            return any(is_definite_expr(v) for v in expr.values)
        if isinstance(expr, ast.Name):
            return expr.id in definite
        return False

    changed = True
    while changed:
        changed = False
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            target_names = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
            if not target_names:
                continue
            if is_definite_expr(value):
                for name in target_names:
                    if name not in definite:
                        definite.add(name)
                        changed = True
            elif isinstance(value, ast.Name) and value.id in optional:
                for name in target_names:
                    if name not in optional:
                        optional.add(name)
                        changed = True
    return frozenset(optional), frozenset(definite)


@dataclass
class FunctionInfo:
    """Per-function facts the contract rules and closures consume."""

    module_path: str
    qualname: str
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    lineno: int
    params: tuple[str, ...] = ()
    optional_runtime: frozenset[str] = frozenset()
    definite_runtime: frozenset[str] = frozenset()
    direct_charge: bool = False
    direct_observe: bool = False
    runtime_forwards: tuple[str, ...] = ()
    has_frontier_param: bool = False
    frontier_tested: bool = False
    frontier_forwards: tuple[str, ...] = ()
    calls: tuple[str, ...] = ()
    in_frontier_module: bool = False

    @property
    def runtime_names(self) -> frozenset[str]:
        """All names that may hold a runtime inside this function."""
        return self.optional_runtime | self.definite_runtime


@dataclass
class SolverRegistration:
    """One ``@register_solver`` decoration with its keyword literals."""

    name: str | None
    kind: str | None
    guarantee: str | None
    cost: str | None
    declared: dict[str, bool]
    function: FunctionInfo
    lineno: int


@dataclass
class ModuleInfo:
    """Everything the index knows about one linted file."""

    path: str
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    import_origins: dict[str, str] = field(default_factory=dict)
    solvers: list[SolverRegistration] = field(default_factory=list)


def _callee_simple_name(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _is_register_solver(decorator: ast.expr) -> ast.Call | None:
    if not isinstance(decorator, ast.Call):
        return None
    callee = decorator.func
    name = (
        callee.id
        if isinstance(callee, ast.Name)
        else callee.attr if isinstance(callee, ast.Attribute) else None
    )
    return decorator if name == "register_solver" else None


class _ModuleCollector:
    """Walks one module tree, producing its :class:`ModuleInfo`."""

    def __init__(self, path: str, tree: ast.Module) -> None:
        self.info = ModuleInfo(path=path)
        self._in_frontier_module = path.endswith(_FRONTIER_MODULE_SUFFIX)
        self._collect_imports(tree)
        self._collect_functions(tree, prefix="")

    def _collect_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.info.import_origins[alias.asname or alias.name] = (
                        node.module
                    )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    self.info.import_origins[
                        alias.asname or alias.name.split(".")[0]
                    ] = alias.name

    def _collect_functions(self, scope: ast.AST, prefix: str) -> None:
        for node in ast.iter_child_nodes(scope):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{node.name}"
                self.info.functions[qualname] = self._collect_one(node, qualname)
            elif isinstance(node, ast.ClassDef):
                self._collect_functions(node, prefix=f"{prefix}{node.name}.")

    def _collect_one(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef, qualname: str
    ) -> FunctionInfo:
        optional, definite = runtime_locals(func)
        params = tuple(arg.arg for arg in _all_params(func))
        info = FunctionInfo(
            module_path=self.info.path,
            qualname=qualname,
            name=func.name,
            node=func,
            lineno=func.lineno,
            params=params,
            optional_runtime=optional,
            definite_runtime=definite,
            has_frontier_param="frontier" in params,
            in_frontier_module=self._in_frontier_module,
        )
        runtime_names = info.runtime_names
        runtime_forwards: list[str] = []
        frontier_forwards: list[str] = []
        frontier_tested = False
        calls: list[str] = []
        direct_charge = False
        direct_observe = False

        forwarded_loads: set[int] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                callee = _callee_simple_name(node)
                if callee is not None:
                    calls.append(callee)
                if (
                    isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in runtime_names
                ):
                    if node.func.attr in CHARGE_METHODS:
                        direct_charge = True
                    if node.func.attr == "observe_parfor":
                        direct_observe = True
                arg_exprs = list(node.args) + [kw.value for kw in node.keywords]
                for expr in arg_exprs:
                    if not isinstance(expr, ast.Name):
                        continue
                    if expr.id in runtime_names and callee is not None:
                        runtime_forwards.append(callee)
                    if expr.id == "frontier" and info.has_frontier_param:
                        forwarded_loads.add(id(expr))
                        if callee is not None:
                            frontier_forwards.append(callee)
        if info.has_frontier_param:
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.Name)
                    and node.id == "frontier"
                    and isinstance(node.ctx, ast.Load)
                    and id(node) not in forwarded_loads
                ):
                    frontier_tested = True
                    break

        info.direct_charge = direct_charge
        info.direct_observe = direct_observe
        info.runtime_forwards = tuple(runtime_forwards)
        info.frontier_forwards = tuple(frontier_forwards)
        info.frontier_tested = frontier_tested
        info.calls = tuple(calls)

        for decorator in func.decorator_list:
            call = _is_register_solver(decorator)
            if call is not None:
                self.info.solvers.append(self._registration(call, info))
        return info

    def _registration(
        self, call: ast.Call, function: FunctionInfo
    ) -> SolverRegistration:
        def literal(expr: ast.expr | None):
            if isinstance(expr, ast.Constant):
                return expr.value
            return None

        kwargs = {kw.arg: kw.value for kw in call.keywords if kw.arg}
        declared = {
            key: bool(literal(kwargs.get(key))) for key in CAPABILITY_KEYWORDS
        }
        return SolverRegistration(
            name=literal(call.args[0] if call.args else kwargs.get("name")),
            kind=literal(kwargs.get("kind")),
            guarantee=literal(kwargs.get("guarantee")),
            cost=literal(kwargs.get("cost")),
            declared=declared,
            function=function,
            lineno=call.lineno,
        )


class ProjectIndex:
    """Whole-project facts shared by every contract rule in one run."""

    def __init__(self) -> None:
        self._modules: dict[str, ModuleInfo] = {}
        self._by_name: dict[str, list[FunctionInfo]] = {}
        self._charges: dict[int, bool] = {}
        self._frontier: dict[int, bool] = {}
        self._observes: dict[int, bool] = {}

    # ------------------------------------------------------------------
    # construction
    @classmethod
    def from_sources(cls, sources: list[tuple[str, ast.Module]]) -> "ProjectIndex":
        """Build an index from ``(posix_path, parsed tree)`` pairs."""
        index = cls()
        for path, tree in sources:
            index.add_module(path, tree)
        index._solve_closures()
        return index

    @classmethod
    def from_paths(cls, paths: list[Path]) -> "ProjectIndex":
        """Build an index by parsing every ``.py`` file in ``paths``."""
        sources: list[tuple[str, ast.Module]] = []
        for path in paths:
            try:
                tree = ast.parse(path.read_text(encoding="utf-8"))
            except (OSError, SyntaxError):
                continue
            sources.append((path.as_posix(), tree))
        return cls.from_sources(sources)

    def add_module(self, path: str, tree: ast.Module) -> ModuleInfo:
        """Index one parsed module under its posix path key."""
        info = _ModuleCollector(path, tree).info
        self._modules[path] = info
        for function in info.functions.values():
            self._by_name.setdefault(function.name, []).append(function)
        return info

    # ------------------------------------------------------------------
    # lookups
    def module(self, path: str | Path) -> ModuleInfo | None:
        """The indexed module for ``path`` (posix-normalised), if any."""
        return self._modules.get(Path(path).as_posix())

    def functions_named(self, name: str) -> list[FunctionInfo]:
        """Every indexed function with the given simple name."""
        return self._by_name.get(name, [])

    def solvers(self) -> list[SolverRegistration]:
        """All solver registrations, sorted by (kind, name)."""
        regs = [
            reg for module in self._modules.values() for reg in module.solvers
        ]
        return sorted(regs, key=lambda r: (r.kind or "", r.name or ""))

    # ------------------------------------------------------------------
    # fixed-point closures
    def _solve_closures(self) -> None:
        functions = [
            fn for module in self._modules.values()
            for fn in module.functions.values()
        ]
        for fn in functions:
            self._charges[id(fn)] = fn.direct_charge
            self._observes[id(fn)] = fn.direct_observe
            self._frontier[id(fn)] = (
                fn.in_frontier_module
                or self._calls_frontier_kernels(fn)
                or (fn.has_frontier_param and fn.frontier_tested)
            )
        changed = True
        while changed:
            changed = False
            for fn in functions:
                if not self._charges[id(fn)]:
                    if any(
                        self.callee_may_charge(callee)
                        for callee in fn.runtime_forwards
                    ):
                        self._charges[id(fn)] = True
                        changed = True
                if not self._observes[id(fn)]:
                    if any(
                        any(
                            self._observes.get(id(c), False)
                            for c in self.functions_named(callee)
                        )
                        for callee in set(fn.calls)
                    ):
                        self._observes[id(fn)] = True
                        changed = True
                if not self._frontier[id(fn)]:
                    if fn.has_frontier_param and any(
                        self._callee_consumes_frontier(callee)
                        for callee in fn.frontier_forwards
                    ):
                        self._frontier[id(fn)] = True
                        changed = True

    def _calls_frontier_kernels(self, fn: FunctionInfo) -> bool:
        origins = self._modules[fn.module_path].import_origins
        for callee in set(fn.calls):
            if _FRONTIER_ORIGIN_FRAGMENT in origins.get(callee, ""):
                return True
            if any(
                c.in_frontier_module for c in self.functions_named(callee)
            ):
                return True
        return False

    def _callee_consumes_frontier(self, callee: str) -> bool:
        candidates = self.functions_named(callee)
        if not candidates:  # unknown callee: forgiving
            return True
        return any(self._frontier.get(id(c), False) for c in candidates)

    def callee_may_charge(self, callee: str) -> bool:
        """May a call to ``callee`` charge a runtime passed to it?

        Unknown callees are assumed to charge (forgiving); known callees
        answer from the fixed point.
        """
        if callee in _NON_CHARGING_BUILTINS:
            return False
        candidates = self.functions_named(callee)
        if not candidates:
            return True
        return any(self._charges.get(id(c), False) for c in candidates)

    def function_charges(self, fn: FunctionInfo) -> bool:
        """Does ``fn`` (transitively) charge a runtime it holds?"""
        return self._charges.get(id(fn), False)

    def consumes_frontier(self, fn: FunctionInfo) -> bool:
        """Does ``fn`` use or forward the frontier capability?"""
        return self._frontier.get(id(fn), False)

    def observes_runtime(self, fn: FunctionInfo) -> bool:
        """Does ``fn`` (transitively) reach an ``observe_parfor`` call?"""
        return self._observes.get(id(fn), False)

    # ------------------------------------------------------------------
    # charge-event scanning (shared by R007/R008)
    def expr_charges(self, expr: ast.AST, runtime_names: frozenset[str]) -> bool:
        """Does this expression (sub)tree contain a charge event?

        A charge event is a direct ``<rt>.parfor/par_tasks/charge_serial``
        call on a runtime-holding name, or a call forwarding such a name
        to a callee that may charge.
        """
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in runtime_names
                and node.func.attr in CHARGE_METHODS
            ):
                return True
            callee = _callee_simple_name(node)
            arg_exprs = list(node.args) + [kw.value for kw in node.keywords]
            for arg in arg_exprs:
                if (
                    isinstance(arg, ast.Name)
                    and arg.id in runtime_names
                    and callee is not None
                    and self.callee_may_charge(callee)
                ):
                    return True
        return False

    # ------------------------------------------------------------------
    # manifest
    def inferred_capabilities(self, reg: SolverRegistration) -> dict[str, bool]:
        """Statically inferred capability flags for one registration."""
        fn = reg.function
        has_runtime = bool(fn.runtime_names)
        return {
            "runtime": has_runtime and self.function_charges(fn),
            "frontier": fn.has_frontier_param and self.consumes_frontier(fn),
            "sanitize": self.observes_runtime(fn),
            "seed": "seed" in fn.params,
            "cluster": "config" in fn.params,
        }

    def contracts_manifest(self) -> list[dict]:
        """Stable, sorted declared-vs-inferred capability records.

        One record per ``@register_solver`` decoration: the declared
        ``supports_*`` keyword literals next to the capabilities the
        dataflow pass inferred from the implementation, plus the list of
        capability names where the two disagree (review signal — the
        rules R007/R009 gate the load-bearing directions).
        """
        records = []
        for reg in self.solvers():
            declared = {
                key.removeprefix("supports_"): value
                for key, value in reg.declared.items()
            }
            inferred = self.inferred_capabilities(reg)
            records.append(
                {
                    "kind": reg.kind,
                    "name": reg.name,
                    "function": reg.function.qualname,
                    "module": reg.function.module_path,
                    "line": reg.function.lineno,
                    "guarantee": reg.guarantee,
                    "cost": reg.cost,
                    "declared": declared,
                    "inferred": inferred,
                    "mismatches": sorted(
                        key
                        for key in declared
                        if declared[key] != inferred[key]
                    ),
                }
            )
        return records
