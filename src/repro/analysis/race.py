"""Parfor race sanitizer: dynamic read/write-set checking for declared loops.

The simulated runtime executes parallel loops serially, which means a loop
whose iterations are *not* independent still produces an answer — often a
plausible one (a racy h-index sweep still converges, just in a different
number of iterations than any real parallel execution would take).  This
module provides the opt-in checking mode behind ``SimRuntime(sanitize=True)``:

* each shared array handed to a loop body is wrapped in a
  :class:`TrackedArray` proxy that records the flat cell indices every
  ``__getitem__`` / ``__setitem__`` touches;
* after the loop, the per-iteration footprints are crossed: a cell written
  by two different iterations is a **write-write** conflict, a cell written
  by one iteration and read by another is a **read-write** conflict;
* loops that are *intentionally* order-dependent (Gauss–Seidel sweeps such
  as :func:`repro.core.hindex.inplace_sweep`) declare it with the
  :func:`declare_order_dependent` annotation; their conflicts are recorded
  in the report but not raised as races.

The model is a dynamic, single-schedule analogue of what a real OpenMP
race detector (Archer/TSan) observes: it proves the presence of an
iteration-ordering hazard, not its absence on untested inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from ..errors import ParforRaceError

__all__ = [
    "Conflict",
    "LoopRaceReport",
    "RaceSanitizer",
    "TrackedArray",
    "declare_order_dependent",
    "is_order_dependent",
]

_ORDER_DEPENDENT_ATTR = "__repro_order_dependent__"

# Listing every conflicting cell of a genuinely racy loop can be O(n); the
# report keeps a representative sample and the exact total count.
_MAX_RECORDED_CONFLICTS = 64


def declare_order_dependent(func: Callable) -> Callable:
    """Annotate a loop body whose iterations intentionally observe earlier ones.

    Use for Gauss–Seidel-style sweeps where later iterations are *meant* to
    read values written by earlier ones.  The sanitizer still records the
    read/write overlap for such loops but reports them as declared
    order-dependent instead of racy.
    """
    setattr(func, _ORDER_DEPENDENT_ATTR, True)
    return func


def is_order_dependent(func: Callable) -> bool:
    """True when ``func`` carries the :func:`declare_order_dependent` mark."""
    return bool(getattr(func, _ORDER_DEPENDENT_ATTR, False))


class TrackedArray:
    """Indexing proxy over a NumPy array that records touched flat cells.

    Reads and writes go straight through to the wrapped array (so the
    kernel's results are unchanged); the proxy only *observes*.  Whole-array
    conversions (``np.asarray``, arithmetic that coerces the proxy) count as
    a read of every cell, which is the conservative interpretation.
    """

    __slots__ = ("_array", "_name", "_recorder", "_flat_ids")

    def __init__(self, array: np.ndarray, name: str, recorder: "_AccessRecorder"):
        self._array = array
        self._name = name
        self._recorder = recorder
        self._flat_ids = np.arange(array.size).reshape(array.shape)

    # -- observation helpers -------------------------------------------
    def _cells(self, key) -> np.ndarray:
        if isinstance(key, TrackedArray):
            key = key.__array__()
        return np.atleast_1d(np.asarray(self._flat_ids[key])).ravel()

    # -- the tracked surface -------------------------------------------
    def __getitem__(self, key):
        self._recorder.record_read(self._name, self._cells(key))
        if isinstance(key, TrackedArray):
            key = key.__array__()
        return self._array[key]

    def __setitem__(self, key, value) -> None:
        self._recorder.record_write(self._name, self._cells(key))
        if isinstance(key, TrackedArray):
            key = key.__array__()
        if isinstance(value, TrackedArray):
            value = value.__array__()
        self._array[key] = value

    def __array__(self, dtype=None, copy=None):
        self._recorder.record_read(self._name, self._flat_ids.ravel())
        if dtype is None:
            return self._array
        return self._array.astype(dtype)

    def __len__(self) -> int:
        return len(self._array)

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the wrapped array."""
        return self._array.shape

    @property
    def size(self) -> int:
        """Element count of the wrapped array."""
        return self._array.size

    @property
    def dtype(self):
        """Dtype of the wrapped array."""
        return self._array.dtype

    def __repr__(self) -> str:
        return f"TrackedArray({self._name!r}, shape={self._array.shape})"


class _AccessRecorder:
    """Accumulates one iteration's read/write sets across all shared arrays."""

    def __init__(self) -> None:
        self.reads: dict[str, set[int]] = {}
        self.writes: dict[str, set[int]] = {}

    def record_read(self, name: str, cells: np.ndarray) -> None:
        self.reads.setdefault(name, set()).update(int(c) for c in cells)

    def record_write(self, name: str, cells: np.ndarray) -> None:
        self.writes.setdefault(name, set()).update(int(c) for c in cells)

    def snapshot_and_reset(self) -> tuple[dict[str, set[int]], dict[str, set[int]]]:
        reads, writes = self.reads, self.writes
        self.reads, self.writes = {}, {}
        return reads, writes


@dataclass(frozen=True)
class Conflict:
    """One conflicting cell between two iterations of a declared loop."""

    array: str
    cell: int
    kind: str  # "write-write" or "read-write"
    iterations: tuple[int, int]

    def __str__(self) -> str:
        i, j = self.iterations
        return (
            f"{self.kind} on {self.array}[{self.cell}] between iterations "
            f"{i} and {j}"
        )


@dataclass
class LoopRaceReport:
    """Sanitizer verdict for one declared parallel loop."""

    label: str
    num_iterations: int
    order_dependent: bool
    conflicts: list[Conflict] = field(default_factory=list)
    total_conflicts: int = 0

    @property
    def is_racy(self) -> bool:
        """True when conflicts exist and the loop was not declared order-dependent."""
        return self.total_conflicts > 0 and not self.order_dependent

    @property
    def clean(self) -> bool:
        """True when no cross-iteration conflicts were observed at all."""
        return self.total_conflicts == 0

    def summary(self) -> str:
        """One line suitable for CLI output."""
        if self.clean:
            verdict = "clean"
        elif self.order_dependent:
            verdict = f"order-dependent (declared; {self.total_conflicts} overlaps)"
        else:
            verdict = f"RACE ({self.total_conflicts} conflicts)"
        text = f"{self.label}: {self.num_iterations} iterations, {verdict}"
        if self.is_racy and self.conflicts:
            text += f" e.g. {self.conflicts[0]}"
        return text


def _find_conflicts(
    footprints: list[tuple[dict[str, set[int]], dict[str, set[int]]]],
) -> tuple[list[Conflict], int]:
    """Cross per-iteration footprints; return (sample, total count)."""
    writers: dict[tuple[str, int], list[int]] = {}
    readers: dict[tuple[str, int], list[int]] = {}
    for iteration, (reads, writes) in enumerate(footprints):
        for name, cells in writes.items():
            for cell in cells:
                writers.setdefault((name, cell), []).append(iteration)
        for name, cells in reads.items():
            for cell in cells:
                readers.setdefault((name, cell), []).append(iteration)

    conflicts: list[Conflict] = []
    total = 0
    for (name, cell), write_iters in sorted(writers.items()):
        if len(write_iters) > 1:
            total += 1
            if len(conflicts) < _MAX_RECORDED_CONFLICTS:
                conflicts.append(
                    Conflict(name, cell, "write-write", (write_iters[0], write_iters[1]))
                )
            continue
        writer = write_iters[0]
        other_readers = [i for i in readers.get((name, cell), []) if i != writer]
        if other_readers:
            total += 1
            if len(conflicts) < _MAX_RECORDED_CONFLICTS:
                conflicts.append(
                    Conflict(name, cell, "read-write", (writer, other_readers[0]))
                )
    return conflicts, total


class RaceSanitizer:
    """Runs declared loop bodies under tracking and accumulates reports.

    ``raise_on_race=True`` (the default) turns a racy loop into a
    :class:`~repro.errors.ParforRaceError` as soon as it completes;
    with ``False`` the reports are only collected for inspection via
    :attr:`reports`.
    """

    def __init__(self, raise_on_race: bool = True):
        self.raise_on_race = raise_on_race
        self.reports: list[LoopRaceReport] = []

    def run_loop(
        self,
        label: str,
        num_iterations: int,
        body: Callable,
        shared: Mapping[str, np.ndarray],
        order_dependent: bool = False,
    ) -> LoopRaceReport:
        """Execute ``body(i, **shared)`` for each iteration under tracking.

        ``shared`` maps keyword names to the NumPy arrays the body may touch;
        the body receives :class:`TrackedArray` proxies under the same names
        and its writes land in the caller's arrays as usual.
        """
        recorder = _AccessRecorder()
        proxies = {
            name: TrackedArray(np.asarray(array), name, recorder)
            for name, array in shared.items()
        }
        footprints: list[tuple[dict[str, set[int]], dict[str, set[int]]]] = []
        for iteration in range(int(num_iterations)):
            body(iteration, **proxies)
            footprints.append(recorder.snapshot_and_reset())

        conflicts, total = _find_conflicts(footprints)
        report = LoopRaceReport(
            label=label,
            num_iterations=int(num_iterations),
            order_dependent=order_dependent,
            conflicts=conflicts,
            total_conflicts=total,
        )
        self.reports.append(report)
        if report.is_racy and self.raise_on_race:
            raise ParforRaceError(report)
        return report

    @property
    def racy_reports(self) -> list[LoopRaceReport]:
        """Reports of loops that conflicted without declaring order dependence."""
        return [r for r in self.reports if r.is_racy]
