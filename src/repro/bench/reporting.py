"""Plain-text rendering of experiment results (the paper's tables/figures).

Figures become series tables (one row per x-axis point), tables stay
tables.  Everything renders to monospaced text so ``repro-bench`` output
and the pytest-benchmark logs read like the paper's artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = ["ExperimentResult", "render_table"]


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render rows as an aligned monospaced table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for row_number, row in enumerate(cells):
        line = "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        lines.append(line.rstrip())
        if row_number == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """One reproduced paper artifact (a table or a figure's data)."""

    experiment: str
    paper_artifact: str
    description: str
    headers: list[str]
    rows: list[list[Any]]
    notes: list[str] = field(default_factory=list)
    records: list[Any] = field(default_factory=list)

    def to_text(self) -> str:
        """Render the full artifact: title, table, and notes."""
        parts = [
            f"== {self.experiment} ({self.paper_artifact}) ==",
            self.description,
            "",
            render_table(self.headers, self.rows),
        ]
        if self.notes:
            parts.append("")
            parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)

    def cell(self, row_key: Any, column: str) -> Any:
        """Look up a value by first-column key and column header."""
        column_index = self.headers.index(column)
        for row in self.rows:
            if row[0] == row_key:
                return row[column_index]
        raise KeyError(f"no row with key {row_key!r}")
