"""ASCII rendering of the paper's figures (log-scale bars and curves).

The paper's evaluation figures are grouped bar charts (Figs. 5, 8) and
log-log line plots (Figs. 6, 7, 9, 10).  These renderers turn an
:class:`~repro.bench.reporting.ExperimentResult` into monospaced
approximations of those figures, so ``repro-bench --charts`` output reads
like the paper's artifacts without any plotting dependency.

Values spanning orders of magnitude are placed on a log10 axis; DNF/OOM
cells render as full bars capped with their marker, matching the paper's
"bars touching the upper boundary" convention.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["log_bar_chart", "scaling_chart"]

_BAR_WIDTH = 40


def _parse(cell) -> float | None:
    """Return the numeric value of a table cell, or None for DNF/OOM."""
    try:
        return float(cell)
    except (TypeError, ValueError):
        return None


def log_bar_chart(
    title: str,
    groups: Sequence[str],
    series: dict[str, Sequence],
    unit: str = "s",
) -> str:
    """Render grouped horizontal bars on a log scale.

    ``groups`` are the x-axis categories (datasets); ``series`` maps each
    algorithm name to its per-group values (numbers, or "DNF"/"OOM").
    """
    numeric = [
        v
        for values in series.values()
        for v in (_parse(cell) for cell in values)
        if v is not None and v > 0
    ]
    if not numeric:
        return f"{title}\n(no finished runs)"
    lo = math.log10(min(numeric))
    hi = math.log10(max(numeric))
    span = max(hi - lo, 1e-9)
    label_width = max(len(name) for name in series)

    lines = [title, ""]
    for group_index, group in enumerate(groups):
        lines.append(f"[{group}]")
        for name, values in series.items():
            value = _parse(values[group_index])
            if value is None:
                bar = "#" * _BAR_WIDTH
                suffix = str(values[group_index])
            else:
                filled = 1 + int(
                    (math.log10(max(value, 10 ** lo)) - lo) / span * (_BAR_WIDTH - 1)
                )
                bar = "#" * filled
                suffix = f"{value:.3g} {unit}"
            lines.append(f"  {name.ljust(label_width)} |{bar.ljust(_BAR_WIDTH)}| {suffix}")
        lines.append("")
    lines.append(
        f"(log scale: {10 ** lo:.2g} .. {10 ** hi:.2g} {unit}; full bar = DNF/OOM)"
    )
    return "\n".join(lines)


def scaling_chart(
    title: str,
    x_values: Sequence,
    series: dict[str, Sequence],
    x_label: str = "p",
    unit: str = "s",
) -> str:
    """Render log-scale curves as rows of per-x markers.

    Each series renders one row per x value with a dot positioned on the
    shared log axis — a compact substitute for the paper's log-log plots.
    """
    numeric = [
        v
        for values in series.values()
        for v in (_parse(cell) for cell in values)
        if v is not None and v > 0
    ]
    if not numeric:
        return f"{title}\n(no finished runs)"
    lo = math.log10(min(numeric))
    hi = math.log10(max(numeric))
    span = max(hi - lo, 1e-9)

    lines = [title, ""]
    for name, values in series.items():
        lines.append(f"{name}:")
        for x, cell in zip(x_values, values):
            value = _parse(cell)
            prefix = f"  {x_label}={str(x).ljust(4)}"
            if value is None:
                lines.append(f"{prefix} {str(cell).rjust(_BAR_WIDTH + 2)}")
                continue
            pos = int((math.log10(max(value, 10 ** lo)) - lo) / span * (_BAR_WIDTH - 1))
            axis = [" "] * _BAR_WIDTH
            axis[pos] = "*"
            lines.append(f"{prefix} |{''.join(axis)}| {value:.3g} {unit}")
        lines.append("")
    lines.append(f"(log axis: {10 ** lo:.2g} .. {10 ** hi:.2g} {unit})")
    return "\n".join(lines)


def chart_for(result) -> str | None:
    """Build the appropriate ASCII figure for an ExperimentResult.

    Returns None for the table artifacts (Exp-2/Table 6, Exp-6/Table 7),
    which are already tables.
    """
    experiment = result.experiment
    if experiment in ("Exp-2", "Exp-6"):
        return None
    title = f"{result.experiment} ({result.paper_artifact})"
    if experiment in ("Exp-1", "Exp-5"):
        # Grouped bars: one group per dataset, one bar per algorithm.
        skip = 2 if experiment == "Exp-5" else 1  # dataset [, p] prefix
        algorithms = [h for h in result.headers[skip:] if "/" not in h]
        groups = [row[0] for row in result.rows]
        series = {
            algo: [row[result.headers.index(algo)] for row in result.rows]
            for algo in algorithms
        }
        return log_bar_chart(title, groups, series)
    # Scaling figures: rows are (dataset, x, values...).
    algorithms = result.headers[2:]
    charts = []
    for dataset in dict.fromkeys(row[0] for row in result.rows):
        rows = [row for row in result.rows if row[0] == dataset]
        x_values = [row[1] for row in rows]
        series = {
            algo: [row[result.headers.index(algo)] for row in rows]
            for algo in algorithms
        }
        x_label = "p" if experiment in ("Exp-3", "Exp-7") else "|E|"
        charts.append(
            scaling_chart(f"{title} — {dataset}", x_values, series, x_label=x_label)
        )
    return "\n\n".join(charts)
