"""Experiment configuration mirroring the paper's Section VI setup.

* default thread count p = 32, sweep 1..64 (paper: dual Xeon, 40 cores);
* a simulated-time budget standing in for the paper's 10^5-second cutoff
  (Exp-5): our replicas are ~10^4x smaller than the real graphs, so the
  budget scales to ~1 simulated second;
* a simulated-memory budget standing in for the 255 GB server: the limit
  is scaled per dataset so that "p copies of the replica fit" exactly when
  "p copies of the *real* graph would have fit in 255 GB".  Real-graph
  copy sizes follow the 32/64-bit index rule: a graph with more than 2^31
  edges needs 8-byte edge indices, which is why Twitter (1.96 B edges) is
  the one graph whose per-thread copies overflow at p >= 8 while
  Wikilink_en still fits 64 copies (paper Exp-5/Exp-7).
"""

from __future__ import annotations

from ..datasets.registry import DatasetSpec
from ..runtime.cost import DEFAULT_COST_MODEL, CostModel

__all__ = [
    "DEFAULT_THREADS",
    "THREAD_SWEEP",
    "DDS_TIME_LIMIT",
    "UDS_TIME_LIMIT",
    "PAPER_MEMORY_BYTES",
    "paper_graph_copy_bytes",
    "scaled_memory_limit",
]

DEFAULT_THREADS = 32
THREAD_SWEEP = (1, 2, 4, 8, 16, 32, 64)

# Analogue of the paper's 10^5-second wall-clock cutoff, scaled to the
# replica sizes (see module docstring).
DDS_TIME_LIMIT = 1.25
UDS_TIME_LIMIT = 60.0

PAPER_MEMORY_BYTES = 255e9
_INT32_MAX_EDGES = 2**31


def paper_graph_copy_bytes(spec: DatasetSpec) -> float:
    """Modelled bytes of one in-memory copy of the *real* graph.

    A directed graph stores 2m adjacency slots (out- and in-CSR); once
    that exceeds 2^31 the edge ids/offsets need 8 bytes instead of 4,
    doubling the per-edge footprint — the jump that makes Twitter
    (2 x 1.96 B slots) the one graph whose per-thread copies blow the
    255 GB budget at p >= 8 while Wikilink_en still fits 64 copies.
    """
    bytes_per_edge = 16 if 2 * spec.paper_edges > _INT32_MAX_EDGES else 8
    # 16 bytes/vertex: the out- and in-CSR offset arrays (8 bytes each).
    return spec.paper_vertices * 16 + spec.paper_edges * bytes_per_edge


def scaled_memory_limit(
    spec: DatasetSpec, cost_model: CostModel = DEFAULT_COST_MODEL
) -> float:
    """Simulated-memory budget for one run on this dataset's replica.

    Chosen so that ``p * replica_copy > limit`` exactly when
    ``p * real_copy > 255 GB`` — the per-thread-copy algorithms (PXY, PBD)
    then hit the budget at the same thread counts as in the paper.
    """
    replica_copy = cost_model.graph_bytes(spec.num_vertices, spec.target_edges)
    return PAPER_MEMORY_BYTES * replica_copy / paper_graph_copy_bytes(spec)
