"""Experiment runner: executes one (algorithm, graph, p) cell at a time.

Every cell yields a :class:`RunRecord` with the simulated time (the
paper's y-axis), the wall-clock time of the host execution, the status
(``ok`` / ``DNF`` / ``OOM``, matching the paper's bar-at-the-boundary and
missing-point conventions), and the solution quality.

Cells dispatch through :func:`repro.engine.run`: ``algorithm`` is the
paper's legend name (``"PKMC"``, ``"PXY"``, ...) and its lower-case form
is the solver's registry name, so the experiment tables need no hand-kept
callable maps.  Finished cells carry the engine's
:class:`~repro.engine.report.RunReport` in ``RunRecord.report``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from ..engine import ExecutionContext, resolve_solver
from ..engine import run as engine_run
from ..errors import SimMemoryLimitExceeded, SimTimeLimitExceeded

__all__ = ["RunRecord", "run_cell", "format_status"]


@dataclass
class RunRecord:
    """Outcome of one experiment cell."""

    dataset: str
    algorithm: str
    threads: int
    status: str  # "ok", "DNF" (time budget), or "OOM" (memory budget)
    simulated_seconds: float
    wall_seconds: float
    iterations: int = 0
    density: float = 0.0
    extras: dict[str, Any] = field(default_factory=dict)
    report: Any = None  # RunReport for finished cells, None for DNF/OOM

    @property
    def ok(self) -> bool:
        """True when the run finished within both budgets."""
        return self.status == "ok"


def run_cell(
    dataset: str,
    algorithm: str,
    graph,
    threads: int,
    time_limit: float | None = None,
    memory_limit: float | None = None,
    **options,
) -> RunRecord:
    """Run one experiment cell under the paper's budgets.

    ``algorithm`` is the legend name; ``algorithm.lower()`` must be a
    registered solver of the kind matching ``graph``.  Extra keyword
    ``options`` are forwarded to the solver (e.g. ``epsilon=0.5``).
    """
    spec = resolve_solver(algorithm.lower(), graph)
    ctx = ExecutionContext(
        num_threads=threads,
        time_limit=time_limit,
        memory_limit_bytes=memory_limit,
    )
    started = time.perf_counter()  # repro-lint: disable=R001 (real wall-clock measurement)
    try:
        result = engine_run(spec, graph, ctx, **options)
    except SimTimeLimitExceeded:
        return RunRecord(
            dataset, algorithm, threads, "DNF",
            simulated_seconds=float(time_limit or ctx.simulated_seconds),
            wall_seconds=time.perf_counter() - started,  # repro-lint: disable=R001 (real wall-clock measurement)
        )
    except SimMemoryLimitExceeded:
        return RunRecord(
            dataset, algorithm, threads, "OOM",
            simulated_seconds=0.0,
            wall_seconds=time.perf_counter() - started,  # repro-lint: disable=R001 (real wall-clock measurement)
        )
    wall = time.perf_counter() - started  # repro-lint: disable=R001 (real wall-clock measurement)
    return RunRecord(
        dataset,
        algorithm,
        threads,
        "ok",
        simulated_seconds=result.simulated_seconds,
        wall_seconds=wall,
        iterations=result.iterations,
        density=result.density,
        extras=dict(result.extras),
        report=result.report,
    )


def format_status(record: RunRecord, precision: int = 4) -> str:
    """Render a record's headline value for a table cell."""
    if record.status != "ok":
        return record.status
    return f"{record.simulated_seconds:.{precision}g}"
