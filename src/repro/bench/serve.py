"""Serving-layer traffic-replay harness (``repro-bench serve``).

Replays seeded Zipf-skewed query mixes (:mod:`repro.serve.workload`)
against two executions of the *same* stream:

* **serial baseline** — every query individually through
  :func:`repro.engine.run`, no cache, no coalescing, no batching: what
  the repo did before :mod:`repro.serve` existed (one query per process
  invocation, minus process startup);
* **served** — a :class:`repro.serve.DsdServer` replaying the stream in
  submission waves, with single-flight coalescing, per-graph batching
  and the TTL result cache.

Three mixes are measured — ``hot-graph`` (Zipf-skewed dataset choice,
the headline many-users-one-dataset case and the acceptance gate),
``hot-solver`` and ``uniform`` — reporting sustained queries/sec and
p50/p99 submit-to-completion latency for both sides.  Before any
timing, every served response is checked **bit-identical** to a direct
engine run of the same query (vertices, density, iterations), so the
speedups can never come from answering a different question.

A fourth *overload* scenario drives waves larger than the admission
queue through a server with a tight queue bound and a throttled tenant:
the gate asserts structured shedding (both ``queue_full`` and ``quota``
rejections occur), that the observed queue depth never exceeds the
bound, and that accepted-query p99 latency stays under the structural
bound ``max_queue_depth x max_single_solve`` — the "no unbounded queue
growth" half of the serving story.

As in the other harnesses, the committed ``BENCH_serve.json`` gate
compares speedup *ratios* (and structural booleans), never raw seconds,
so a slower CI host cannot fail spuriously.
"""

from __future__ import annotations

import statistics
import time

import numpy as np

from ..engine import ExecutionContext
from ..engine import run as engine_run
from ..graph import chung_lu_undirected
from ..serve import DsdServer, TenantQuotas, build_query_mix
from ..serve.workload import QUERY_MIXES
from .config import DEFAULT_THREADS

__all__ = [
    "run_serve_bench",
    "check_regression",
    "render_serve_report",
    "SERVE_THROUGHPUT_FLOOR",
    "HOT_GRAPH_REUSE_FLOOR",
]

#: Acceptance floor (ISSUE 8): sustained served throughput vs the
#: unbatched/uncached serial baseline on the hot-graph Zipf mix.
SERVE_THROUGHPUT_FLOOR = 5.0
#: Fraction of hot-graph queries that must be answered without a solver
#: run (cache hit or coalesced onto a flight) — the reuse the mix exists
#: to exploit; reported per mix either way.
HOT_GRAPH_REUSE_FLOOR = 0.5
#: Relative regression tolerance for baseline-vs-current ratios.
DEFAULT_TOLERANCE = 0.30

#: Replay graphs, hottest first (rank 0 of the Zipf draw).
_BENCH_GRAPHS = (
    ("hot", 1_500, 6_000, 11),
    ("warm", 2_500, 10_000, 12),
    ("cold", 4_000, 16_000, 13),
)
#: Replay solvers, hottest first.
_BENCH_SOLVERS = ("pkmc", "charikar", "local")


def _percentile(latencies: list[float], q: float) -> float:
    """The ``q``-th percentile of ``latencies`` in seconds."""
    return float(np.percentile(np.asarray(latencies, dtype=np.float64), q))


def _build_graphs() -> dict:
    return {
        name: chung_lu_undirected(n, m, seed=seed)
        for name, n, m, seed in _BENCH_GRAPHS
    }


def _direct_reference(graphs: dict, threads: int) -> dict:
    """One uncached engine run per (dataset, solver): the ground truth."""
    reference = {}
    for dataset, graph in graphs.items():
        for solver in _BENCH_SOLVERS:
            reference[dataset, solver] = engine_run(
                solver, graph, ExecutionContext(num_threads=threads)
            )
    return reference


def _check_bit_identical(response, reference) -> None:
    expected = reference[response.query.dataset, response.query.solver]
    got = response.result
    if not np.array_equal(got.vertices, expected.vertices):
        raise AssertionError(
            f"served vertices differ from direct engine.run for "
            f"{response.query.dataset}/{response.query.solver}"
        )
    if got.density != expected.density or got.iterations != expected.iterations:  # repro-lint: disable=R004 (bit-identity is the contract under test)
        raise AssertionError(
            f"served result drifted from direct engine.run for "
            f"{response.query.dataset}/{response.query.solver}"
        )


def _replay_serial(graphs: dict, queries: list, wave: int, threads: int) -> dict:
    """The unbatched/uncached baseline: one engine run per query."""
    latencies: list[float] = []
    started = time.perf_counter()  # repro-lint: disable=R001 (real wall-clock measurement)
    for offset in range(0, len(queries), wave):
        wave_started = time.perf_counter()  # repro-lint: disable=R001 (real wall-clock measurement)
        for query in queries[offset:offset + wave]:
            engine_run(
                query.solver,
                graphs[query.dataset],
                ExecutionContext(num_threads=threads),
            )
            latencies.append(time.perf_counter() - wave_started)  # repro-lint: disable=R001 (real wall-clock measurement)
    total = time.perf_counter() - started  # repro-lint: disable=R001 (real wall-clock measurement)
    return {
        "total_s": total,
        "qps": len(queries) / total if total else float("inf"),
        "p50_s": _percentile(latencies, 50),
        "p99_s": _percentile(latencies, 99),
    }


def _replay_served(
    graphs: dict, queries: list, wave: int, threads: int, reference: dict
) -> dict:
    """Replay through a DsdServer in submission waves; verify each response."""
    server = DsdServer(
        graphs=graphs,
        num_workers=2,
        max_queue_depth=wave,
        cache_entries=256,
        num_threads=threads,
    )
    latencies: list[float] = []
    started = time.perf_counter()  # repro-lint: disable=R001 (real wall-clock measurement)
    for offset in range(0, len(queries), wave):
        for response in server.serve(queries[offset:offset + wave]):
            if not response.ok:
                raise AssertionError("mix replay must not shed queries")
            _check_bit_identical(response, reference)
            latencies.append(response.latency_s)
    total = time.perf_counter() - started  # repro-lint: disable=R001 (real wall-clock measurement)
    stats = server.stats
    answered_without_run = stats.cache_hits + stats.coalesced_queries
    return {
        "total_s": total,
        "qps": len(queries) / total if total else float("inf"),
        "p50_s": _percentile(latencies, 50),
        "p99_s": _percentile(latencies, 99),
        "solver_runs": stats.solver_runs,
        "cache_hits": stats.cache_hits,
        "coalesced": stats.coalesced_queries,
        "batches": stats.batches,
        "reuse_rate": answered_without_run / len(queries) if queries else 0.0,
    }


def _overload_scenario(
    graphs: dict, threads: int, max_solve_s: float, seed: int
) -> dict:
    """Overload an admission-controlled server; measure shedding and p99."""
    max_queue_depth = 24
    waves, wave_size = 3, 80
    server = DsdServer(
        graphs=graphs,
        num_workers=2,
        max_queue_depth=max_queue_depth,
        cache_entries=256,
        num_threads=threads,
        # The throttled tenant's bucket barely refills over the bench's
        # seconds-long lifetime: burst admits 5 queries, then quota
        # rejections dominate its stream deterministically.
        quotas=TenantQuotas(
            rate=1000.0, burst=1000.0, overrides={"throttled": (0.001, 5.0)}
        ),
    )
    queries = build_query_mix(
        "hot-graph",
        datasets=list(graphs),
        solvers=list(_BENCH_SOLVERS),
        num_queries=waves * wave_size,
        seed=seed + 7,
        tenants=("free", "throttled"),
    )
    latencies: list[float] = []
    for offset in range(0, len(queries), wave_size):
        for response in server.serve(queries[offset:offset + wave_size]):
            if response.ok:
                latencies.append(response.latency_s)
    stats = server.stats
    p99 = _percentile(latencies, 99)
    p99_bound = max_queue_depth * max_solve_s
    return {
        "submitted": stats.submitted,
        "accepted": stats.accepted,
        "rejected_queue_full": stats.rejected_queue_full,
        "rejected_quota": stats.rejected_quota,
        "peak_queue_depth": stats.peak_queue_depth,
        "max_queue_depth": max_queue_depth,
        "p99_s": p99,
        "max_solve_s": max_solve_s,
        "p99_bound_s": p99_bound,
        "p99_bounded": bool(p99 <= p99_bound),
    }


def run_serve_bench(
    num_queries: int = 120,
    wave: int = 40,
    threads: int = DEFAULT_THREADS,
    seed: int = 0,
) -> dict:
    """Run the serving benches; return the ``BENCH_serve.json`` payload."""
    graphs = _build_graphs()
    reference = _direct_reference(graphs, threads)

    # Largest single-query cost observed directly: anchors the overload
    # scenario's structural latency bound in this host's own speed.
    max_solve_s = 0.0
    for key in reference:
        sample = _median_single_solve(graphs, key, threads)
        max_solve_s = max(max_solve_s, sample)

    mixes = {}
    for mix in QUERY_MIXES:
        queries = build_query_mix(
            mix,
            datasets=list(graphs),
            solvers=list(_BENCH_SOLVERS),
            num_queries=num_queries,
            seed=seed,
        )
        serial = _replay_serial(graphs, queries, wave, threads)
        served = _replay_served(graphs, queries, wave, threads, reference)
        mixes[mix] = {
            "num_queries": num_queries,
            "serial": serial,
            "served": served,
            "throughput_speedup": served["qps"] / serial["qps"]
            if serial["qps"]
            else float("inf"),
            "p99_speedup": serial["p99_s"] / served["p99_s"]
            if served["p99_s"]
            else float("inf"),
        }

    return {
        "schema": 1,
        "workload": {
            "graphs": {
                name: {"num_vertices": n, "num_edges_requested": m, "seed": s}
                for name, n, m, s in _BENCH_GRAPHS
            },
            "solvers": list(_BENCH_SOLVERS),
            "num_queries": num_queries,
            "wave": wave,
            "threads": threads,
            "seed": seed,
        },
        "mixes": mixes,
        "overload": _overload_scenario(graphs, threads, max_solve_s, seed),
    }


def _median_single_solve(graphs: dict, key: tuple, threads: int) -> float:
    """Median uncached wall-clock seconds of one (dataset, solver) run."""
    dataset, solver = key
    samples = []
    for _ in range(3):
        started = time.perf_counter()  # repro-lint: disable=R001 (real wall-clock measurement)
        engine_run(solver, graphs[dataset], ExecutionContext(num_threads=threads))
        samples.append(time.perf_counter() - started)  # repro-lint: disable=R001 (real wall-clock measurement)
    return statistics.median(samples)


def check_regression(
    current: dict, baseline: dict, tolerance: float = DEFAULT_TOLERANCE
) -> list[str]:
    """Compare a fresh payload against the committed baseline.

    Absolute floors first (hot-graph throughput and reuse rate, the
    overload scenario's structural guarantees), then baseline-relative
    throughput ratios with ``tolerance`` headroom.
    """
    failures: list[str] = []
    bound = 1.0 + tolerance

    hot = current["mixes"]["hot-graph"]
    if hot["throughput_speedup"] < SERVE_THROUGHPUT_FLOOR:
        failures.append(
            f"hot-graph throughput speedup {hot['throughput_speedup']:.2f}x "
            f"is below the {SERVE_THROUGHPUT_FLOOR:.1f}x acceptance floor"
        )
    if hot["served"]["reuse_rate"] < HOT_GRAPH_REUSE_FLOOR:
        failures.append(
            f"hot-graph reuse rate {hot['served']['reuse_rate']:.2f} "
            f"(cache hits + coalesced) is below the "
            f"{HOT_GRAPH_REUSE_FLOOR:.2f} floor"
        )
    for mix in QUERY_MIXES:
        cur = current["mixes"][mix]["throughput_speedup"]
        base = baseline["mixes"][mix]["throughput_speedup"]
        if cur < base / bound:
            failures.append(
                f"{mix} throughput speedup regressed: {cur:.2f}x vs "
                f"baseline {base:.2f}x (tolerance {tolerance:.0%})"
            )

    overload = current["overload"]
    if overload["rejected_queue_full"] <= 0 or overload["rejected_quota"] <= 0:
        failures.append(
            "overload scenario must shed structurally (saw "
            f"{overload['rejected_queue_full']} queue-full and "
            f"{overload['rejected_quota']} quota rejections)"
        )
    if overload["peak_queue_depth"] > overload["max_queue_depth"]:
        failures.append(
            f"queue grew past its bound: peak {overload['peak_queue_depth']} "
            f"vs max {overload['max_queue_depth']}"
        )
    if not overload["p99_bounded"]:
        failures.append(
            f"overload p99 latency {overload['p99_s']:.3f}s exceeded the "
            f"structural bound {overload['p99_bound_s']:.3f}s "
            "(max_queue_depth x max single solve)"
        )
    return failures


def render_serve_report(payload: dict) -> str:
    """Readable summary of a serve-bench payload."""
    workload = payload["workload"]
    lines = [
        "serve bench "
        f"({len(workload['graphs'])} graphs x {len(workload['solvers'])} "
        f"solvers, {workload['num_queries']} queries/mix, "
        f"waves of {workload['wave']})"
    ]
    for mix, cell in payload["mixes"].items():
        serial, served = cell["serial"], cell["served"]
        lines.append(
            f"  {mix:<10}: serial {serial['qps']:7.1f} q/s | served "
            f"{served['qps']:8.1f} q/s | {cell['throughput_speedup']:6.2f}x | "
            f"p99 {serial['p99_s'] * 1e3:7.1f} -> {served['p99_s'] * 1e3:6.1f} ms | "
            f"reuse {served['reuse_rate']:.0%}"
        )
    overload = payload["overload"]
    lines.append(
        f"  overload  : {overload['accepted']}/{overload['submitted']} admitted "
        f"(queue_full {overload['rejected_queue_full']}, quota "
        f"{overload['rejected_quota']}) | peak depth "
        f"{overload['peak_queue_depth']}/{overload['max_queue_depth']} | "
        f"p99 {overload['p99_s'] * 1e3:.1f} ms "
        f"(bound {overload['p99_bound_s'] * 1e3:.1f} ms)"
    )
    return "\n".join(lines)
