"""Array-backend bench-regression harness (``repro-bench backends``).

Measures the :mod:`repro.backends` dispatch layer on the kernel hot
path: a full Jacobi h-index convergence (degrees to fixed point, the
inner loop every sweep-based solver spends its time in) is timed per
backend on three Chung–Lu replicas, and the **multiproc** backend must
beat the single-threaded numpy reference on the largest graph.

Two wall-clock views are recorded for the multiproc backend, and the
payload always carries both:

* ``elapsed_s`` — true parent-side wall clock of the convergence loop.
  On a host with fewer cores than workers the processes time-slice one
  core, so this number *understates* the backend (every worker's CPU
  second still burns wall time).
* ``critical_path_s`` — elapsed with worker busy time re-laid onto
  concurrent cores: per dispatched sweep the pool records
  ``max(max_busy, elapsed - sum(busy) + max_busy)`` from the workers'
  own :func:`time.process_time` measurements.  This is the makespan the
  same static partition yields once each worker owns a core, and it is
  what the acceptance gate below checks.

Equivalence is asserted *inside* the bench: the converged h-vectors and
sweep counts must be bit-identical across backends (dtype included), and
one engine run per backend must report identical simulated seconds —
the cost model is a property of the algorithm, never of the executor.

``run_backend_bench`` returns the ``BENCH_backends.json`` payload;
``check_regression`` gates on the largest graph's critical-path speedup
(floor :data:`MULTIPROC_SPEEDUP_FLOOR` at >= 2 workers) plus
baseline-relative ratios, never raw seconds, so a slower CI host cannot
fail the gate spuriously.
"""

from __future__ import annotations

import os
import statistics
import time

import numpy as np

from ..backends import available_backends, use_backend
from ..backends.multiproc import MultiprocBackend
from ..backends.numpy_backend import NumpyBackend
from ..engine import ExecutionContext
from ..engine import run as engine_run
from ..graph import chung_lu_undirected

__all__ = [
    "run_backend_bench",
    "check_regression",
    "render_backend_report",
    "MULTIPROC_SPEEDUP_FLOOR",
    "BENCH_WORKERS",
]

#: Acceptance floor: multiproc critical-path speedup over numpy on the
#: largest bench graph.  ISSUE.md requires >= 1.5x at >= 2 workers.
MULTIPROC_SPEEDUP_FLOOR = 1.5

#: Worker-pool size the bench runs multiproc with.  Four quarter-graph
#: tasks per sweep shorten the critical path well past the floor on the
#: 360k-edge replica, and the gate condition only requires >= 2.
BENCH_WORKERS = 4

#: Relative regression tolerance of the baseline-comparison gate.
#: Wider than the single-process harnesses' 25%: the multiproc numbers
#: time-slice a small host's cores, so run-to-run speedup variance is
#: higher — the absolute :data:`MULTIPROC_SPEEDUP_FLOOR` still owns the
#: hard requirement.
DEFAULT_TOLERANCE = 0.35

#: (name, vertices, edges, chung-lu seed) per workload, smallest first.
#: The *last* entry is the gated one.
WORKLOADS = (
    ("small", 4_000, 20_000, 7),
    ("medium", 20_000, 100_000, 9),
    ("large", 60_000, 360_000, 11),
)


def _converge(backend, graph) -> tuple[np.ndarray, int]:
    """Jacobi-iterate h from the degrees to the fixed point on ``backend``."""
    h = graph.degrees().astype(np.int64)
    sweeps = 0
    while True:
        new_h = backend.sweep_values(graph, h)
        sweeps += 1
        if np.array_equal(new_h, h):
            return h, sweeps
        h = new_h


def _time_numpy(backend, graph, repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()  # repro-lint: disable=R001 (real wall-clock measurement)
        _converge(backend, graph)
        samples.append(time.perf_counter() - started)  # repro-lint: disable=R001 (real wall-clock measurement)
    return statistics.median(samples)


def _time_multiproc(backend: MultiprocBackend, graph, repeats: int) -> dict:
    """Median elapsed / critical-path seconds of one convergence run.

    One untimed warm-up run first: it spawns the pool, publishes the
    graph into shared memory and fills the per-range scratch caches —
    one-time costs the steady-state solvers never pay per sweep.
    """
    _converge(backend, graph)
    elapsed_samples, critical_samples, snapshot = [], [], None
    for _ in range(repeats):
        backend.reset_perf()
        started = time.perf_counter()  # repro-lint: disable=R001 (real wall-clock measurement)
        _converge(backend, graph)
        elapsed = time.perf_counter() - started  # repro-lint: disable=R001 (real wall-clock measurement)
        snapshot = backend.perf_snapshot()
        elapsed_samples.append(elapsed)
        # Whole-run critical path: parent-side time outside the dispatch
        # is serial either way, so swap the dispatched elapsed for the
        # dispatched critical path and keep the rest.
        critical_samples.append(
            elapsed - snapshot["elapsed_s"] + snapshot["critical_s"]
        )
    return {
        "elapsed_s": statistics.median(elapsed_samples),
        "critical_path_s": statistics.median(critical_samples),
        "dispatched_calls": snapshot["dispatched_calls"],
        "inline_calls": snapshot["inline_calls"],
        "tasks": snapshot["tasks"],
    }


def _simulated_invariance(backends: list[str]) -> dict:
    """Simulated seconds of one pkmc run per backend — must all agree."""
    graph = chung_lu_undirected(2_000, 10_000, seed=3)
    seconds = {}
    for name in backends:
        with use_backend(name):
            ctx = ExecutionContext(num_threads=8)
            engine_run("pkmc", graph, ctx)
            seconds[name] = ctx.simulated_seconds
    values = set(seconds.values())
    if len(values) != 1:
        raise AssertionError(
            f"simulated seconds differ across backends: {seconds}"
        )
    return {"per_backend": seconds, "invariant": True}


def run_backend_bench(
    repeats: int = 5,
    workers: int = BENCH_WORKERS,
    workloads: tuple = WORKLOADS,
) -> dict:
    """Run the backend benches; return the ``BENCH_backends.json`` payload.

    ``workloads`` exists so tests can exercise the full harness on tiny
    graphs; the committed baseline always uses the module default.
    """
    numpy_backend = NumpyBackend()
    multiproc = MultiprocBackend(workers=workers)
    results = []
    try:
        for name, num_vertices, num_edges, seed in workloads:
            graph = chung_lu_undirected(num_vertices, num_edges, seed=seed)

            # Equivalence first, timing second: the numbers below are
            # meaningless unless the backends agree bit for bit.
            h_numpy, sweeps_numpy = _converge(numpy_backend, graph)
            h_multi, sweeps_multi = _converge(multiproc, graph)
            if h_numpy.dtype != h_multi.dtype or not np.array_equal(h_numpy, h_multi):
                raise AssertionError(
                    f"{name}: multiproc fixed point differs from numpy"
                )
            if sweeps_numpy != sweeps_multi:
                raise AssertionError(
                    f"{name}: sweep counts differ "
                    f"(numpy {sweeps_numpy}, multiproc {sweeps_multi})"
                )

            numpy_s = _time_numpy(numpy_backend, graph, repeats)
            multi = _time_multiproc(multiproc, graph, repeats)
            results.append({
                "name": name,
                "num_vertices": num_vertices,
                "num_edges": graph.num_edges,
                "seed": seed,
                "sweeps": sweeps_numpy,
                "numpy_s": numpy_s,
                "multiproc": {
                    **multi,
                    "speedup_elapsed": numpy_s / multi["elapsed_s"],
                    "speedup_critical": numpy_s / multi["critical_path_s"],
                },
                "equivalent": True,
            })
    finally:
        multiproc.close()

    return {
        "schema": 1,
        "host": {
            "cpu_count": os.cpu_count(),
            "workers": workers,
            "repeats": repeats,
        },
        "backends_available": available_backends(),
        "workloads": results,
        "simulated_seconds": _simulated_invariance(["numpy", "multiproc"]),
    }


def check_regression(
    current: dict, baseline: dict, tolerance: float = DEFAULT_TOLERANCE
) -> list[str]:
    """Compare a fresh payload against the committed baseline.

    Returns a list of human-readable failures (empty means the gate
    passes).  Three families of checks:

    * the acceptance floor — on the largest workload, multiproc at
      >= 2 workers must beat numpy by :data:`MULTIPROC_SPEEDUP_FLOOR`
      on the critical-path clock;
    * equivalence and simulated-seconds invariance flags must hold;
    * baseline-relative speedup *ratios* (host-robust) must not regress
      beyond ``tolerance``.
    """
    failures: list[str] = []
    bound = 1.0 + tolerance

    workers = current["host"]["workers"]
    if workers < 2:
        failures.append(
            f"bench ran multiproc with {workers} worker(s); the gate "
            "requires >= 2"
        )
    largest = current["workloads"][-1]
    speedup = largest["multiproc"]["speedup_critical"]
    if speedup < MULTIPROC_SPEEDUP_FLOOR:
        failures.append(
            f"{largest['name']}: multiproc critical-path speedup "
            f"{speedup:.2f}x is below the {MULTIPROC_SPEEDUP_FLOOR:.1f}x "
            "acceptance floor"
        )

    for workload in current["workloads"]:
        if not workload.get("equivalent"):
            failures.append(
                f"{workload['name']}: backends did not produce "
                "bit-identical results"
            )
    if not current["simulated_seconds"].get("invariant"):
        failures.append("simulated seconds are not backend-invariant")

    # Baseline-relative ratio check on the gated workload only: the
    # small/medium entries are informational (tens of milliseconds of
    # numpy work, where one CPU-frequency excursion swings the ratio
    # past any reasonable tolerance), and the floor above already owns
    # the absolute requirement.
    base_largest = baseline["workloads"][-1]
    if base_largest["name"] != largest["name"]:
        failures.append(
            f"gated workload changed: current {largest['name']!r} vs "
            f"baseline {base_largest['name']!r}"
        )
    else:
        base_speed = base_largest["multiproc"]["speedup_critical"]
        if speedup < base_speed / bound:
            failures.append(
                f"{largest['name']}: multiproc critical-path speedup "
                f"regressed: {speedup:.2f}x vs baseline {base_speed:.2f}x "
                f"(tolerance {tolerance:.0%})"
            )
    return failures


def render_backend_report(payload: dict) -> str:
    """Readable summary of a backend-bench payload."""
    host = payload["host"]
    available = ", ".join(
        name for name, ok in sorted(payload["backends_available"].items()) if ok
    )
    lines = [
        f"backend bench (multiproc workers={host['workers']}, "
        f"host cpus={host['cpu_count']}, available: {available})",
    ]
    for workload in payload["workloads"]:
        multi = workload["multiproc"]
        lines.append(
            f"  {workload['name']:<7}: {workload['num_vertices']:>6} v / "
            f"{workload['num_edges']:>6} e | numpy "
            f"{workload['numpy_s'] * 1e3:8.1f} ms | multiproc "
            f"{multi['elapsed_s'] * 1e3:8.1f} ms elapsed, "
            f"{multi['critical_path_s'] * 1e3:8.1f} ms critical | "
            f"{multi['speedup_critical']:5.2f}x critical"
        )
    sim = payload["simulated_seconds"]["per_backend"]
    pairs = " | ".join(f"{name} {value:.4g}s" for name, value in sorted(sim.items()))
    lines.append(f"  simulated seconds (pkmc, backend-invariant): {pairs}")
    return "\n".join(lines)
