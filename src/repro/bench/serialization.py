"""JSON persistence for experiment artifacts.

``repro-bench --output DIR`` writes human-readable text tables; with
``--json`` it also writes machine-readable JSON so downstream tooling
(plotters, regression dashboards) can consume the reproduction results
without re-running the experiments.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .harness import RunRecord
from .reporting import ExperimentResult

__all__ = [
    "result_to_dict",
    "result_from_dict",
    "save_json",
    "load_json",
    "record_to_dict",
]


def record_to_dict(record: RunRecord) -> dict[str, Any]:
    """Flatten one RunRecord (extras are kept only if JSON-serialisable)."""
    extras = {}
    for key, value in record.extras.items():
        try:
            json.dumps(value)
        except TypeError:
            continue
        extras[key] = value
    return {
        "dataset": record.dataset,
        "algorithm": record.algorithm,
        "threads": record.threads,
        "status": record.status,
        "simulated_seconds": record.simulated_seconds,
        "wall_seconds": record.wall_seconds,
        "iterations": record.iterations,
        "density": record.density,
        "extras": extras,
    }


def result_to_dict(result: ExperimentResult) -> dict[str, Any]:
    """Serialise an ExperimentResult (including per-cell run records)."""
    return {
        "experiment": result.experiment,
        "paper_artifact": result.paper_artifact,
        "description": result.description,
        "headers": list(result.headers),
        "rows": [list(row) for row in result.rows],
        "notes": list(result.notes),
        "records": [
            record_to_dict(record)
            for record in result.records
            if isinstance(record, RunRecord)
        ],
    }


def result_from_dict(data: dict[str, Any]) -> ExperimentResult:
    """Rebuild an ExperimentResult from :func:`result_to_dict` output.

    Records come back as :class:`RunRecord` instances (their extras as
    plain dicts).
    """
    records = [
        RunRecord(
            dataset=entry["dataset"],
            algorithm=entry["algorithm"],
            threads=entry["threads"],
            status=entry["status"],
            simulated_seconds=entry["simulated_seconds"],
            wall_seconds=entry["wall_seconds"],
            iterations=entry.get("iterations", 0),
            density=entry.get("density", 0.0),
            extras=entry.get("extras", {}),
        )
        for entry in data.get("records", [])
    ]
    return ExperimentResult(
        experiment=data["experiment"],
        paper_artifact=data["paper_artifact"],
        description=data["description"],
        headers=list(data["headers"]),
        rows=[list(row) for row in data["rows"]],
        notes=list(data.get("notes", [])),
        records=records,
    )


def save_json(result: ExperimentResult, path: str | Path) -> None:
    """Write a result to ``path`` as indented JSON."""
    Path(path).write_text(
        json.dumps(result_to_dict(result), indent=2) + "\n", encoding="utf-8"
    )


def load_json(path: str | Path) -> ExperimentResult:
    """Read a result previously written by :func:`save_json`."""
    return result_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
