"""Sharded-engine bench-regression harness (``repro-bench shard``).

Runs ``pkmc-bsp`` and ``pwc-bsp`` twice each on the 360k-edge bench
replicas — once on the monolithic in-memory CSR, once out-of-core
through a budgeted :class:`~repro.store.shard.ShardedGraph` — and gates
three properties the sharded substrate promises:

* **bit identity** — densities, decompositions (core / S,T sets) and
  superstep counts must match the monolithic run exactly; sharding is a
  storage layout, never an algorithm change.  (Simulated seconds are
  *not* required to match: the monolithic accountant round-robins
  vertex ownership across workers while the sharded one charges per
  contiguous shard, so the two cost models partition work differently.
  The sharded clock is still deterministic and pinned to the baseline.)
* **bounded residency** — the facade's ``peak_resident_bytes`` must stay
  under :data:`MEMORY_BUDGET_BYTES` while the monolithic CSR of the same
  graph *exceeds* that budget, proving the run genuinely worked
  out-of-core rather than fitting trivially;
* **separated cost accounting** — the BSP accountant must attribute
  strictly positive time to both compute and boundary exchange, and the
  two plus overhead must reconstruct the simulated total.

Every gated number is deterministic (seeded graphs, cost model, eviction
order), so ``check_regression`` pins them exactly against the committed
``BENCH_shard.json`` — no tolerances, any drift is a real behaviour
change.
"""

from __future__ import annotations

import tempfile

import numpy as np

from ..distributed import distributed_pkmc, distributed_pwc
from ..graph.generators import chung_lu_directed, chung_lu_undirected
from ..store.shard import load_sharded, save_sharded

__all__ = [
    "run_shard_bench",
    "check_regression",
    "render_shard_report",
    "SHARD_COUNT",
    "MEMORY_BUDGET_BYTES",
]

#: Shards per bench graph; matches the ``repro-dsd --shards`` default.
SHARD_COUNT = 8

#: Resident-bytes cap (2.5 MiB).  Sits between the sharded peak
#: (~2.06 MB measured) and the monolithic undirected CSR (~3.12 MB bare;
#: the payload's ``monolithic_bytes`` is measured after a solver run, so
#: it also counts solver-warmed scratch), proving the monolithic layout
#: cannot fit where the facade does.  Deliberately forces eviction
#: churn: with ~1 MB shards only two stay resident, so ``shard_loads``
#: far exceeds ``num_shards``.
MEMORY_BUDGET_BYTES = 2_621_440

#: (kind, vertices, edges, chung-lu seed).  The undirected workload is
#: the backend bench's gated "large" replica; the directed one reuses
#: its size with a different seed stream.
WORKLOADS = (
    ("undirected", 60_000, 360_000, 11),
    ("directed", 60_000, 360_000, 13),
)

#: Payload keys whose values must match the baseline bit for bit.
#: Solver-specific decomposition keys (``k_star`` vs ``w_star`` etc.)
#: are pinned too when present in both payloads.
_PINNED_SOLVER_KEYS = (
    "density",
    "simulated_seconds",
    "supersteps",
    "boundary_messages_bytes",
    "shard_loads",
    "evictions",
    "peak_resident_bytes",
    "monolithic_bytes",
)

#: Decomposition keys pinned when the solver block carries them.
_PINNED_OPTIONAL_KEYS = (
    "k_star",
    "core_size",
    "w_star",
    "x",
    "y",
    "s_size",
    "t_size",
    "levels",
)


def _memory_block(graph, sharded, budget: int) -> dict:
    """Residency gate numbers for one solver run on ``sharded``."""
    stats = sharded.stats()
    peak = int(stats["peak_resident_bytes"])
    monolithic_bytes = int(graph.memory_bytes())
    return {
        "monolithic_bytes": monolithic_bytes,
        "budget_bytes": budget,
        "peak_resident_bytes": peak,
        "shard_loads": int(stats["shard_loads"]),
        "evictions": int(stats["evictions"]),
        "under_budget": peak <= budget,
        "monolithic_exceeds_budget": monolithic_bytes > budget,
    }


def _cost_block(result) -> dict:
    """Superstep cost split for one sharded run, with the split gate."""
    extras = result.extras
    compute = float(extras["compute_seconds"])
    exchange = float(extras["exchange_seconds"])
    overhead = float(extras["overhead_seconds"])
    total = float(result.simulated_seconds)
    return {
        "compute_seconds": compute,
        "exchange_seconds": exchange,
        "overhead_seconds": overhead,
        "boundary_messages_bytes": int(
            extras["shard_stats"]["boundary_messages_bytes"]
        ),
        "cross_edge_fraction": float(extras["cross_edge_fraction"]),
        "separated": (
            compute > 0.0
            and exchange > 0.0
            and abs(compute + exchange + overhead - total) <= 1e-9 * total
        ),
    }


def _bench_pkmc(shards: int, budget: int, tmp: str) -> dict:
    """PKMC-BSP monolithic-vs-sharded identity + residency + cost."""
    _, num_vertices, num_edges, seed = WORKLOADS[0]
    graph = chung_lu_undirected(num_vertices, num_edges, seed=seed)
    save_sharded(graph, tmp, shards=shards)
    sharded = load_sharded(tmp, memory_budget_bytes=budget)

    mono = distributed_pkmc(graph)
    shard = distributed_pkmc(sharded)
    identical = (
        mono.density == shard.density  # repro-lint: disable=R004 (bit-identity is the gate)
        and mono.k_star == shard.k_star
        and mono.iterations == shard.iterations
        and np.array_equal(mono.vertices, shard.vertices)
        and mono.extras["history"] == shard.extras["history"]
        and mono.extras["supersteps"] == shard.extras["supersteps"]
    )
    return {
        "workload": {
            "num_vertices": num_vertices,
            "num_edges": graph.num_edges,
            "seed": seed,
        },
        "density": shard.density,
        "k_star": int(shard.k_star),
        "core_size": int(shard.num_vertices),
        "supersteps": int(shard.extras["supersteps"]),
        "simulated_seconds": float(shard.simulated_seconds),
        "identical": identical,
        "memory": _memory_block(graph, sharded, budget),
        "cost": _cost_block(shard),
    }


def _bench_pwc(shards: int, budget: int, tmp: str) -> dict:
    """PWC-BSP monolithic-vs-sharded identity + residency + cost."""
    _, num_vertices, num_edges, seed = WORKLOADS[1]
    graph = chung_lu_directed(num_vertices, num_edges, seed=seed)
    save_sharded(graph, tmp, shards=shards)
    sharded = load_sharded(tmp, memory_budget_bytes=budget)

    mono = distributed_pwc(graph)
    shard = distributed_pwc(sharded)
    identical = (
        mono.density == shard.density  # repro-lint: disable=R004 (bit-identity is the gate)
        and mono.w_star == shard.w_star
        and (mono.x, mono.y) == (shard.x, shard.y)
        and np.array_equal(mono.s, shard.s)
        and np.array_equal(mono.t, shard.t)
        and mono.iterations == shard.iterations
        and mono.extras["supersteps"] == shard.extras["supersteps"]
    )
    return {
        "workload": {
            "num_vertices": num_vertices,
            "num_edges": graph.num_edges,
            "seed": seed,
        },
        "density": shard.density,
        "w_star": int(shard.w_star),
        "x": int(shard.x),
        "y": int(shard.y),
        "s_size": int(shard.s_size),
        "t_size": int(shard.t_size),
        "levels": int(shard.iterations),
        "supersteps": int(shard.extras["supersteps"]),
        "simulated_seconds": float(shard.simulated_seconds),
        "identical": identical,
        "memory": _memory_block(graph, sharded, budget),
        "cost": _cost_block(shard),
    }


def run_shard_bench(
    shards: int = SHARD_COUNT, budget: int = MEMORY_BUDGET_BYTES
) -> dict:
    """Run both gates; return the ``BENCH_shard.json`` payload.

    ``shards`` / ``budget`` exist so tests can exercise the harness on
    other configurations; the committed baseline always uses the module
    defaults.
    """
    with tempfile.TemporaryDirectory(prefix="repro-shard-bench-") as tmp_u:
        pkmc = _bench_pkmc(shards, budget, tmp_u)
    with tempfile.TemporaryDirectory(prefix="repro-shard-bench-") as tmp_d:
        pwc = _bench_pwc(shards, budget, tmp_d)
    return {
        "schema": 1,
        "config": {"shards": shards, "memory_budget_bytes": budget},
        "pkmc": pkmc,
        "pwc": pwc,
    }


def _check_solver(name: str, fresh: dict, base: dict) -> list:
    """Gate one solver block and pin its counters to the baseline."""
    failures = []
    if not fresh["identical"]:
        failures.append(
            f"{name}: sharded run is not bit-identical to monolithic"
        )
    memory = fresh["memory"]
    if not memory["under_budget"]:
        failures.append(
            f"{name}: peak resident {memory['peak_resident_bytes']} B "
            f"exceeds the {memory['budget_bytes']} B budget"
        )
    if not memory["monolithic_exceeds_budget"]:
        failures.append(
            f"{name}: monolithic CSR ({memory['monolithic_bytes']} B) fits "
            f"the {memory['budget_bytes']} B budget — the out-of-core gate "
            "proves nothing"
        )
    if not fresh["cost"]["separated"]:
        failures.append(
            f"{name}: superstep accounting does not separate compute from "
            "boundary exchange"
        )
    pinned = list(_PINNED_SOLVER_KEYS)
    pinned += [k for k in _PINNED_OPTIONAL_KEYS if k in fresh and k in base]
    for key in pinned:
        fresh_value = _dig(fresh, key)
        base_value = _dig(base, key)
        if fresh_value != base_value:
            failures.append(
                f"{name}: {key} drifted from baseline "
                f"({base_value!r} -> {fresh_value!r})"
            )
    return failures


def _dig(block: dict, key: str):
    """Fetch a pinned key from the solver block or its sub-blocks."""
    for scope in (block, block["memory"], block["cost"]):
        if key in scope:
            return scope[key]
    raise KeyError(key)


def check_regression(current: dict, baseline: dict) -> list:
    """Compare a fresh payload against the committed baseline.

    Returns a list of human-readable failures (empty means the gate
    passes).  All pinned values are deterministic, so the comparison is
    exact — there is no timing in this payload and hence no tolerance.
    """
    failures = []
    if current["config"] != baseline["config"]:
        failures.append(
            f"bench configuration changed: {current['config']} vs "
            f"baseline {baseline['config']}"
        )
    failures.extend(_check_solver("pkmc-bsp", current["pkmc"], baseline["pkmc"]))
    failures.extend(_check_solver("pwc-bsp", current["pwc"], baseline["pwc"]))
    return failures


def render_shard_report(payload: dict) -> str:
    """Readable summary of a shard-bench payload."""
    config = payload["config"]
    lines = [
        f"shard bench (P={config['shards']}, "
        f"budget={config['memory_budget_bytes']} B)",
    ]
    for name, block in (("pkmc-bsp", payload["pkmc"]),
                        ("pwc-bsp", payload["pwc"])):
        workload = block["workload"]
        memory = block["memory"]
        cost = block["cost"]
        flag = "ok" if block["identical"] else "DIVERGED"
        lines.append(
            f"  {name:<8}: {workload['num_vertices']:>6} v / "
            f"{workload['num_edges']:>6} e | density {block['density']:.6g} "
            f"| identity {flag}"
        )
        lines.append(
            f"    resident peak {memory['peak_resident_bytes']:>9} B "
            f"<= budget {memory['budget_bytes']} B "
            f"< monolithic {memory['monolithic_bytes']} B | "
            f"loads={memory['shard_loads']} evictions={memory['evictions']}"
        )
        lines.append(
            f"    cost: compute {cost['compute_seconds']:.4g}s + exchange "
            f"{cost['exchange_seconds']:.4g}s + overhead "
            f"{cost['overhead_seconds']:.4g}s | boundary "
            f"{cost['boundary_messages_bytes']} B "
            f"(cross-edge frac {cost['cross_edge_fraction']:.3f})"
        )
    return "\n".join(lines)
