"""Storage-layer bench-regression harness (``repro-bench store``).

Measures the PR-5 storage layer (:mod:`repro.store`) against the
pre-storage-layer formulations that are kept in-tree as references:

* **text ingestion** — the vectorized chunked reader
  (:func:`repro.store.reader.read_edges_vectorized`) versus the strict
  line-by-line parser, both measured stream -> interned edge ids +
  labels (the graph construction that follows is shared code),
  acceptance floor 2x; the full file -> graph pipeline is reported as a
  secondary ``end_to_end`` metric;
* **CSR construction** — the O(m) counting-sort builder
  (:func:`repro.store.csr.csr_from_sorted_canonical`) versus the
  ``lexsort`` reference (:func:`~repro.store.csr.reference_csr_from_canonical`),
  acceptance floor 2x;
* **snapshot reload** — mmap-backed :func:`repro.graph.io.load_npz`
  versus re-parsing the text edge list, acceptance floor 5x;
* **index compaction** — graph bytes under forced int64 versus the
  automatic int32 narrowing, acceptance floor ~2x (1.8x gate);
* **result memoization** — engine wall clock on a cache hit versus a
  cold solve of the same ``(fingerprint, solver, context)`` key.

``run_store_bench`` returns a JSON-serialisable payload;
``check_regression`` compares a fresh payload against a committed
baseline (``BENCH_store.json``).  As in the kernel harness, wall-clock
comparisons use speedup *ratios* rather than raw seconds so a slower CI
host cannot fail the gate spuriously, and every fast path is checked
for exact agreement with its reference before being timed.
"""

from __future__ import annotations

import statistics
import tempfile
import time
from pathlib import Path

import numpy as np

from ..engine import ExecutionContext
from ..engine import run as engine_run
from ..graph import chung_lu_undirected
from ..graph.builder import GraphBuilder
from ..graph.io import (
    _parse_lines,
    load_npz,
    read_undirected_edgelist,
    save_npz,
    write_edgelist,
)
from ..store.reader import read_edges_vectorized
from ..store.compact import forced_int64
from ..store.csr import csr_from_sorted_canonical, reference_csr_from_canonical
from ..store.memo import ResultCache
from .config import DEFAULT_THREADS

__all__ = ["run_store_bench", "check_regression", "render_store_report"]

#: Acceptance floors from the PR-5 issue (speedups / memory ratio).
INGEST_SPEEDUP_FLOOR = 2.0
CSR_SPEEDUP_FLOOR = 2.0
SNAPSHOT_SPEEDUP_FLOOR = 5.0
INT32_MEMORY_FLOOR = 1.8
#: Cache hits run in microseconds, so their speedup ratio is dominated
#: by timer noise; gate on a generous absolute floor instead of the
#: baseline-relative comparison used for the other sections.
CACHE_SPEEDUP_FLOOR = 50.0

#: Relative regression tolerance of the CI gate.
DEFAULT_TOLERANCE = 0.25


def _median_seconds(fn, repeats: int) -> float:
    """Median wall-clock seconds of ``fn()`` over ``repeats`` runs."""
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()  # repro-lint: disable=R001 (real wall-clock measurement)
        fn()
        samples.append(time.perf_counter() - started)  # repro-lint: disable=R001 (real wall-clock measurement)
    return statistics.median(samples)


def _check_graph_equal(fast, strict) -> None:
    graph_a, labels_a = fast
    graph_b, labels_b = strict
    if labels_a != labels_b:
        raise AssertionError("vectorized reader interned different labels")
    if not (
        np.array_equal(graph_a.indptr, graph_b.indptr)
        and np.array_equal(graph_a.indices, graph_b.indices)
    ):
        raise AssertionError("vectorized reader built a different graph")


def run_store_bench(
    num_vertices: int = 20_000,
    num_edges: int = 100_000,
    repeats: int = 3,
    threads: int = DEFAULT_THREADS,
) -> dict:
    """Run the storage benches; return the ``BENCH_store.json`` payload."""
    graph = chung_lu_undirected(num_vertices, num_edges, seed=1)

    with tempfile.TemporaryDirectory() as tmp:
        text_path = Path(tmp) / "graph.txt"
        npz_path = Path(tmp) / "graph.npz"
        write_edgelist(graph, text_path)
        save_npz(graph, npz_path)

        # --- text ingestion: vectorized reader vs line-by-line -----------
        _check_graph_equal(
            read_undirected_edgelist(text_path, vectorized=True),
            read_undirected_edgelist(text_path, vectorized=False),
        )

        def _parse_strict() -> None:
            builder = GraphBuilder()
            with open(text_path, "r", encoding="utf-8") as stream:
                _parse_lines(stream, builder, str(text_path))

        def _parse_fast() -> None:
            with open(text_path, "r", encoding="utf-8") as stream:
                read_edges_vectorized(stream, str(text_path))

        parse_strict = _median_seconds(_parse_strict, repeats)
        parse_fast = _median_seconds(_parse_fast, repeats)
        ingest_strict = _median_seconds(
            lambda: read_undirected_edgelist(text_path, vectorized=False),
            repeats,
        )
        ingest_fast = _median_seconds(
            lambda: read_undirected_edgelist(text_path, vectorized=True),
            repeats,
        )

        # --- CSR construction: counting sort vs lexsort reference --------
        canon = graph.edges()
        ref_indptr, ref_indices = reference_csr_from_canonical(
            num_vertices, canon
        )
        new_indptr, new_indices = csr_from_sorted_canonical(
            num_vertices, canon
        )
        if not (
            np.array_equal(ref_indptr, new_indptr)
            and np.array_equal(ref_indices, new_indices)
        ):
            raise AssertionError(
                "counting-sort CSR disagrees with the lexsort reference"
            )
        csr_ref = _median_seconds(
            lambda: reference_csr_from_canonical(num_vertices, canon), repeats
        )
        csr_fast = _median_seconds(
            lambda: csr_from_sorted_canonical(num_vertices, canon), repeats
        )

        # --- snapshot reload vs text re-parse -----------------------------
        reloaded = load_npz(npz_path)
        if not (
            np.array_equal(reloaded.indptr, graph.indptr)
            and np.array_equal(reloaded.indices, graph.indices)
        ):
            raise AssertionError("snapshot reload built a different graph")
        snapshot_load = _median_seconds(lambda: load_npz(npz_path), repeats)

    # --- index compaction: automatic int32 vs forced int64 ---------------
    edges = graph.edges()
    narrow = type(graph).from_edges(num_vertices, edges)
    with forced_int64():
        wide = type(graph).from_edges(num_vertices, edges)
    narrow_bytes = narrow.memory_bytes(include_scratch=False)
    wide_bytes = wide.memory_bytes(include_scratch=False)

    # --- result memoization: cache hit vs cold solve ----------------------
    cache = ResultCache()
    warm_ctx = ExecutionContext(num_threads=threads, cache=cache)
    warm = engine_run("pkmc", graph, warm_ctx)

    def _cold() -> None:
        engine_run("pkmc", graph, ExecutionContext(num_threads=threads))

    def _hit() -> None:
        ctx = ExecutionContext(num_threads=threads, cache=cache)
        result = engine_run("pkmc", graph, ctx)
        if not result.report.cache_hit:
            raise AssertionError("memoized rerun missed the result cache")
        if result.density != warm.density:  # repro-lint: disable=R004 (cache hits must be bit-identical clones)
            raise AssertionError("memoized rerun changed the density")

    cache_cold = _median_seconds(_cold, repeats)
    cache_hit = _median_seconds(_hit, repeats)

    def _speedup(slow: float, fast: float) -> float:
        return slow / fast if fast else float("inf")

    return {
        "schema": 1,
        "workload": {
            "num_vertices": num_vertices,
            "num_edges_requested": num_edges,
            "num_edges": graph.num_edges,
            "generator": "chung_lu_undirected(seed=1)",
            "threads": threads,
            "repeats": repeats,
        },
        "wall_clock": {
            "ingestion": {
                "line_by_line_s": parse_strict,
                "vectorized_s": parse_fast,
                "speedup": _speedup(parse_strict, parse_fast),
            },
            "end_to_end": {
                "line_by_line_s": ingest_strict,
                "vectorized_s": ingest_fast,
                "speedup": _speedup(ingest_strict, ingest_fast),
            },
            "csr_build": {
                "lexsort_s": csr_ref,
                "counting_sort_s": csr_fast,
                "speedup": _speedup(csr_ref, csr_fast),
            },
            "snapshot": {
                "text_parse_s": ingest_fast,
                "npz_load_s": snapshot_load,
                "speedup": _speedup(ingest_fast, snapshot_load),
            },
            "cache": {
                "cold_s": cache_cold,
                "hit_s": cache_hit,
                "speedup": _speedup(cache_cold, cache_hit),
            },
        },
        "memory": {
            "int32_bytes": narrow_bytes,
            "int64_bytes": wide_bytes,
            "ratio": wide_bytes / narrow_bytes if narrow_bytes else float("inf"),
            "index_dtype": str(narrow.indptr.dtype),
        },
    }


def check_regression(
    current: dict, baseline: dict, tolerance: float = DEFAULT_TOLERANCE
) -> list[str]:
    """Compare a fresh payload against the committed baseline.

    Returns a list of human-readable failures (empty means the gate
    passes): the issue's absolute acceptance floors first, then
    baseline-relative ratio checks with ``tolerance`` headroom.
    """
    failures: list[str] = []
    bound = 1.0 + tolerance
    floors = {
        "ingestion": INGEST_SPEEDUP_FLOOR,
        "csr_build": CSR_SPEEDUP_FLOOR,
        "snapshot": SNAPSHOT_SPEEDUP_FLOOR,
        "cache": CACHE_SPEEDUP_FLOOR,
    }

    for section, floor in floors.items():
        speedup = current["wall_clock"][section]["speedup"]
        if speedup < floor:
            failures.append(
                f"{section} speedup {speedup:.2f}x is below the "
                f"{floor:.1f}x acceptance floor"
            )
    for section in ("ingestion", "end_to_end", "csr_build", "snapshot"):
        cur = current["wall_clock"][section]["speedup"]
        base = baseline["wall_clock"][section]["speedup"]
        if cur < base / bound:
            failures.append(
                f"wall-clock {section} speedup regressed: {cur:.2f}x vs "
                f"baseline {base:.2f}x (tolerance {tolerance:.0%})"
            )

    ratio = current["memory"]["ratio"]
    if ratio < INT32_MEMORY_FLOOR:
        failures.append(
            f"int32 compaction ratio {ratio:.2f}x is below the "
            f"{INT32_MEMORY_FLOOR:.1f}x acceptance floor"
        )
    if current["memory"]["int32_bytes"] > baseline["memory"]["int32_bytes"]:
        failures.append(
            f"int32 graph footprint grew: {current['memory']['int32_bytes']} "
            f"bytes vs baseline {baseline['memory']['int32_bytes']}"
        )
    return failures


def render_store_report(payload: dict) -> str:
    """Readable summary of a store-bench payload."""
    wall = payload["wall_clock"]
    memory = payload["memory"]
    rows = [
        ("ingestion", "line-by-line", "line_by_line_s", "vectorized", "vectorized_s"),
        ("end to end", "line-by-line", "line_by_line_s", "vectorized", "vectorized_s"),
        ("csr build", "lexsort", "lexsort_s", "counting sort", "counting_sort_s"),
        ("snapshot", "text parse", "text_parse_s", "npz mmap", "npz_load_s"),
        ("cache", "cold solve", "cold_s", "cache hit", "hit_s"),
    ]
    lines = [
        "store bench "
        f"({payload['workload']['num_vertices']} vertices, "
        f"{payload['workload']['num_edges']} edges)"
    ]
    sections = {
        "ingestion": wall["ingestion"],
        "end to end": wall["end_to_end"],
        "csr build": wall["csr_build"],
        "snapshot": wall["snapshot"],
        "cache": wall["cache"],
    }
    for title, slow_name, slow_key, fast_name, fast_key in rows:
        section = sections[title]
        lines.append(
            f"  {title:<10}: {slow_name} "
            f"{section[slow_key] * 1e3:8.2f} ms | {fast_name} "
            f"{section[fast_key] * 1e3:8.2f} ms | {section['speedup']:6.2f}x"
        )
    lines.append(
        f"  memory    : int64 {memory['int64_bytes']:>9} B | int32 "
        f"{memory['int32_bytes']:>9} B | {memory['ratio']:6.2f}x "
        f"(dtype {memory['index_dtype']})"
    )
    return "\n".join(lines)
