"""Benchmark harness regenerating every table and figure of the paper."""

from .config import (
    DDS_TIME_LIMIT,
    DEFAULT_THREADS,
    PAPER_MEMORY_BYTES,
    THREAD_SWEEP,
    UDS_TIME_LIMIT,
    paper_graph_copy_bytes,
    scaled_memory_limit,
)
from .experiments import (
    ALL_EXPERIMENTS,
    DDS_ALGORITHMS,
    UDS_ALGORITHMS,
    run_exp1,
    run_exp2,
    run_exp3,
    run_exp4,
    run_exp5,
    run_exp6,
    run_exp7,
    run_exp8,
)
from .expectations import EXPECTATIONS, Expectation, check_result, expectations_for
from .kernels import check_regression, render_kernel_report, run_kernel_bench
from .figures import chart_for, log_bar_chart, scaling_chart
from .serialization import load_json, result_from_dict, result_to_dict, save_json
from .harness import RunRecord, format_status, run_cell
from .reporting import ExperimentResult, render_table

__all__ = [
    "ALL_EXPERIMENTS",
    "UDS_ALGORITHMS",
    "DDS_ALGORITHMS",
    "run_exp1",
    "run_exp2",
    "run_exp3",
    "run_exp4",
    "run_exp5",
    "run_exp6",
    "run_exp7",
    "run_exp8",
    "RunRecord",
    "run_cell",
    "format_status",
    "ExperimentResult",
    "render_table",
    "chart_for",
    "log_bar_chart",
    "scaling_chart",
    "run_kernel_bench",
    "check_regression",
    "render_kernel_report",
    "EXPECTATIONS",
    "Expectation",
    "check_result",
    "expectations_for",
    "result_to_dict",
    "result_from_dict",
    "save_json",
    "load_json",
    "DEFAULT_THREADS",
    "THREAD_SWEEP",
    "DDS_TIME_LIMIT",
    "UDS_TIME_LIMIT",
    "PAPER_MEMORY_BYTES",
    "paper_graph_copy_bytes",
    "scaled_memory_limit",
]
