"""Streaming-maintenance harness (``repro-bench stream``).

Plays the same seeded sliding-window temporal stream
(:func:`repro.datasets.sliding_window_stream` over the PT replica)
through two :class:`repro.stream.StreamSession` modes in lockstep:

* **rebuild** — the historical baseline: every batch's refresh is a
  full warm-started re-convergence over the whole graph
  (rebuild-per-batch);
* **incremental** — the localized path: per-update subcore regions with
  the configurable full-rebuild fallback.

Each batch is applied and then queried (``k_star()`` — the read-mix a
streaming consumer issues), with only that apply+read span timed.
After every batch the two sessions are compared **bit-identically** —
``k_star()``, ``core_numbers()`` and ``densest_subgraph()`` (vertices
and density) must agree exactly — so the speedup can never come from
drifting answers.  Two workloads are measured:

* **small-batch** (8 arrivals + 8 expiries per step, ~0.04% of m —
  well under the gate's 1% ceiling): where localization pays; the
  acceptance floor is ≥ 3x sustained updates/s over rebuild-per-batch;
* **large-batch** (1000 + 1000 per step, beyond the default
  ``region_fraction`` budget): forces the full-rebuild fallback every
  step, pinning that the worst case degrades to the baseline instead
  of past it — the gate asserts the fallback actually fired.

As in the other harnesses the committed ``BENCH_stream.json`` gate
pins *deterministic* quantities exactly (maintenance counters, sweep
totals, bit-identity booleans) and floors only the wall-clock ratios,
so a slower CI host cannot fail spuriously.
"""

from __future__ import annotations

import time

import numpy as np

from ..datasets import load_undirected, sliding_window_stream
from ..stream import StreamSession

__all__ = [
    "run_stream_bench",
    "check_regression",
    "render_stream_report",
    "STREAM_SPEEDUP_FLOOR",
]

#: Acceptance floor (ISSUE 10): incremental updates/s over
#: rebuild-per-batch on the small-batch workload.
STREAM_SPEEDUP_FLOOR = 3.0
#: Relative regression tolerance for baseline-vs-current ratios.
DEFAULT_TOLERANCE = 0.35

#: The replica the stream plays over (smallest registry graph: the
#: bench replays it hundreds of times on the rebuild side).
_DATASET = "PT"

_WORKLOADS = (
    # (label, batch_size, num_batches)
    ("small_batch", 8, 30),
    ("large_batch", 1_000, 6),
)


def _assert_lockstep_identical(incremental: StreamSession, rebuild: StreamSession) -> None:
    """Bit-identity of every query surface between the two sessions."""
    if incremental.k_star() != rebuild.k_star():
        raise AssertionError(
            f"k_star drifted: incremental {incremental.k_star()} vs "
            f"rebuild {rebuild.k_star()}"
        )
    if not np.array_equal(incremental.core_numbers(), rebuild.core_numbers()):
        raise AssertionError("core_numbers drifted between maintenance modes")
    left, right = incremental.query(), rebuild.query()
    if not np.array_equal(left.vertices, right.vertices):
        raise AssertionError("densest_subgraph vertices drifted")
    if left.density != right.density:  # repro-lint: disable=R004 (bit-identity is the contract under test)
        raise AssertionError("densest_subgraph density drifted")


def _replay(session: StreamSession, batches) -> dict:
    """Timed replay: apply each batch then serve the k_star read."""
    updates = 0
    elapsed = 0.0
    for batch in batches:
        started = time.perf_counter()  # repro-lint: disable=R001 (real wall-clock measurement)
        session.apply(insertions=batch.insertions, deletions=batch.deletions)
        session.k_star()  # the per-batch read-mix
        elapsed += time.perf_counter() - started  # repro-lint: disable=R001 (real wall-clock measurement)
        updates += batch.size
    stats = session.stats()
    return {
        "updates": updates,
        "total_s": elapsed,
        "updates_per_s": updates / elapsed if elapsed else float("inf"),
        "rebuilds": stats["rebuilds"],
        "incremental_refreshes": stats["incremental_refreshes"],
        "incremental_fraction": stats["incremental_fraction"],
        "affected_total": stats["affected_total"],
        "total_sweeps": stats["total_sweeps"],
    }


def _run_workload(graph, batch_size: int, num_batches: int, seed: int) -> dict:
    """One lockstep incremental-vs-rebuild replay with per-batch identity."""
    initial, batches = sliding_window_stream(
        graph, batch_size=batch_size, num_batches=num_batches, seed=seed
    )
    sessions = {}
    for mode in ("incremental", "rebuild"):
        session = StreamSession(graph.num_vertices, mode=mode)
        session.apply(insertions=initial)
        session.k_star()  # converge the window outside the timed span
        sessions[mode] = session

    # Replay each side over the full stream (timed), then re-play both in
    # lockstep for the per-batch identity checkpoints (untimed): the
    # timed replays stay free of cross-mode interleaving effects.
    results = {
        mode: _replay(sessions[mode], batches) for mode in sessions
    }
    check_inc = StreamSession(graph.num_vertices, mode="incremental")
    check_reb = StreamSession(graph.num_vertices, mode="rebuild")
    check_inc.apply(insertions=initial)
    check_reb.apply(insertions=initial)
    checkpoints = 0
    for batch in batches:
        check_inc.apply(insertions=batch.insertions, deletions=batch.deletions)
        check_reb.apply(insertions=batch.insertions, deletions=batch.deletions)
        _assert_lockstep_identical(check_inc, check_reb)
        checkpoints += 1

    incremental, rebuild = results["incremental"], results["rebuild"]
    final = check_inc.query()
    return {
        "batch_size": batch_size,
        "num_batches": num_batches,
        "window_edges": int(initial.shape[0]),
        "updates": incremental["updates"],
        "checkpoints": checkpoints,
        "bit_identical": True,  # _assert_lockstep_identical raised otherwise
        "incremental": incremental,
        "rebuild": rebuild,
        "speedup": incremental["updates_per_s"] / rebuild["updates_per_s"]
        if rebuild["updates_per_s"]
        else float("inf"),
        "final_report": {
            "k_star": final.k_star,
            "updates_applied": final.report.updates_applied,
            "affected_vertices": final.report.affected_vertices,
            "incremental_fraction": final.report.incremental_fraction,
            "rebuilds": final.report.rebuilds,
        },
    }


def run_stream_bench(seed: int = 0, workloads=_WORKLOADS) -> dict:
    """Run the streaming benches; return the ``BENCH_stream.json`` payload.

    ``workloads`` overrides the measured ``(label, batch_size,
    num_batches)`` triples — the committed baseline always uses the
    default; tests pass a tiny stream.
    """
    graph = load_undirected(_DATASET)
    workloads = {
        label: _run_workload(graph, batch_size, num_batches, seed)
        for label, batch_size, num_batches in workloads
    }
    return {
        "schema": 1,
        "workload": {
            "dataset": _DATASET,
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "seed": seed,
        },
        "workloads": workloads,
    }


#: Deterministic per-workload counters pinned exactly against the
#: committed baseline (pure functions of the seeded stream).
_PINNED = (
    "rebuilds",
    "incremental_refreshes",
    "affected_total",
    "total_sweeps",
)


def check_regression(
    current: dict, baseline: dict, tolerance: float = DEFAULT_TOLERANCE
) -> list[str]:
    """Compare a fresh payload against the committed baseline.

    Absolute gates first (the ≥ 3x small-batch floor, bit-identity, the
    large-batch fallback firing), then exact pins on the deterministic
    maintenance counters, then baseline-relative speedup with
    ``tolerance`` headroom.
    """
    failures: list[str] = []
    bound = 1.0 + tolerance

    small = current["workloads"]["small_batch"]
    if small["speedup"] < STREAM_SPEEDUP_FLOOR:
        failures.append(
            f"small-batch incremental speedup {small['speedup']:.2f}x is "
            f"below the {STREAM_SPEEDUP_FLOOR:.1f}x acceptance floor"
        )
    large = current["workloads"]["large_batch"]
    if large["incremental"]["rebuilds"] <= 0:
        failures.append(
            "large-batch workload must exercise the full-rebuild fallback "
            f"(saw {large['incremental']['rebuilds']} rebuilds)"
        )
    for label, cell in current["workloads"].items():
        if not cell["bit_identical"]:
            failures.append(f"{label}: modes were not bit-identical")
    for label, cell in current["workloads"].items():
        base_cell = baseline["workloads"][label]["incremental"]
        for counter in _PINNED:
            if cell["incremental"][counter] != base_cell[counter]:
                failures.append(
                    f"{label} deterministic counter {counter} drifted: "
                    f"{cell['incremental'][counter]} vs committed "
                    f"{base_cell[counter]}"
                )
        cur, base = cell["speedup"], baseline["workloads"][label]["speedup"]
        if cur < base / bound:
            failures.append(
                f"{label} speedup regressed: {cur:.2f}x vs baseline "
                f"{base:.2f}x (tolerance {tolerance:.0%})"
            )
    return failures


def render_stream_report(payload: dict) -> str:
    """Readable summary of a stream-bench payload."""
    workload = payload["workload"]
    lines = [
        f"stream bench ({workload['dataset']}: n={workload['num_vertices']}, "
        f"m={workload['num_edges']}, sliding window)"
    ]
    for label, cell in payload["workloads"].items():
        inc, reb = cell["incremental"], cell["rebuild"]
        lines.append(
            f"  {label:<11}: batches {cell['num_batches']:>3} x "
            f"{cell['batch_size']:>4}+{cell['batch_size']:<4} | "
            f"rebuild {reb['updates_per_s']:8.1f} up/s | incremental "
            f"{inc['updates_per_s']:8.1f} up/s | {cell['speedup']:6.2f}x | "
            f"fallbacks {inc['rebuilds']} | "
            f"identical at {cell['checkpoints']} checkpoints"
        )
    return "\n".join(lines)
