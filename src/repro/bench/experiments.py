"""The paper's eight experiments (Section VI), one function per artifact.

Every ``run_expN`` returns an :class:`~repro.bench.reporting.
ExperimentResult` whose rows mirror the corresponding figure or table:

========  ==============  ==================================================
function  paper artifact  content
========  ==============  ==================================================
run_exp1  Fig. 5          UDS efficiency, 5 algorithms x 6 graphs, p=32
run_exp2  Table 6         iteration counts of PKC / Local / PKMC
run_exp3  Fig. 6          UDS runtime vs threads p
run_exp4  Fig. 7          UDS runtime vs edge fraction
run_exp5  Fig. 8          DDS efficiency, 6 algorithms x 6 graphs
run_exp6  Table 7         graph sizes processed by PXY vs PWC
run_exp7  Fig. 9          DDS runtime vs threads p (with OOM points)
run_exp8  Fig. 10         DDS runtime vs edge fraction, p=4
========  ==============  ==================================================

All simulated times come from :class:`~repro.runtime.SimRuntime`; DNF and
OOM cells reproduce the paper's budget conventions (see bench.config).
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..datasets.registry import dataset_names, get_spec, load_directed, load_undirected
from ..graph.sampling import DEFAULT_FRACTIONS, edge_fraction_series
from .config import (
    DDS_TIME_LIMIT,
    DEFAULT_THREADS,
    THREAD_SWEEP,
    UDS_TIME_LIMIT,
    scaled_memory_limit,
)
from .harness import RunRecord, format_status, run_cell
from .reporting import ExperimentResult

__all__ = [
    "UDS_ALGORITHMS",
    "DDS_ALGORITHMS",
    "run_exp1",
    "run_exp2",
    "run_exp3",
    "run_exp4",
    "run_exp5",
    "run_exp6",
    "run_exp7",
    "run_exp8",
    "ALL_EXPERIMENTS",
]

# Algorithms in the paper's legend order, with the paper's parameters.
# The legend name's lower-case form is the solver's registry name; the
# callables live in the solver registry (see repro.engine), so only the
# per-algorithm options remain here.
UDS_ALGORITHMS: dict[str, dict] = {
    "PFW": {"epsilon": 1.0},
    "PBU": {"epsilon": 0.5},
    "Local": {},
    "PKC": {},
    "PKMC": {},
}

DDS_ALGORITHMS: dict[str, dict] = {
    "PBS": {},
    "PFKS": {},
    "PFW": {"epsilon": 1.0},
    "PBD": {"delta": 2.0, "epsilon": 1.0},
    "PXY": {},
    "PWC": {},
}


def _uds_cell(abbr: str, name: str, graph, threads: int) -> RunRecord:
    return run_cell(
        abbr, name, graph, threads,
        time_limit=UDS_TIME_LIMIT, **UDS_ALGORITHMS[name],
    )


def _dds_cell(
    abbr: str,
    name: str,
    graph,
    threads: int,
    time_limit: float | None = DDS_TIME_LIMIT,
) -> RunRecord:
    return run_cell(
        abbr, name, graph, threads,
        time_limit=time_limit,
        memory_limit=scaled_memory_limit(get_spec(abbr)),
        **DDS_ALGORITHMS[name],
    )


# ----------------------------------------------------------------------
# Exp-1 (Fig. 5): UDS efficiency
# ----------------------------------------------------------------------
def run_exp1(
    datasets: Sequence[str] | None = None,
    threads: int = DEFAULT_THREADS,
    algorithms: Sequence[str] | None = None,
) -> ExperimentResult:
    """UDS efficiency comparison with p=32 threads (paper Fig. 5)."""
    datasets = list(datasets or dataset_names("undirected"))
    algorithms = list(algorithms or UDS_ALGORITHMS)
    records: list[RunRecord] = []
    rows = []
    for abbr in datasets:
        graph = load_undirected(abbr)
        row: list = [abbr]
        by_name: dict[str, RunRecord] = {}
        for name in algorithms:
            record = _uds_cell(abbr, name, graph, threads)
            records.append(record)
            by_name[name] = record
            row.append(format_status(record))
        if "PKMC" in by_name and "PBU" in by_name and by_name["PBU"].ok:
            row.append(
                f"{by_name['PBU'].simulated_seconds / by_name['PKMC'].simulated_seconds:.1f}x"
            )
        else:
            row.append("-")
        rows.append(row)
    return ExperimentResult(
        experiment="Exp-1",
        paper_artifact="Fig. 5",
        description=(
            f"Simulated runtime (s) of the UDS algorithms with p={threads} "
            "threads.  Paper shape: PKMC 5-20x faster than PBU, up to 13x "
            "vs Local, ~2 orders vs PFW."
        ),
        headers=["dataset", *algorithms, "PBU/PKMC"],
        rows=rows,
        records=records,
    )


# ----------------------------------------------------------------------
# Exp-2 (Table 6): iteration counts
# ----------------------------------------------------------------------
def run_exp2(
    datasets: Sequence[str] | None = None, threads: int = DEFAULT_THREADS
) -> ExperimentResult:
    """Iteration counts of the core-based UDS algorithms (paper Table 6)."""
    datasets = list(datasets or dataset_names("undirected"))
    names = ["PKC", "Local", "PKMC"]
    counts: dict[str, list[int]] = {name: [] for name in names}
    records: list[RunRecord] = []
    for abbr in datasets:
        graph = load_undirected(abbr)
        for name in names:
            record = _uds_cell(abbr, name, graph, threads)
            records.append(record)
            counts[name].append(record.iterations)
    rows = [[name, *counts[name]] for name in names]
    return ExperimentResult(
        experiment="Exp-2",
        paper_artifact="Table 6",
        description=(
            "Number of iterations in the core-based algorithms.  Paper "
            "shape: PKMC needs 3-5; Local needs 60-99% more; PKC needs "
            "k*+cascades, an order of magnitude beyond Local."
        ),
        headers=["algorithm", *datasets],
        rows=rows,
        records=records,
    )


# ----------------------------------------------------------------------
# Exp-3 (Fig. 6): UDS thread scaling
# ----------------------------------------------------------------------
def run_exp3(
    datasets: Sequence[str] = ("PT", "EW", "EU"),
    threads: Sequence[int] = THREAD_SWEEP,
    algorithms: Sequence[str] = ("PBU", "Local", "PKC", "PKMC"),
) -> ExperimentResult:
    """UDS runtime vs thread count (paper Fig. 6)."""
    records: list[RunRecord] = []
    rows = []
    for abbr in datasets:
        graph = load_undirected(abbr)
        for p in threads:
            row: list = [abbr, p]
            for name in algorithms:
                record = _uds_cell(abbr, name, graph, p)
                records.append(record)
                row.append(format_status(record))
            rows.append(row)
    return ExperimentResult(
        experiment="Exp-3",
        paper_artifact="Fig. 6",
        description=(
            "Simulated runtime (s) vs thread count.  Paper shape: PKMC "
            "scales near-linearly; PKC flattens at high p (tiny rounds "
            "drown in spawn/barrier overhead); PKC can edge out PKMC at "
            "small p on PT."
        ),
        headers=["dataset", "p", *algorithms],
        rows=rows,
        records=records,
    )


# ----------------------------------------------------------------------
# Exp-4 (Fig. 7): UDS scalability in graph size
# ----------------------------------------------------------------------
def run_exp4(
    datasets: Sequence[str] = ("SK", "UN"),
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    threads: int = DEFAULT_THREADS,
    algorithms: Sequence[str] | None = None,
) -> ExperimentResult:
    """UDS runtime vs sampled edge fraction (paper Fig. 7)."""
    algorithms = list(algorithms or UDS_ALGORITHMS)
    records: list[RunRecord] = []
    rows = []
    for abbr in datasets:
        graph = load_undirected(abbr)
        for fraction, subgraph in edge_fraction_series(graph, fractions, seed=7):
            row: list = [abbr, f"{int(fraction * 100)}%"]
            for name in algorithms:
                record = _uds_cell(abbr, name, subgraph, threads)
                records.append(record)
                row.append(format_status(record))
            rows.append(row)
    return ExperimentResult(
        experiment="Exp-4",
        paper_artifact="Fig. 7",
        description=(
            "Simulated runtime (s) on nested edge samples, p=32.  Paper "
            "shape: every algorithm grows steadily with |E| and PKMC stays "
            "fastest throughout."
        ),
        headers=["dataset", "edges", *algorithms],
        rows=rows,
        records=records,
    )


# ----------------------------------------------------------------------
# Exp-5 (Fig. 8): DDS efficiency
# ----------------------------------------------------------------------
def run_exp5(
    datasets: Sequence[str] | None = None,
    threads: int = DEFAULT_THREADS,
    tw_threads: int = 4,
    algorithms: Sequence[str] | None = None,
) -> ExperimentResult:
    """DDS efficiency comparison (paper Fig. 8).

    TW runs with ``tw_threads`` because PXY/PBD exceed the memory budget
    there for p > 4, exactly as in the paper.
    """
    datasets = list(datasets or dataset_names("directed"))
    algorithms = list(algorithms or DDS_ALGORITHMS)
    records: list[RunRecord] = []
    rows = []
    for abbr in datasets:
        graph = load_directed(abbr)
        p = tw_threads if abbr == "TW" else threads
        row: list = [abbr, p]
        by_name: dict[str, RunRecord] = {}
        for name in algorithms:
            record = _dds_cell(abbr, name, graph, p)
            records.append(record)
            by_name[name] = record
            row.append(format_status(record))
        if "PWC" in by_name and "PXY" in by_name and by_name["PXY"].ok:
            row.append(
                f"{by_name['PXY'].simulated_seconds / by_name['PWC'].simulated_seconds:.1f}x"
            )
        else:
            row.append("-")
        rows.append(row)
    return ExperimentResult(
        experiment="Exp-5",
        paper_artifact="Fig. 8",
        description=(
            "Simulated runtime (s) of the DDS algorithms (DNF = exceeded "
            "the scaled 10^5-second analogue).  Paper shape: PBS and PFKS "
            "DNF everywhere; PFW finishes only on the smallest graphs and "
            "is orders slower; PWC beats PXY by up to 30x."
        ),
        headers=["dataset", "p", *algorithms, "PXY/PWC"],
        rows=rows,
        records=records,
    )


# ----------------------------------------------------------------------
# Exp-6 (Table 7): sizes of the graphs processed
# ----------------------------------------------------------------------
def run_exp6(
    datasets: Sequence[str] | None = None, threads: int = DEFAULT_THREADS
) -> ExperimentResult:
    """Edges processed by PXY vs the stages of PWC (paper Table 7)."""
    datasets = list(datasets or dataset_names("directed"))
    pxy_row: list = ["PXY"]
    first_row: list = ["PWC_1"]
    wstar_row: list = ["PWC_w*"]
    dds_row: list = ["PWC_D*"]
    records: list[RunRecord] = []
    for abbr in datasets:
        graph = load_directed(abbr)
        p = 4 if abbr == "TW" else threads
        record = _dds_cell(abbr, "PWC", graph, p)
        records.append(record)
        pxy_row.append(graph.num_edges)  # PXY peels the entire graph
        first_row.append(record.extras.get("size_first", "-"))
        wstar_row.append(record.extras.get("size_wstar", "-"))
        dds_row.append(record.extras.get("size_dds", "-"))
    return ExperimentResult(
        experiment="Exp-6",
        paper_artifact="Table 7",
        description=(
            "Number of edges processed.  Paper shape: PWC's first "
            "iteration already shrinks the graph drastically (w >= d_max "
            "pruning); on the hub-dominated AM and AR the first level *is* "
            "the answer."
        ),
        headers=["stage", *datasets],
        rows=[pxy_row, first_row, wstar_row, dds_row],
        records=records,
    )


# ----------------------------------------------------------------------
# Exp-7 (Fig. 9): DDS thread scaling
# ----------------------------------------------------------------------
def run_exp7(
    datasets: Sequence[str] = ("AR", "WE", "TW"),
    threads: Sequence[int] = THREAD_SWEEP,
    algorithms: Sequence[str] = ("PBD", "PXY", "PWC"),
) -> ExperimentResult:
    """DDS runtime vs thread count (paper Fig. 9).

    PXY and PBD hold one graph copy per thread, so on TW they exceed the
    memory budget for p > 4 and show as OOM, as in the paper.
    """
    records: list[RunRecord] = []
    rows = []
    for abbr in datasets:
        graph = load_directed(abbr)
        for p in threads:
            row: list = [abbr, p]
            for name in algorithms:
                record = _dds_cell(abbr, name, graph, p, time_limit=None)
                records.append(record)
                row.append(format_status(record))
            rows.append(row)
    return ExperimentResult(
        experiment="Exp-7",
        paper_artifact="Fig. 9",
        description=(
            "Simulated runtime (s) vs thread count.  Paper shape: PWC "
            "scales near-linearly and is 7-10x faster than PXY already at "
            "p=1; PBD bottoms out around p=16 and degrades beyond; PXY "
            "and PBD go OOM on TW for p > 4."
        ),
        headers=["dataset", "p", *algorithms],
        rows=rows,
        records=records,
    )


# ----------------------------------------------------------------------
# Exp-8 (Fig. 10): DDS scalability in graph size
# ----------------------------------------------------------------------
def run_exp8(
    datasets: Sequence[str] = ("WE", "TW"),
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    threads: int = 4,
    algorithms: Sequence[str] = ("PBD", "PXY", "PWC"),
) -> ExperimentResult:
    """DDS runtime vs sampled edge fraction at p=4 (paper Fig. 10)."""
    records: list[RunRecord] = []
    rows = []
    for abbr in datasets:
        graph = load_directed(abbr)
        for fraction, subgraph in edge_fraction_series(graph, fractions, seed=8):
            row: list = [abbr, f"{int(fraction * 100)}%"]
            for name in algorithms:
                record = _dds_cell(abbr, name, subgraph, threads, time_limit=None)
                records.append(record)
                row.append(format_status(record))
            rows.append(row)
    return ExperimentResult(
        experiment="Exp-8",
        paper_artifact="Fig. 10",
        description=(
            "Simulated runtime (s) on nested edge samples, p=4.  Paper "
            "shape: all three algorithms grow with |E|; PWC stays the "
            "fastest at every size."
        ),
        headers=["dataset", "edges", *algorithms],
        rows=rows,
        records=records,
    )


ALL_EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "exp1": run_exp1,
    "exp2": run_exp2,
    "exp3": run_exp3,
    "exp4": run_exp4,
    "exp5": run_exp5,
    "exp6": run_exp6,
    "exp7": run_exp7,
    "exp8": run_exp8,
}
