"""``repro-bench`` command line: regenerate the paper's tables and figures.

Examples::

    repro-bench --list
    repro-bench exp1 exp2
    repro-bench all --output results/
    repro-bench backends --check BENCH_backends.json
    repro-bench all --check
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .experiments import ALL_EXPERIMENTS

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description=(
            "Regenerate the evaluation artifacts of 'Scalable Algorithms "
            "for Densest Subgraph Discovery' (ICDE 2023) on the synthetic "
            "replicas."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help=(
            "experiment ids (exp1..exp8), 'kernels' (the kernel-layer "
            "bench-regression harness), 'store' (the storage-layer "
            "harness), 'backends' (the array-backend harness), 'serve' "
            "(the query-service traffic-replay harness), 'shard' (the "
            "sharded out-of-core engine harness), 'stream' (the "
            "incremental streaming-maintenance harness) or 'all'; "
            "default: all"
        ),
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    parser.add_argument(
        "--charts",
        action="store_true",
        help="also render ASCII approximations of the paper's figures",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="directory to also write one <exp>.txt per experiment",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="with --output, also write machine-readable <exp>.json files",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="check each artifact against the paper's encoded claims",
    )
    parser.add_argument(
        "--check",
        type=Path,
        nargs="?",
        default=None,
        const=_CHECK_DEFAULT,
        metavar="BASELINE_JSON",
        help=(
            "with 'kernels', 'store', 'backends', 'serve', 'shard' or "
            "'stream': compare the fresh run "
            "against the committed BENCH_*.json baseline and exit non-zero "
            "on regression; with 'all', run every harness against its "
            "committed baseline (bare --check uses the default file names)"
        ),
    )
    return parser


#: Sentinel for a bare ``--check``: each harness falls back to its own
#: committed baseline name (``BENCH_<label>.json`` in the working tree).
_CHECK_DEFAULT = Path("__default_baseline__")


def _run_harness(args, label: str, run, check, render, baseline_name: str) -> int:
    """Run one bench harness; write or check its ``BENCH_*.json``."""
    import json

    payload = run()
    print(render(payload))
    if args.check is not None:
        baseline_path = (
            Path(baseline_name) if args.check == _CHECK_DEFAULT else args.check
        )
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        failures = check(payload, baseline)
        for failure in failures:
            print(f"  [FAIL] {failure}")
        if failures:
            return 1
        print(f"  [PASS] no {label} regression vs {baseline_path}")
        return 0
    output_dir = args.output if args.output is not None else Path(".")
    output_dir.mkdir(parents=True, exist_ok=True)
    target = output_dir / baseline_name
    target.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"[{label} bench written to {target}]")
    return 0


def _run_kernels(args) -> int:
    """Run the kernel bench; write or check ``BENCH_kernels.json``."""
    from .kernels import check_regression, render_kernel_report, run_kernel_bench

    return _run_harness(
        args, "kernel", run_kernel_bench, check_regression,
        render_kernel_report, "BENCH_kernels.json",
    )


def _run_store(args) -> int:
    """Run the storage bench; write or check ``BENCH_store.json``."""
    from .store import check_regression, render_store_report, run_store_bench

    return _run_harness(
        args, "store", run_store_bench, check_regression,
        render_store_report, "BENCH_store.json",
    )


def _run_backends(args) -> int:
    """Run the backend bench; write or check ``BENCH_backends.json``."""
    from .backends import check_regression, render_backend_report, run_backend_bench

    return _run_harness(
        args, "backends", run_backend_bench, check_regression,
        render_backend_report, "BENCH_backends.json",
    )


def _run_serve(args) -> int:
    """Run the serving bench; write or check ``BENCH_serve.json``."""
    from .serve import check_regression, render_serve_report, run_serve_bench

    return _run_harness(
        args, "serve", run_serve_bench, check_regression,
        render_serve_report, "BENCH_serve.json",
    )


def _run_shard(args) -> int:
    """Run the sharded-engine bench; write or check ``BENCH_shard.json``."""
    from .shard import check_regression, render_shard_report, run_shard_bench

    return _run_harness(
        args, "shard", run_shard_bench, check_regression,
        render_shard_report, "BENCH_shard.json",
    )


def _run_stream(args) -> int:
    """Run the streaming bench; write or check ``BENCH_stream.json``."""
    from .stream import check_regression, render_stream_report, run_stream_bench

    return _run_harness(
        args, "stream", run_stream_bench, check_regression,
        render_stream_report, "BENCH_stream.json",
    )


#: The bench-regression harnesses, in the order ``all --check`` runs them.
_HARNESSES = (
    ("kernels", _run_kernels),
    ("store", _run_store),
    ("backends", _run_backends),
    ("serve", _run_serve),
    ("shard", _run_shard),
    ("stream", _run_stream),
)


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.list:
        for name, runner in ALL_EXPERIMENTS.items():
            doc = (runner.__doc__ or "").strip().splitlines()[0]
            print(f"{name}: {doc}")
        return 0

    requested = args.experiments or ["all"]
    if "all" in requested and args.check is not None:
        # Umbrella gate: run every bench-regression harness against its
        # committed baseline.  Each harness gets a fresh interpreter so
        # its measurements happen under the same conditions as the
        # standalone invocation that produced its committed baseline
        # (in-process sequencing warms caches and skews the ratios).
        # Keeps going past a failure so CI logs show the full picture,
        # then reports the worst status.
        import subprocess

        if args.check != _CHECK_DEFAULT:
            print(
                "'all --check' runs every harness against its committed "
                "baseline; a baseline path only applies to a single "
                "harness",
                file=sys.stderr,
            )
            return 2
        worst = 0
        for label, _ in _HARNESSES:
            print(f"== {label} ==", flush=True)
            status = subprocess.call(
                [sys.executable, "-m", "repro.bench.cli", label, "--check"]
            )
            worst = max(worst, status)
        return worst
    for name, runner in _HARNESSES:
        if name in requested:
            status = runner(args)
            requested = [item for item in requested if item != name]
            if status or not requested:
                return status
    if "all" in requested:
        requested = list(ALL_EXPERIMENTS)
    unknown = [name for name in requested if name not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    if args.output is not None:
        args.output.mkdir(parents=True, exist_ok=True)
    for name in requested:
        started = time.perf_counter()  # repro-lint: disable=R001 (real wall-clock measurement)
        result = ALL_EXPERIMENTS[name]()
        elapsed = time.perf_counter() - started  # repro-lint: disable=R001 (real wall-clock measurement)
        text = result.to_text()
        if args.charts:
            from .figures import chart_for

            chart = chart_for(result)
            if chart is not None:
                text = f"{text}\n\n{chart}"
        print(text)
        print(f"[{name} regenerated in {elapsed:.1f}s wall time]")
        failures = 0
        if args.verify:
            from .expectations import check_result

            for expectation, passed in check_result(name, result):
                marker = "PASS" if passed else "FAIL"
                print(f"  [{marker}] {expectation.claim}")
                failures += 0 if passed else 1
        print()
        if args.output is not None:
            (args.output / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
            if args.json:
                from .serialization import save_json

                save_json(result, args.output / f"{name}.json")
        if failures:
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
