"""The paper's evaluation claims, encoded as machine-checkable expectations.

Each expectation is a small predicate over one regenerated artifact; the
full list is the reproduction's contract with the paper.  ``repro-bench
--verify`` (and ``tests/bench/test_expectations.py``) runs every
expectation against freshly produced results and reports PASS/FAIL lines,
so "the shapes hold" is a checked statement rather than prose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from .reporting import ExperimentResult

__all__ = ["Expectation", "EXPECTATIONS", "check_result", "expectations_for"]


@dataclass(frozen=True)
class Expectation:
    """One checkable claim about one experiment artifact."""

    experiment: str
    claim: str
    check: Callable[[ExperimentResult], bool]


def _value(result: ExperimentResult, row_key, column: str) -> float:
    return float(result.cell(row_key, column))


def _datasets(result: ExperimentResult) -> list:
    return list(dict.fromkeys(row[0] for row in result.rows))


# ----------------------------------------------------------------------
# Exp-1 (Fig. 5)
# ----------------------------------------------------------------------
def _exp1_pkmc_fastest(result: ExperimentResult) -> bool:
    others = [h for h in result.headers[1:] if h not in ("PKMC", "PBU/PKMC")]
    return all(
        _value(result, d, "PKMC") < _value(result, d, other)
        for d in _datasets(result)
        for other in others
    )


def _exp1_pbu_gap(result: ExperimentResult) -> bool:
    return all(
        5 <= _value(result, d, "PBU") / _value(result, d, "PKMC") <= 30
        for d in _datasets(result)
    )


# ----------------------------------------------------------------------
# Exp-2 (Table 6)
# ----------------------------------------------------------------------
def _exp2_pkmc_3_to_5(result: ExperimentResult) -> bool:
    return all(3 <= result.cell("PKMC", d) <= 5 for d in result.headers[1:])


def _exp2_ordering(result: ExperimentResult) -> bool:
    return all(
        result.cell("PKMC", d) < result.cell("Local", d) < result.cell("PKC", d)
        for d in result.headers[1:]
    )


# ----------------------------------------------------------------------
# Exp-5 (Fig. 8)
# ----------------------------------------------------------------------
def _exp5_quadratic_dnf(result: ExperimentResult) -> bool:
    return all(
        result.cell(d, "PBS") == "DNF" and result.cell(d, "PFKS") == "DNF"
        for d in _datasets(result)
    )


def _exp5_pfw_small_only(result: ExperimentResult) -> bool:
    finished = {d for d in _datasets(result) if result.cell(d, "PFW") != "DNF"}
    return finished == {"AR", "BA"}


def _exp5_pwc_beats_pxy(result: ExperimentResult) -> bool:
    return all(
        _value(result, d, "PWC") < _value(result, d, "PXY")
        for d in _datasets(result)
    )


# ----------------------------------------------------------------------
# Exp-6 (Table 7)
# ----------------------------------------------------------------------
def _exp6_monotone(result: ExperimentResult) -> bool:
    return all(
        result.cell("PXY", d)
        >= result.cell("PWC_1", d)
        >= result.cell("PWC_w*", d)
        >= result.cell("PWC_D*", d)
        for d in result.headers[1:]
    )


def _exp6_am_ar_immediate(result: ExperimentResult) -> bool:
    return all(
        result.cell("PWC_1", d) == result.cell("PWC_w*", d)
        for d in ("AM", "AR")
        if d in result.headers
    )


# ----------------------------------------------------------------------
# Exp-7 (Fig. 9)
# ----------------------------------------------------------------------
def _exp7_tw_oom(result: ExperimentResult) -> bool:
    tw_rows = [row for row in result.rows if row[0] == "TW"]
    if not tw_rows:
        return True
    pxy = result.headers.index("PXY")
    return all(
        (row[pxy] == "OOM") == (row[1] > 4) for row in tw_rows
    )


def _exp7_pwc_never_fails(result: ExperimentResult) -> bool:
    pwc = result.headers.index("PWC")
    return all(row[pwc] not in ("OOM", "DNF") for row in result.rows)


EXPECTATIONS: tuple[Expectation, ...] = (
    Expectation("exp1", "PKMC is the fastest UDS algorithm everywhere", _exp1_pkmc_fastest),
    Expectation("exp1", "PKMC beats PBU by 5-20x (we allow up to 30x)", _exp1_pbu_gap),
    Expectation("exp2", "PKMC converges in 3-5 iterations", _exp2_pkmc_3_to_5),
    Expectation("exp2", "iterations: PKMC < Local < PKC", _exp2_ordering),
    Expectation("exp5", "PBS and PFKS exceed the time budget everywhere", _exp5_quadratic_dnf),
    Expectation("exp5", "PFW finishes exactly on AR and BA", _exp5_pfw_small_only),
    Expectation("exp5", "PWC beats PXY on every dataset", _exp5_pwc_beats_pxy),
    Expectation("exp6", "processed sizes are monotone across PWC stages", _exp6_monotone),
    Expectation("exp6", "AM and AR resolve at the first w-level", _exp6_am_ar_immediate),
    Expectation("exp7", "PXY OOMs on TW exactly for p > 4", _exp7_tw_oom),
    Expectation("exp7", "PWC never hits a budget", _exp7_pwc_never_fails),
)


def expectations_for(experiment: str) -> list[Expectation]:
    """All encoded claims for one experiment id (e.g. ``"exp5"``)."""
    return [e for e in EXPECTATIONS if e.experiment == experiment]


def check_result(
    experiment: str, result: ExperimentResult
) -> list[tuple[Expectation, bool]]:
    """Evaluate every claim registered for ``experiment`` against a result."""
    outcomes = []
    for expectation in expectations_for(experiment):
        try:
            passed = bool(expectation.check(result))
        except (KeyError, ValueError, IndexError):
            passed = False
        outcomes.append((expectation, passed))
    return outcomes
