"""Kernel-layer bench-regression harness (``repro-bench kernels``).

Measures the PR-2 kernel layer (``repro.kernels``) against the
pre-kernel-layer formulations that are kept in-tree as references:

* **wall-clock, one full sweep** — sort-free :func:`segment_h_index`
  versus the O(m log m) ``lexsort`` formulation
  (:func:`reference_segment_h_index`) on one full h-index sweep;
* **wall-clock, convergence tail** — the frontier sweep loop versus
  repeated full lexsort sweeps from a two-sweep warm start, where almost
  every vertex is already at its fixed point and the frontier path should
  win by well over the 2x the acceptance bar demands;
* **simulated parallel seconds** — PKMC (both sweep modes), Local and PWC
  with ``frontier=True`` versus ``frontier=False`` under the same
  :class:`~repro.runtime.simruntime.SimRuntime`, checking that frontier
  accounting never charges more than the full re-scan.

``run_kernel_bench`` returns a JSON-serialisable payload;
``check_regression`` compares a fresh payload against a committed
baseline (``BENCH_kernels.json``) using machine-robust criteria: exact
simulated costs (they are deterministic) with a tolerance for additive
accounting changes, and wall-clock *speedup ratios* rather than raw
seconds so a slower CI host cannot fail the gate spuriously.
"""

from __future__ import annotations

import statistics
import time

import numpy as np

from ..engine import ExecutionContext
from ..engine import run as engine_run
from ..graph import chung_lu_directed, chung_lu_undirected
from ..kernels.frontier import frontier_synchronous_sweep
from ..kernels.segments import reference_segment_h_index, segment_h_index
from .config import DEFAULT_THREADS

__all__ = ["run_kernel_bench", "check_regression", "render_kernel_report"]

#: Acceptance floor for the convergence-tail speedup (frontier vs lexsort).
TAIL_SPEEDUP_FLOOR = 2.0

#: Relative regression tolerance of the CI gate.
DEFAULT_TOLERANCE = 0.25


def _median_seconds(fn, repeats: int) -> float:
    """Median wall-clock seconds of ``fn()`` over ``repeats`` runs."""
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()  # repro-lint: disable=R001 (real wall-clock measurement)
        fn()
        samples.append(time.perf_counter() - started)  # repro-lint: disable=R001 (real wall-clock measurement)
    return statistics.median(samples)


def _warm_tail_state(graph):
    """Sweep until fewer than half the vertices are still active.

    That point marks the convergence *tail*: the regime the frontier path
    targets, where a full re-scan recomputes mostly-converged vertices.
    Returns ``(h, frontier)`` at the tail's start.
    """
    h = graph.degrees().astype(np.int64)
    active = None
    while True:
        h, active = frontier_synchronous_sweep(graph, h, frontier=active)
        if active.size < graph.num_vertices / 2:
            return h, active


def _lexsort_full_sweep(graph, h):
    return reference_segment_h_index(
        graph.indptr, h[graph.indices], seg_rows=graph.heads()
    )


def _run_tail_lexsort(graph, h_start):
    """Full lexsort sweeps from the warm start until the fixed point."""
    h = h_start
    sweeps = 0
    while True:
        new_h = _lexsort_full_sweep(graph, h)
        sweeps += 1
        if np.array_equal(new_h, h):
            return h, sweeps
        h = new_h


def _run_tail_frontier(graph, h_start, frontier_start):
    """Frontier sweeps from the same warm start until the frontier drains."""
    h, active = h_start.copy(), frontier_start
    sweeps = 0
    while active.size:
        h, active = frontier_synchronous_sweep(graph, h, frontier=active)
        sweeps += 1
    return h, sweeps


def _simulated_pair(solver: str, graph, threads: int, **options) -> dict:
    """Simulated seconds of one solver with and without the frontier path."""

    def one(frontier: bool) -> float:
        ctx = ExecutionContext(num_threads=threads, frontier=frontier)
        engine_run(solver, graph, ctx, **options)
        return ctx.simulated_seconds

    return {"frontier_s": one(True), "full_s": one(False)}


def run_kernel_bench(
    num_vertices: int = 20_000,
    num_edges: int = 100_000,
    repeats: int = 5,
    threads: int = DEFAULT_THREADS,
) -> dict:
    """Run the kernel benches; return the ``BENCH_kernels.json`` payload."""
    undirected = chung_lu_undirected(num_vertices, num_edges, seed=1)
    directed = chung_lu_directed(num_vertices, num_edges, seed=2)

    # --- wall clock: one full sweep, lexsort vs sort-free ----------------
    h0 = undirected.degrees().astype(np.int64)
    neighbor_values = h0[undirected.indices]
    old_sweep = _median_seconds(
        lambda: _lexsort_full_sweep(undirected, h0), repeats
    )
    bins = undirected.hindex_bins()
    new_sweep = _median_seconds(
        lambda: segment_h_index(
            undirected.indptr, neighbor_values,
            seg_rows=undirected.heads(), bins=bins,
        ),
        repeats,
    )
    if not np.array_equal(
        _lexsort_full_sweep(undirected, h0),
        segment_h_index(
            undirected.indptr, neighbor_values,
            seg_rows=undirected.heads(), bins=bins,
        ),
    ):
        raise AssertionError("sort-free sweep disagrees with the lexsort sweep")

    # --- wall clock: convergence tail, full lexsort loop vs frontier -----
    h_warm, frontier_warm = _warm_tail_state(undirected)
    old_fix, old_tail_sweeps = _run_tail_lexsort(undirected, h_warm)
    new_fix, new_tail_sweeps = _run_tail_frontier(undirected, h_warm, frontier_warm)
    if not np.array_equal(old_fix, new_fix):
        raise AssertionError("frontier tail reaches a different fixed point")
    old_tail = _median_seconds(
        lambda: _run_tail_lexsort(undirected, h_warm), repeats
    )
    new_tail = _median_seconds(
        lambda: _run_tail_frontier(undirected, h_warm, frontier_warm), repeats
    )

    # --- simulated parallel seconds: frontier on vs off ------------------
    simulated = {
        "pkmc_synchronous": _simulated_pair("pkmc", undirected, threads),
        "pkmc_degree_order": _simulated_pair(
            "pkmc", undirected, threads, sweep="degree_order"
        ),
        "local": _simulated_pair("local", undirected, threads),
        "pwc": _simulated_pair("pwc", directed, threads),
    }

    return {
        "schema": 1,
        "workload": {
            "num_vertices": num_vertices,
            "num_edges_requested": num_edges,
            "num_edges_undirected": undirected.num_edges,
            "num_edges_directed": directed.num_edges,
            "generator": "chung_lu(seed=1 undirected, seed=2 directed)",
            "threads": threads,
            "repeats": repeats,
        },
        "wall_clock": {
            "full_sweep": {
                "lexsort_s": old_sweep,
                "sort_free_s": new_sweep,
                "speedup": old_sweep / new_sweep if new_sweep else float("inf"),
            },
            "tail_sweeps": {
                "lexsort_full_s": old_tail,
                "frontier_s": new_tail,
                "speedup": old_tail / new_tail if new_tail else float("inf"),
                "lexsort_sweeps": old_tail_sweeps,
                "frontier_sweeps": new_tail_sweeps,
            },
        },
        "simulated_seconds": simulated,
    }


def check_regression(
    current: dict, baseline: dict, tolerance: float = DEFAULT_TOLERANCE
) -> list[str]:
    """Compare a fresh payload against the committed baseline.

    Returns a list of human-readable failures (empty means the gate
    passes).  Wall-clock is compared through speedup *ratios* so the gate
    is robust to slower or faster CI hosts; simulated seconds are
    deterministic and compared directly with ``tolerance`` headroom.
    """
    failures: list[str] = []
    bound = 1.0 + tolerance

    tail = current["wall_clock"]["tail_sweeps"]
    if tail["speedup"] < TAIL_SPEEDUP_FLOOR:
        failures.append(
            f"tail frontier speedup {tail['speedup']:.2f}x is below the "
            f"{TAIL_SPEEDUP_FLOOR:.1f}x acceptance floor"
        )
    for section in ("full_sweep", "tail_sweeps"):
        cur = current["wall_clock"][section]["speedup"]
        base = baseline["wall_clock"][section]["speedup"]
        if cur < base / bound:
            failures.append(
                f"wall-clock {section} speedup regressed: {cur:.2f}x vs "
                f"baseline {base:.2f}x (tolerance {tolerance:.0%})"
            )

    for solver, base_pair in baseline["simulated_seconds"].items():
        cur_pair = current["simulated_seconds"].get(solver)
        if cur_pair is None:
            failures.append(f"solver {solver} missing from current payload")
            continue
        if cur_pair["frontier_s"] > cur_pair["full_s"] * (1.0 + 1e-9):
            failures.append(
                f"{solver}: frontier simulated cost {cur_pair['frontier_s']:.4g}s "
                f"exceeds the full re-scan cost {cur_pair['full_s']:.4g}s"
            )
        if cur_pair["frontier_s"] > base_pair["frontier_s"] * bound:
            failures.append(
                f"{solver}: frontier simulated cost {cur_pair['frontier_s']:.4g}s "
                f"regressed vs baseline {base_pair['frontier_s']:.4g}s "
                f"(tolerance {tolerance:.0%})"
            )
    return failures


def render_kernel_report(payload: dict) -> str:
    """Readable summary of a kernel-bench payload."""
    wall = payload["wall_clock"]
    lines = [
        "kernel bench "
        f"({payload['workload']['num_vertices']} vertices, "
        f"{payload['workload']['num_edges_undirected']} undirected edges)",
        (
            "  full sweep   : lexsort "
            f"{wall['full_sweep']['lexsort_s'] * 1e3:8.2f} ms | sort-free "
            f"{wall['full_sweep']['sort_free_s'] * 1e3:8.2f} ms | "
            f"{wall['full_sweep']['speedup']:5.2f}x"
        ),
        (
            "  tail sweeps  : lexsort "
            f"{wall['tail_sweeps']['lexsort_full_s'] * 1e3:8.2f} ms | frontier "
            f"{wall['tail_sweeps']['frontier_s'] * 1e3:8.2f} ms | "
            f"{wall['tail_sweeps']['speedup']:5.2f}x"
        ),
    ]
    for solver, pair in payload["simulated_seconds"].items():
        lines.append(
            f"  sim {solver:<18}: frontier {pair['frontier_s']:.4g}s | "
            f"full {pair['full_s']:.4g}s"
        )
    return "\n".join(lines)
