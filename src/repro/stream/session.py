"""Streaming sessions: batched edge updates over a maintained k*-core.

A :class:`StreamSession` owns one evolving graph and answers densest-
subgraph queries from the incrementally maintained structure
(:class:`~repro.core.dynamic.DynamicKStarCore`) instead of re-running a
solver per batch.  Around the maintainer it adds the service plumbing
the rest of the repo expects:

* **registry gating** — the session only wraps solvers whose
  :class:`~repro.engine.spec.SolverSpec` declares ``supports_streaming``
  (today: ``pkmc``, whose k*-core answer *is* the maintained state);
* **reports** — :meth:`query` returns a result carrying a
  :class:`~repro.engine.report.RunReport` with the streaming fields
  (``updates_applied`` / ``affected_vertices`` / ``incremental_fraction``
  / ``rebuilds``) stamped through the engine's sanctioned
  :func:`~repro.engine.report.attach_stream_stats` helper;
* **fingerprint-lineage cache invalidation** — with a
  :class:`~repro.store.memo.ResultCache` attached, converged states are
  served from cache keyed by the graph's content fingerprint, and a
  mutation retires exactly the fingerprints *this* session's graph has
  occupied (``cache.invalidate_fingerprint``), never other graphs'
  entries;
* **delta logging** — every applied mutation is appended to an ordered
  op log, exportable via :meth:`save_delta` as a
  :func:`~repro.store.snapshot.save_delta` edge-delta snapshot that
  replays to a bit-identical CSR.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..core.dynamic import DynamicKStarCore
from ..core.results import UDSResult
from ..engine.report import attach_stream_stats
from ..engine.spec import get_solver
from ..errors import EngineError
from ..store.memo import ResultCache

__all__ = ["StreamSession"]

_MODES = ("incremental", "rebuild")


class StreamSession:
    """One evolving graph plus the machinery to query it cheaply.

    ``mode="incremental"`` (default) maintains core numbers through the
    localized per-update path with rebuild fallback;
    ``mode="rebuild"`` pins the historical rebuild-per-refresh baseline
    (what the streaming bench compares against).  ``cache`` is optional;
    without one every query recomputes nothing anyway — the maintained
    state is already warm — but with one, repeated queries of an
    unchanged graph skip even the O(n) answer extraction.
    """

    def __init__(
        self,
        num_vertices: int,
        *,
        mode: str = "incremental",
        solver: str = "pkmc",
        region_fraction: float = 0.25,
        cache: ResultCache | None = None,
    ):
        if mode not in _MODES:
            raise EngineError(
                f"unknown streaming mode {mode!r}; choose from {_MODES}"
            )
        spec = get_solver("uds", solver)
        if not spec.supports_streaming:
            raise EngineError(
                f"solver {solver!r} does not declare supports_streaming; "
                "its answers cannot be maintained incrementally"
            )
        self._spec = spec
        self._mode = mode
        self._cache = cache
        self._tracker = DynamicKStarCore(
            num_vertices,
            incremental=(mode == "incremental"),
            region_fraction=region_fraction,
        )
        self._delta: list[tuple[int, int, int]] = []
        self._lineage: list[str] = []
        self._base_fingerprint: str | None = None

    @classmethod
    def from_graph(cls, graph, **kwargs) -> "StreamSession":
        """Seed a session with an existing graph as the delta base.

        The graph's fingerprint becomes the base of the session's delta
        log, so :meth:`save_delta` writes a log replayable against it.
        """
        session = cls(graph.num_vertices, **kwargs)
        session._tracker.insert_edges(graph.edges())
        session._delta.clear()  # the seed is the base, not part of the log
        session._base_fingerprint = graph.fingerprint()
        return session

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _retire_lineage(self) -> int:
        """Invalidate cached results for every fingerprint this graph held."""
        if self._cache is None or not self._lineage:
            self._lineage.clear()
            return 0
        dropped = 0
        for fingerprint in self._lineage:
            dropped += self._cache.invalidate_fingerprint(fingerprint)
        self._lineage.clear()
        return dropped

    def apply(
        self,
        insertions: Sequence | Iterable = (),
        deletions: Sequence | Iterable = (),
    ) -> dict[str, int]:
        """Apply one batch of edge mutations; return what actually changed.

        Insertions land before deletions; both are validated up front
        (:class:`~repro.errors.StreamMutationError` leaves the graph
        untouched).  Duplicate insertions and absent deletions are
        counted-out no-ops and do not enter the delta log.  Any applied
        change retires the session's cached fingerprint lineage.
        """
        tracker = self._tracker
        # Canonicalize BOTH batches before applying anything, so one
        # malformed row cannot leave the batch half-applied.
        insert_keys = [tracker._canonical(u, v) for u, v in insertions]
        delete_keys = [tracker._canonical(u, v) for u, v in deletions]
        inserted = deleted = 0
        for u, v in insert_keys:
            if tracker.insert_edge(u, v):
                self._delta.append((+1, u, v))
                inserted += 1
        for u, v in delete_keys:
            if tracker.delete_edge(u, v):
                self._delta.append((-1, u, v))
                deleted += 1
        invalidated = self._retire_lineage() if inserted or deleted else 0
        return {
            "inserted": inserted,
            "deleted": deleted,
            "invalidated": invalidated,
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def mode(self) -> str:
        """The session's refresh mode (``incremental`` or ``rebuild``)."""
        return self._mode

    @property
    def num_edges(self) -> int:
        """Current number of edges."""
        return self._tracker.num_edges

    @property
    def num_vertices(self) -> int:
        """Number of vertices (fixed at construction)."""
        return self._tracker.num_vertices

    def k_star(self) -> int:
        """Current maximum core number (refreshing if needed)."""
        return self._tracker.k_star()

    def core_numbers(self) -> np.ndarray:
        """Current core numbers (a copy, refreshing if needed)."""
        return self._tracker.core_numbers()

    def graph(self):
        """The current graph as a materialized CSR."""
        return self._tracker.graph()

    def _incremental_fraction(self) -> float:
        stats = self._tracker.stats()
        refreshes = stats["incremental_refreshes"] + stats["rebuilds"]
        if refreshes == 0:
            return 1.0 if self._mode == "incremental" else 0.0
        return stats["incremental_refreshes"] / refreshes

    def query(self) -> UDSResult:
        """The current densest subgraph, with a stamped streaming report.

        Answers come warm from the maintained structure; with a cache
        attached, a converged state is keyed by its content fingerprint
        and re-served as a clone on repeat queries.  Either way the
        result's report carries the session's maintenance counters.
        """
        tracker = self._tracker
        cache_hit = False
        if self._cache is not None:
            graph = tracker.graph()  # refreshes + materializes
            fingerprint = graph.fingerprint()
            key = (fingerprint, self._spec.kind, self._spec.name, "stream")
            cached = self._cache.get(key)
            if cached is not None:
                result = cached
                cache_hit = True
            else:
                result = tracker.densest_subgraph()
                self._cache.put(key, result)
            if fingerprint not in self._lineage:
                self._lineage.append(fingerprint)
        else:
            result = tracker.densest_subgraph()
            graph = None
        stats = tracker.stats()
        return attach_stream_stats(
            result,
            spec=self._spec,
            updates_applied=stats["updates_applied"],
            affected_vertices=stats["affected_total"],
            incremental_fraction=self._incremental_fraction(),
            rebuilds=stats["rebuilds"],
            graph=graph,
            cache_hit=cache_hit,
        )

    # ------------------------------------------------------------------
    # Delta log
    # ------------------------------------------------------------------
    @property
    def delta_log(self) -> tuple[tuple[int, int, int], ...]:
        """The ordered ``(op, u, v)`` mutations applied since the base."""
        return tuple(self._delta)

    def save_delta(self, path) -> int:
        """Export the session's op log as an edge-delta snapshot.

        Requires a base graph (:meth:`from_graph`); the written log
        replays against that base to a CSR bit-identical to
        :meth:`graph` — see :func:`repro.store.snapshot.replay_delta`.
        Returns the number of logged ops written.
        """
        if self._base_fingerprint is None:
            raise EngineError(
                "save_delta needs a base graph: build the session with "
                "StreamSession.from_graph(...) so the log has a base "
                "fingerprint to replay against"
            )
        from ..store.snapshot import save_delta

        return save_delta(path, self._base_fingerprint, self._delta)

    def stats(self) -> dict:
        """Session counters: maintainer stats plus streaming derivates."""
        stats = dict(self._tracker.stats())
        stats["mode"] = self._mode
        stats["incremental_fraction"] = self._incremental_fraction()
        stats["delta_ops"] = len(self._delta)
        stats["lineage_depth"] = len(self._lineage)
        return stats
