"""repro.stream — batched edge updates with incremental k*-core answers.

The streaming layer (ROADMAP item 3) turns the densest-subgraph answer
into a *maintained* object: a :class:`StreamSession` absorbs batches of
edge insertions/deletions and serves ``k_star()`` / ``core_numbers()`` /
``query()`` from the localized dynamic maintainer
(:class:`~repro.core.dynamic.DynamicKStarCore`) instead of re-running a
solver per batch — falling back to a full rebuild only when an affected
region grows past a configured fraction of the vertex set.  See
``docs/streaming.md`` for the affected-region bounds and the committed
``BENCH_stream.json`` gate (``repro-bench stream``) for the measured
incremental-vs-rebuild win.

Typical use::

    from repro.datasets import load_undirected
    from repro.stream import StreamSession

    session = StreamSession.from_graph(load_undirected("PT"))
    session.apply(insertions=[(0, 1)], deletions=[(2, 3)])
    result = session.query()          # warm answer, streaming report
    print(result.k_star, result.report.updates_applied)
"""

from .session import StreamSession

__all__ = ["StreamSession"]
