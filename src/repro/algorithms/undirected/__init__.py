"""Undirected DSD baselines compared against PKMC in the paper's Exp-1..4."""

from .binary_search import kstar_binary_search_uds
from .charikar import charikar_peel
from .clique_density import (
    brute_force_triangle_densest,
    total_triangles,
    triangle_counts,
    triangle_densest_peel,
)
from .coreexact import coreexact_uds
from .density_friendly import density_friendly_decomposition, density_profile
from .exact import brute_force_uds, exact_uds_goldberg
from .greedypp import greedypp_uds
from .local import local_core_decomposition, local_uds
from .pbu import pbu_uds
from .pfw import best_prefix_density, frank_wolfe_loads, pfw_uds
from .pkc import pkc_core_decomposition, pkc_uds
from .truss import edge_support, max_truss_uds, truss_decomposition

__all__ = [
    "charikar_peel",
    "kstar_binary_search_uds",
    "coreexact_uds",
    "density_friendly_decomposition",
    "density_profile",
    "edge_support",
    "truss_decomposition",
    "max_truss_uds",
    "triangle_counts",
    "total_triangles",
    "triangle_densest_peel",
    "brute_force_triangle_densest",
    "exact_uds_goldberg",
    "brute_force_uds",
    "greedypp_uds",
    "local_uds",
    "local_core_decomposition",
    "pbu_uds",
    "pfw_uds",
    "frank_wolfe_loads",
    "best_prefix_density",
    "pkc_uds",
    "pkc_core_decomposition",
]
