"""Exact undirected densest-subgraph solvers.

* :func:`exact_uds_goldberg` — Goldberg's 1984 max-flow construction with
  binary search over the density guess.  All capacities are scaled by
  D = n^2 so every value is an exact integer (distinct subgraph densities
  differ by at least 1/D, which makes the final interval conclusive).
* :func:`brute_force_uds` — exhaustive subset enumeration, the independent
  oracle used by the property tests (graphs up to ~15 vertices).

Both are deliberately small-graph tools: the paper's entire premise is
that exact solvers do not scale, which the benchmarks demonstrate by cost
model rather than by running them on the large replicas.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from ...engine.spec import register_solver
from ...errors import EmptyGraphError
from ...flow.maxflow import FlowNetwork
from ...graph.undirected import UndirectedGraph
from ...core.results import UDSResult
from .common import induced_density

__all__ = ["exact_uds_goldberg", "brute_force_uds"]


def _goldberg_cut(
    graph: UndirectedGraph, g_scaled: int, scale: int
) -> np.ndarray | None:
    """Return a vertex set with density > g_scaled/scale, or None.

    Builds Goldberg's network (capacities pre-multiplied by ``scale``) and
    reads the source side of the min cut.
    """
    n, m = graph.num_vertices, graph.num_edges
    source, sink = n, n + 1
    net = FlowNetwork(n + 2)
    degrees = graph.degrees()
    for v in range(n):
        net.add_edge(source, v, m * scale)
        net.add_edge(v, sink, m * scale + 2 * g_scaled - int(degrees[v]) * scale)
    edges = graph.edges()
    net.add_edges(edges[:, 0], edges[:, 1], scale)
    net.add_edges(edges[:, 1], edges[:, 0], scale)
    cut_value = net.max_flow(source, sink)
    if cut_value >= n * m * scale - 0.5:
        return None
    side = net.min_cut_source_side(source)
    return side[side < n]


@register_solver("exact", kind="uds", guarantee="exact", cost="serial")
def exact_uds_goldberg(graph: UndirectedGraph) -> UDSResult:
    """Return the exact densest subgraph via max-flow binary search."""
    if graph.num_edges == 0:
        raise EmptyGraphError("UDS is undefined on a graph without edges")
    n = graph.num_vertices
    scale = n * n
    lo, hi = 0, graph.num_edges * scale + 1
    best = _goldberg_cut(graph, 0, scale)
    if best is None or best.size == 0:
        raise EmptyGraphError("no positive-density subgraph found")
    iterations = 1
    while hi - lo > 1:
        mid = (lo + hi) // 2
        candidate = _goldberg_cut(graph, mid, scale)
        iterations += 1
        if candidate is not None and candidate.size:
            lo = mid
            best = candidate
        else:
            hi = mid
    density = induced_density(graph, best)
    return UDSResult(
        algorithm="ExactFlow",
        vertices=np.sort(best),
        density=density,
        iterations=iterations,
    )


@register_solver("brute-force", kind="uds", guarantee="exact", cost="serial")
def brute_force_uds(graph: UndirectedGraph, max_vertices: int = 16) -> UDSResult:
    """Exhaustively find the densest subgraph (test oracle only)."""
    n = graph.num_vertices
    if n > max_vertices:
        raise ValueError(
            f"brute force is limited to {max_vertices} vertices, got {n}"
        )
    if graph.num_edges == 0:
        raise EmptyGraphError("UDS is undefined on a graph without edges")
    best_density = -1.0
    best_set: tuple[int, ...] = ()
    vertex_ids = range(n)
    for size in range(1, n + 1):
        for subset in combinations(vertex_ids, size):
            density = induced_density(graph, np.asarray(subset))
            if density > best_density:
                best_density = density
                best_set = subset
    return UDSResult(
        algorithm="BruteForce",
        vertices=np.asarray(best_set, dtype=np.int64),
        density=best_density,
    )
