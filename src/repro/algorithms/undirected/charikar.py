"""Charikar's serial peeling 2-approximation for UDS (Charikar, 2000).

Iteratively removes a minimum-degree vertex and returns the densest of the
n intermediate subgraphs.  O(m + n) with the Batagelj–Zaversnik bucket
queue.  This is the classic baseline every densest-subgraph paper starts
from; the ICDE'23 paper's Section I explains why its strong sequential
dependency (every removal must update neighbour degrees before the next
minimum can be found) makes it a poor candidate for parallelisation.
"""

from __future__ import annotations

import numpy as np

from ...engine.spec import register_solver
from ...errors import EmptyGraphError
from ...graph.peeling import MinDegreeBucketQueue
from ...graph.undirected import UndirectedGraph
from ...runtime.simruntime import SimRuntime
from ..undirected.common import charge_serial_peel
from ...core.results import UDSResult

__all__ = ["charikar_peel"]


@register_solver(
    "charikar", kind="uds", guarantee="2-approx", cost="serial", supports_runtime=True
)
def charikar_peel(
    graph: UndirectedGraph, runtime: SimRuntime | None = None
) -> UDSResult:
    """Return a 2-approximate UDS by min-degree peeling.

    The returned subgraph's density is at least half the optimum; tests
    verify this against the exact flow-based solver.
    """
    if graph.num_edges == 0:
        raise EmptyGraphError("UDS is undefined on a graph without edges")
    n = graph.num_vertices
    queue = MinDegreeBucketQueue(graph.degrees())
    alive = np.ones(n, dtype=bool)
    edges_left = graph.num_edges
    removal_order = np.empty(n, dtype=np.int64)

    best_density = edges_left / n
    best_prefix = 0  # number of removals already performed at the best point
    for step in range(n):
        v, _ = queue.pop_min()
        removal_order[step] = v
        alive[v] = False
        for u in graph.neighbors(v):
            if alive[u]:
                queue.decrease_key(u)
                edges_left -= 1
        vertices_left = n - step - 1
        if vertices_left > 0:
            density = edges_left / vertices_left
            if density > best_density:
                best_density = density
                best_prefix = step + 1

    vertices = np.sort(removal_order[best_prefix:])
    if runtime is not None:
        charge_serial_peel(runtime, graph)
    return UDSResult(
        algorithm="Charikar",
        vertices=vertices,
        density=best_density,
        iterations=n,
        simulated_seconds=runtime.now if runtime is not None else 0.0,
    )
