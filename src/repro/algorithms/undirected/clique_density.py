"""Triangle-densest subgraph (k-clique density with k = 3).

Tsourakakis (WWW 2015) generalises edge density to k-clique density
tau_k(S) = (#k-cliques in G[S]) / |S|; the paper's related work surveys
this line and its conclusion proposes relating such denser-than-edges
notions to the classic densest subgraph.  This module implements the
k = 3 instance:

* :func:`triangle_counts` — per-vertex triangle participation counts;
* :func:`triangle_densest_peel` — Tsourakakis's peeling algorithm
  (iteratively remove the vertex in the fewest triangles, return the
  best prefix), a 1/3-approximation of the triangle-densest subgraph;
* :func:`brute_force_triangle_densest` — the test oracle.

Triangle-dense subgraphs are near-cliques: on social graphs the triangle
objective rejects the bipartite-ish cores that edge density tolerates.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from ...core.results import UDSResult
from ...errors import EmptyGraphError
from ...graph.undirected import UndirectedGraph

__all__ = [
    "triangle_counts",
    "total_triangles",
    "triangle_densest_peel",
    "brute_force_triangle_densest",
]


def _neighbor_sets(graph: UndirectedGraph) -> list[set[int]]:
    return [set(graph.neighbors(v).tolist()) for v in range(graph.num_vertices)]


def triangle_counts(graph: UndirectedGraph) -> np.ndarray:
    """Count, for every vertex, the triangles it participates in."""
    counts = np.zeros(graph.num_vertices, dtype=np.int64)
    sets = _neighbor_sets(graph)
    # edges().tolist() iterates plain Python ints — the set-intersection
    # body is inherently per-edge, but the per-row array unboxing of
    # iter_edges() is not.
    for u, v in graph.edges().tolist():
        small, large = (u, v) if len(sets[u]) <= len(sets[v]) else (v, u)
        for w in sets[small]:
            if w > v and w in sets[large]:
                # u < v < w: counted exactly once.
                counts[u] += 1
                counts[v] += 1
                counts[w] += 1
    return counts


def total_triangles(graph: UndirectedGraph) -> int:
    """Total number of triangles in the graph."""
    return int(triangle_counts(graph).sum()) // 3


def triangle_densest_peel(graph: UndirectedGraph) -> UDSResult:
    """1/3-approximate triangle-densest subgraph by min-triangle peeling."""
    if graph.num_edges == 0:
        raise EmptyGraphError("triangle density is undefined without edges")
    n = graph.num_vertices
    sets = _neighbor_sets(graph)
    counts = triangle_counts(graph)
    alive = np.ones(n, dtype=bool)
    triangles_left = int(counts.sum()) // 3
    vertices_left = n

    best_density = triangles_left / vertices_left
    best_prefix = 0
    removal_order = np.empty(n, dtype=np.int64)
    import heapq

    heap = [(int(counts[v]), v) for v in range(n)]
    heapq.heapify(heap)
    for step in range(n):
        while True:
            key, v = heapq.heappop(heap)
            if alive[v] and key == counts[v]:
                break
        alive[v] = False
        removal_order[step] = v
        # Every triangle through v dies; decrement its two other corners.
        live_neighbors = [u for u in sets[v] if alive[u]]
        for i, u in enumerate(live_neighbors):
            for w in live_neighbors[i + 1:]:
                if w in sets[u]:
                    triangles_left -= 1
                    counts[u] -= 1
                    counts[w] -= 1
                    heapq.heappush(heap, (int(counts[u]), u))
                    heapq.heappush(heap, (int(counts[w]), w))
        counts[v] = 0
        vertices_left -= 1
        if vertices_left > 0:
            density = triangles_left / vertices_left
            if density > best_density:
                best_density = density
                best_prefix = step + 1
    return UDSResult(
        algorithm="TriangleDensest",
        vertices=np.sort(removal_order[best_prefix:]),
        density=best_density,
        iterations=n,
    )


def brute_force_triangle_densest(
    graph: UndirectedGraph, max_vertices: int = 14
) -> UDSResult:
    """Exhaustive triangle-densest subgraph (test oracle)."""
    n = graph.num_vertices
    if n > max_vertices:
        raise ValueError(f"brute force limited to {max_vertices} vertices")
    if graph.num_edges == 0:
        raise EmptyGraphError("triangle density is undefined without edges")
    sets = _neighbor_sets(graph)
    best_density = -1.0
    best_subset: tuple[int, ...] = ()
    for size in range(1, n + 1):
        for subset in combinations(range(n), size):
            member = set(subset)
            triangles = 0
            for u, v, w in combinations(subset, 3):
                if v in sets[u] and w in sets[u] and w in sets[v]:
                    triangles += 1
            density = triangles / size
            if density > best_density:
                best_density = density
                best_subset = subset
            del member
    return UDSResult(
        algorithm="BruteForceTriangle",
        vertices=np.asarray(best_subset, dtype=np.int64),
        density=best_density,
    )
