"""Density-friendly decomposition (Tatti & Gionis 2015; Danisch et al. 2017).

The paper's related work surveys this "nested dense subgraphs" line: the
*locally-dense decomposition* of a graph is the chain
emptyset = B_0 ⊂ B_1 ⊂ ... ⊂ B_k = V where each B_{i+1} maximises the
marginal density (|E(B)| - |E(B_i)|) / (|B| - |B_i|) over supersets of
B_i.  The first block B_1 is exactly the (maximal) densest subgraph, and
the per-block marginal densities are non-increasing — a density profile
of the whole graph rather than a single subgraph.

Implemented by repeated max-flow: each step solves a *conditioned*
densest-subgraph problem where the current inner block is free (its
vertices cost nothing), which the Goldberg construction accommodates by
wiring the inner block straight to the source.  Exact, and therefore a
small-graph tool like the other flow solvers.
"""

from __future__ import annotations

import numpy as np

from ...errors import EmptyGraphError
from ...flow.maxflow import FlowNetwork
from ...graph.undirected import UndirectedGraph

__all__ = ["density_friendly_decomposition", "density_profile"]


def _conditioned_cut(
    graph: UndirectedGraph,
    inner: np.ndarray,
    g_scaled: int,
    scale: int,
) -> np.ndarray | None:
    """Source side with marginal density > g/scale given ``inner`` free."""
    n, m = graph.num_vertices, graph.num_edges
    source, sink = n, n + 1
    net = FlowNetwork(n + 2)
    degrees = graph.degrees()
    inner_mask = np.zeros(n, dtype=bool)
    inner_mask[inner] = True
    huge = 4.0 * m * scale + 4.0 * g_scaled + 4.0
    for v in range(n):
        net.add_edge(source, v, m * scale)
        if inner_mask[v]:
            # Inner vertices are free: force them onto the source side.
            net.add_edge(source, v, huge)
            net.add_edge(v, sink, m * scale)
        else:
            net.add_edge(v, sink, m * scale + 2 * g_scaled - int(degrees[v]) * scale)
    edges = graph.edges()
    net.add_edges(edges[:, 0], edges[:, 1], scale)
    net.add_edges(edges[:, 1], edges[:, 0], scale)
    net.max_flow(source, sink)
    side = net.min_cut_source_side(source)
    members = side[side < n]
    if members.size <= inner.size:
        return None
    return members


def _marginal_density(
    graph: UndirectedGraph, block: np.ndarray, inner: np.ndarray
) -> float:
    inner_mask = np.zeros(graph.num_vertices, dtype=bool)
    inner_mask[inner] = True
    block_mask = np.zeros(graph.num_vertices, dtype=bool)
    block_mask[block] = True
    heads = graph.heads()
    in_block = block_mask[heads] & block_mask[graph.indices] & (heads < graph.indices)
    in_inner = inner_mask[heads] & inner_mask[graph.indices] & (heads < graph.indices)
    edge_gain = int(np.count_nonzero(in_block)) - int(np.count_nonzero(in_inner))
    vertex_gain = block.size - inner.size
    return edge_gain / vertex_gain if vertex_gain else 0.0


def density_friendly_decomposition(
    graph: UndirectedGraph, max_vertices: int = 400
) -> list[tuple[np.ndarray, float]]:
    """Return the locally-dense chain as ``[(block_vertices, marginal_density), ...]``.

    Blocks are cumulative (each contains the previous); the first block is
    the maximal densest subgraph and the marginal densities are
    non-increasing (property-tested).
    """
    if graph.num_edges == 0:
        raise EmptyGraphError("decomposition is undefined without edges")
    n = graph.num_vertices
    if n > max_vertices:
        raise ValueError(f"flow-based decomposition limited to {max_vertices} vertices")
    scale = n * n
    chain: list[tuple[np.ndarray, float]] = []
    inner = np.empty(0, dtype=np.int64)
    while inner.size < n:
        # Binary search the largest marginal density achievable beyond inner.
        lo, hi = 0, graph.num_edges * scale + 1
        best = _conditioned_cut(graph, inner, 0, scale)
        if best is None:
            # No edges left beyond inner: close the chain with the rest.
            rest = np.setdiff1d(np.arange(n), inner)
            chain.append((np.sort(np.concatenate([inner, rest])), 0.0))
            break
        while hi - lo > 1:
            mid = (lo + hi) // 2
            candidate = _conditioned_cut(graph, inner, mid, scale)
            if candidate is not None:
                lo = mid
                best = candidate
            else:
                hi = mid
        block = np.sort(best)
        chain.append((block, _marginal_density(graph, block, inner)))
        inner = block
    return chain


def density_profile(graph: UndirectedGraph, max_vertices: int = 400) -> np.ndarray:
    """Per-vertex marginal density: the density of the block that first
    absorbs each vertex (a vertex-level 'how dense is my best context')."""
    chain = density_friendly_decomposition(graph, max_vertices=max_vertices)
    profile = np.zeros(graph.num_vertices)
    seen = np.zeros(graph.num_vertices, dtype=bool)
    for block, marginal in chain:
        fresh = block[~seen[block]]
        profile[fresh] = marginal
        seen[fresh] = True
    return profile
