"""Local — full h-index core decomposition (Sariyuce et al.; Algorithm 1).

Runs synchronous h-index sweeps until *no* vertex changes, at which point
every vertex's value equals its core number.  The k*-core (the vertices at
the maximum) is then a 2-approximate UDS.  This is the state-of-the-art
parallel nucleus-decomposition baseline the paper optimises: PKMC is Local
plus the Theorem-1 early stop, so the iteration gap between the two (paper
Table 6) is the paper's core claim for undirected graphs.
"""

from __future__ import annotations

import numpy as np

from ...engine.spec import register_solver
from ...errors import EmptyGraphError
from ...graph.undirected import UndirectedGraph
from ...runtime.simruntime import SimRuntime
from ...core.hindex import synchronous_sweep
from ...core.results import UDSResult
from ...kernels.frontier import frontier_synchronous_sweep
from .common import induced_density

__all__ = ["local_uds", "local_core_decomposition"]


def local_core_decomposition(
    graph: UndirectedGraph,
    runtime: SimRuntime | None = None,
    max_iterations: int | None = None,
    frontier: bool = True,
) -> tuple[np.ndarray, int]:
    """Return ``(core_numbers, iterations)`` via h-index iteration.

    ``iterations`` counts every sweep including the final one that detects
    convergence, matching how the paper's Table 6 counts Local.  With
    ``frontier`` (the default) the convergence tail recomputes — and
    charges to the runtime — only vertices with a changed neighbour; the
    per-sweep arrays, and hence the iteration count, are identical to
    full sweeping.
    """
    n = graph.num_vertices
    h = graph.degrees().astype(np.int64)
    limit = max_iterations if max_iterations is not None else n + 2
    sweep_costs = graph.degrees().astype(np.float64) + 4.0
    iterations = 0
    rt = runtime
    if not frontier:
        while iterations < limit:
            if rt is not None:
                rt.parfor(sweep_costs)
            new_h = synchronous_sweep(graph, h, runtime=rt)
            iterations += 1
            if np.array_equal(new_h, h):
                break
            h = new_h
        return h, iterations
    active: np.ndarray | None = None
    while iterations < limit:
        if rt is not None:
            rt.parfor(sweep_costs if active is None else sweep_costs[active])
        new_h, active = frontier_synchronous_sweep(
            graph, h, frontier=active, runtime=rt
        )
        iterations += 1
        # An empty next frontier certifies the fixed point (a changed
        # vertex always wakes its neighbours, and changing requires
        # degree >= 1).
        if active.size == 0:
            break
        h = new_h
    return new_h if iterations else h, iterations


@register_solver(
    "local",
    kind="uds",
    guarantee="2-approx",
    cost="parallel",
    supports_runtime=True,
    supports_frontier=True,
    supports_sanitize=True,
)
def local_uds(
    graph: UndirectedGraph,
    runtime: SimRuntime | None = None,
    frontier: bool = True,
) -> UDSResult:
    """2-approximate UDS via full core decomposition + max extraction."""
    if graph.num_edges == 0:
        raise EmptyGraphError("UDS is undefined on a graph without edges")
    rt = runtime or SimRuntime(num_threads=1)
    with rt.parallel_region():
        core_numbers, iterations = local_core_decomposition(
            graph, runtime=rt, frontier=frontier
        )
        k_star = int(core_numbers.max())
        rt.parfor(np.full(graph.num_vertices, 1.0))  # max-extraction reduction
    vertices = np.flatnonzero(core_numbers == k_star)
    return UDSResult(
        algorithm="Local",
        vertices=vertices,
        density=induced_density(graph, vertices),
        iterations=iterations,
        k_star=k_star,
        simulated_seconds=rt.now,
        extras={"core_numbers": core_numbers},
    )
