"""Shared helpers for the undirected baselines."""

from __future__ import annotations

import numpy as np

from ...graph.undirected import UndirectedGraph
from ...kernels.density import induced_density
from ...runtime.simruntime import SimRuntime

__all__ = [
    "induced_density",
    "batch_neighbor_array",
    "charge_serial_peel",
]


def batch_neighbor_array(graph: UndirectedGraph, vertices: np.ndarray) -> np.ndarray:
    """Concatenate the CSR adjacency slices of a batch of vertices."""
    if vertices.size == 0:
        return np.empty(0, dtype=np.int64)
    slices = [
        graph.indices[graph.indptr[v]:graph.indptr[v + 1]] for v in vertices
    ]
    return np.concatenate(slices) if slices else np.empty(0, dtype=np.int64)


def charge_serial_peel(runtime: SimRuntime, graph: UndirectedGraph) -> None:
    """Account one full serial peel: O(m + n) work on a single thread.

    Used by the inherently sequential baselines — their work cannot be
    spread over threads, which is exactly why the paper replaces them.
    """
    runtime.charge_serial(float(2 * graph.num_edges + graph.num_vertices))
