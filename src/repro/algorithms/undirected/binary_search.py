"""The k*-core binary-search strawman (paper Section IV-B).

Before introducing the Theorem-1 early stop, the paper discusses a simple
alternative for finding the k*-core without decomposing the whole graph:
guess k̂, keep only vertices of degree >= k̂, core-decompose the induced
subgraph, and bisect on the outcome.  Its worst case is O((m + n) log n) —
"this method may be even slower than the algorithms above" — which is why
PKMC takes the early-stop route instead.  Implemented here as an ablation
comparator (`benchmarks/bench_ablations.py` measures both).
"""

from __future__ import annotations

import numpy as np

from ...core.results import UDSResult
from ...engine.spec import register_solver
from ...errors import EmptyGraphError
from ...graph.undirected import UndirectedGraph
from ...runtime.simruntime import SimRuntime
from .common import induced_density
from .pkc import pkc_core_decomposition

__all__ = ["kstar_binary_search_uds"]


def _max_core_at_least(graph: UndirectedGraph, guess: int) -> tuple[int, np.ndarray]:
    """Return (k*, core) of the subgraph induced by degree >= guess vertices.

    If the returned k* is >= guess it equals the whole graph's k*
    (removing vertices of degree < guess cannot touch any k-core with
    k >= guess).
    """
    candidates = np.flatnonzero(graph.degrees() >= guess)
    if candidates.size == 0:
        return 0, candidates
    sub, original_ids = graph.induced_subgraph(candidates)
    if sub.num_edges == 0:
        return 0, np.empty(0, dtype=np.int64)
    _, k_star, _, core = pkc_core_decomposition(sub)
    return k_star, original_ids[core]


@register_solver(
    "binary-search",
    kind="uds",
    guarantee="2-approx",
    cost="parallel",
    supports_runtime=True,
)
def kstar_binary_search_uds(
    graph: UndirectedGraph, runtime: SimRuntime | None = None
) -> UDSResult:
    """2-approximate UDS via binary search on k̂ (the Section IV-B strawman)."""
    if graph.num_edges == 0:
        raise EmptyGraphError("UDS is undefined on a graph without edges")
    rt = runtime or SimRuntime(num_threads=1)
    degrees = graph.degrees()
    low, high = 1, int(degrees.max())
    best_k = 0
    best_core = np.empty(0, dtype=np.int64)
    probes = 0
    while low <= high:
        guess = (low + high) // 2
        # Each probe re-induces a subgraph and core-decomposes it.
        candidate_count = int(np.count_nonzero(degrees >= guess))
        rt.parfor(float(graph.num_vertices + 2 * graph.num_edges))
        k_star, core = _max_core_at_least(graph, guess)
        probes += 1
        if k_star >= guess:
            # The guess is confirmed: this k* is the global one.
            best_k, best_core = k_star, core
            low = k_star + 1
        else:
            high = guess - 1
        del candidate_count
    if best_k == 0:
        # Degenerate fallback: decompose the whole graph (charged to the
        # simulated runtime like any other probe).
        _, best_k, _, best_core = pkc_core_decomposition(graph, runtime=rt)
        probes += 1
    return UDSResult(
        algorithm="BinarySearchK*",
        vertices=np.sort(best_core),
        density=induced_density(graph, best_core),
        iterations=probes,
        k_star=best_k,
        simulated_seconds=rt.now,
    )
