"""Greedy++ — iterated load-aware peeling (Boob et al., WWW 2020).

An extension baseline (paper Table 1 cites it among the 2-approximations):
repeat Charikar's peel T times, but order removals by degree *plus* a load
carried over from earlier rounds; each round's loads steer later rounds
away from prematurely peeling dense-region vertices, converging toward the
true densest subgraph as T grows.
"""

from __future__ import annotations

import heapq

import numpy as np

from ...engine.spec import register_solver
from ...errors import EmptyGraphError
from ...graph.undirected import UndirectedGraph
from ...runtime.simruntime import SimRuntime
from ...core.results import UDSResult
from .common import charge_serial_peel

__all__ = ["greedypp_uds"]


def _one_load_aware_peel(
    graph: UndirectedGraph, loads: np.ndarray
) -> tuple[np.ndarray, float, np.ndarray]:
    """One peel ordered by load + degree; returns (best set, density, loads)."""
    n = graph.num_vertices
    degree = graph.degrees().astype(np.int64)
    alive = np.ones(n, dtype=bool)
    edges_left = graph.num_edges
    # Lazy-deletion heap keyed by load + current degree.
    heap = [(float(loads[v] + degree[v]), v) for v in range(n)]
    heapq.heapify(heap)
    removal_order = np.empty(n, dtype=np.int64)
    new_loads = loads.copy()
    best_density = edges_left / n
    best_prefix = 0
    step = 0
    while heap:
        key, v = heapq.heappop(heap)
        if not alive[v] or key != float(loads[v] + degree[v]):
            continue
        alive[v] = False
        new_loads[v] = loads[v] + degree[v]
        removal_order[step] = v
        for u in graph.neighbors(v):
            if alive[u]:
                degree[u] -= 1
                edges_left -= 1
                heapq.heappush(heap, (float(loads[u] + degree[u]), u))
        step += 1
        vertices_left = n - step
        if vertices_left > 0:
            density = edges_left / vertices_left
            if density > best_density:
                best_density = density
                best_prefix = step
    return np.sort(removal_order[best_prefix:]), best_density, new_loads


@register_solver(
    "greedypp", kind="uds", guarantee="heuristic", cost="serial", supports_runtime=True
)
def greedypp_uds(
    graph: UndirectedGraph,
    num_rounds: int = 8,
    runtime: SimRuntime | None = None,
) -> UDSResult:
    """Return the best subgraph found by ``num_rounds`` load-aware peels."""
    if graph.num_edges == 0:
        raise EmptyGraphError("UDS is undefined on a graph without edges")
    if num_rounds < 1:
        raise ValueError("num_rounds must be >= 1")
    loads = np.zeros(graph.num_vertices)
    best_vertices: np.ndarray | None = None
    best_density = -1.0
    for _ in range(num_rounds):
        vertices, density, loads = _one_load_aware_peel(graph, loads)
        if runtime is not None:
            charge_serial_peel(runtime, graph)
        if density > best_density:
            best_density = density
            best_vertices = vertices
    assert best_vertices is not None
    return UDSResult(
        algorithm="Greedy++",
        vertices=best_vertices,
        density=best_density,
        iterations=num_rounds,
        simulated_seconds=runtime.now if runtime is not None else 0.0,
    )
