"""PFW — parallel Frank–Wolfe (1+eps)-approximation for UDS.

Follows the convex-programming view of Danisch et al. (2017) / Su & Vu
(2020): each edge owns one unit of mass split between its endpoints, the
vertex load r(v) is the mass it receives, and the densest subgraph is a
top-prefix of the vertices ordered by the limit loads.  Each Frank–Wolfe
round re-routes every edge's mass toward its lighter endpoint with step
size 2/(t+2) — embarrassingly parallel over edges — and the number of
rounds needed for a (1+eps) guarantee grows with the maximum degree, which
is why the paper measures PFW as up to two orders of magnitude slower than
PKMC even though each round is fast.
"""

from __future__ import annotations

import numpy as np

from ...engine.spec import register_solver
from ...errors import EmptyGraphError
from ...graph.undirected import UndirectedGraph
from ...runtime.simruntime import SimRuntime
from ...core.results import UDSResult

__all__ = ["pfw_uds", "frank_wolfe_loads", "best_prefix_density"]


def frank_wolfe_loads(
    graph: UndirectedGraph,
    num_rounds: int,
    runtime: SimRuntime | None = None,
) -> np.ndarray:
    """Run ``num_rounds`` Frank–Wolfe rounds; return the vertex loads r."""
    edges = graph.edges()
    src, dst = edges[:, 0], edges[:, 1]
    m = src.size
    # alpha[e] = fraction of edge e's unit mass assigned to src[e].
    alpha = np.full(m, 0.5)
    loads = np.zeros(graph.num_vertices)
    np.add.at(loads, src, alpha)
    np.add.at(loads, dst, 1.0 - alpha)
    for t in range(num_rounds):
        gamma = 2.0 / (t + 2.0)
        target_is_src = loads[src] < loads[dst]
        alpha = (1.0 - gamma) * alpha + gamma * target_is_src
        loads = np.zeros(graph.num_vertices)
        np.add.at(loads, src, alpha)
        np.add.at(loads, dst, 1.0 - alpha)
        if runtime is not None:
            runtime.parfor(float(3 * m))  # re-route + two load scatters
    return loads


def best_prefix_density(
    graph: UndirectedGraph, scores: np.ndarray
) -> tuple[np.ndarray, float]:
    """Return the densest prefix of vertices ordered by descending score.

    Every prefix S_k of the ordering is a candidate; the edge (u, v) joins
    the prefix once both endpoints do, i.e. at position max(rank(u),
    rank(v)), so all n prefix densities come from one bincount.
    """
    n = graph.num_vertices
    order = np.argsort(-scores, kind="stable")
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n)
    edges = graph.edges()
    if edges.size == 0:
        raise EmptyGraphError("cannot extract a densest prefix without edges")
    entry = np.maximum(rank[edges[:, 0]], rank[edges[:, 1]])
    edges_at_prefix = np.cumsum(np.bincount(entry, minlength=n))
    densities = edges_at_prefix / np.arange(1, n + 1)
    best_k = int(np.argmax(densities))
    return np.sort(order[: best_k + 1]), float(densities[best_k])


@register_solver(
    "pfw", kind="uds", guarantee="2-approx", cost="parallel", supports_runtime=True
)
def pfw_uds(
    graph: UndirectedGraph,
    epsilon: float = 1.0,
    runtime: SimRuntime | None = None,
    num_rounds: int | None = None,
) -> UDSResult:
    """(1+eps)-approximate UDS via parallel Frank–Wolfe.

    ``num_rounds`` defaults to ``ceil(2 * d_max / eps)``, the scale the
    convergence bound requires; pass an explicit value to trade quality
    for time.
    """
    if graph.num_edges == 0:
        raise EmptyGraphError("UDS is undefined on a graph without edges")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    rounds = (
        num_rounds
        if num_rounds is not None
        else max(8, int(np.ceil(2.0 * graph.max_degree() / epsilon)))
    )
    rt = runtime or SimRuntime(num_threads=1)
    with rt.parallel_region():
        loads = frank_wolfe_loads(graph, rounds, runtime=rt)
        rt.parfor(float(graph.num_vertices + graph.num_edges))  # extraction
    vertices, density = best_prefix_density(graph, loads)
    return UDSResult(
        algorithm="PFW",
        vertices=vertices,
        density=density,
        iterations=rounds,
        simulated_seconds=rt.now,
        extras={"epsilon": epsilon},
    )
