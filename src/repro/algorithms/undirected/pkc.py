"""PKC — level-synchronous parallel peeling (Kabir & Madduri, 2017).

Vertices are peeled level by level: level k repeatedly removes, in
parallel rounds, every surviving vertex whose degree is <= k, then moves
to level k + 1.  The surviving set at the start of level k is exactly the
k-core, so the last non-empty level gives k* and the k*-core.

The per-level rounds are cheap but *numerous* — of the order of k* plus
the cascade depth — and each carries a spawn/barrier overhead, which is
why PKC's speedup flattens at high thread counts in the paper's Fig. 6
while PKMC (a handful of heavyweight sweeps) keeps scaling.
"""

from __future__ import annotations

import numpy as np

from ...engine.spec import register_solver
from ...errors import EmptyGraphError
from ...graph.undirected import UndirectedGraph
from ...runtime.simruntime import SimRuntime
from ...core.results import UDSResult
from .common import batch_neighbor_array, induced_density

__all__ = ["pkc_uds", "pkc_core_decomposition"]


def pkc_core_decomposition(
    graph: UndirectedGraph, runtime: SimRuntime | None = None
) -> tuple[np.ndarray, int, int, np.ndarray]:
    """Peel all levels; return ``(core_numbers, k_star, rounds, k_star_core)``.

    ``rounds`` counts every parallel round executed (the Table-6 iteration
    number for PKC).
    """
    n = graph.num_vertices
    degree = graph.degrees().astype(np.int64)
    alive = degree > 0
    core_numbers = np.zeros(n, dtype=np.int64)
    rounds = 0
    k = 1
    k_star = 0
    k_star_core = np.flatnonzero(alive)
    rt = runtime
    while alive.any():
        # The alive set at the start of level k is the k-core (every
        # survivor has degree >= k after level k-1 finished).
        level_members = np.flatnonzero(alive)
        k_star = k
        k_star_core = level_members
        while True:
            frontier = np.flatnonzero(alive & (degree <= k))
            rounds += 1
            if rt is not None:
                frontier_work = degree[frontier].astype(np.float64) + 2.0
                rt.parfor(
                    frontier_work if frontier.size else float(len(level_members)),
                    atomic_ops=int(degree[frontier].sum()),
                )
            if frontier.size == 0:
                break
            core_numbers[frontier] = k
            alive[frontier] = False
            neighbors = batch_neighbor_array(graph, frontier)
            if neighbors.size:
                touched = neighbors[alive[neighbors]]
                np.subtract.at(degree, touched, 1)
            degree[frontier] = 0
        k += 1
    return core_numbers, k_star, rounds, k_star_core


@register_solver(
    "pkc", kind="uds", guarantee="2-approx", cost="parallel", supports_runtime=True
)
def pkc_uds(graph: UndirectedGraph, runtime: SimRuntime | None = None) -> UDSResult:
    """2-approximate UDS via level-synchronous peeling (returns k*-core)."""
    if graph.num_edges == 0:
        raise EmptyGraphError("UDS is undefined on a graph without edges")
    rt = runtime or SimRuntime(num_threads=1)
    with rt.parallel_region():
        core_numbers, k_star, rounds, core = pkc_core_decomposition(graph, runtime=rt)
    return UDSResult(
        algorithm="PKC",
        vertices=core,
        density=induced_density(graph, core),
        iterations=rounds,
        k_star=k_star,
        simulated_seconds=rt.now,
        extras={"core_numbers": core_numbers},
    )
