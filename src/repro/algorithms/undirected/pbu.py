"""PBU — Bahmani et al.'s batch-peeling 2(1+eps)-approximation (2012).

Each pass computes the current density rho and removes *every* vertex of
degree <= 2(1+eps)rho, so only O(log n / log(1+eps)) passes are needed and
each pass is embarrassingly parallel; the densest of the pass-start
snapshots is returned.  Originally a MapReduce/streaming algorithm; the
shared-memory adaptation here synchronises vertex/edge counts after every
pass (a parallel reduction plus atomics), which is the cost the paper
identifies when explaining why PKMC beats PBU by 5-20x.
"""

from __future__ import annotations

import numpy as np

from ...engine.spec import register_solver
from ...errors import EmptyGraphError
from ...graph.undirected import UndirectedGraph
from ...runtime.simruntime import SimRuntime
from ...core.results import UDSResult
from .common import batch_neighbor_array

__all__ = ["pbu_uds"]

# Per-record cost (in work units) of one streaming/MapReduce pass over the
# edge stream.  Bahmani et al.'s algorithm re-reads and filters the *full*
# stream every pass; record-at-a-time framework overhead is one to two
# orders of magnitude above a raw shared-memory loop (cf. McSherry et al.,
# "Scalability! But at what COST?"), which is the synchronisation cost the
# paper blames for PBU's 5-20x gap to PKMC.
_STREAM_UNITS_PER_EDGE = 60.0


@register_solver(
    "pbu", kind="uds", guarantee="2-approx", cost="stream", supports_runtime=True
)
def pbu_uds(
    graph: UndirectedGraph,
    epsilon: float = 0.5,
    runtime: SimRuntime | None = None,
) -> UDSResult:
    """Return a 2(1+eps)-approximate UDS by density-threshold batch peeling."""
    if graph.num_edges == 0:
        raise EmptyGraphError("UDS is undefined on a graph without edges")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    rt = runtime or SimRuntime(num_threads=1)
    n = graph.num_vertices
    degree = graph.degrees().astype(np.int64)
    alive = degree > 0
    num_alive = int(np.count_nonzero(alive))
    edges_alive = graph.num_edges
    removal_pass = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    removal_pass[~alive] = 0

    best_density = -1.0
    best_pass = 0
    passes = 0
    threshold_factor = 2.0 * (1.0 + epsilon)
    with rt.parallel_region():
        while num_alive > 0:
            density = edges_alive / num_alive
            if density > best_density:
                best_density = density
                best_pass = passes
            threshold = threshold_factor * density
            alive_ids = np.flatnonzero(alive)
            victims = alive_ids[degree[alive_ids] <= threshold]
            passes += 1
            # One parallel scan-and-remove pass plus the density reduction
            # that PBU must synchronise before the next pass can start.
            rt.parfor(
                degree[alive_ids].astype(np.float64) + 2.0,
                atomic_ops=int(degree[victims].sum()) + victims.size,
            )
            rt.parfor(float(num_alive))  # density reduction
            # Streaming heritage: every pass re-reads and filters the full
            # original edge stream through the framework (see constant).
            rt.parfor(float(_STREAM_UNITS_PER_EDGE * graph.num_edges))
            if victims.size == 0:
                # Cannot happen for eps > 0 (min degree <= mean < threshold)
                # but guards against pathological float behaviour.
                break
            removal_pass[victims] = passes
            victim_degree_sum = int(degree[victims].sum())
            alive[victims] = False
            neighbors = batch_neighbor_array(graph, victims)
            cross_edges = 0
            if neighbors.size:
                touched = neighbors[alive[neighbors]]
                np.subtract.at(degree, touched, 1)
                cross_edges = touched.size
            # victim_degree_sum counts every victim-to-survivor edge once
            # and every victim-internal edge twice.
            edges_alive -= cross_edges + (victim_degree_sum - cross_edges) // 2
            degree[victims] = 0
            num_alive -= victims.size

    vertices = np.flatnonzero(removal_pass > best_pass)
    return UDSResult(
        algorithm="PBU",
        vertices=vertices,
        density=best_density,
        iterations=passes,
        simulated_seconds=rt.now,
        extras={"epsilon": epsilon},
    )
