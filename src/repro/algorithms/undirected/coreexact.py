"""CoreExact — core-pruned exact UDS (Fang et al., PVLDB 2019; paper [6]).

The exact flow-based solver need not run on the whole graph: the densest
subgraph has density rho* >= rho(k*-core) >= k*/2, and every subgraph of
density > d is contained in the ceil(d)-core, so the densest subgraph
lives inside the ceil(k*/2)-core.  CoreExact therefore:

1. computes the core decomposition (cheap, O(m));
2. restricts the graph to the ceil(k*/2)-core — usually a small fraction
   of the graph;
3. runs Goldberg's max-flow binary search on that core only.

This is the "locating the densest subgraph in some specific k-cores"
improvement the paper credits to [6], and it makes the exact solver
usable on the mid-sized replicas where plain Goldberg would crawl.
"""

from __future__ import annotations

import math

import numpy as np

from ...core.results import UDSResult
from ...engine.spec import register_solver
from ...errors import EmptyGraphError
from ...graph.undirected import UndirectedGraph
from .exact import exact_uds_goldberg
from .pkc import pkc_core_decomposition

__all__ = ["coreexact_uds"]


@register_solver("core-exact", kind="uds", guarantee="exact", cost="serial")
def coreexact_uds(graph: UndirectedGraph) -> UDSResult:
    """Exact densest subgraph via core-pruned max-flow binary search."""
    if graph.num_edges == 0:
        raise EmptyGraphError("UDS is undefined on a graph without edges")
    core_numbers, k_star, _, _ = pkc_core_decomposition(graph)
    # rho* >= rho(k*-core) >= k*/2, and any subgraph with density > d sits
    # inside the ceil(d)-core (its minimum peel degree exceeds d), so it
    # suffices to search the ceil(k*/2)-core.
    threshold = math.ceil(k_star / 2)
    keep = np.flatnonzero(core_numbers >= threshold)
    pruned, original_ids = graph.induced_subgraph(keep)
    inner = exact_uds_goldberg(pruned)
    vertices = np.sort(original_ids[inner.vertices])
    return UDSResult(
        algorithm="CoreExact",
        vertices=vertices,
        density=inner.density,
        iterations=inner.iterations,
        k_star=k_star,
        extras={
            "pruned_vertices": int(keep.size),
            "pruned_edges": pruned.num_edges,
            "prune_threshold": threshold,
        },
    )
