"""k-truss decomposition and truss-based dense subgraphs.

The paper's conclusion names "the theoretical relationship between other
dense subgraphs (e.g. k-truss ...) and the densest graph" as future work;
this module provides the machinery for that exploration:

* :func:`truss_decomposition` labels every edge with its truss number —
  the largest k such that a k-truss (every edge in >= k - 2 triangles
  within the subgraph) contains it;
* :func:`max_truss_uds` returns the maximum truss as a dense-subgraph
  candidate.  A k-truss has minimum degree >= k - 1, so its density is at
  least (k - 1)/2 — a guarantee mirroring the k*-core's k/2 bound, with
  trusses usually being smaller and denser in practice.
"""

from __future__ import annotations

import heapq

import numpy as np

from ...core.results import UDSResult
from ...engine.spec import register_solver
from ...errors import EmptyGraphError
from ...graph.undirected import UndirectedGraph
from .common import induced_density

__all__ = ["edge_support", "truss_decomposition", "max_truss_uds"]


def _edge_index(graph: UndirectedGraph) -> dict[tuple[int, int], int]:
    return {
        (int(u), int(v)): index
        for index, (u, v) in enumerate(graph.edges().tolist())
    }


def edge_support(graph: UndirectedGraph) -> np.ndarray:
    """Count the triangles through every edge (the edge's *support*)."""
    edges = graph.edges()
    support = np.zeros(edges.shape[0], dtype=np.int64)
    neighbor_sets = [set(graph.neighbors(v).tolist()) for v in range(graph.num_vertices)]
    for index, (u, v) in enumerate(edges.tolist()):
        small, large = (u, v) if len(neighbor_sets[u]) <= len(neighbor_sets[v]) else (v, u)
        support[index] = sum(
            1 for w in neighbor_sets[small] if w in neighbor_sets[large]
        )
    return support


def truss_decomposition(graph: UndirectedGraph) -> tuple[np.ndarray, int]:
    """Label every edge with its truss number; return ``(labels, k_max)``.

    Standard support peeling: repeatedly remove the edge with minimum
    support s, assigning it truss number max(s + 2, current level), and
    decrement the support of the edges of every triangle it closed.
    """
    m = graph.num_edges
    truss = np.zeros(m, dtype=np.int64)
    if m == 0:
        return truss, 0
    edges = graph.edges()
    index_of = _edge_index(graph)
    neighbor_sets = [set(graph.neighbors(v).tolist()) for v in range(graph.num_vertices)]
    support = edge_support(graph)
    alive = np.ones(m, dtype=bool)
    heap = [(int(support[e]), e) for e in range(m)]
    heapq.heapify(heap)
    level = 2
    remaining = m
    while remaining:
        s, e = heapq.heappop(heap)
        if not alive[e] or s != support[e]:
            continue
        level = max(level, s + 2)
        truss[e] = level
        alive[e] = False
        remaining -= 1
        u, v = int(edges[e, 0]), int(edges[e, 1])
        neighbor_sets[u].discard(v)
        neighbor_sets[v].discard(u)
        small, large = (u, v) if len(neighbor_sets[u]) <= len(neighbor_sets[v]) else (v, u)
        for w in neighbor_sets[small]:
            if w not in neighbor_sets[large]:
                continue
            for other in ((min(u, w), max(u, w)), (min(v, w), max(v, w))):
                other_id = index_of[other]
                if alive[other_id]:
                    support[other_id] -= 1
                    heapq.heappush(heap, (int(support[other_id]), other_id))
    return truss, int(truss.max())


@register_solver("max-truss", kind="uds", guarantee="heuristic", cost="serial")
def max_truss_uds(graph: UndirectedGraph) -> UDSResult:
    """Dense subgraph candidate: the maximum k-truss of the graph.

    Returns the vertices of the k_max-truss; its density is at least
    (k_max - 1)/2.  Not a formal 2-approximation of the densest subgraph,
    but typically a tighter, cleaner community than the k*-core (the
    future-work comparison the paper suggests; see
    ``benchmarks/bench_ablations.py`` and the extension tests).
    """
    if graph.num_edges == 0:
        raise EmptyGraphError("UDS is undefined on a graph without edges")
    truss, k_max = truss_decomposition(graph)
    member_edges = graph.edges()[truss == k_max]
    vertices = np.unique(member_edges)
    return UDSResult(
        algorithm="MaxTruss",
        vertices=vertices,
        density=induced_density(graph, vertices),
        k_star=k_max,
        extras={"truss_numbers": truss},
    )
