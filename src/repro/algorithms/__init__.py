"""Baseline algorithms (the paper's comparison set, Section VI-A)."""

from . import directed, undirected

__all__ = ["undirected", "directed"]
