"""PFW (directed) — Frank–Wolfe (1+eps)-approximation for DDS (Su & Vu).

For each |S|/|T| ratio guess c, the DDS objective relaxes to a convex load
-balancing program: each edge (u, v) owns one unit of mass split between a
source-side load r_S(u) (scaled by 1/sqrt(c)) and a target-side load
r_T(v) (scaled by sqrt(c)); Frank–Wolfe rounds route each edge's mass
toward its currently lighter scaled endpoint.  The dense pair is read off
prefixes of the load orderings.

The round count needed for a (1+eps) guarantee grows with the maximum
degree, and the whole procedure repeats per ratio guess, which is why the
paper's Exp-5 records PFW finishing only on the two smallest directed
graphs (AR, BA) and 4 orders of magnitude slower than PWC there.
"""

from __future__ import annotations

import numpy as np

from ...engine.spec import register_solver
from ...errors import EmptyGraphError
from ...graph.directed import DirectedGraph
from ...runtime.simruntime import SimRuntime
from ...core.results import DDSResult
from .common import ratio_grid, st_density

__all__ = ["pfw_directed_dds"]


def _fw_loads_for_ratio(
    graph: DirectedGraph, ratio: float, num_rounds: int
) -> tuple[np.ndarray, np.ndarray]:
    """Frank–Wolfe loads (r_S, r_T) for one ratio guess."""
    src, dst = graph.edge_src, graph.edge_dst
    n = graph.num_vertices
    alpha = np.full(graph.num_edges, 0.5)  # mass fraction on the source side
    sqrt_c = float(np.sqrt(ratio))
    for t in range(num_rounds):
        r_s = np.zeros(n)
        r_t = np.zeros(n)
        np.add.at(r_s, src, alpha)
        np.add.at(r_t, dst, 1.0 - alpha)
        gamma = 2.0 / (t + 2.0)
        source_lighter = r_s[src] / sqrt_c < r_t[dst] * sqrt_c
        alpha = (1.0 - gamma) * alpha + gamma * source_lighter
    r_s = np.zeros(n)
    r_t = np.zeros(n)
    np.add.at(r_s, src, alpha)
    np.add.at(r_t, dst, 1.0 - alpha)
    return r_s, r_t


def _best_prefix_pair(
    graph: DirectedGraph, r_s: np.ndarray, r_t: np.ndarray, ratio: float
) -> tuple[np.ndarray, np.ndarray, float]:
    """Scan geometric prefixes of the load orderings along the ratio."""
    n = graph.num_vertices
    s_order = np.argsort(-r_s, kind="stable")
    t_order = np.argsort(-r_t, kind="stable")
    best: tuple[float, np.ndarray, np.ndarray] = (
        -1.0,
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
    )
    s_size = 1.0
    while s_size <= n:
        s_count = int(round(s_size))
        t_count = min(max(int(round(s_count / ratio)), 1), n)
        s = s_order[:s_count]
        t = t_order[:t_count]
        density = st_density(graph, s, t)
        if density > best[0]:
            best = (density, np.sort(s), np.sort(t))
        s_size *= 1.5
    density, s, t = best
    return s, t, density


@register_solver(
    "pfw", kind="dds", guarantee="2-approx", cost="parallel", supports_runtime=True
)
def pfw_directed_dds(
    graph: DirectedGraph,
    epsilon: float = 1.0,
    runtime: SimRuntime | None = None,
    num_rounds: int | None = None,
) -> DDSResult:
    """Frank–Wolfe DDS over a ratio grid; see module docstring."""
    if graph.num_edges == 0:
        raise EmptyGraphError("DDS is undefined on a graph without edges")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    rt = runtime or SimRuntime(num_threads=1)
    rounds = (
        num_rounds
        if num_rounds is not None
        else max(8, int(np.ceil(2.0 * graph.max_degree() / epsilon)))
    )
    ratios = ratio_grid(graph.num_vertices, 1.0 + epsilon)
    m = graph.num_edges

    # Charge the whole projected workload first: |grid| * rounds parallel
    # edge sweeps — on large replicas this exceeds the experiment budget
    # (PFW DNFs everywhere but the two smallest graphs, as in the paper).
    with rt.parallel_region():
        for _ in ratios:
            rt.parfor(float(3 * m * rounds))

    best = (-1.0, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    for ratio in ratios:
        r_s, r_t = _fw_loads_for_ratio(graph, ratio, rounds)
        s, t, density = _best_prefix_pair(graph, r_s, r_t, ratio)
        if density > best[0]:
            best = (density, s, t)
    density, s, t = best
    return DDSResult(
        algorithm="PFW",
        s=s,
        t=t,
        density=density,
        iterations=rounds * len(ratios),
        simulated_seconds=rt.now,
        extras={"epsilon": epsilon, "num_ratios": len(ratios)},
    )
