"""PBS — parallelised Charikar directed peeling (Charikar, 2000).

The exact-ratio version of Charikar's directed 2-approximation peels once
per candidate |S|/|T| ratio, and there are Theta(n^2) distinct ratios, so
the total work is O(n^2 (n + m)) — the paper's Exp-5 shows it cannot
finish within 10^5 seconds on any of the six datasets even with 32
threads.  The parallelisation assigns one ratio-peel per task.

The simulated cost of the full task set is charged up front (see
:func:`~repro.algorithms.directed.common.charge_projected_tasks`); the
peels are then actually executed only if the budget allowed them, which in
practice means small graphs (tests) run to completion and the replicas DNF
exactly like the paper's runs.
"""

from __future__ import annotations

import numpy as np

from ...engine.spec import register_solver
from ...errors import EmptyGraphError
from ...graph.directed import DirectedGraph
from ...runtime.simruntime import SimRuntime
from ...core.results import DDSResult
from .common import charge_projected_tasks, charikar_directed_peel_for_ratio

__all__ = ["pbs_dds"]


def _distinct_ratios(n: int, cap: int | None) -> list[float]:
    """All distinct a/b for 1 <= a, b <= n (optionally capped for tests)."""
    limit = n if cap is None else min(n, cap)
    ratios = {a / b for a in range(1, limit + 1) for b in range(1, limit + 1)}
    return sorted(ratios)


@register_solver(
    "pbs", kind="dds", guarantee="2-approx", cost="parallel", supports_runtime=True
)
def pbs_dds(
    graph: DirectedGraph,
    runtime: SimRuntime | None = None,
    max_ratio_denominator: int | None = None,
) -> DDSResult:
    """2-approximate DDS by peeling once per candidate |S|/|T| ratio.

    ``max_ratio_denominator`` restricts the candidate ratios to a/b with
    a, b <= that bound (useful to keep tests fast); the full Theta(n^2)
    set is both charged and executed when it is None.
    """
    if graph.num_edges == 0:
        raise EmptyGraphError("DDS is undefined on a graph without edges")
    n = graph.num_vertices
    rt = runtime or SimRuntime(num_threads=1)
    cap = max_ratio_denominator
    task_count = (n if cap is None else min(n, cap)) ** 2
    # Each task is an inherently serial heap-based peel of the full graph.
    units_per_task = 2.0 * (n + graph.num_edges) * max(np.log2(n + 2), 1.0)
    with rt.parallel_region():
        charge_projected_tasks(rt, task_count, units_per_task)

    best = (-1.0, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    peels = 0
    for ratio in _distinct_ratios(n, cap):
        s, t, density = charikar_directed_peel_for_ratio(graph, ratio)
        peels += 1
        if density > best[0]:
            best = (density, s, t)
    density, s, t = best
    return DDSResult(
        algorithm="PBS",
        s=s,
        t=t,
        density=density,
        iterations=peels,
        simulated_seconds=rt.now,
    )
