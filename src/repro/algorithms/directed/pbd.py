"""PBD — Bahmani et al.'s directed batch peeling, 2delta(1+eps)-approx.

For each ratio guess c in a delta-spaced geometric grid over [1/n, n], run
batch peeling: every pass removes all of S (if |S| >= c |T|) or all of T
(otherwise) whose degree is at most (1+eps) times the side's average, so
each c needs only O(log n) passes.  The coarse grid is what degrades the
guarantee to 2*delta*(1+eps) (= 8 with the paper's delta=2, eps=1) but
makes PBD the only pre-existing baseline fast enough to finish Exp-5.

Like PXY, every thread works on its own copy of the graph (one c per
thread), which is modelled as a per-thread allocation — the reason PBD
cannot run on the Twitter replica once p > 4 (paper Exp-7).
"""

from __future__ import annotations

import numpy as np

from ...engine.spec import register_solver
from ...errors import EmptyGraphError
from ...graph.directed import DirectedGraph
from ...runtime.simruntime import SimRuntime
from ...core.results import DDSResult
from .common import ratio_grid, st_density

__all__ = ["pbd_dds"]


def _batch_peel_for_ratio(
    graph: DirectedGraph,
    ratio: float,
    epsilon: float,
    runtime: SimRuntime | None,
) -> tuple[np.ndarray, np.ndarray, float, int]:
    """Batch-peel with ratio rule; return (S, T, density, passes)."""
    n = graph.num_vertices
    in_s = np.ones(n, dtype=bool)
    in_t = np.ones(n, dtype=bool)
    src, dst = graph.edge_src, graph.edge_dst
    alive = np.ones(graph.num_edges, dtype=bool)
    dout = graph.out_degrees().astype(np.int64)
    din = graph.in_degrees().astype(np.int64)
    edges_alive = graph.num_edges

    best = (-1.0, in_s.copy(), in_t.copy())
    passes = 0
    while edges_alive > 0:
        s_count = int(np.count_nonzero(in_s & (dout > 0)))
        t_count = int(np.count_nonzero(in_t & (din > 0)))
        if s_count == 0 or t_count == 0:
            break
        density = edges_alive / float(np.sqrt(s_count * t_count))
        if density > best[0]:
            best = (density, in_s & (dout > 0), in_t & (din > 0))
        passes += 1
        if runtime is not None:
            runtime.parfor(float(n + edges_alive))
        if s_count >= ratio * t_count:
            threshold = (1.0 + epsilon) * edges_alive / s_count
            victims = np.flatnonzero(in_s & (dout > 0) & (dout <= threshold))
            if victims.size == 0:
                victims = np.flatnonzero(in_s & (dout > 0))
            in_s[victims] = False
            dead = alive & np.isin(src, victims)
        else:
            threshold = (1.0 + epsilon) * edges_alive / t_count
            victims = np.flatnonzero(in_t & (din > 0) & (din <= threshold))
            if victims.size == 0:
                victims = np.flatnonzero(in_t & (din > 0))
            in_t[victims] = False
            dead = alive & np.isin(dst, victims)
        dead_ids = np.flatnonzero(dead)
        alive[dead_ids] = False
        np.subtract.at(dout, src[dead_ids], 1)
        np.subtract.at(din, dst[dead_ids], 1)
        edges_alive -= dead_ids.size
    density, s_mask, t_mask = best
    return np.flatnonzero(s_mask), np.flatnonzero(t_mask), density, passes


@register_solver(
    "pbd", kind="dds", guarantee="2-approx", cost="parallel", supports_runtime=True
)
def pbd_dds(
    graph: DirectedGraph,
    delta: float = 2.0,
    epsilon: float = 1.0,
    runtime: SimRuntime | None = None,
) -> DDSResult:
    """2*delta*(1+eps)-approximate DDS via ratio-gridded batch peeling."""
    if graph.num_edges == 0:
        raise EmptyGraphError("DDS is undefined on a graph without edges")
    if delta <= 1.0 or epsilon <= 0.0:
        raise ValueError("delta must exceed 1 and epsilon must be positive")
    rt = runtime or SimRuntime(num_threads=1)
    rt.allocate_graph(graph, per_thread=True)

    best = (-1.0, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    total_passes = 0
    # No enclosing parallel region: every peeling pass launches its own
    # thread team, so per-pass spawn overhead grows with p.  This is the
    # "more threads cause thread switching to consume more system
    # resources" effect that gives PBD its p=16 sweet spot (paper Exp-7).
    for ratio in ratio_grid(graph.num_vertices, delta):
        s, t, density, passes = _batch_peel_for_ratio(graph, ratio, epsilon, rt)
        total_passes += passes
        if density > best[0]:
            best = (density, s, t)
    density, s, t = best
    # Densities were tracked on masks including isolated-side filtering;
    # recompute exactly for the reported sets.
    exact_density = st_density(graph, s, t)
    return DDSResult(
        algorithm="PBD",
        s=s,
        t=t,
        density=exact_density,
        iterations=total_passes,
        simulated_seconds=rt.now,
        extras={"delta": delta, "epsilon": epsilon},
    )
