"""Shared helpers for the directed (DDS) baselines."""

from __future__ import annotations

import heapq

import numpy as np

from ...graph.directed import DirectedGraph
from ...runtime.simruntime import SimRuntime

__all__ = [
    "st_density",
    "charikar_directed_peel_for_ratio",
    "ratio_grid",
    "charge_projected_tasks",
]


def st_density(graph: DirectedGraph, s: np.ndarray, t: np.ndarray) -> float:
    """rho(S, T) = |E(S, T)| / sqrt(|S| |T|) (0.0 when either is empty)."""
    s = np.asarray(s, dtype=np.int64)
    t = np.asarray(t, dtype=np.int64)
    if s.size == 0 or t.size == 0:
        return 0.0
    in_s = np.zeros(graph.num_vertices, dtype=bool)
    in_t = np.zeros(graph.num_vertices, dtype=bool)
    in_s[s] = True
    in_t[t] = True
    count = int(np.count_nonzero(in_s[graph.edge_src] & in_t[graph.edge_dst]))
    return count / float(np.sqrt(s.size * t.size))


def charikar_directed_peel_for_ratio(
    graph: DirectedGraph, ratio: float
) -> tuple[np.ndarray, np.ndarray, float]:
    """One Charikar (2000) directed peel for a fixed |S|/|T| guess.

    While both sides are non-empty: if |S| >= ratio * |T|, remove the
    minimum-out-degree vertex from S, otherwise the minimum-in-degree
    vertex from T; return the densest (S, T) snapshot seen.  O((n + m)
    log n) with lazy heaps.  PBS runs this for every candidate ratio,
    PFKS for a restricted candidate set.
    """
    n = graph.num_vertices
    in_s = np.ones(n, dtype=bool)
    in_t = np.ones(n, dtype=bool)
    dout = graph.out_degrees().copy()
    din = graph.in_degrees().copy()
    edges_alive = graph.num_edges
    s_heap = [(int(dout[v]), v) for v in range(n)]
    t_heap = [(int(din[v]), v) for v in range(n)]
    heapq.heapify(s_heap)
    heapq.heapify(t_heap)
    s_count = t_count = n

    best_density = edges_alive / float(np.sqrt(s_count * t_count))
    best_s = in_s.copy()
    best_t = in_t.copy()
    removal_sequence: list[tuple[str, int]] = []
    best_step = 0
    step = 0
    while s_count > 0 and t_count > 0 and edges_alive > 0:
        take_from_s = s_count >= ratio * t_count
        if take_from_s:
            while True:
                key, u = heapq.heappop(s_heap)
                if in_s[u] and key == dout[u]:
                    break
            in_s[u] = False
            s_count -= 1
            for slot in range(graph.out_indptr[u], graph.out_indptr[u + 1]):
                v = int(graph.out_indices[slot])
                if in_t[v]:
                    edges_alive -= 1
                    din[v] -= 1
                    heapq.heappush(t_heap, (int(din[v]), v))
            removal_sequence.append(("s", u))
        else:
            while True:
                key, v = heapq.heappop(t_heap)
                if in_t[v] and key == din[v]:
                    break
            in_t[v] = False
            t_count -= 1
            for slot in range(graph.in_indptr[v], graph.in_indptr[v + 1]):
                u = int(graph.in_indices[slot])
                if in_s[u]:
                    edges_alive -= 1
                    dout[u] -= 1
                    heapq.heappush(s_heap, (int(dout[u]), u))
            removal_sequence.append(("t", v))
        step += 1
        if s_count > 0 and t_count > 0:
            density = edges_alive / float(np.sqrt(s_count * t_count))
            if density > best_density:
                best_density = density
                best_step = step
    # Rebuild the best snapshot by replaying the removals.
    best_s = np.ones(n, dtype=bool)
    best_t = np.ones(n, dtype=bool)
    for side, vertex in removal_sequence[:best_step]:
        if side == "s":
            best_s[vertex] = False
        else:
            best_t[vertex] = False
    return np.flatnonzero(best_s), np.flatnonzero(best_t), best_density


def ratio_grid(n: int, factor: float) -> list[float]:
    """Geometric grid of |S|/|T| candidates covering [1/n, n]."""
    if n < 1:
        return [1.0]
    grid = [1.0]
    c = 1.0
    while c < n:
        c *= factor
        grid.append(min(c, float(n)))
    c = 1.0
    while c > 1.0 / n:
        c /= factor
        grid.append(max(c, 1.0 / n))
    return sorted(set(grid))


def charge_projected_tasks(
    runtime: SimRuntime,
    num_tasks: int,
    units_per_task: float,
    max_batches: int = 256,
) -> None:
    """Charge the simulated cost of ``num_tasks`` independent peel tasks.

    The quadratic baselines (PBS: ~n^2 tasks, PFKS: n tasks) are charged
    up front in a bounded number of batches so the simulated clock reaches
    the experiment's time budget after a handful of cheap accounting calls
    instead of after actually executing millions of peels — mirroring how
    the paper reports these algorithms as "cannot finish within 10^5 s".
    Raises :class:`~repro.errors.SimTimeLimitExceeded` mid-charge when the
    budget is blown.
    """
    if num_tasks <= 0:
        return
    batch = max(num_tasks // max_batches, 1)
    charged = 0
    while charged < num_tasks:
        size = min(batch, num_tasks - charged)
        runtime.par_tasks(np.full(min(size, 4096), units_per_task * size / min(size, 4096)))
        charged += size
