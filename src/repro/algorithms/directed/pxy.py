"""PXY — parallel [x*, y*]-core search by cn-pair enumeration (Ma et al.).

The state-of-the-art 2-approximation baseline for DDS before PWC: since
x* * y* <= m, either x* <= sqrt(m) or y* <= sqrt(m), so enumerating
x in [1, sqrt(m)] (computing the maximal feasible y for each) and
symmetrically y in [1, sqrt(m)] covers the maximum cn-pair.  The paper's
parallelisation hands each x (resp. y) to a thread, each of which peels
its own copy of the *entire* graph — hence the per-thread memory blow-up
on Twitter (Exp-7) and the load imbalance that caps PXY's self-relative
speedup.

Implementation note (documented substitution): the answers here are
computed with a nested-peeling optimisation — the x-constrained graph is
maintained incrementally, shrinking rapidly on power-law graphs, and the
maximal y for each x is found by binary search on [x, y]-core existence
inside it, so a pure-Python host can afford the enumeration.  The
*simulated* cost charged per task, however, follows the published
structure (every task touches the full graph: n + m units plus its peel
work) so the benchmark compares the paper's PXY, not the optimised one;
the optimisation can only under-state PXY's cost, making the reported
PWC-vs-PXY gap conservative.
"""

from __future__ import annotations

import numpy as np

from ...engine.spec import register_solver
from ...errors import EmptyGraphError
from ...graph.directed import DirectedGraph
from ...runtime.simruntime import SimRuntime
from ...core.results import DDSResult
from ...core.xycore import xy_core

__all__ = ["pxy_dds"]


def _xy_exists(
    src: np.ndarray, dst: np.ndarray, n: int, x: int, y: int
) -> tuple[bool, int]:
    """Check [x, y]-core existence on compressed edge arrays.

    Returns ``(exists, element_ops)`` where the ops count feeds the
    simulated task-cost model.
    """
    ops = 0
    dout = np.bincount(src, minlength=n)
    din = np.bincount(dst, minlength=n)
    while src.size:
        bad = (dout[src] < x) | (din[dst] < y)
        ops += int(src.size)
        if not bad.any():
            return True, ops
        dead_src, dead_dst = src[bad], dst[bad]
        np.subtract.at(dout, dead_src, 1)
        np.subtract.at(din, dead_dst, 1)
        keep = ~bad
        src, dst = src[keep], dst[keep]
    return False, ops


def _enumerate_x_side(
    graph: DirectedGraph, x_limit: int
) -> tuple[int, tuple[int, int], list[float]]:
    """Scan x = 1..x_limit; return (best product, best pair, task costs)."""
    n = graph.num_vertices
    base_units = float(graph.num_vertices + 2 * graph.num_edges)
    src = graph.edge_src.copy()
    dst = graph.edge_dst.copy()
    dout = np.bincount(src, minlength=n)
    din = np.bincount(dst, minlength=n)
    best_product, best_pair = 0, (0, 0)
    task_costs: list[float] = []
    prev_y: int | None = None
    for x in range(1, x_limit + 1):
        ops = 0
        # Enforce out-degree >= x on the persistent state (edges removed
        # here can belong to no [x', y]-core with x' >= x).
        while src.size:
            bad = dout[src] < x
            ops += int(src.size)
            if not bad.any():
                break
            dead_src, dead_dst = src[bad], dst[bad]
            np.subtract.at(dout, dead_src, 1)
            np.subtract.at(din, dead_dst, 1)
            keep = ~bad
            src, dst = src[keep], dst[keep]
        if src.size == 0:
            task_costs.append(base_units + ops)
            break
        upper = int(din[dst].max()) if prev_y is None else prev_y
        lo, hi = 1, max(upper, 1)
        # [x, 1]-core = the current state, so lo = 1 always exists.
        while lo < hi:
            mid = (lo + hi + 1) // 2
            exists, check_ops = _xy_exists(src, dst, n, x, mid)
            ops += check_ops
            if exists:
                lo = mid
            else:
                hi = mid - 1
        prev_y = lo
        if x * lo > best_product:
            best_product, best_pair = x * lo, (x, lo)
        task_costs.append(base_units + ops)
    return best_product, best_pair, task_costs


@register_solver(
    "pxy", kind="dds", guarantee="2-approx", cost="parallel", supports_runtime=True
)
def pxy_dds(
    graph: DirectedGraph,
    runtime: SimRuntime | None = None,
) -> DDSResult:
    """2-approximate DDS: the [x*, y*]-core via O(sqrt(m)) cn-pair tasks."""
    if graph.num_edges == 0:
        raise EmptyGraphError("DDS is undefined on a graph without edges")
    rt = runtime or SimRuntime(num_threads=1)
    rt.allocate_graph(graph, per_thread=True)
    x_limit = int(np.ceil(np.sqrt(graph.num_edges)))

    best_product, best_pair, x_costs = _enumerate_x_side(graph, x_limit)
    reversed_graph = graph.reversed()
    rev_product, rev_pair, y_costs = _enumerate_x_side(reversed_graph, x_limit)
    if rev_product > best_product:
        best_product = rev_product
        best_pair = (rev_pair[1], rev_pair[0])

    with rt.parallel_region():
        rt.par_tasks(np.asarray(x_costs + y_costs, dtype=np.float64))
    x, y = best_pair
    core = xy_core(graph, x, y, runtime=rt)
    return DDSResult(
        algorithm="PXY",
        s=core.s,
        t=core.t,
        density=core.density(),
        x=x,
        y=y,
        iterations=len(x_costs) + len(y_costs),
        simulated_seconds=rt.now,
        extras={"num_tasks": len(x_costs) + len(y_costs)},
    )
