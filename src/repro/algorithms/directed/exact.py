"""Exact directed densest-subgraph solvers (small-graph tools).

* :func:`brute_force_dds` — exhaustive over source sets S; for a fixed S
  and |T| = t the best T is the t vertices receiving the most S-edges, so
  only O(2^n * n log n) work instead of O(4^n).  The oracle for tests.
* :func:`exact_dds_flow` — iterative improvement with a project-selection
  min-cut: for density guess g and ratio guess c, a cut certifies whether
  some (S, T) satisfies 2|E(S,T)| > g(|S|/sqrt(c) + sqrt(c)|T|), which by
  AM-GM implies rho(S, T) > g for *any* c; scanning the O(n^2) candidate
  ratios a/b makes the certificate complete (Ma et al.'s exact framework).
  Each improvement jumps to an achieved density, so the loop terminates at
  the optimum.
"""

from __future__ import annotations

import numpy as np

from ...engine.spec import register_solver
from ...errors import EmptyGraphError
from ...flow.maxflow import FlowNetwork
from ...graph.directed import DirectedGraph
from ...core.results import DDSResult
from .common import st_density

__all__ = ["brute_force_dds", "exact_dds_flow", "exact_dds_core"]


@register_solver("brute-force", kind="dds", guarantee="exact", cost="serial")
def brute_force_dds(graph: DirectedGraph, max_vertices: int = 12) -> DDSResult:
    """Exhaustively find the directed densest subgraph (test oracle)."""
    n = graph.num_vertices
    if n > max_vertices:
        raise ValueError(
            f"brute force is limited to {max_vertices} vertices, got {n}"
        )
    if graph.num_edges == 0:
        raise EmptyGraphError("DDS is undefined on a graph without edges")
    src, dst = graph.edge_src, graph.edge_dst
    best = (-1.0, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    for s_mask in range(1, 1 << n):
        members = np.flatnonzero((s_mask >> np.arange(n)) & 1)
        selected = np.isin(src, members)
        if not selected.any():
            continue
        received = np.bincount(dst[selected], minlength=n)
        order = np.argsort(-received, kind="stable")
        sorted_counts = received[order]
        prefix_edges = np.cumsum(sorted_counts)
        sizes = np.arange(1, n + 1)
        densities = prefix_edges / np.sqrt(members.size * sizes)
        t_count = int(np.argmax(densities)) + 1
        density = float(densities[t_count - 1])
        if density > best[0]:
            best = (density, members, np.sort(order[:t_count]))
    density, s, t = best
    return DDSResult(algorithm="BruteForce", s=s, t=t, density=density)


def _improve_with_cut(
    graph: DirectedGraph, g: float, ratio: float
) -> tuple[np.ndarray, np.ndarray] | None:
    """Return (S, T) with 2|E| - g(|S|/sqrt(c) + sqrt(c)|T|) > 0, or None.

    Project-selection construction: source -> edge nodes (capacity 2),
    edge nodes -> their endpoint copies (infinite), endpoint copies ->
    sink (the per-vertex costs).  Positive profit iff min cut < 2m.
    """
    n, m = graph.num_vertices, graph.num_edges
    sqrt_c = float(np.sqrt(ratio))
    source = 2 * n + m
    sink = source + 1
    net = FlowNetwork(2 * n + m + 2)
    infinite = 4.0 * m + 4.0
    for e in range(m):
        edge_node = 2 * n + e
        net.add_edge(source, edge_node, 2.0)
        net.add_edge(edge_node, int(graph.edge_src[e]), infinite)
        net.add_edge(edge_node, n + int(graph.edge_dst[e]), infinite)
    for v in range(n):
        net.add_edge(v, sink, g / sqrt_c)
        net.add_edge(n + v, sink, g * sqrt_c)
    cut = net.max_flow(source, sink)
    if cut >= 2.0 * m - 1e-7:
        return None
    side = net.min_cut_source_side(source)
    s = side[side < n]
    t = side[(side >= n) & (side < 2 * n)] - n
    if s.size == 0 or t.size == 0:
        return None
    return s.astype(np.int64), np.sort(t).astype(np.int64)


@register_solver("exact", kind="dds", guarantee="exact", cost="serial")
def exact_dds_flow(graph: DirectedGraph, max_vertices: int = 64) -> DDSResult:
    """Exact DDS by min-cut improvement over all ratio candidates."""
    n = graph.num_vertices
    if n > max_vertices:
        raise ValueError(
            f"the exact flow solver is limited to {max_vertices} vertices"
        )
    if graph.num_edges == 0:
        raise EmptyGraphError("DDS is undefined on a graph without edges")
    ratios = sorted({a / b for a in range(1, n + 1) for b in range(1, n + 1)})
    best_s = np.unique(graph.edge_src)
    best_t = np.unique(graph.edge_dst)
    best_density = st_density(graph, best_s, best_t)
    improved = True
    iterations = 0
    while improved:
        improved = False
        for ratio in ratios:
            iterations += 1
            found = _improve_with_cut(graph, best_density + 1e-9, ratio)
            if found is None:
                continue
            s, t = found
            density = st_density(graph, s, t)
            if density > best_density + 1e-12:
                best_density = density
                best_s, best_t = s, t
                improved = True
    return DDSResult(
        algorithm="ExactFlow",
        s=np.sort(best_s),
        t=np.sort(best_t),
        density=best_density,
        iterations=iterations,
    )


@register_solver("exact-core", kind="dds", guarantee="exact", cost="serial")
def exact_dds_core(graph: DirectedGraph, max_vertices: int = 64) -> DDSResult:
    """Exact DDS with [x, y]-core pruning (Ma et al.'s DC framework).

    For the optimal pair (S*, T*) with ratio c* = |S*|/|T*| and density
    rho*, every u in S* keeps out-degree >= rho*/(2 sqrt(c*)) and every
    v in T* keeps in-degree >= rho* sqrt(c*)/2 inside the optimum (drop
    the vertex and optimality would be violated), so (S*, T*) lives in
    the corresponding [x, y]-core.  Maintaining a running lower bound L
    on rho* therefore lets each ratio's search run on a *pruned* core
    instead of the whole graph — usually a tiny fraction of it — which
    is what makes the exact solver practical on mid-sized graphs.

    The lower bound is seeded with the PWC 2-approximation.
    """
    n = graph.num_vertices
    if n > max_vertices:
        raise ValueError(
            f"the core-pruned exact solver is limited to {max_vertices} vertices"
        )
    if graph.num_edges == 0:
        raise EmptyGraphError("DDS is undefined on a graph without edges")
    from ...core.pwc import pwc
    from ...core.xycore import xy_core

    seed = pwc(graph)
    best_density = seed.density
    best_s, best_t = seed.s, seed.t

    ratios = sorted({a / b for a in range(1, n + 1) for b in range(1, n + 1)})
    iterations = 0
    improved = True
    pruned_sizes: list[int] = []
    core_cache: dict[tuple[int, int], object] = {}
    while improved:
        improved = False
        core_cache.clear()  # thresholds depend on the improved bound
        for ratio in ratios:
            sqrt_c = float(np.sqrt(ratio))
            x = max(int(np.ceil(best_density / (2.0 * sqrt_c) - 1e-9)), 1)
            y = max(int(np.ceil(best_density * sqrt_c / 2.0 - 1e-9)), 1)
            core = core_cache.get((x, y))
            if core is None:
                core = xy_core(graph, x, y)
                core_cache[(x, y)] = core
            if not core.exists:
                continue
            # rho(S, T) <= sqrt(|E|): a core too small to beat the bound
            # cannot contain an improvement.
            if np.sqrt(core.num_edges) <= best_density + 1e-12:
                continue
            pruned = graph.subgraph_from_edge_mask(core.edge_mask)
            pruned_sizes.append(pruned.num_edges)
            iterations += 1
            found = _improve_with_cut(pruned, best_density + 1e-9, ratio)
            if found is None:
                continue
            s, t = found
            density = st_density(graph, s, t)
            if density > best_density + 1e-12:
                best_density = density
                best_s, best_t = s, t
                improved = True
    return DDSResult(
        algorithm="ExactCore",
        s=np.sort(best_s),
        t=np.sort(best_t),
        density=best_density,
        iterations=iterations,
        extras={
            "seed_density": seed.density,
            "max_pruned_edges": max(pruned_sizes, default=0),
            "total_edges": graph.num_edges,
        },
    )
