"""Directed DSD baselines compared against PWC in the paper's Exp-5..8."""

from .common import (
    charikar_directed_peel_for_ratio,
    ratio_grid,
    st_density,
)
from .exact import brute_force_dds, exact_dds_core, exact_dds_flow
from .pbd import pbd_dds
from .pbs import pbs_dds
from .pfks import pfks_dds
from .pfw import pfw_directed_dds
from .pxy import pxy_dds

__all__ = [
    "st_density",
    "ratio_grid",
    "charikar_directed_peel_for_ratio",
    "pbs_dds",
    "pfks_dds",
    "pbd_dds",
    "pfw_directed_dds",
    "pxy_dds",
    "brute_force_dds",
    "exact_dds_flow",
    "exact_dds_core",
]
