"""PFKS — the fixed Khuller–Saha directed approximation (2009).

Khuller & Saha's linear-time DDS algorithm avoids trying all Theta(n^2)
ratios; the paper uses the *fixed* variant (Ma et al. showed the original
2-approximation claim was wrong), which still needs n peeling rounds —
O(n (n + m)) total — and therefore also fails to finish within the 10^5 s
budget on every dataset in Exp-5.  Parallelised with one peel per task.

Candidate ratios: n geometrically spread values of |S|/|T| in [1/n, n]
(one per round), each peeled with Charikar's ratio rule.  As with PBS the
full projected cost is charged up front so the replicas DNF under the
experiment budget without executing n real peels.
"""

from __future__ import annotations

import numpy as np

from ...engine.spec import register_solver
from ...errors import EmptyGraphError
from ...graph.directed import DirectedGraph
from ...runtime.simruntime import SimRuntime
from ...core.results import DDSResult
from .common import charge_projected_tasks, charikar_directed_peel_for_ratio

__all__ = ["pfks_dds"]


@register_solver(
    "pfks", kind="dds", guarantee="2-approx", cost="parallel", supports_runtime=True
)
def pfks_dds(
    graph: DirectedGraph,
    runtime: SimRuntime | None = None,
    max_rounds: int | None = None,
) -> DDSResult:
    """Approximate DDS with n ratio-peel rounds (the fixed KS variant).

    ``max_rounds`` caps the number of executed rounds for tests; the
    simulated charge always reflects the full n rounds of the algorithm.
    """
    if graph.num_edges == 0:
        raise EmptyGraphError("DDS is undefined on a graph without edges")
    n = graph.num_vertices
    rt = runtime or SimRuntime(num_threads=1)
    # Each task is an inherently serial heap-based peel of the full graph.
    units_per_task = 2.0 * (n + graph.num_edges) * max(np.log2(n + 2), 1.0)
    with rt.parallel_region():
        charge_projected_tasks(rt, n, units_per_task)

    rounds = n if max_rounds is None else min(n, max_rounds)
    # n geometric ratio candidates covering [1/n, n].
    exponents = np.linspace(-1.0, 1.0, num=max(rounds, 2))
    ratios = np.unique(np.power(float(n), exponents))
    best = (-1.0, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    peels = 0
    for ratio in ratios:
        s, t, density = charikar_directed_peel_for_ratio(graph, float(ratio))
        peels += 1
        if density > best[0]:
            best = (density, s, t)
    density, s, t = best
    return DDSResult(
        algorithm="PFKS",
        s=s,
        t=t,
        density=density,
        iterations=peels,
        simulated_seconds=rt.now,
    )
