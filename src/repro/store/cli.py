"""``repro-store`` — storage-layer operations on graph snapshots.

Subcommands::

    repro-store shard graph.npz out-dir/ --shards 8   # partition a snapshot
    repro-store info out-dir/                         # inspect a shard dir

``shard`` builds the partitioned layout :mod:`repro.store.shard`
documents (per-shard ``.npz`` members plus a fingerprint-chained
manifest); ``info`` prints the manifest summary and verifies the chain.
"""

from __future__ import annotations

import argparse
import sys

from ..errors import ReproError

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-store",
        description="Storage-layer operations (snapshots and shards).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    shard = sub.add_parser(
        "shard",
        help="partition a graph snapshot into a sharded directory",
    )
    shard.add_argument(
        "snapshot", help="input graph snapshot (.npz, as written by "
        "repro-dsd --save-snapshot)"
    )
    shard.add_argument(
        "directory", help="output directory for shard_*.npz + manifest.json"
    )
    shard.add_argument(
        "--shards", type=int, default=8, metavar="P",
        help="number of balanced-edge-mass vertex shards (default 8)",
    )

    info = sub.add_parser(
        "info", help="print and verify a sharded snapshot directory"
    )
    info.add_argument("directory", help="sharded snapshot directory")
    return parser


def _cmd_shard(args) -> int:
    from ..graph.io import load_npz
    from .shard import save_sharded

    graph = load_npz(args.snapshot)
    chain = save_sharded(graph, args.directory, shards=args.shards)
    print(f"sharded {args.snapshot} -> {args.directory} "
          f"({args.shards} shards, chain {chain})")
    return 0


def _cmd_info(args) -> int:
    from .shard import load_sharded

    graph = load_sharded(args.directory)
    print(f"kind        : {graph.kind}")
    print(f"vertices    : {graph.num_vertices}")
    print(f"edges       : {graph.num_edges}")
    print(f"shards      : {graph.num_shards}")
    print(f"index dtype : {graph.index_dtype.str}")
    print(f"fingerprint : {graph.fingerprint()}")
    print(f"chain       : {graph.verify()} (verified)")
    print(f"cross frac  : {graph.cross_adjacency_fraction():.4f}")
    for index in range(graph.num_shards):
        record = graph._manifest["shards"][index]
        print(f"  {record['file']}: [{record['lo']}, {record['hi']}) "
              f"entries={record['entries']} "
              f"boundary={record['boundary_entries']} "
              f"nbytes={record['nbytes']}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "shard":
            return _cmd_shard(args)
        return _cmd_info(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
