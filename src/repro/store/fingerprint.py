"""Stable content fingerprints of CSR buffers.

A fingerprint is a hex digest of (kind, index dtype, vertex count, and
the raw bytes of every structural array). Two graphs with identical
structure hash identically regardless of how they were built — text
parse, snapshot load, or programmatic construction — which is what
makes the fingerprint usable as a result-cache key: a graph mutated and
rebuilt (e.g. by ``DynamicKStarCore``) gets a new fingerprint exactly
when its structure actually changed.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["fingerprint_arrays"]


def fingerprint_arrays(kind: str, num_vertices: int,
                       *arrays: np.ndarray) -> str:
    """Hex digest over graph kind, dtype, size, and array contents.

    ``arrays`` are the structural buffers in a fixed order (e.g.
    ``indptr, indices`` for undirected graphs). Dtype participates in
    the hash so an int32-narrowed graph and its forced-int64 twin are
    distinguishable (their memory behavior differs even though their
    structure matches).
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(kind.encode("ascii"))
    digest.update(str(int(num_vertices)).encode("ascii"))
    for array in arrays:
        array = np.ascontiguousarray(array)
        digest.update(array.dtype.str.encode("ascii"))
        digest.update(str(array.shape).encode("ascii"))
        digest.update(array.tobytes())
    return digest.hexdigest()
