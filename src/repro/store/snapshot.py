"""Binary graph snapshots: uncompressed ``.npz`` with mmap-backed loads.

A snapshot stores the *built* CSR arrays, not the edge list, so loading
skips text parsing, normalization and CSR construction entirely. Saved
uncompressed (``np.savez``), every member is a plain ``.npy`` blob at a
fixed offset inside the zip container — :func:`load_snapshot` maps the
large index arrays straight off disk with ``np.memmap``, so a load
touches O(1) bytes until an algorithm actually walks the adjacency
structure.

Each snapshot carries the graph's content fingerprint; loads adopt it
(when the on-disk dtype is kept) so a snapshot round-trip costs no
re-hash and engine-cache keys survive the round trip.

The legacy edge-list ``.npz`` layout written by older ``save_npz``
versions (fields ``kind``/``num_vertices``/``edges``) still loads.
"""

from __future__ import annotations

import zipfile
from pathlib import Path
from typing import Union

import numpy as np
from numpy.lib import format as npy_format

from ..errors import GraphError, GraphFormatError

__all__ = [
    "save_snapshot",
    "load_snapshot",
    "save_delta",
    "load_delta",
    "replay_delta",
    "SNAPSHOT_VERSION",
    "DELTA_VERSION",
]

PathLike = Union[str, Path]

SNAPSHOT_VERSION = 1

#: Format version of edge-delta logs (``save_delta``/``replay_delta``).
DELTA_VERSION = 1

_UNDIRECTED_ARRAYS = ("indptr", "indices")
_DIRECTED_ARRAYS = (
    "edge_src",
    "edge_dst",
    "out_indptr",
    "out_indices",
    "out_edge_ids",
    "in_indptr",
    "in_indices",
    "in_edge_ids",
)


def save_snapshot(graph, path: PathLike) -> str:
    """Write ``graph`` to an uncompressed ``.npz`` snapshot.

    Returns the graph's content fingerprint (also stored in the file).
    Accepts :class:`~repro.graph.UndirectedGraph` and
    :class:`~repro.graph.DirectedGraph`.
    """
    from ..graph.directed import DirectedGraph
    from ..graph.undirected import UndirectedGraph

    if not isinstance(graph, (UndirectedGraph, DirectedGraph)):
        raise GraphError(f"cannot snapshot object of type {type(graph)!r}")
    fingerprint = graph.fingerprint()
    common = {
        "format_version": np.array(SNAPSHOT_VERSION, dtype=np.int64),
        "num_vertices": np.array(graph.num_vertices, dtype=np.int64),
        "fingerprint": np.array(fingerprint),
    }
    if isinstance(graph, UndirectedGraph):
        np.savez(
            path,
            kind=np.array("undirected"),
            indptr=graph.indptr,
            indices=graph.indices,
            **common,
        )
    else:
        np.savez(
            path,
            kind=np.array("directed"),
            **{name: getattr(graph, name if name.startswith(("out_", "in_"))
                             else f"_{name}")
               for name in _DIRECTED_ARRAYS},
            **common,
        )
    return fingerprint


def _mmap_npz_array(path: str, info: zipfile.ZipInfo,
                    member_file) -> np.ndarray:
    """Memory-map one uncompressed ``.npy`` member of a zip container.

    The absolute data offset is the member's local-file-header offset
    plus the 30-byte header, its name and extra fields, plus the parsed
    ``.npy`` header length.
    """
    version = npy_format.read_magic(member_file)
    if version == (1, 0):
        header = npy_format.read_array_header_1_0(member_file)
    elif version == (2, 0):
        header = npy_format.read_array_header_2_0(member_file)
    else:
        raise ValueError(f"unsupported .npy version {version}")
    shape, fortran_order, dtype = header
    npy_header_len = member_file.tell()
    with open(path, "rb") as raw:
        raw.seek(info.header_offset)
        local_header = raw.read(30)
    if len(local_header) != 30 or local_header[:4] != b"PK\x03\x04":
        raise ValueError("corrupt zip local header")
    name_len = int.from_bytes(local_header[26:28], "little")
    extra_len = int.from_bytes(local_header[28:30], "little")
    offset = info.header_offset + 30 + name_len + extra_len + npy_header_len
    return np.memmap(
        path,
        dtype=dtype,
        mode="r",
        offset=offset,
        shape=shape,
        order="F" if fortran_order else "C",
    )


def _load_arrays(path: str, names: tuple, mmap: bool) -> dict:
    """Load the named array members, mmap-backed when possible."""
    arrays = {}
    if mmap:
        try:
            with zipfile.ZipFile(path) as container:
                for name in names:
                    info = container.getinfo(f"{name}.npy")
                    if info.compress_type != zipfile.ZIP_STORED:
                        raise ValueError("compressed member")
                    with container.open(info) as member_file:
                        arrays[name] = _mmap_npz_array(
                            path, info, member_file
                        )
            return arrays
        except (ValueError, OSError, KeyError):
            arrays.clear()  # unexpected layout: fall through to np.load
    with np.load(path, allow_pickle=False) as data:
        for name in names:
            arrays[name] = data[name]
    return arrays


def load_snapshot(path: PathLike, mmap: bool = True):
    """Load a graph snapshot written by :func:`save_snapshot`.

    With ``mmap=True`` (default) the index arrays of version-1 snapshots
    are memory-mapped read-only instead of copied into RAM. Malformed,
    truncated or inconsistent files raise :class:`GraphFormatError`;
    legacy edge-list ``.npz`` files are rebuilt via ``from_edges``.
    """
    from ..graph.directed import DirectedGraph
    from ..graph.undirected import UndirectedGraph

    path_str = str(path)
    if Path(path).is_dir():
        from .shard import MANIFEST_NAME

        if (Path(path) / MANIFEST_NAME).is_file():
            raise GraphFormatError(
                f"{path_str}: this is a sharded snapshot directory — load "
                "it with repro.store.shard.load_sharded (or pass the "
                "directory to repro-dsd, which detects the manifest)"
            )
        raise GraphFormatError(
            f"{path_str}: is a directory, not a graph snapshot file"
        )
    try:
        with np.load(path_str, allow_pickle=False) as data:
            fields = set(data.files)
            try:
                kind = str(data["kind"])
                num_vertices = int(data["num_vertices"])
            except KeyError as exc:
                raise GraphFormatError(
                    f"{path_str}: missing field {exc}"
                ) from exc
            if "edges" in fields:  # legacy edge-list layout
                edges = data["edges"]
                if kind == "directed":
                    return DirectedGraph.from_edges(num_vertices, edges)
                if kind == "undirected":
                    return UndirectedGraph.from_edges(num_vertices, edges)
                raise GraphFormatError(
                    f"{path_str}: unknown graph kind {kind!r}"
                )
            fingerprint = (
                str(data["fingerprint"]) if "fingerprint" in fields else None
            )
    except GraphFormatError:
        raise
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise GraphFormatError(
            f"{path_str}: not a valid graph snapshot ({exc})"
        ) from exc

    if kind == "undirected":
        required: tuple = _UNDIRECTED_ARRAYS
    elif kind == "directed":
        required = _DIRECTED_ARRAYS
    else:
        raise GraphFormatError(f"{path_str}: unknown graph kind {kind!r}")

    try:
        arrays = _load_arrays(path_str, required, mmap)
    except KeyError as exc:
        raise GraphFormatError(f"{path_str}: missing field {exc}") from exc
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise GraphFormatError(
            f"{path_str}: not a valid graph snapshot ({exc})"
        ) from exc

    try:
        if kind == "undirected":
            graph = UndirectedGraph(arrays["indptr"], arrays["indices"])
        else:
            graph = DirectedGraph._from_csr_arrays(
                num_vertices, *(arrays[name] for name in _DIRECTED_ARRAYS)
            )
    except GraphError as exc:
        raise GraphFormatError(
            f"{path_str}: inconsistent snapshot arrays ({exc})"
        ) from exc

    if fingerprint is not None and _dtypes_preserved(graph, arrays):
        # Trusted adoption: re-hashing would page in every mmapped byte.
        graph._fingerprint = fingerprint
    return graph


def save_delta(path: PathLike, base_fingerprint: str, ops) -> int:
    """Write an edge-delta log against a base snapshot; return its length.

    ``ops`` is the ordered mutation stream applied since the base state:
    ``(op, u, v)`` rows where ``op`` is ``+1``/``"+"`` for an insertion
    and ``-1``/``"-"`` for a deletion.  Together with the base graph
    (identified by its content fingerprint, not by path) the log is a
    complete recipe: :func:`replay_delta` reassembles the mutated graph
    bit-identically to a fresh ``from_edges`` build of the mutated edge
    list — the format stores which edges changed, never CSR internals,
    so it is a few hundred bytes for a small batch instead of O(m).
    """
    codes = []
    pairs = []
    for op, u, v in ops:
        if op in (+1, "+", "insert"):
            code = 1
        elif op in (-1, "-", "delete"):
            code = -1
        else:
            raise GraphError(f"unknown delta op {op!r} (want +1 or -1)")
        codes.append(code)
        pairs.append((int(u), int(v)))
    edges = (
        np.array(pairs, dtype=np.int64).reshape(-1, 2)
        if pairs
        else np.empty((0, 2), dtype=np.int64)
    )
    np.savez(
        path,
        kind=np.array("delta"),
        format_version=np.array(DELTA_VERSION, dtype=np.int64),
        base_fingerprint=np.array(base_fingerprint),
        ops=np.array(codes, dtype=np.int8),
        edges=edges,
    )
    return len(codes)


def load_delta(path: PathLike) -> tuple:
    """Load a delta log: ``(base_fingerprint, op_codes, edges)``.

    Malformed or non-delta files raise :class:`GraphFormatError`.
    """
    path_str = str(path)
    try:
        with np.load(path_str, allow_pickle=False) as data:
            fields = set(data.files)
            if "kind" not in fields or str(data["kind"]) != "delta":
                raise GraphFormatError(
                    f"{path_str}: not an edge-delta log (kind="
                    f"{str(data['kind']) if 'kind' in fields else 'missing'!r})"
                )
            missing = {"base_fingerprint", "ops", "edges"} - fields
            if missing:
                raise GraphFormatError(
                    f"{path_str}: missing delta field(s) {sorted(missing)}"
                )
            base_fingerprint = str(data["base_fingerprint"])
            ops = np.asarray(data["ops"], dtype=np.int8)
            edges = np.asarray(data["edges"], dtype=np.int64)
    except GraphFormatError:
        raise
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise GraphFormatError(
            f"{path_str}: not a valid edge-delta log ({exc})"
        ) from exc
    if edges.ndim != 2 or edges.shape[1] != 2 or ops.shape[0] != edges.shape[0]:
        raise GraphFormatError(
            f"{path_str}: inconsistent delta arrays "
            f"({ops.shape[0]} ops vs edges of shape {edges.shape})"
        )
    return base_fingerprint, ops, edges


def replay_delta(base_graph, path: PathLike):
    """Replay a delta log on its base graph; return the mutated graph.

    The log's stored base fingerprint must match ``base_graph`` — a
    mismatch (replaying against the wrong base) raises
    :class:`GraphFormatError` instead of silently producing a wrong
    graph.  The log itself is validated as it replays: inserting an edge
    that is already present, deleting one that is absent, a self-loop or
    an out-of-range endpoint all mean the log does not belong to this
    base and raise :class:`GraphFormatError`.  The result is rebuilt
    through the same ``from_edges`` path a fresh build of the mutated
    edge list takes, so CSR arrays and index dtype are bit-identical.
    """
    from ..graph.undirected import UndirectedGraph

    if not isinstance(base_graph, UndirectedGraph):
        raise GraphError(
            f"delta replay needs an UndirectedGraph base, got {type(base_graph)!r}"
        )
    path_str = str(path)
    base_fingerprint, ops, edges = load_delta(path)
    actual = base_graph.fingerprint()
    if base_fingerprint != actual:
        raise GraphFormatError(
            f"{path_str}: delta base fingerprint {base_fingerprint[:12]}… "
            f"does not match the supplied graph ({actual[:12]}…)"
        )
    n = base_graph.num_vertices
    edge_set = {
        (int(u), int(v)) if u < v else (int(v), int(u))
        for u, v in base_graph.edges()
    }
    for code, (u, v) in zip(ops, edges):
        u, v = int(u), int(v)
        if not (0 <= u < n and 0 <= v < n) or u == v:
            raise GraphFormatError(
                f"{path_str}: invalid delta edge ({u}, {v}) for a graph "
                f"with {n} vertices"
            )
        key = (u, v) if u < v else (v, u)
        if code > 0:
            if key in edge_set:
                raise GraphFormatError(
                    f"{path_str}: delta inserts edge {key} which is "
                    "already present — log does not belong to this base"
                )
            edge_set.add(key)
        else:
            if key not in edge_set:
                raise GraphFormatError(
                    f"{path_str}: delta deletes edge {key} which is "
                    "absent — log does not belong to this base"
                )
            edge_set.remove(key)
    mutated = (
        np.array(sorted(edge_set), dtype=np.int64).reshape(-1, 2)
        if edge_set
        else np.empty((0, 2), dtype=np.int64)
    )
    return UndirectedGraph.from_edges(n, mutated)


def _dtypes_preserved(graph, arrays: dict) -> bool:
    """Whether the constructed graph kept the on-disk index dtype.

    Dtype participates in the fingerprint, so the stored hash is only
    adopted when construction did not re-narrow or re-widen the arrays
    (e.g. under the forced-int64 escape hatch).
    """
    if hasattr(graph, "indptr"):
        return graph.indptr.dtype == arrays["indptr"].dtype
    return graph.out_indptr.dtype == arrays["out_indptr"].dtype
