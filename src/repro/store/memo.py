"""Fingerprint-keyed LRU memoization of solver results.

Repeated ``engine.run()`` calls against an unchanged graph dominate the
serving workload the ROADMAP targets; with content-addressed graphs
(:mod:`repro.store.fingerprint`) the triple (graph fingerprint, solver
identity, context-relevant fields) fully determines a run's outcome, so
the engine can answer from a bounded LRU cache instead of recomputing.

Invalidation is structural *and* optionally temporal: a graph mutated
through ``DynamicKStarCore`` rebuilds its CSR arrays and therefore
hashes to a new fingerprint — stale entries are never *wrong*, only
unreachable until evicted — while a cache built with ``ttl=`` seconds
additionally expires entries by insertion age, which the serving layer
(:mod:`repro.serve`) uses to bound staleness of long-lived processes.
Expiry consults an injectable monotonic ``clock`` so tests (and the
simulated-concurrent server) drive it deterministically. Cached results
are cloned on every hit (arrays, extras and report included) so callers
can never corrupt the cached copy.

Caching is opt-in: pass a :class:`ResultCache` via
``ExecutionContext(cache=...)`` or install a process-wide default with
:func:`enable_default_cache`.
"""

from __future__ import annotations

import copy
import dataclasses
import time
from collections import OrderedDict
from typing import Any, Callable, Hashable, Optional

import numpy as np

__all__ = [
    "ResultCache",
    "make_cache_key",
    "get_default_cache",
    "enable_default_cache",
    "disable_default_cache",
]


def _hashable(value: Any) -> Optional[Hashable]:
    """Best-effort conversion to a hashable key component (None = no)."""
    if isinstance(value, (str, int, float, bool, bytes)) or value is None:
        return value
    if isinstance(value, (tuple, list)):
        parts = tuple(_hashable(item) for item in value)
        return None if any(p is None for p in parts) else parts
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (type(value).__name__,) + tuple(
            (f.name, _hashable(getattr(value, f.name)))
            for f in dataclasses.fields(value)
        )
    return None


def make_cache_key(
    fingerprint: str,
    kind: str,
    solver: str,
    ctx,
    options: dict,
    backend: Optional[str] = None,
) -> Optional[tuple]:
    """Cache key for a run, or None when the run is not cacheable.

    Covers every context field that can influence a solver's output or
    its report (thread count changes simulated seconds; seed, sanitize,
    frontier, budgets and cluster shape change behavior). A pre-supplied
    ``ctx.runtime`` carries arbitrary prior state, and unhashable option
    values cannot be keyed — both make the run uncacheable.

    ``backend`` is the *resolved* array-backend name the engine will run
    under.  Backends produce bit-identical results, but the report
    records which one executed, so a hit must come from a run on the
    same backend — the engine passes the resolved name rather than the
    raw ``ctx.backend`` so ``None`` (deferred to the environment) and an
    explicit name key identically.
    """
    if ctx.runtime is not None:
        return None
    option_items = []
    for name in sorted(options):
        converted = _hashable(options[name])
        if converted is None and options[name] is not None:
            return None
        option_items.append((name, converted))
    cluster = _hashable(ctx.cluster_config)
    if cluster is None and ctx.cluster_config is not None:
        return None
    return (
        fingerprint,
        kind,
        solver,
        backend,
        ctx.num_threads,
        ctx.seed,
        ctx.sanitize,
        ctx.frontier,
        ctx.time_limit,
        ctx.memory_limit_bytes,
        cluster,
        tuple(option_items),
    )


def clone_result(result):
    """Deep-enough copy of a solver result for safe cache sharing.

    Copies every array/dict/list field so neither side can mutate the
    other's view; scalar fields and the frozen report are shared.
    """
    clone = copy.copy(result)
    for field in dataclasses.fields(result):
        value = getattr(result, field.name)
        if isinstance(value, np.ndarray):
            setattr(clone, field.name, value.copy())
        elif isinstance(value, dict):
            setattr(clone, field.name, dict(value))
        elif isinstance(value, list):
            setattr(clone, field.name, list(value))
    return clone


class ResultCache:
    """Bounded LRU cache of solver results keyed by :func:`make_cache_key`.

    ``ttl`` (seconds) bounds the *insertion age* of a servable entry:
    an entry older than ``ttl`` at lookup time is treated as a miss,
    dropped, and counted in ``expired``. Age is measured by ``clock``, a
    zero-argument monotonic-seconds callable — inject a fake for
    deterministic expiry in tests; the default is the process monotonic
    clock. ``ttl=None`` (the default) never expires, which is exactly
    the pre-TTL behaviour: structural fingerprint invalidation plus LRU
    capacity eviction.

    TTL and LRU interact in two deliberate ways: a hit refreshes LRU
    recency but *not* the insertion stamp (re-``put`` to re-arm), and
    capacity overflow purges expired entries first so a dead entry can
    never push out a live one.
    """

    def __init__(
        self,
        max_entries: int = 128,
        ttl: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive (or None to disable)")
        self.max_entries = max_entries
        self.ttl = ttl
        # Real elapsed time is the whole point of a TTL; deterministic
        # tests and the simulated-concurrent server inject their own
        # clock instead of relying on this default.
        self._clock = clock if clock is not None else time.monotonic  # repro-lint: disable=R001 (injectable TTL clock)
        self._entries: "OrderedDict[tuple, Any]" = OrderedDict()
        self._stamps: "OrderedDict[tuple, float]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.expired = 0
        self.invalidated = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _is_expired(self, key: tuple, now: float) -> bool:
        """Whether ``key``'s entry has outlived the TTL at time ``now``."""
        if self.ttl is None:
            return False
        return now - self._stamps[key] > self.ttl

    def get(self, key: Optional[tuple]):
        """Return a cloned cached result, or None on miss/expiry."""
        if key is None:
            return None
        cached = self._entries.get(key)
        if cached is None:
            self.misses += 1
            return None
        if self._is_expired(key, self._clock()):
            del self._entries[key]
            del self._stamps[key]
            self.expired += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return clone_result(cached)

    def put(self, key: Optional[tuple], result) -> None:
        """Store a cloned result, evicting expired then least-recent entries."""
        if key is None:
            return
        now = self._clock()
        self._entries[key] = clone_result(result)
        self._entries.move_to_end(key)
        self._stamps[key] = now
        if len(self._entries) > self.max_entries:
            self.purge_expired(now=now)
        while len(self._entries) > self.max_entries:
            evicted, _ = self._entries.popitem(last=False)
            del self._stamps[evicted]

    def purge_expired(self, now: Optional[float] = None) -> int:
        """Drop every expired entry eagerly; return how many were dropped.

        A no-op (returning 0) on caches without a TTL. ``now`` defaults
        to the cache's clock — pass it to keep one consistent timestamp
        across a batch of cache operations.
        """
        if self.ttl is None:
            return 0
        if now is None:
            now = self._clock()
        dead = [key for key in self._entries if self._is_expired(key, now)]
        for key in dead:
            del self._entries[key]
            del self._stamps[key]
        self.expired += len(dead)
        return len(dead)

    def invalidate_fingerprint(self, fingerprint: str) -> int:
        """Drop every entry keyed to one graph fingerprint; return the count.

        Fingerprint-granular invalidation for the streaming layer: when a
        maintained graph mutates away from a state, the session retires
        that state's entries without touching results cached for *other*
        graphs (``clear()`` would).  Every cache key built by
        :func:`make_cache_key` — and the streaming session's own keys —
        leads with the graph fingerprint, so matching ``key[0]`` is
        exact.  Dropped entries accumulate in the ``invalidated``
        counter (reset by :meth:`clear`).
        """
        dead = [
            key for key in self._entries
            if key and key[0] == fingerprint
        ]
        for key in dead:
            del self._entries[key]
            del self._stamps[key]
        self.invalidated += len(dead)
        return len(dead)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss/expired/invalidated counters."""
        self._entries.clear()
        self._stamps.clear()
        self.hits = 0
        self.misses = 0
        self.expired = 0
        self.invalidated = 0


_DEFAULT_CACHE: Optional[ResultCache] = None


def get_default_cache() -> Optional[ResultCache]:
    """The process-wide default cache, or None when caching is off."""
    return _DEFAULT_CACHE


def enable_default_cache(
    max_entries: int = 128, ttl: Optional[float] = None
) -> ResultCache:
    """Install the process-wide default result cache, idempotently.

    When a default cache is already installed *with the same shape*
    (equal ``max_entries`` and ``ttl``), that cache is returned
    unchanged — its entries and hit/miss counters survive, so a library
    that re-enables caching mid-session cannot silently drop another
    component's warm entries. Requesting a *different* shape is an
    explicit reconfiguration: the old cache (and everything in it) is
    replaced by a fresh one. Callers holding the old object keep a
    working private cache; only the process-wide default moves.
    Per-:class:`~repro.engine.context.ExecutionContext` caches are
    independent of the default and are never touched by this function.
    """
    global _DEFAULT_CACHE
    existing = _DEFAULT_CACHE
    if (
        existing is not None
        and existing.max_entries == max_entries
        and existing.ttl == ttl
    ):
        return existing
    _DEFAULT_CACHE = ResultCache(max_entries=max_entries, ttl=ttl)
    return _DEFAULT_CACHE


def disable_default_cache() -> None:
    """Remove the process-wide default cache (per-context caches remain)."""
    global _DEFAULT_CACHE
    _DEFAULT_CACHE = None
