"""Fingerprint-keyed LRU memoization of solver results.

Repeated ``engine.run()`` calls against an unchanged graph dominate the
serving workload the ROADMAP targets; with content-addressed graphs
(:mod:`repro.store.fingerprint`) the triple (graph fingerprint, solver
identity, context-relevant fields) fully determines a run's outcome, so
the engine can answer from a bounded LRU cache instead of recomputing.

Invalidation is structural, not temporal: a graph mutated through
``DynamicKStarCore`` rebuilds its CSR arrays and therefore hashes to a
new fingerprint — stale entries are never *wrong*, only unreachable
until evicted. Cached results are cloned on every hit (arrays, extras
and report included) so callers can never corrupt the cached copy.

Caching is opt-in: pass a :class:`ResultCache` via
``ExecutionContext(cache=...)`` or install a process-wide default with
:func:`enable_default_cache`.
"""

from __future__ import annotations

import copy
import dataclasses
from collections import OrderedDict
from typing import Any, Hashable, Optional

import numpy as np

__all__ = [
    "ResultCache",
    "make_cache_key",
    "get_default_cache",
    "enable_default_cache",
    "disable_default_cache",
]


def _hashable(value: Any) -> Optional[Hashable]:
    """Best-effort conversion to a hashable key component (None = no)."""
    if isinstance(value, (str, int, float, bool, bytes)) or value is None:
        return value
    if isinstance(value, (tuple, list)):
        parts = tuple(_hashable(item) for item in value)
        return None if any(p is None for p in parts) else parts
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (type(value).__name__,) + tuple(
            (f.name, _hashable(getattr(value, f.name)))
            for f in dataclasses.fields(value)
        )
    return None


def make_cache_key(
    fingerprint: str,
    kind: str,
    solver: str,
    ctx,
    options: dict,
    backend: Optional[str] = None,
) -> Optional[tuple]:
    """Cache key for a run, or None when the run is not cacheable.

    Covers every context field that can influence a solver's output or
    its report (thread count changes simulated seconds; seed, sanitize,
    frontier, budgets and cluster shape change behavior). A pre-supplied
    ``ctx.runtime`` carries arbitrary prior state, and unhashable option
    values cannot be keyed — both make the run uncacheable.

    ``backend`` is the *resolved* array-backend name the engine will run
    under.  Backends produce bit-identical results, but the report
    records which one executed, so a hit must come from a run on the
    same backend — the engine passes the resolved name rather than the
    raw ``ctx.backend`` so ``None`` (deferred to the environment) and an
    explicit name key identically.
    """
    if ctx.runtime is not None:
        return None
    option_items = []
    for name in sorted(options):
        converted = _hashable(options[name])
        if converted is None and options[name] is not None:
            return None
        option_items.append((name, converted))
    cluster = _hashable(ctx.cluster_config)
    if cluster is None and ctx.cluster_config is not None:
        return None
    return (
        fingerprint,
        kind,
        solver,
        backend,
        ctx.num_threads,
        ctx.seed,
        ctx.sanitize,
        ctx.frontier,
        ctx.time_limit,
        ctx.memory_limit_bytes,
        cluster,
        tuple(option_items),
    )


def clone_result(result):
    """Deep-enough copy of a solver result for safe cache sharing.

    Copies every array/dict/list field so neither side can mutate the
    other's view; scalar fields and the frozen report are shared.
    """
    clone = copy.copy(result)
    for field in dataclasses.fields(result):
        value = getattr(result, field.name)
        if isinstance(value, np.ndarray):
            setattr(clone, field.name, value.copy())
        elif isinstance(value, dict):
            setattr(clone, field.name, dict(value))
        elif isinstance(value, list):
            setattr(clone, field.name, list(value))
    return clone


class ResultCache:
    """Bounded LRU cache of solver results keyed by :func:`make_cache_key`."""

    def __init__(self, max_entries: int = 128):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: "OrderedDict[tuple, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Optional[tuple]):
        """Return a cloned cached result, or None on miss."""
        if key is None:
            return None
        cached = self._entries.get(key)
        if cached is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return clone_result(cached)

    def put(self, key: Optional[tuple], result) -> None:
        """Store a cloned result, evicting the least recently used."""
        if key is None:
            return
        self._entries[key] = clone_result(result)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0


_DEFAULT_CACHE: Optional[ResultCache] = None


def get_default_cache() -> Optional[ResultCache]:
    """The process-wide default cache, or None when caching is off."""
    return _DEFAULT_CACHE


def enable_default_cache(max_entries: int = 128) -> ResultCache:
    """Install (or resize) the process-wide default result cache."""
    global _DEFAULT_CACHE
    _DEFAULT_CACHE = ResultCache(max_entries=max_entries)
    return _DEFAULT_CACHE


def disable_default_cache() -> None:
    """Remove the process-wide default cache (per-context caches remain)."""
    global _DEFAULT_CACHE
    _DEFAULT_CACHE = None
