"""Storage/ingestion performance layer (PR 5).

``repro.store`` owns the data path *under* the graph containers:

* :mod:`repro.store.compact` — dtype-aware index compaction (int32
  narrowing when ``n, m < 2**31``, with a forced-int64 escape hatch);
* :mod:`repro.store.csr` — O(m) counting-sort CSR builders replacing the
  old O(m log m) ``np.lexsort`` construction;
* :mod:`repro.store.fingerprint` — stable content fingerprints of CSR
  buffers, the key of the result-memoization cache;
* :mod:`repro.store.reader` — vectorized edge-list text ingestion (the
  line-by-line parser stays as the strict-validation fallback);
* :mod:`repro.store.snapshot` — binary ``.npz`` snapshots with
  mmap-backed loading;
* :mod:`repro.store.shard` — partitioned (sharded) snapshots behind the
  budgeted out-of-core :class:`~repro.store.shard.ShardedGraph` facade;
* :mod:`repro.store.memo` — the fingerprint-keyed LRU result cache used
  by :func:`repro.engine.run`.

The first three modules are dependency-free (pure NumPy) because the
graph containers import them at class-definition time; ``reader`` /
``snapshot`` / ``memo`` sit *above* the containers and are therefore
re-exported lazily to keep imports acyclic.
"""

from __future__ import annotations

from typing import Any

from .compact import (
    forced_int64,
    index_dtype,
    int64_forced,
    narrow_csr,
    set_force_int64,
)
from .csr import (
    counting_sort_csr,
    csr_from_sorted_canonical,
    reference_csr_from_canonical,
)
from .fingerprint import fingerprint_arrays

__all__ = [
    "index_dtype",
    "narrow_csr",
    "forced_int64",
    "int64_forced",
    "set_force_int64",
    "counting_sort_csr",
    "csr_from_sorted_canonical",
    "reference_csr_from_canonical",
    "fingerprint_arrays",
    "read_edges_vectorized",
    "save_snapshot",
    "load_snapshot",
    "save_delta",
    "load_delta",
    "replay_delta",
    "save_sharded",
    "load_sharded",
    "shard_bounds",
    "ShardedGraph",
    "GraphShard",
    "ResultCache",
    "make_cache_key",
    "get_default_cache",
    "enable_default_cache",
    "disable_default_cache",
]

# Lazily-resolved exports from the modules that depend on repro.graph.
# (name -> owning submodule)
_LAZY = {
    "read_edges_vectorized": "reader",
    "save_snapshot": "snapshot",
    "load_snapshot": "snapshot",
    "save_delta": "snapshot",
    "load_delta": "snapshot",
    "replay_delta": "snapshot",
    "save_sharded": "shard",
    "load_sharded": "shard",
    "shard_bounds": "shard",
    "ShardedGraph": "shard",
    "GraphShard": "shard",
    "ResultCache": "memo",
    "make_cache_key": "memo",
    "get_default_cache": "memo",
    "enable_default_cache": "memo",
    "disable_default_cache": "memo",
}


def __getattr__(name: str) -> Any:
    """PEP 562 lazy re-exports; see the module docstring for why."""
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    return getattr(module, name)
