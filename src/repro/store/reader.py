"""Vectorized edge-list text ingestion.

The line-by-line loader (``repro.graph.io._parse_lines``) performs one
``builder.add_edge`` call — two dict lookups, two Python int boxes — per
edge. This module replaces the hot path with array-at-a-time parsing
while reproducing the legacy semantics *exactly*:

* ``#`` / ``%`` comment lines and blank lines are skipped;
* a data line with fewer than two columns raises the same
  :class:`~repro.errors.GraphFormatError`, message and line number
  included;
* vertex tokens are interned as **strings** to dense ids in first-seen
  (interleaved ``u, v``) order, so labels and vertex numbering match the
  legacy reader token for token.

Two tiers:

* **numeric fast path** — two-column files whose tokens are canonical
  decimal integers are recognised by byte-level array ops on the whole
  text (no per-line Python loop), parsed with one ``np.fromstring``
  call and interned through a direct-address first-seen table; guards
  (integer charset, exactly two tokens per line, magnitude below 2**53,
  canonical-length equality) prove the token -> value mapping is
  invertible before the path is trusted;
* **token path** — everything else splits per line (exact column
  validation) and interns the token array via ``np.unique`` on strings.

The strict line-by-line builder loop remains available through
``read_undirected_edgelist(..., vectorized=False)`` as the
reference/validation fallback.
"""

from __future__ import annotations

from typing import Iterator, TextIO, Tuple

import numpy as np

from ..errors import GraphFormatError

__all__ = ["read_edges_vectorized"]

_COMMENT_CHARS = "#%"
# float64 represents every integer of magnitude < 2**53 exactly; larger
# tokens must take the string path.
_EXACT_FLOAT_BOUND = float(1 << 53)
_CHUNK_CHARS = 1 << 24
#: Dense-interner guard: only build a first-seen table when the value
#: span is at most this factor of the token count (else np.unique).
_DENSE_SPAN_FACTOR = 4


def _iter_chunks(stream: TextIO) -> Iterator[str]:
    while True:
        chunk = stream.read(_CHUNK_CHARS)
        if not chunk:
            return
        yield chunk


def _collect_data_lines(text: str) -> Tuple[list[str], list[int]]:
    """Strip/filter the text into (data_lines, 1-based line numbers).

    This is the slow-path line walk, reproducing the legacy reader's
    strip/skip semantics exactly; the numeric fast path never calls it.
    """
    data_lines: list[str] = []
    numbers: list[int] = []
    for line_number, raw in enumerate(text.split("\n"), start=1):
        line = raw.strip()
        if line and line[0] not in _COMMENT_CHARS:
            data_lines.append(line)
            numbers.append(line_number)
    return data_lines, numbers


def _first_seen_ids_dense(
    flat: np.ndarray, lo: int, span: int
) -> Tuple[np.ndarray, np.ndarray]:
    """O(m + span) first-seen interning through a direct-address table."""
    offsets = flat - lo
    first_pos = np.full(span, -1, dtype=np.int64)
    # Assignment with duplicate fancy indices stores the last value
    # written, so scattering positions in reverse leaves each slot
    # holding its value's *earliest* occurrence index.
    first_pos[offsets[::-1]] = np.arange(
        flat.size - 1, -1, -1, dtype=np.int64
    )
    uniq_offsets = np.flatnonzero(first_pos >= 0)
    order = np.argsort(first_pos[uniq_offsets], kind="stable")
    uniq_offsets = uniq_offsets[order]
    ids_of = np.empty(span, dtype=np.int64)
    ids_of[uniq_offsets] = np.arange(uniq_offsets.size, dtype=np.int64)
    return ids_of[offsets], uniq_offsets + lo


def _first_seen_ids(flat: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Dense ids in first-occurrence order for a flat token/value array.

    Returns ``(ids, uniques_in_first_seen_order)`` — the vectorized
    equivalent of interning ``flat`` left to right through
    ``_LabelInterner``.
    """
    if flat.size and flat.dtype.kind in "iu":
        lo = int(flat.min())
        span = int(flat.max()) - lo + 1
        if span <= max(_DENSE_SPAN_FACTOR * flat.size, 1 << 20):
            return _first_seen_ids_dense(flat.astype(np.int64), lo, span)
    uniq, first_index, inverse = np.unique(
        flat, return_index=True, return_inverse=True
    )
    order = np.argsort(first_index, kind="stable")
    remap = np.empty(uniq.size, dtype=np.int64)
    remap[order] = np.arange(uniq.size, dtype=np.int64)
    return remap[inverse], uniq[order]


def _decimal_lengths(values: np.ndarray) -> np.ndarray:
    """Length of the canonical decimal rendering of each int64 value."""
    magnitude = np.abs(values)
    powers = np.power(10, np.arange(1, 19, dtype=np.int64))
    digits = np.searchsorted(powers, magnitude, side="right") + 1
    return digits + (values < 0)


def _line_starts_of(chars: np.ndarray, newline: np.ndarray) -> np.ndarray:
    """Start offset of every line of ``chars`` (trailing newline dropped)."""
    starts = np.concatenate(([0], np.flatnonzero(newline) + np.int64(1)))
    if starts[-1] == chars.size:
        starts = starts[:-1]
    return starts


_EMPTY_RESULT: Tuple[np.ndarray, list[str]] = (
    np.empty((0, 2), dtype=np.int64), []
)


def _try_numeric_text(text: str) -> Tuple[np.ndarray, list[str]] | None:
    """Whole-text numeric fast path; None sends the caller to the
    line-splitting string path.

    Every structural property the strict parser establishes per line is
    proved here with byte-level array ops instead:

    * comment lines (first character ``#``/``%``) are masked out whole;
      indented lines bail out (the ``strip()``-exact slow path is the
      authority on those);
    * the remaining bytes must be digits, minus signs or whitespace —
      "1e3", "0x10" and "7.0" parse to integers whose canonical
      rendering differs from the token, which would break label
      equivalence with the string interner;
    * every minus sign must start a token ("1-2" is one token to the
      splitter but two numbers to ``strtod``);
    * every line must carry exactly two tokens (or none, for blank
      lines): a global token count can coincide — "1 2\\n3\\n4 5 6" has
      six tokens over three lines — while the strict parser errors on
      the one-column line;
    * each token's length must equal its value's canonical decimal
      rendering, proved in aggregate: with the charset restricted,
      every non-canonical spelling ("07", "-0") is strictly longer
      than canonical, so total-length equality pins every token.
    """
    try:
        raw = text.encode("ascii")
    except UnicodeEncodeError:
        return None  # non-ascii tokens must take the string path
    chars = np.frombuffer(raw, dtype=np.uint8)
    if chars.size == 0:
        return _EMPTY_RESULT
    newline = chars == 10
    line_starts = _line_starts_of(chars, newline)
    first = chars[line_starts]
    if bool(np.any(
        (first == 32) | (first == 9) | (first == 13)
        | (first == 11) | (first == 12)
    )):
        return None  # indented or blank-padded lines: slow path decides
    comment = (first == 35) | (first == 37)
    if bool(np.any(comment)):
        line_ends = np.append(line_starts[1:], np.int64(chars.size))
        delta = np.zeros(chars.size + 1, dtype=np.int32)
        np.add.at(delta, line_starts[comment], 1)
        np.add.at(delta, line_ends[comment], -1)
        chars = chars[np.cumsum(delta[:-1]) == 0]
        if chars.size == 0:
            return _EMPTY_RESULT
        newline = chars == 10
        line_starts = _line_starts_of(chars, newline)
    digit = (chars >= 48) & (chars <= 57)
    minus = chars == 45
    separator = (
        (chars == 32) | (chars == 9) | (chars == 13)
        | (chars == 11) | (chars == 12) | newline
    )
    if not bool(np.all(digit | minus | separator)):
        return None
    token_start = ~separator
    token_start[1:] &= separator[:-1]
    minus_at = np.flatnonzero(minus)
    if minus_at.size and not bool(np.all(token_start[minus_at])):
        return None
    tokens_per_line = np.add.reduceat(
        token_start.astype(np.int64), line_starts
    )
    two_tokens = tokens_per_line == 2
    if not bool(np.all(two_tokens | (tokens_per_line == 0))):
        return None
    data_line_count = int(np.count_nonzero(two_tokens))
    if data_line_count == 0:
        return _EMPTY_RESULT
    body = raw if chars.size == len(raw) else chars.tobytes()
    values = np.fromstring(body, dtype=np.float64, sep=" ")
    if values.size != 2 * data_line_count:
        return None  # a token strtod would split differently
    if not np.all(np.isfinite(values)):
        return None  # e.g. a several-hundred-digit token overflowing strtod
    if float(np.abs(values).max()) >= _EXACT_FLOAT_BOUND:
        return None
    as_int = values.astype(np.int64)
    if not np.array_equal(as_int.astype(np.float64), values):
        return None  # defense in depth; the charset guard forbids "1.5"
    if int(np.count_nonzero(~separator)) != int(_decimal_lengths(as_int).sum()):
        return None  # some token is not its value's canonical rendering
    ids, uniq = _first_seen_ids(as_int)
    labels = [str(value) for value in uniq.tolist()]
    return ids.reshape(-1, 2), labels


def _token_pairs(
    data_lines: list[str], numbers: list[int], path_hint: str
) -> Tuple[np.ndarray, list[str]]:
    """General path: per-line split with exact legacy error reporting."""
    tokens: list[str] = []
    for line_number, line in zip(numbers, data_lines):
        parts = line.split()
        if len(parts) < 2:
            raise GraphFormatError(
                f"{path_hint}:{line_number}: expected at least two columns, "
                f"got {line!r}"
            )
        tokens.append(parts[0])
        tokens.append(parts[1])
    flat = np.array(tokens, dtype=np.str_)
    ids, uniq = _first_seen_ids(flat)
    return ids.reshape(-1, 2), uniq.tolist()


def read_edges_vectorized(
    stream: TextIO, path_hint: str = "<stream>"
) -> Tuple[np.ndarray, list[str]]:
    """Parse an edge-list stream into ``(edge_ids, labels)``.

    ``edge_ids`` is an (m, 2) int64 array of dense vertex ids;
    ``labels[i]`` is the original token (always ``str``) of vertex ``i``,
    in the same first-seen order the legacy line-by-line reader assigns.
    Raises :class:`GraphFormatError` with the legacy message for data
    lines with fewer than two columns.
    """
    text = "".join(_iter_chunks(stream))
    numeric = _try_numeric_text(text)
    if numeric is not None:
        return numeric
    data_lines, numbers = _collect_data_lines(text)
    if not data_lines:
        return np.empty((0, 2), dtype=np.int64), []
    return _token_pairs(data_lines, numbers, path_hint)
