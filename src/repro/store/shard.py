"""Sharded CSR storage: partitioned ``.npz`` snapshots behind a facade.

This module is the out-of-core substrate under the BSP solvers
(ROADMAP item 2).  A built graph is partitioned into ``P`` contiguous
vertex ranges of balanced *edge mass* — the ranges come from the same
searchsorted-on-cumulative-mass computation the multiproc backend uses
to split sweeps across workers — and each range is persisted as its own
uncompressed ``.npz`` shard holding:

* the range's **local CSR slice** (``indptr`` rebased to the range, the
  global-id ``indices`` slice, and for directed graphs the matching
  ``out_edge_ids`` slice);
* a **boundary-edge table** (``boundary_src`` / ``boundary_dst``): every
  adjacency slot whose tail lives outside the range.  For undirected
  graphs the table is symmetric across shards — the cross edge
  ``{u, v}`` appears as ``(u, v)`` in u's shard and ``(v, u)`` in v's —
  and it is what the distributed layer's boundary h-value exchange is
  accounted from.

A ``manifest.json`` records the partition bounds and one content
fingerprint per shard, chained into a single ``chain_fingerprint``; it
also carries the *monolithic* graph fingerprint, so a
:class:`ShardedGraph` fingerprints identically to the in-RAM container
it was sharded from and the engine's memo cache is shared between
sharded and monolithic runs of the same graph.

:class:`ShardedGraph` mmap-loads shards on demand and keeps them in a
resident set governed by a hard ``memory_budget_bytes`` with a pluggable
eviction policy (``"lru"`` / ``"fifo"``).  "Resident" means the summed
``nbytes`` of a shard's loaded members; O(n) driver vectors (the
assembled degree arrays) are deliberately exempt — the budget bounds the
O(m) adjacency structure, which is what exceeds RAM on massive graphs.

All shard-member access goes through this module: lint rule R014 flags
any other code opening ``shard_*.npz`` members directly.
"""

from __future__ import annotations

import hashlib
import json
import zipfile
from collections import OrderedDict
from pathlib import Path
from typing import Union

import numpy as np

from ..errors import GraphError, GraphFormatError
from .fingerprint import fingerprint_arrays
from .snapshot import _load_arrays

__all__ = [
    "SHARD_FORMAT_VERSION",
    "MANIFEST_NAME",
    "EVICTION_POLICIES",
    "shard_bounds",
    "save_sharded",
    "load_sharded",
    "GraphShard",
    "ShardedGraph",
]

PathLike = Union[str, Path]

SHARD_FORMAT_VERSION = 1
MANIFEST_NAME = "manifest.json"

#: Supported eviction policies for the resident-shard set.
EVICTION_POLICIES = ("lru", "fifo")

_UNDIRECTED_MEMBERS = ("indptr", "indices", "boundary_src", "boundary_dst")
_DIRECTED_MEMBERS = (
    "out_indptr",
    "out_indices",
    "out_edge_ids",
    "boundary_src",
    "boundary_dst",
)

_MANIFEST_KEYS = (
    "format_version",
    "kind",
    "num_vertices",
    "num_edges",
    "index_dtype",
    "num_shards",
    "bounds",
    "graph_fingerprint",
    "chain_fingerprint",
    "shards",
)


def _shard_file_name(index: int) -> str:
    return f"shard_{index:05d}.npz"


def _members_for(kind: str) -> tuple:
    return _UNDIRECTED_MEMBERS if kind == "undirected" else _DIRECTED_MEMBERS


def shard_bounds(cumulative_mass: np.ndarray, parts: int) -> np.ndarray:
    """Contiguous vertex ranges of balanced edge mass.

    ``cumulative_mass`` is a non-decreasing array of ``n + 1`` entries
    (a CSR ``indptr`` is exactly that: ``indptr[v]`` is the adjacency
    mass of vertices ``0..v-1``).  Returns ``parts + 1`` int64 bounds
    with ``bounds[0] == 0`` and ``bounds[-1] == n``; shard ``i`` owns
    the vertex range ``[bounds[i], bounds[i + 1])``.

    The split reuses the multiproc backend's searchsorted-on-cumulative-
    mass partitioner (:meth:`~repro.backends.multiproc.MultiprocBackend.
    _balanced_bounds`), so a shard boundary lands wherever a worker
    boundary would: equal shares of adjacency slots, not of vertices.
    """
    from ..backends.multiproc import MultiprocBackend

    cumulative = np.ascontiguousarray(cumulative_mass, dtype=np.int64)
    if cumulative.ndim != 1 or cumulative.size == 0:
        raise GraphError("cumulative_mass must be a 1-D array with >= 1 entry")
    if parts < 1:
        raise GraphError(f"shard count must be >= 1, got {parts}")
    num_vertices = cumulative.size - 1
    if parts > max(num_vertices, 1):
        raise GraphError(
            f"cannot split {num_vertices} vertices into {parts} shards"
        )
    return MultiprocBackend._balanced_bounds(cumulative, parts)


def _shard_payload(graph, kind: str, lo: int, hi: int) -> dict:
    """The member arrays of one shard (contiguous, storage dtypes)."""
    if kind == "undirected":
        indptr, indices = graph.indptr, graph.indices
        start, stop = int(indptr[lo]), int(indptr[hi])
        local_indptr = np.ascontiguousarray(indptr[lo:hi + 1] - indptr[lo])
        local_indices = np.ascontiguousarray(indices[start:stop])
        heads = np.repeat(
            np.arange(lo, hi, dtype=indptr.dtype), np.diff(indptr[lo:hi + 1])
        )
        cross = (local_indices < lo) | (local_indices >= hi)
        return {
            "indptr": local_indptr,
            "indices": local_indices,
            "boundary_src": np.ascontiguousarray(heads[cross]),
            "boundary_dst": np.ascontiguousarray(local_indices[cross]),
        }
    indptr, indices = graph.out_indptr, graph.out_indices
    start, stop = int(indptr[lo]), int(indptr[hi])
    local_indptr = np.ascontiguousarray(indptr[lo:hi + 1] - indptr[lo])
    local_indices = np.ascontiguousarray(indices[start:stop])
    heads = np.repeat(
        np.arange(lo, hi, dtype=indptr.dtype), np.diff(indptr[lo:hi + 1])
    )
    cross = (local_indices < lo) | (local_indices >= hi)
    return {
        "out_indptr": local_indptr,
        "out_indices": local_indices,
        "out_edge_ids": np.ascontiguousarray(graph.out_edge_ids[start:stop]),
        "boundary_src": np.ascontiguousarray(heads[cross]),
        "boundary_dst": np.ascontiguousarray(local_indices[cross]),
    }


def _shard_fingerprint(
    kind: str, num_vertices: int, lo: int, hi: int, arrays: dict
) -> str:
    """Content fingerprint of one shard's member arrays."""
    members = _members_for(kind)
    return fingerprint_arrays(
        f"{kind}-shard",
        num_vertices,
        np.array([lo, hi], dtype=np.int64),
        *(np.ascontiguousarray(arrays[name]) for name in members),
    )


def _chain(kind: str, num_vertices: int, shard_fingerprints: list) -> str:
    """Chain per-shard fingerprints into the one graph-level digest."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(kind.encode("ascii"))
    digest.update(str(num_vertices).encode("ascii"))
    digest.update(str(len(shard_fingerprints)).encode("ascii"))
    for fingerprint in shard_fingerprints:
        digest.update(fingerprint.encode("ascii"))
    return digest.hexdigest()


def save_sharded(graph, directory: PathLike, shards: int = 8) -> str:
    """Partition ``graph`` into ``shards`` vertex ranges on disk.

    Writes ``shard_00000.npz .. shard_<P-1>.npz`` plus ``manifest.json``
    into ``directory`` (created if needed; stale ``shard_*.npz`` files
    from an earlier, differently-sized sharding are removed).  Returns
    the chain fingerprint.  Accepts the same graph types as
    :func:`~repro.store.snapshot.save_snapshot`.
    """
    from ..graph.directed import DirectedGraph
    from ..graph.undirected import UndirectedGraph

    if isinstance(graph, UndirectedGraph):
        kind, masses = "undirected", graph.indptr
    elif isinstance(graph, DirectedGraph):
        kind, masses = "directed", graph.out_indptr
    else:
        raise GraphError(f"cannot shard object of type {type(graph)!r}")

    bounds = shard_bounds(masses, shards)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for stale in sorted(directory.glob("shard_*.npz")):
        stale.unlink()

    records = []
    fingerprints = []
    for index in range(shards):
        lo, hi = int(bounds[index]), int(bounds[index + 1])
        payload = _shard_payload(graph, kind, lo, hi)
        fingerprint = _shard_fingerprint(
            kind, graph.num_vertices, lo, hi, payload
        )
        file_name = _shard_file_name(index)
        np.savez(directory / file_name, **payload)
        fingerprints.append(fingerprint)
        records.append(
            {
                "file": file_name,
                "fingerprint": fingerprint,
                "lo": lo,
                "hi": hi,
                "entries": int(payload[_members_for(kind)[1]].size),
                "boundary_entries": int(payload["boundary_src"].size),
                "nbytes": int(sum(a.nbytes for a in payload.values())),
            }
        )

    index_dtype = (
        graph.indptr.dtype if kind == "undirected" else graph.out_indptr.dtype
    )
    manifest = {
        "format_version": SHARD_FORMAT_VERSION,
        "kind": kind,
        "num_vertices": int(graph.num_vertices),
        "num_edges": int(graph.num_edges),
        "index_dtype": index_dtype.str,
        "num_shards": int(shards),
        "bounds": [int(b) for b in bounds],
        "graph_fingerprint": graph.fingerprint(),
        "chain_fingerprint": _chain(kind, graph.num_vertices, fingerprints),
        "shards": records,
    }
    (directory / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
    )
    return manifest["chain_fingerprint"]


def _validate_manifest(directory: Path, manifest: dict) -> None:
    """Structural validation of a shard manifest against the directory."""
    prefix = str(directory)
    for key in _MANIFEST_KEYS:
        if key not in manifest:
            raise GraphFormatError(f"{prefix}: manifest is missing {key!r}")
    if manifest["format_version"] != SHARD_FORMAT_VERSION:
        raise GraphFormatError(
            f"{prefix}: unsupported shard format version "
            f"{manifest['format_version']!r}"
        )
    kind = manifest["kind"]
    if kind not in ("undirected", "directed"):
        raise GraphFormatError(f"{prefix}: unknown graph kind {kind!r}")
    try:
        np.dtype(manifest["index_dtype"])
    except TypeError as exc:
        raise GraphFormatError(
            f"{prefix}: bad index_dtype {manifest['index_dtype']!r}"
        ) from exc
    num_shards = manifest["num_shards"]
    bounds = manifest["bounds"]
    records = manifest["shards"]
    if len(records) != num_shards or len(bounds) != num_shards + 1:
        raise GraphFormatError(
            f"{prefix}: manifest lists {len(records)} shards and "
            f"{len(bounds)} bounds for num_shards={num_shards}"
        )
    if bounds[0] != 0 or bounds[-1] != manifest["num_vertices"]:
        raise GraphFormatError(
            f"{prefix}: shard bounds do not cover the vertex range"
        )
    if any(bounds[i] > bounds[i + 1] for i in range(num_shards)):
        raise GraphFormatError(f"{prefix}: shard bounds must be non-decreasing")
    for index, record in enumerate(records):
        expected = _shard_file_name(index)
        if record.get("file") != expected:
            raise GraphFormatError(
                f"{prefix}: shard {index} is recorded as "
                f"{record.get('file')!r}; expected {expected!r} — shard "
                "files are renamed, reordered or missing from the manifest"
            )
        if record.get("lo") != bounds[index] or record.get("hi") != bounds[index + 1]:
            raise GraphFormatError(
                f"{prefix}: shard {index} range does not match the bounds"
            )
        if not (directory / expected).is_file():
            raise GraphFormatError(
                f"{prefix}: manifest lists {expected} but the file is missing"
            )
    listed = {record["file"] for record in records}
    on_disk = {path.name for path in directory.glob("shard_*.npz")}
    extras = sorted(on_disk - listed)
    if extras:
        raise GraphFormatError(
            f"{prefix}: shard files not listed in the manifest: "
            f"{', '.join(extras)}"
        )


def load_sharded(
    directory: PathLike,
    memory_budget_bytes: int | None = None,
    eviction: str = "lru",
) -> "ShardedGraph":
    """Open a sharded snapshot directory as a :class:`ShardedGraph`.

    Validates the manifest against the directory contents (missing,
    extra, renamed or reordered shard files all raise
    :class:`~repro.errors.GraphFormatError`) without touching any shard
    payload; shards are mmap-loaded lazily on first access.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise GraphFormatError(
            f"{directory}: not a sharded snapshot directory"
        )
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.is_file():
        raise GraphFormatError(
            f"{directory}: missing {MANIFEST_NAME}; not a sharded snapshot"
        )
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise GraphFormatError(
            f"{manifest_path}: unreadable shard manifest ({exc})"
        ) from exc
    if not isinstance(manifest, dict):
        raise GraphFormatError(f"{manifest_path}: manifest is not an object")
    _validate_manifest(directory, manifest)
    return ShardedGraph(
        directory,
        manifest,
        memory_budget_bytes=memory_budget_bytes,
        eviction=eviction,
    )


class GraphShard:
    """One resident vertex-range shard of a :class:`ShardedGraph`.

    Exposes the shard's member arrays as attributes (``indptr`` /
    ``indices`` / ``boundary_src`` / ``boundary_dst`` for undirected
    graphs; ``out_indptr`` / ``out_indices`` / ``out_edge_ids`` plus the
    boundary table for directed ones).  The local ``indptr`` is rebased
    to the range — row ``v`` of the shard is global vertex ``lo + v`` —
    while ``indices`` / ``boundary_*`` keep *global* vertex ids.
    """

    __slots__ = ("index", "lo", "hi", "arrays", "nbytes")

    def __init__(self, index: int, lo: int, hi: int, arrays: dict):
        self.index = index
        self.lo = lo
        self.hi = hi
        self.arrays = arrays
        self.nbytes = int(sum(a.nbytes for a in arrays.values()))

    def __getattr__(self, name: str):
        arrays = object.__getattribute__(self, "arrays")
        try:
            return arrays[name]
        except KeyError:
            raise AttributeError(name) from None

    @property
    def num_vertices(self) -> int:
        """Number of vertices in the shard's range ``[lo, hi)``."""
        return self.hi - self.lo

    def __repr__(self) -> str:
        return (
            f"GraphShard(index={self.index}, range=[{self.lo}, {self.hi}), "
            f"nbytes={self.nbytes})"
        )


class ShardedGraph:
    """Facade over a sharded snapshot: on-demand mmap shards + budget.

    ``shard(i)`` returns shard ``i``, loading it if absent and evicting
    resident shards (``"lru"``: least recently *used* first; ``"fifo"``:
    least recently *loaded* first) until the summed member bytes fit the
    hard ``memory_budget_bytes``.  A single shard larger than the budget
    raises :class:`~repro.errors.GraphError` — the budget is a real
    ceiling, not advisory.  ``memory_budget_bytes=None`` keeps every
    touched shard resident.

    ``fingerprint()`` returns the *monolithic* graph fingerprint from
    the manifest, so engine memo-cache keys are identical for sharded
    and monolithic runs of the same graph; the shard-level integrity
    story (per-shard fingerprints chained into ``chain_fingerprint``)
    is checked by :meth:`verify`.
    """

    def __init__(
        self,
        directory: PathLike,
        manifest: dict,
        memory_budget_bytes: int | None = None,
        eviction: str = "lru",
    ):
        if eviction not in EVICTION_POLICIES:
            raise GraphError(
                f"unknown eviction policy {eviction!r}; "
                f"choose from {EVICTION_POLICIES}"
            )
        if memory_budget_bytes is not None and memory_budget_bytes <= 0:
            raise GraphError("memory_budget_bytes must be positive or None")
        self._directory = Path(directory)
        self._manifest = manifest
        self.memory_budget_bytes = memory_budget_bytes
        self.eviction = eviction
        self.bounds = np.asarray(manifest["bounds"], dtype=np.int64)
        self.index_dtype = np.dtype(manifest["index_dtype"])
        self._resident: "OrderedDict[int, GraphShard]" = OrderedDict()
        self._resident_bytes = 0
        self._shard_loads = 0
        self._evictions = 0
        self._peak_resident_bytes = 0
        self._degrees: np.ndarray | None = None
        self._in_degrees: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Identity / geometry
    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        """``"undirected"`` or ``"directed"``."""
        return self._manifest["kind"]

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n`` of the full graph."""
        return int(self._manifest["num_vertices"])

    @property
    def num_edges(self) -> int:
        """Number of edges ``m`` of the full graph."""
        return int(self._manifest["num_edges"])

    @property
    def num_shards(self) -> int:
        """Number of vertex-range shards ``P``."""
        return int(self._manifest["num_shards"])

    @property
    def chain_fingerprint(self) -> str:
        """The manifest's chained per-shard fingerprint digest."""
        return self._manifest["chain_fingerprint"]

    def fingerprint(self) -> str:
        """The monolithic graph fingerprint recorded in the manifest.

        This is what makes sharded and monolithic runs share engine
        memo-cache entries: :func:`~repro.store.memo.make_cache_key`
        sees the same fingerprint either way.
        """
        return self._manifest["graph_fingerprint"]

    def shard_of(self, vertex: int) -> int:
        """The shard index owning global vertex id ``vertex``."""
        return int(self.owners(np.asarray([vertex], dtype=np.int64))[0])

    def owners(self, vertex_ids: np.ndarray) -> np.ndarray:
        """Shard index of every given global vertex id (int64 array)."""
        ids = np.asarray(vertex_ids, dtype=np.int64)
        return np.searchsorted(self.bounds, ids, side="right") - 1

    def cross_adjacency_fraction(self) -> float:
        """Fraction of adjacency slots whose tail lives on another shard."""
        entries = sum(r["entries"] for r in self._manifest["shards"])
        boundary = sum(r["boundary_entries"] for r in self._manifest["shards"])
        return boundary / entries if entries else 0.0

    # ------------------------------------------------------------------
    # Residency
    # ------------------------------------------------------------------
    def _load_members(self, index: int, names: tuple) -> dict:
        """Load member arrays of shard ``index`` (mmap, uncounted)."""
        record = self._manifest["shards"][index]
        path = self._directory / record["file"]
        try:
            return _load_arrays(str(path), names, mmap=True)
        except KeyError as exc:
            raise GraphFormatError(f"{path}: missing member {exc}") from exc
        except (OSError, ValueError, zipfile.BadZipFile) as exc:
            raise GraphFormatError(
                f"{path}: not a valid shard file ({exc})"
            ) from exc

    def shard(self, index: int) -> GraphShard:
        """Return shard ``index``, loading and admitting it if needed."""
        if not 0 <= index < self.num_shards:
            raise GraphError(
                f"shard index {index} out of range for {self.num_shards} shards"
            )
        resident = self._resident.get(index)
        if resident is not None:
            if self.eviction == "lru":
                self._resident.move_to_end(index)
            return resident
        arrays = self._load_members(index, _members_for(self.kind))
        shard = GraphShard(
            index, int(self.bounds[index]), int(self.bounds[index + 1]), arrays
        )
        self._admit(shard)
        return shard

    def _admit(self, shard: GraphShard) -> None:
        budget = self.memory_budget_bytes
        if budget is not None and shard.nbytes > budget:
            raise GraphError(
                f"shard {shard.index} needs {shard.nbytes} bytes alone, "
                f"over memory_budget_bytes={budget}; re-shard with more "
                "shards or raise the budget"
            )
        while (
            budget is not None
            and self._resident
            and self._resident_bytes + shard.nbytes > budget
        ):
            _, evicted = self._resident.popitem(last=False)
            self._resident_bytes -= evicted.nbytes
            self._evictions += 1
        self._resident[shard.index] = shard
        self._resident_bytes += shard.nbytes
        self._shard_loads += 1
        self._peak_resident_bytes = max(
            self._peak_resident_bytes, self._resident_bytes
        )

    def resident_shards(self) -> tuple:
        """Resident shard indices, eviction order first."""
        return tuple(self._resident)

    def memory_bytes(self) -> int:
        """Currently resident shard bytes (the facade's footprint)."""
        return self._resident_bytes

    def stats(self) -> dict:
        """Residency counters for reports and benches."""
        return {
            "shards": self.num_shards,
            "shard_loads": self._shard_loads,
            "evictions": self._evictions,
            "resident_bytes": self._resident_bytes,
            "peak_resident_bytes": self._peak_resident_bytes,
        }

    def reset_stats(self) -> None:
        """Zero the load/eviction counters; peak restarts from resident."""
        self._shard_loads = 0
        self._evictions = 0
        self._peak_resident_bytes = self._resident_bytes

    # ------------------------------------------------------------------
    # Assembled driver vectors
    # ------------------------------------------------------------------
    def _assemble_degrees(self, indptr_member: str) -> np.ndarray:
        out = np.zeros(self.num_vertices, dtype=self.index_dtype)
        for index in range(self.num_shards):
            lo, hi = int(self.bounds[index]), int(self.bounds[index + 1])
            if hi == lo:
                continue
            local = self._load_members(index, (indptr_member,))[indptr_member]
            out[lo:hi] = np.diff(local)
        out.setflags(write=False)
        return out

    def degrees(self) -> np.ndarray:
        """Per-vertex degrees assembled from the shards' local indptr.

        O(n) driver state, cached read-only and exempt from the memory
        budget (only the shards' ``indptr`` members are paged, never the
        adjacency payload).  Undirected graphs only.
        """
        if self.kind != "undirected":
            raise GraphError(
                "degrees() is undirected-only; use out_degrees()/in_degrees()"
            )
        if self._degrees is None:
            self._degrees = self._assemble_degrees("indptr")
        return self._degrees

    def out_degrees(self) -> np.ndarray:
        """Per-vertex out-degrees (directed; budget-exempt like degrees)."""
        if self.kind != "directed":
            raise GraphError("out_degrees() is directed-only; use degrees()")
        if self._degrees is None:
            self._degrees = self._assemble_degrees("out_indptr")
        return self._degrees

    def in_degrees(self) -> np.ndarray:
        """Per-vertex in-degrees, streamed through budget-managed loads.

        Unlike :meth:`out_degrees` this must read every shard's
        adjacency payload (in-degree is a column count of the out-CSR),
        so the pass goes through :meth:`shard` and respects the budget.
        """
        if self.kind != "directed":
            raise GraphError("in_degrees() is directed-only")
        if self._in_degrees is None:
            counts = np.zeros(self.num_vertices, dtype=np.int64)
            for index in range(self.num_shards):
                shard = self.shard(index)
                if shard.out_indices.size:
                    counts += np.bincount(
                        shard.out_indices, minlength=self.num_vertices
                    )
            # Same dtype as DirectedGraph.in_degrees() (np.diff(in_indptr))
            # so degree products match the monolithic solvers bit for bit.
            counts = counts.astype(self.index_dtype)
            counts.setflags(write=False)
            self._in_degrees = counts
        return self._in_degrees

    # ------------------------------------------------------------------
    # Materialization / integrity
    # ------------------------------------------------------------------
    def to_graph(self):
        """Materialize the monolithic container (ignores the budget).

        The assembled arrays are bit-identical — dtype included — to the
        graph that was sharded, and the manifest's monolithic
        fingerprint is adopted when the index dtype survives
        construction, exactly like a plain snapshot load.
        """
        from ..graph.directed import DirectedGraph
        from ..graph.undirected import UndirectedGraph
        from .csr import counting_sort_csr

        n = self.num_vertices
        idx = self.index_dtype
        if self.kind == "undirected":
            indptr = np.zeros(n + 1, dtype=idx)
            parts = []
            offset = 0
            for index in range(self.num_shards):
                lo, hi = int(self.bounds[index]), int(self.bounds[index + 1])
                arrays = self._load_members(index, ("indptr", "indices"))
                if hi > lo:
                    indptr[lo + 1:hi + 1] = arrays["indptr"][1:] + idx.type(offset)
                parts.append(np.asarray(arrays["indices"]))
                offset += int(arrays["indptr"][-1])
            indices = (
                np.concatenate(parts) if parts else np.empty(0, dtype=idx)
            )
            graph = UndirectedGraph(indptr, indices)
            if graph.indptr.dtype == idx:
                graph._fingerprint = self._manifest["graph_fingerprint"]
            return graph

        out_indptr = np.zeros(n + 1, dtype=idx)
        indices_parts = []
        edge_id_parts = []
        offset = 0
        for index in range(self.num_shards):
            lo, hi = int(self.bounds[index]), int(self.bounds[index + 1])
            arrays = self._load_members(
                index, ("out_indptr", "out_indices", "out_edge_ids")
            )
            if hi > lo:
                out_indptr[lo + 1:hi + 1] = (
                    arrays["out_indptr"][1:] + idx.type(offset)
                )
            indices_parts.append(np.asarray(arrays["out_indices"]))
            edge_id_parts.append(np.asarray(arrays["out_edge_ids"]))
            offset += int(arrays["out_indptr"][-1])
        out_indices = (
            np.concatenate(indices_parts)
            if indices_parts
            else np.empty(0, dtype=idx)
        )
        out_edge_ids = (
            np.concatenate(edge_id_parts)
            if edge_id_parts
            else np.empty(0, dtype=idx)
        )
        m = out_indices.size
        heads = np.repeat(
            np.arange(n, dtype=idx), np.diff(out_indptr.astype(np.int64))
        )
        edge_src = np.empty(m, dtype=idx)
        edge_dst = np.empty(m, dtype=idx)
        edge_src[out_edge_ids] = heads
        edge_dst[out_edge_ids] = out_indices
        in_indptr, in_indices, in_order = counting_sort_csr(
            n,
            edge_dst.astype(np.int64),
            edge_src.astype(np.int64),
            dtype=idx,
        )
        in_edge_ids = in_order.astype(idx, copy=False)
        graph = DirectedGraph._from_csr_arrays(
            n,
            edge_src,
            edge_dst,
            out_indptr,
            out_indices,
            out_edge_ids,
            in_indptr,
            in_indices,
            in_edge_ids,
        )
        if graph.out_indptr.dtype == idx:
            graph._fingerprint = self._manifest["graph_fingerprint"]
        return graph

    def verify(self) -> str:
        """Recompute every shard fingerprint plus the chain; return it.

        Pages in every shard byte (bypassing the budget) and raises
        :class:`~repro.errors.GraphFormatError` on the first shard whose
        content no longer matches its manifest fingerprint, or when the
        recomputed chain disagrees with the manifest.
        """
        members = _members_for(self.kind)
        fingerprints = []
        for index, record in enumerate(self._manifest["shards"]):
            arrays = self._load_members(index, members)
            fingerprint = _shard_fingerprint(
                self.kind,
                self.num_vertices,
                int(self.bounds[index]),
                int(self.bounds[index + 1]),
                arrays,
            )
            if fingerprint != record["fingerprint"]:
                raise GraphFormatError(
                    f"{self._directory / record['file']}: content does not "
                    "match its manifest fingerprint"
                )
            fingerprints.append(fingerprint)
        chain = _chain(self.kind, self.num_vertices, fingerprints)
        if chain != self._manifest["chain_fingerprint"]:
            raise GraphFormatError(
                f"{self._directory}: chain fingerprint mismatch"
            )
        return chain

    def __repr__(self) -> str:
        return (
            f"ShardedGraph(kind={self.kind!r}, n={self.num_vertices}, "
            f"m={self.num_edges}, shards={self.num_shards}, "
            f"resident={len(self._resident)})"
        )
