"""Dtype-aware index compaction.

CSR index arrays (``indptr``, ``indices``) default to int64, which
doubles the resident footprint of every graph whose vertex and edge
counts fit comfortably in 32 bits — i.e. every graph this library will
ever load on one machine. :func:`index_dtype` picks the narrowest safe
index dtype for a graph, and the containers thread it through their
scratch buffers so hot paths never silently upcast back to int64.

An escape hatch (:func:`set_force_int64` / :func:`forced_int64`) pins
everything back to int64, for debugging and for the memory-reduction
benchmark's "before" leg.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Tuple

import numpy as np

__all__ = [
    "INT32_MAX",
    "index_dtype",
    "narrow_csr",
    "set_force_int64",
    "int64_forced",
    "forced_int64",
]

# Largest value an int32 index array may need to hold. ``indptr`` stores
# offsets up to the number of stored arcs, and the hindex scratch
# ``bin_ptr`` stores offsets up to (arcs + num_vertices); callers pass
# the largest such *entry value*, not just n or m.
INT32_MAX = np.iinfo(np.int32).max

_FORCE_INT64 = False


def set_force_int64(enabled: bool) -> bool:
    """Globally pin index arrays to int64 (returns the previous value).

    Narrowing is on by default; this is the escape hatch for debugging
    suspected overflow and for apples-to-apples memory comparisons.
    """
    global _FORCE_INT64
    previous = _FORCE_INT64
    _FORCE_INT64 = bool(enabled)
    return previous


def int64_forced() -> bool:
    """Whether the forced-int64 escape hatch is currently engaged."""
    return _FORCE_INT64


@contextlib.contextmanager
def forced_int64() -> Iterator[None]:
    """Context manager engaging the forced-int64 escape hatch."""
    previous = set_force_int64(True)
    try:
        yield
    finally:
        set_force_int64(previous)


def index_dtype(num_vertices: int, max_entry: int) -> np.dtype:
    """Narrowest safe index dtype for a graph.

    ``num_vertices`` bounds vertex ids (``indices`` entries, scratch row
    ids); ``max_entry`` bounds offset values (``indptr`` entries — pass
    the largest offset any index-typed buffer will hold, e.g. ``2*m + n``
    for graphs that build the hindex-bin scratch).
    """
    if _FORCE_INT64:
        return np.dtype(np.int64)
    if num_vertices <= INT32_MAX and max_entry <= INT32_MAX:
        return np.dtype(np.int32)
    return np.dtype(np.int64)


def narrow_csr(
    indptr: np.ndarray, indices: np.ndarray, num_vertices: int,
    max_entry: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Cast a CSR pair to the dtype chosen by :func:`index_dtype`.

    No-ops (no copy) when the arrays already have the target dtype.
    """
    dtype = index_dtype(num_vertices, max_entry)
    return (
        np.ascontiguousarray(indptr, dtype=dtype),
        np.ascontiguousarray(indices, dtype=dtype),
    )
