"""O(m) counting-sort CSR construction.

The original containers built CSR via ``np.lexsort`` over all stored
arcs — O(m log m) with mergesort passes per key. Both builders here are
counting-sort based:

* :func:`csr_from_sorted_canonical` (undirected) exploits that every
  call site already holds the canonical edge list lex-sorted (it is the
  output of ``np.unique(..., axis=0)`` or a CSR-ordered ``edges()``
  view): out-arc slots follow from pure arithmetic on the sorted rows,
  and in-arcs need only one single-key stable ``argsort`` — NumPy's
  radix sort for integer keys, O(m).
* :func:`counting_sort_csr` (directed) sorts arcs by the combined key
  ``heads * n + tails`` with one stable radix pass, replacing the
  two-key lexsort.

Both produce ``indptr``/``indices`` bit-identical to the lexsort
reference (kept as :func:`reference_csr_from_canonical` and pinned by
the equivalence suite in ``tests/store/test_csr_equivalence.py``).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "csr_from_sorted_canonical",
    "counting_sort_csr",
    "reference_csr_from_canonical",
]

# Combined-key sorting needs heads * n + tails to fit in int64:
# n * n < 2**63  =>  n <= isqrt(2**63 - 1).
_COMBINED_KEY_MAX_VERTICES = 3_037_000_499


def _sort_key_dtype(max_value: int) -> np.dtype:
    """Narrowest unsigned dtype holding ``0..max_value-1``.

    NumPy's stable sort on integers is a byte-wise radix sort, so a
    uint16 key sorts ~4x faster than the same values as int64.
    """
    if max_value <= 1 << 16:
        return np.dtype(np.uint16)
    if max_value <= 1 << 32:
        return np.dtype(np.uint32)
    return np.dtype(np.int64)


def _is_lex_sorted(heads: np.ndarray, tails: np.ndarray) -> bool:
    if heads.size < 2:
        return True
    du = heads[1:] >= heads[:-1]
    if not bool(du.all()):
        return False
    same = heads[1:] == heads[:-1]
    return bool(np.all(tails[1:][same] >= tails[:-1][same]))


def reference_csr_from_canonical(
    num_vertices: int, canonical_edges: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Original lexsort-based undirected CSR builder (reference only).

    Kept as the ground truth for the equivalence suite and the "before"
    leg of the CSR-build benchmark.
    """
    edge_u = canonical_edges[:, 0]
    edge_v = canonical_edges[:, 1]
    heads = np.concatenate([edge_u, edge_v])
    tails = np.concatenate([edge_v, edge_u])
    degrees = np.bincount(heads, minlength=num_vertices)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    order = np.lexsort((tails, heads))
    return indptr, np.ascontiguousarray(tails[order])


def csr_from_sorted_canonical(
    num_vertices: int,
    canonical_edges: np.ndarray,
    dtype: Optional[np.dtype] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Undirected CSR from a lex-sorted canonical (u < v) edge list.

    O(m): degrees via ``bincount``, ``indptr`` via prefix sum, out-arc
    slots by arithmetic on the already-sorted rows, in-arc slots via one
    stable radix ``argsort`` on the single tail key. Falls back to the
    lexsort reference if the input is (unexpectedly) not lex-sorted.

    ``dtype`` selects the output index dtype (default int64); the
    result is identical to :func:`reference_csr_from_canonical` cast to
    that dtype.
    """
    canon = np.asarray(canonical_edges, dtype=np.int64)
    if canon.ndim != 2 or canon.shape[1] != 2:
        canon = canon.reshape(-1, 2)
    out_dtype = np.dtype(np.int64) if dtype is None else np.dtype(dtype)
    num_edges = canon.shape[0]
    if num_edges == 0:
        return (
            np.zeros(num_vertices + 1, dtype=out_dtype),
            np.zeros(0, dtype=out_dtype),
        )
    edge_u = np.ascontiguousarray(canon[:, 0])
    edge_v = np.ascontiguousarray(canon[:, 1])
    if not _is_lex_sorted(edge_u, edge_v):
        indptr, indices = reference_csr_from_canonical(num_vertices, canon)
        return (indptr.astype(out_dtype), indices.astype(out_dtype))

    out_deg = np.bincount(edge_u, minlength=num_vertices)
    in_deg = np.bincount(edge_v, minlength=num_vertices)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(out_deg + in_deg, out=indptr[1:])
    indices = np.empty(2 * num_edges, dtype=np.int64)
    arange_m = np.arange(num_edges, dtype=np.int64)

    # Within vertex w's adjacency block, in-neighbors (< w, since u < v)
    # precede out-neighbors (> w); each sub-block lands pre-sorted, so
    # the block as a whole matches the lexsort ordering exactly.
    u_start = np.zeros(num_vertices, dtype=np.int64)
    np.cumsum(out_deg[:-1], out=u_start[1:])
    slots_out = indptr[edge_u] + in_deg[edge_u] + (arange_m - u_start[edge_u])
    indices[slots_out] = edge_v

    v_start = np.zeros(num_vertices, dtype=np.int64)
    np.cumsum(in_deg[:-1], out=v_start[1:])
    order = np.argsort(
        edge_v.astype(_sort_key_dtype(num_vertices), copy=False),
        kind="stable",
    )  # radix sort: O(m); fewer byte passes on a narrowed key
    sorted_v = edge_v[order]
    slots_in = indptr[sorted_v] + (arange_m - v_start[sorted_v])
    indices[slots_in] = edge_u[order]

    return indptr.astype(out_dtype, copy=False), indices.astype(
        out_dtype, copy=False
    )


def counting_sort_csr(
    num_vertices: int,
    heads: np.ndarray,
    tails: np.ndarray,
    dtype: Optional[np.dtype] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Directed CSR: arcs sorted by (head, tail) with one radix pass.

    Returns ``(indptr, indices, order)`` where ``order`` is the stable
    permutation sorting the input arcs — the containers use it as the
    CSR-position -> edge-id map. Identical to
    ``np.lexsort((tails, heads))`` (both stable), but a single radix
    ``argsort`` on the combined key ``heads * n + tails``; graphs too
    large for the combined key to fit in int64 fall back to lexsort.
    """
    heads = np.asarray(heads, dtype=np.int64)
    tails = np.asarray(tails, dtype=np.int64)
    out_dtype = np.dtype(np.int64) if dtype is None else np.dtype(dtype)
    if num_vertices > _COMBINED_KEY_MAX_VERTICES:
        order = np.lexsort((tails, heads))
    else:
        key = heads * np.int64(num_vertices) + tails
        if num_vertices:
            key = key.astype(
                _sort_key_dtype(num_vertices * num_vertices), copy=False
            )
        order = np.argsort(key, kind="stable")
    degrees = np.bincount(heads, minlength=num_vertices)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    indices = np.ascontiguousarray(tails[order], dtype=out_dtype)
    return indptr.astype(out_dtype, copy=False), indices, order
