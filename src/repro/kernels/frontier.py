"""Frontier (active-set) h-index sweeps.

After the first few sweeps of the h-index iteration almost every vertex is
already at its fixed point; a vertex's next value can only differ from its
current one if a *neighbour's* value changed in the previous sweep.  The
frontier sweeps exploit exactly that:

* :func:`frontier_synchronous_sweep` — Jacobi: recomputes only the given
  frontier and returns the next frontier (all neighbours of vertices that
  changed).  Seeded with ``frontier=None`` (a full sweep), the per-sweep
  arrays are *identical* to full Jacobi sweeps — skipped vertices could
  not have changed — so convergence, iteration counts and the Theorem-1
  early-stop trace are untouched.
* :func:`frontier_inplace_sweep` — Gauss–Seidel over a dirty-set: the
  caller's order is pre-planned into maximal independent-set batches
  (:func:`gauss_seidel_batches`); each batch updates its dirty members
  simultaneously (legal: batch members are pairwise non-adjacent, so no
  member reads another's write), and changed members dirty their
  neighbours for *later batches of the same sweep* as well as the next
  sweep — reproducing full Gauss–Seidel's array evolution exactly.

Simulated-cost accounting stays with the callers, which now charge only
the processed frontier instead of all n vertices per sweep.  Under
``SimRuntime(sanitize=True)`` both sweeps route their per-vertex kernels
through :meth:`SimRuntime.observe_parfor` like the full sweeps do; the
batch loops are iteration-independent (independent sets), so they come
back race-free without needing an order-dependence annotation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..backends import get_backend
from .segments import concat_ranges

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph.undirected import UndirectedGraph
    from ..runtime.simruntime import SimRuntime

__all__ = [
    "hindex_sweep_values",
    "frontier_synchronous_sweep",
    "frontier_inplace_sweep",
    "gauss_seidel_batches",
]

_EMPTY = np.empty(0, dtype=np.int64)


def hindex_sweep_values(
    graph: "UndirectedGraph",
    h: np.ndarray,
    vertices: np.ndarray | None = None,
) -> np.ndarray:
    """Recomputed h-index values of a vertex set, via the active backend.

    The single graph-aware hot-path operation every sweep is built from:
    ``vertices=None`` is one full Jacobi sweep body (all ``n`` values
    recomputed against the current ``h``); a vertex array restricts the
    recomputation to those ids, with the result aligned to ``vertices``.
    Returns ``int64`` values — callers cast back to ``h.dtype``.  This
    is the seam the parallel backends plug into
    (:mod:`repro.backends`); outputs are bit-identical across backends.
    """
    return get_backend().sweep_values(graph, h, vertices)


def _scalar_h_index(values: np.ndarray) -> int:
    """Scalar h-index used by the sanitizer's per-vertex kernel bodies."""
    from ..core.hindex import h_index

    return h_index(values)


def _neighbors_of(graph: "UndirectedGraph", vertices: np.ndarray) -> np.ndarray:
    """Sorted unique neighbour ids of a vertex batch (the next frontier)."""
    if vertices.size == 0:
        return _EMPTY
    slots = concat_ranges(graph.indptr[vertices], graph.degrees()[vertices])
    mask = np.zeros(graph.num_vertices, dtype=bool)
    mask[graph.indices[slots]] = True
    return np.flatnonzero(mask)


def frontier_synchronous_sweep(
    graph: "UndirectedGraph",
    h: np.ndarray,
    frontier: np.ndarray | None = None,
    runtime: "SimRuntime | None" = None,
    clamp: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """One Jacobi sweep restricted to ``frontier``; return ``(new_h, next)``.

    ``frontier=None`` performs a full sweep (use it for the first
    iteration, when every vertex is active).  ``next`` is the set of
    vertices whose value may change in the following sweep: the
    neighbours of every vertex that changed in this one.  An empty
    ``next`` certifies the fixed point.

    ``clamp=True`` takes ``min(old, recomputed)``, making the iteration
    monotone decreasing from *any* pointwise upper bound of the core
    numbers — not just the degrees.  The streaming layer's warm-started
    rebuild (:mod:`repro.core.dynamic`) needs this: a warm bound can
    transiently rise under the raw operator at insertion endpoints,
    which the decrease-only frontier tracking would not propagate.
    Started from the degrees the clamp is an exact no-op (one sweep of
    the operator never exceeds them), so cold starts are bit-identical
    either way.
    """
    n = graph.num_vertices
    if n == 0:
        return h.copy(), _EMPTY
    indptr, indices = graph.indptr, graph.indices
    if frontier is None:
        from ..core.hindex import synchronous_sweep

        new_h = synchronous_sweep(graph, h, runtime=runtime)
        if clamp:
            new_h = np.minimum(new_h, h)
        changed = np.flatnonzero(new_h < h)
    else:
        frontier = np.asarray(frontier, dtype=np.int64)
        new_h = h.copy()
        if frontier.size == 0:
            return new_h, _EMPTY
        if runtime is not None and runtime.sanitize:

            def frontier_body(i, old, new):
                v = int(frontier[i])
                value = _scalar_h_index(old[indices[indptr[v]:indptr[v + 1]]])
                new[v] = min(old[v], value) if clamp else value

            runtime.observe_parfor(
                frontier.size,
                frontier_body,
                {"old": h, "new": new_h},
                label="frontier_synchronous_sweep",
            )
        else:
            values = hindex_sweep_values(graph, h, frontier).astype(
                h.dtype, copy=False
            )
            if clamp:
                values = np.minimum(values, h[frontier])
            new_h[frontier] = values
        changed = frontier[new_h[frontier] < h[frontier]]
    return new_h, _neighbors_of(graph, changed)


def gauss_seidel_batches(
    graph: "UndirectedGraph", order: np.ndarray | None = None
) -> list[np.ndarray]:
    """Split ``order`` into maximal runs of pairwise non-adjacent vertices.

    Walking the order greedily, a vertex closes the current batch iff an
    earlier member of that batch is one of its neighbours.  Updating a
    batch simultaneously is then exactly sequential Gauss–Seidel: no
    member's h-index input overlaps another member's write.  The plan
    depends only on (graph, order), so callers running many sweeps
    compute it once.
    """
    n = graph.num_vertices
    vertices = (
        np.arange(n, dtype=np.int64)
        if order is None
        else np.asarray(order, dtype=np.int64)
    )
    if vertices.size == 0:
        return []
    indptr, indices = graph.indptr, graph.indices
    stamp = np.full(n, -1, dtype=np.int64)
    batch_id = 0
    boundaries: list[int] = []
    for i in range(vertices.size):
        v = int(vertices[i])
        if stamp[v] == batch_id:
            batch_id += 1
            boundaries.append(i)
        stamp[indices[indptr[v]:indptr[v + 1]]] = batch_id
    return np.split(vertices, boundaries)


def frontier_inplace_sweep(
    graph: "UndirectedGraph",
    h: np.ndarray,
    order: np.ndarray | None = None,
    dirty: np.ndarray | None = None,
    batches: list[np.ndarray] | None = None,
    runtime: "SimRuntime | None" = None,
    clamp: bool = False,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One Gauss–Seidel sweep over the dirty set, updating ``h`` in place.

    Returns ``(h, dirty, processed)``: ``dirty`` is the boolean mask of
    vertices to process next sweep (mutated in place when passed in) and
    ``processed`` the ids recomputed this sweep, for frontier-aware cost
    accounting.  ``dirty=None`` means all vertices (the first sweep).

    Members of a batch are cleared from the dirty set when processed;
    members that then change re-dirty their neighbours immediately, so a
    neighbour sitting in a *later* batch of this same sweep is recomputed
    with the fresh value — the array evolution matches plain sequential
    Gauss–Seidel sweep for sweep, only skipping recomputations that are
    provably identity.

    ``clamp=True`` takes ``min(old, recomputed)`` instead of the raw
    recomputation, making every change a decrease.  The localized
    streaming refresh (:mod:`repro.core.dynamic`) relies on this: over a
    *sub*-region with frozen boundary values the unclamped iteration may
    transiently increase values, and the clamp is what guarantees
    termination while still ending at the exact fixed point
    (docs/streaming.md).  The default reproduces plain Gauss–Seidel.
    """
    n = graph.num_vertices
    if batches is None:
        batches = gauss_seidel_batches(graph, order)
    if dirty is None:
        dirty = np.ones(n, dtype=bool)
    indptr, indices = graph.indptr, graph.indices
    sanitizing = runtime is not None and runtime.sanitize
    processed_parts: list[np.ndarray] = []
    for batch in batches:
        members = batch[dirty[batch]]
        if members.size == 0:
            continue
        dirty[members] = False
        old_values = h[members].copy()
        if sanitizing:

            def batch_body(i, h_arr, members=members):
                v = int(members[i])
                value = _scalar_h_index(h_arr[indices[indptr[v]:indptr[v + 1]]])
                h_arr[v] = min(h_arr[v], value) if clamp else value

            runtime.observe_parfor(
                members.size, batch_body, {"h_arr": h}, label="frontier_inplace_batch"
            )
        else:
            values = hindex_sweep_values(graph, h, members).astype(
                h.dtype, copy=False
            )
            if clamp:
                values = np.minimum(values, old_values)
            h[members] = values
        changed = members[h[members] < old_values]
        if changed.size:
            dirty[_neighbors_of(graph, changed)] = True
        processed_parts.append(members)
    processed = (
        np.concatenate(processed_parts) if processed_parts else _EMPTY
    )
    return h, dirty, processed
