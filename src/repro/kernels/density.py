"""Shared induced-subgraph edge counting for density reports.

Every solver family used to rebuild ``np.repeat(np.arange(n), degrees)``
just to count the edges inside its answer set; this module is the single
implementation, one vectorised pass over the graph's cached ``heads()``
scratch buffer, executed by the active array backend
(:mod:`repro.backends` — the multiproc backend splits the slot range
across workers on large graphs).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..backends import get_backend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph.undirected import UndirectedGraph

__all__ = ["induced_edge_count", "induced_density"]


def induced_edge_count(graph: "UndirectedGraph", member: np.ndarray) -> int:
    """Number of edges with both endpoints inside the ``member`` mask."""
    return get_backend().induced_edge_count(graph, member)


def induced_density(graph: "UndirectedGraph", vertices: np.ndarray) -> float:
    """Density ``|E(S)| / |S|`` of the subgraph induced by ``vertices``."""
    vertices = np.asarray(vertices, dtype=np.int64)
    if vertices.size == 0:
        # Guard before building the membership mask: the edge scan below
        # is O(m) and pointless for an empty vertex set.
        return 0.0
    member = np.zeros(graph.num_vertices, dtype=bool)
    member[vertices] = True
    return induced_edge_count(graph, member) / vertices.size
