"""Segment primitives: CSR range concatenation and sort-free h-indices.

The segmented h-index kernel is the heart of the sweep layer.  Given a
CSR-like segmentation (``seg_ptr``) of a flat value array, it returns the
h-index of every segment without sorting:

1. every value is clipped to its segment length (the h-index of a segment
   of length d is at most d, so larger values contribute exactly like d);
2. a single global ``bincount`` builds per-segment histograms over the
   value range ``0..d`` — segment s owns ``len(s) + 1`` bins, laid out
   consecutively (``sum(d_s + 1) = m + n`` bins in total);
3. a global cumulative sum turns the histograms into per-segment suffix
   sums ``count_ge(k)`` (how many values are >= k), and the h-index is the
   number of ranks ``k`` in ``1..d`` with ``count_ge(k) >= k`` —
   ``count_ge`` is non-increasing while ``k`` increases, so the satisfied
   ranks form a prefix and counting them equals the maximum.

Total work is O(m + n) with no comparison sort anywhere, against the
O(m log m) ``lexsort`` of the pre-kernel-layer sweep (kept below as
:func:`reference_segment_h_index` for property tests and benches).

Execution is delegated to the active array backend
(:func:`repro.backends.get_backend`): this module keeps the public
contract and the docstring walkthrough, while the raw numpy formulation
lives in :mod:`repro.backends.numpy_backend` where the parallel
backends can share it.  Lint rule R013 guards the split — direct
``np`` kernel calls in this package that bypass the dispatch are
flagged.
"""

from __future__ import annotations

import numpy as np

from ..backends import get_backend

__all__ = [
    "concat_ranges",
    "segment_h_index",
    "reference_segment_h_index",
]


def concat_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(s, s + l)`` for every (start, length) pair.

    The standard vectorised multi-range construction: ones everywhere, a
    corrective jump at every segment boundary, one cumulative sum.  Empty
    segments are allowed and contribute nothing.

    >>> concat_ranges(np.array([5, 0]), np.array([3, 2])).tolist()
    [5, 6, 7, 0, 1]
    """
    starts = np.asarray(starts)
    lengths = np.asarray(lengths)
    if not np.issubdtype(starts.dtype, np.integer):
        starts = starts.astype(np.int64)
    if not np.issubdtype(lengths.dtype, np.integer):
        lengths = lengths.astype(np.int64)
    # Preserve the caller's index dtype (int32-narrowed graphs must not
    # upcast their frontier ranges back to int64 on every sweep).
    dtype = np.promote_types(starts.dtype, lengths.dtype)
    nonempty = lengths > 0
    if not nonempty.all():
        starts = starts[nonempty]
        lengths = lengths[nonempty]
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=dtype)
    out = np.ones(total, dtype=dtype)
    out[0] = starts[0]
    boundaries = np.cumsum(lengths[:-1])
    out[boundaries] = starts[1:] - (starts[:-1] + lengths[:-1] - 1)
    np.cumsum(out, out=out)
    return out


def segment_h_index(
    seg_ptr: np.ndarray,
    values: np.ndarray,
    seg_rows: np.ndarray | None = None,
    bins: tuple[np.ndarray, np.ndarray] | None = None,
) -> np.ndarray:
    """Return the h-index of every segment of ``values`` (sort-free).

    Parameters
    ----------
    seg_ptr:
        CSR-style pointer array of ``n + 1`` entries; segment ``s`` is
        ``values[seg_ptr[s]:seg_ptr[s + 1]]``.  Values must be
        non-negative integers.
    seg_rows:
        Optional precomputed ``np.repeat(arange(n), diff(seg_ptr))``
        (the owning segment of every slot) — pass a graph's cached
        ``heads()`` buffer to skip rebuilding it every sweep.
    bins:
        Optional precomputed ``(bin_ptr, bin_rows)`` histogram layout as
        returned by ``UndirectedGraph.hindex_bins()``; rebuilt on the fly
        when absent (the frontier path passes small ad-hoc segments).

    >>> segment_h_index(np.array([0, 4, 4]), np.array([4, 3, 3, 1])).tolist()
    [3, 0]
    """
    return get_backend().segment_h_index(
        seg_ptr, values, seg_rows=seg_rows, bins=bins
    )


def reference_segment_h_index(
    seg_ptr: np.ndarray,
    values: np.ndarray,
    seg_rows: np.ndarray | None = None,
) -> np.ndarray:
    """The pre-kernel-layer O(m log m) lexsort formulation (reference).

    Kept verbatim for the old-vs-new property tests and the
    bench-regression harness; production sweeps use
    :func:`segment_h_index`.
    """
    seg_ptr = np.asarray(seg_ptr, dtype=np.int64)
    n = seg_ptr.size - 1
    if n <= 0:
        return np.empty(0, dtype=np.int64)
    values = np.asarray(values)
    if seg_rows is None:
        seg_rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(seg_ptr))
    order = np.lexsort((-values, seg_rows))  # repro-lint: disable=R013
    sorted_values = values[order]
    rank_in_row = np.arange(sorted_values.size) - seg_ptr[seg_rows] + 1
    satisfied = sorted_values >= rank_in_row
    prefix = np.concatenate([[0], np.cumsum(satisfied)])
    return (prefix[seg_ptr[1:]] - prefix[seg_ptr[:-1]]).astype(np.int64)
