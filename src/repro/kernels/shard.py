"""Shard-local kernel sweeps: existing kernels over an indptr offset.

A shard of a :class:`~repro.store.shard.ShardedGraph` is an ordinary CSR
slice whose row ``r`` is global vertex ``vertex_offset + r`` — the local
``indptr`` is rebased to the shard, while ``indices`` keeps global ids.
That asymmetry is exactly what these helpers absorb, so the *same*
backend primitives that power the monolithic sweeps
(:func:`repro.kernels.segments.segment_h_index` via ``get_backend()``)
run unchanged per shard:

* :func:`shard_sweep_values` — the shard-local analogue of
  :func:`repro.kernels.frontier.hindex_sweep_values`: h-index
  recomputation for all (or a subset of) the shard's rows against a
  *global* ``h`` array, since neighbour ids may live on other shards.
* :func:`shard_adjacency_slots` — adjacency-slot ranges of a vertex
  subset, for waking neighbours across shard boundaries.
* :func:`shard_induced_edge_count` — the shard's contribution to an
  induced edge count under a global membership mask, de-duplicated with
  the same ``head < tail`` convention as the monolithic kernel.

Bit-identity with the monolithic kernels is pinned by the shard
equivalence suites; per-vertex values depend only on (degrees, neighbour
h-values), both of which shards preserve exactly.
"""

from __future__ import annotations

import numpy as np

from ..backends import get_backend
from .segments import concat_ranges

__all__ = [
    "shard_sweep_values",
    "shard_adjacency_slots",
    "shard_induced_edge_count",
]


def shard_adjacency_slots(
    indptr: np.ndarray,
    vertices: np.ndarray,
    vertex_offset: int = 0,
) -> np.ndarray:
    """Adjacency-slot ranges of ``vertices`` in a shard-local CSR.

    ``vertices`` holds *global* ids; rows are looked up at
    ``vertices - vertex_offset``.  The returned slot ids index the
    shard's flat ``indices`` array (concatenated per-vertex ranges, in
    the order of ``vertices``).
    """
    rows = np.asarray(vertices, dtype=np.int64) - vertex_offset
    starts = np.asarray(indptr, dtype=np.int64)[rows]
    lengths = np.asarray(indptr, dtype=np.int64)[rows + 1] - starts
    return concat_ranges(starts, lengths)


def shard_sweep_values(
    indptr: np.ndarray,
    indices: np.ndarray,
    h: np.ndarray,
    vertices: np.ndarray | None = None,
    vertex_offset: int = 0,
) -> np.ndarray:
    """Recomputed h-index values of a shard's rows against global ``h``.

    ``vertices=None`` recomputes every row of the shard (the result
    aligns with rows ``0..len(indptr)-2``, i.e. global vertices
    ``vertex_offset ..``); a global-id array restricts the recomputation
    to those rows with the result aligned to ``vertices``.  Neighbour
    values are read straight from the global ``h``, which is what makes
    the per-shard sweep bit-identical to the monolithic one — the
    h-index of a vertex depends only on its neighbours' current values,
    wherever those neighbours are stored.  Returns ``int64``.
    """
    backend = get_backend()
    if vertices is None:
        seg_ptr = np.asarray(indptr, dtype=np.int64)
        return backend.segment_h_index(seg_ptr, h[indices])
    vertices = np.asarray(vertices, dtype=np.int64)
    if vertices.size == 0:
        return np.empty(0, dtype=np.int64)
    rows = vertices - vertex_offset
    indptr64 = np.asarray(indptr, dtype=np.int64)
    lengths = indptr64[rows + 1] - indptr64[rows]
    slots = concat_ranges(indptr64[rows], lengths)
    seg_ptr = np.zeros(vertices.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=seg_ptr[1:])
    return backend.segment_h_index(seg_ptr, h[indices[slots]])


def shard_induced_edge_count(
    indptr: np.ndarray,
    indices: np.ndarray,
    member: np.ndarray,
    vertex_offset: int = 0,
) -> int:
    """The shard's edges with both endpoints inside a global mask.

    Counts adjacency slots whose (global) head and tail are both set in
    ``member`` and with ``head < tail`` — each undirected edge is stored
    twice across the whole sharded graph (once per endpoint, possibly on
    different shards), so the strict inequality counts it exactly once
    globally, matching
    :func:`repro.kernels.density.induced_edge_count`.
    """
    indptr64 = np.asarray(indptr, dtype=np.int64)
    num_rows = indptr64.size - 1
    if num_rows <= 0 or indices.size == 0:
        return 0
    heads = np.repeat(
        np.arange(vertex_offset, vertex_offset + num_rows, dtype=np.int64),
        np.diff(indptr64),
    )
    inside = member[heads] & member[indices] & (heads < indices)
    return int(inside.sum())
