"""Vectorized hot-path kernels shared by the solvers.

This package is the library's kernel layer: tight, allocation-conscious
NumPy formulations of the operations every sweep-based solver spends its
time in —

* :mod:`~repro.kernels.segments` — segment primitives: concatenating CSR
  ranges and the sort-free segmented h-index (clipped ``bincount`` +
  segment suffix sums, O(m) per sweep instead of the O(m log m) lexsort);
* :mod:`~repro.kernels.frontier` — frontier/active-set sweeps that
  recompute a vertex only when a neighbour's value changed last sweep,
  for both Jacobi (:func:`frontier_synchronous_sweep`) and Gauss–Seidel
  (:func:`frontier_inplace_sweep` over independent-set batches);
* :mod:`~repro.kernels.density` — the shared induced-edge scan behind
  every ``|E(S)|/|S|`` density report, on the graph's cached ``heads``
  scratch buffer.

Reference (pre-kernel-layer) implementations are kept as
``reference_synchronous_sweep`` / ``reference_inplace_sweep`` so property
tests and the bench-regression harness can compare old against new.

This layer states *what* every kernel computes; *how* it executes is
delegated to the active array backend (:mod:`repro.backends` — numpy
reference, shared-memory multiprocessing, optional numba JIT), selected
via ``ExecutionContext(backend=...)`` or ``REPRO_BACKEND``.  Outputs
are bit-identical across backends, and lint rule R013 flags direct
``np`` kernel calls here that would bypass the dispatch.
"""

from .density import induced_density, induced_edge_count
from .frontier import (
    frontier_inplace_sweep,
    frontier_synchronous_sweep,
    gauss_seidel_batches,
    hindex_sweep_values,
)
from .segments import (
    concat_ranges,
    reference_segment_h_index,
    segment_h_index,
)

__all__ = [
    "concat_ranges",
    "segment_h_index",
    "reference_segment_h_index",
    "hindex_sweep_values",
    "frontier_synchronous_sweep",
    "frontier_inplace_sweep",
    "gauss_seidel_batches",
    "induced_density",
    "induced_edge_count",
]
