"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that editable installs also work on older toolchains that lack the
``wheel`` package (``python setup.py develop``).
"""

from setuptools import setup

setup()
