#!/usr/bin/env python3
"""Thread-scaling study on the paper's dataset replicas (Figs. 6 and 9).

Sweeps the simulated thread count for the paper's algorithms and their
closest competitors on one undirected and one directed replica, printing
speedup curves and the runtime breakdown (work / imbalance / overhead)
that explains *why* the curves bend — the same analysis the paper gives
verbally for PKC's flattening and PBD's p=16 optimum.

Run:  python examples/scaling_study.py
"""

from repro import densest_subgraph, directed_densest_subgraph
from repro.datasets import load_directed, load_undirected
from repro.engine import ExecutionContext, run


def sweep_uds(abbr: str) -> None:
    graph = load_undirected(abbr)
    print(f"== UDS thread scaling on {abbr} ({graph}) ==")
    print(f"{'p':>3}  {'PKMC (ms)':>10} {'speedup':>8}  {'PKC (ms)':>10} {'speedup':>8}")
    base = {}
    for p in (1, 2, 4, 8, 16, 32, 64):
        row = [f"{p:>3}"]
        for method in ("pkmc", "pkc"):
            result = densest_subgraph(graph, method=method, num_threads=p)
            base.setdefault(method, result.simulated_seconds)
            row.append(f"{result.simulated_seconds * 1e3:>10.3f}")
            row.append(f"{base[method] / result.simulated_seconds:>8.1f}")
        print("  ".join(row))

    # Why PKC flattens: look at its overhead share at p=64.
    report = run("pkc", graph, ExecutionContext(num_threads=64)).report
    overhead = report.breakdown["spawn"] + report.breakdown["barrier"]
    print(f"PKC at p=64 spends {overhead / report.breakdown['total']:.0%} of its "
          f"time in spawn/barrier overhead across {report.parallel_loops} tiny "
          f"rounds - the flattening the paper describes.\n")


def sweep_dds(abbr: str) -> None:
    graph = load_directed(abbr)
    print(f"== DDS thread scaling on {abbr} ({graph}) ==")
    print(f"{'p':>3}  {'PWC (ms)':>10} {'speedup':>8}  {'PXY (ms)':>10} {'speedup':>8}")
    base = {}
    for p in (1, 2, 4, 8, 16, 32, 64):
        row = [f"{p:>3}"]
        for method in ("pwc", "pxy"):
            result = directed_densest_subgraph(graph, method=method, num_threads=p)
            base.setdefault(method, result.simulated_seconds)
            row.append(f"{result.simulated_seconds * 1e3:>10.3f}")
            row.append(f"{base[method] / result.simulated_seconds:>8.1f}")
        print("  ".join(row))

    report = run("pxy", graph, ExecutionContext(num_threads=64)).report
    print(f"PXY at p=64 loses "
          f"{report.breakdown['imbalance'] / report.breakdown['total']:.0%} of "
          f"its time to load imbalance across its per-x peel tasks - the "
          f"paper's explanation for its poor self-relative speedup.\n")


if __name__ == "__main__":
    sweep_uds("EW")
    sweep_dds("WE")
