#!/usr/bin/env python3
"""Distributed PKMC study — the paper's future-work direction, simulated.

The paper's conclusion: "we will implement our algorithms on a distributed
computing platform (e.g., GraphX) ... This would be very useful when the
graph is too large to be kept by a single machine."

This example ports PKMC to a simulated BSP (Pregel-style) cluster and
quantifies the trade-off a real port would face: per-superstep network
latency and cross-partition messages versus the shared-memory version's
cheap barriers.  The early stop matters twice as much here — every avoided
iteration saves a full network round.

Run:  python examples/distributed_study.py
"""

from repro.datasets import load_undirected
from repro.distributed import ClusterConfig
from repro.engine import ExecutionContext, run


def main() -> None:
    graph = load_undirected("UN")
    print(f"graph: {graph}\n")

    shared = run("pkmc", graph, ExecutionContext(num_threads=32))
    print(f"shared memory (p=32): {shared.simulated_seconds * 1e3:8.3f} ms, "
          f"{shared.iterations} sweeps, k* = {shared.k_star}\n")

    print(f"{'workers':>8} {'time (ms)':>10} {'supersteps':>10} "
          f"{'messages':>10} {'cross-edge %':>12}")
    for workers in (1, 2, 4, 8, 16, 32, 64):
        ctx = ExecutionContext(cluster_config=ClusterConfig(num_workers=workers))
        result = run("pkmc-bsp", graph, ctx)
        assert result.k_star == shared.k_star  # same answer, always
        print(f"{workers:>8} {result.simulated_seconds * 1e3:>10.3f} "
              f"{result.extras['supersteps']:>10} "
              f"{result.extras['total_messages']:>10} "
              f"{result.extras['cross_edge_fraction'] * 100:>11.0f}%")

    print("\nEarly stop's value grows in BSP (each sweep = a network round):")
    ctx16 = ExecutionContext(cluster_config=ClusterConfig(num_workers=16))
    with_stop = run("pkmc-bsp", graph, ctx16)
    without_stop = run("pkmc-bsp", graph, ctx16, early_stop=False)
    print(f"  with Theorem-1 stop : {with_stop.simulated_seconds * 1e3:8.3f} ms "
          f"({with_stop.extras['supersteps']} supersteps)")
    print(f"  full convergence    : {without_stop.simulated_seconds * 1e3:8.3f} ms "
          f"({without_stop.extras['supersteps']} supersteps)")
    speedup = without_stop.simulated_seconds / with_stop.simulated_seconds
    print(f"  -> {speedup:.1f}x saved by stopping early")


if __name__ == "__main__":
    main()
