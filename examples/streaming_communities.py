#!/usr/bin/env python3
"""Tracking a forming community in a streaming graph.

The paper motivates DSD with fraud and community detection — workloads
that are streaming in practice.  This example feeds timestamped edges
into :class:`repro.core.DynamicKStarCore`: a background of random social
activity plus a slowly-forming tight community, queried once per batch.
The k* trace shows the community "igniting" the moment its internal
density passes the background's, exactly the signal a monitoring system
would alert on.

Run:  python examples/streaming_communities.py [seed]
"""

import sys

import numpy as np

from repro.core import DynamicKStarCore
from repro.graph import gnm_random_undirected

DEFAULT_SEED = 42


def seed_from_argv(default: int = DEFAULT_SEED) -> int:
    """Optional integer argv override, so reruns are reproducible on demand."""
    arg = sys.argv[1] if len(sys.argv) > 1 else ""
    return int(arg) if arg.lstrip("+").isdigit() else default


def main(seed: int = DEFAULT_SEED) -> None:
    # One explicit seed drives both streams: the community draw/noise RNG
    # directly, the background generator through a derived child seed.
    rng = np.random.default_rng(seed)
    background_seed = abs(seed - 35)  # 7 for the default seed, kept for continuity
    n = 2_000
    community = rng.choice(n, size=18, replace=False)
    community_pairs = [
        (int(community[i]), int(community[j]))
        for i in range(len(community))
        for j in range(i + 1, len(community))
    ]
    rng.shuffle(community_pairs)

    tracker = DynamicKStarCore(n)
    # Seed with background noise.
    background = gnm_random_undirected(n, 6_000, seed=background_seed)
    tracker.insert_edges(background.edges())
    baseline = tracker.k_star()
    print(f"background: n={n}, m={tracker.num_edges}, baseline k* = {baseline} "
          f"(seed={seed})\n")
    print(f"{'batch':>5} {'new edges':>10} {'m':>7} {'k*':>4} "
          f"{'community edges':>16}  alert")

    inserted_community = 0
    for batch in range(1, 11):
        # Each batch: 150 random background edges + 15 community edges.
        noise = rng.integers(0, n, size=(150, 2))
        tracker.insert_edges([(int(u), int(v)) for u, v in noise if u != v])
        take = community_pairs[inserted_community:inserted_community + 15]
        inserted_community += len(take)
        tracker.insert_edges(take)

        k_star = tracker.k_star()
        alert = "<-- community detected" if k_star > baseline + 2 else ""
        print(f"{batch:>5} {165:>10} {tracker.num_edges:>7} {k_star:>4} "
              f"{inserted_community:>16}  {alert}")

    result = tracker.densest_subgraph()
    found = set(result.vertices.tolist())
    overlap = len(found & set(community.tolist())) / len(found)
    print(f"\nfinal densest core: |S| = {result.num_vertices}, "
          f"k* = {result.k_star}, density = {result.density:.2f}")
    print(f"community purity of the reported core: {overlap:.0%}")
    print(f"total h-index sweeps spent across all 11 refreshes: "
          f"{tracker.total_sweeps}")


if __name__ == "__main__":
    main(seed=seed_from_argv())
