#!/usr/bin/env python3
"""Quickstart: densest subgraph discovery on undirected and directed graphs.

Builds two tiny graphs (the worked examples from the paper's Figures 1-3),
runs the paper's algorithms (PKMC for undirected, PWC for directed), and
compares them against the exact solvers to show the 2-approximation
guarantee in action.

Run:  python examples/quickstart.py
"""

from repro import densest_subgraph, directed_densest_subgraph
from repro.graph import DirectedGraph, UndirectedGraph


def undirected_demo() -> None:
    """The paper's Fig. 2 graph: a K4 community with a peripheral tail."""
    # Vertices 0..3 form a clique (the dense community); 3-4-5-6-7 is a tail.
    graph = UndirectedGraph.from_edges(
        8,
        [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
         (3, 4), (4, 5), (5, 6), (6, 7)],
    )
    print("== Undirected (paper Fig. 2) ==")
    print(f"graph: {graph}")

    approx = densest_subgraph(graph)  # PKMC, the paper's algorithm
    print(f"PKMC  : vertices={approx.vertices.tolist()}  "
          f"density={approx.density:.3f}  k*={approx.k_star}  "
          f"iterations={approx.iterations}")

    exact = densest_subgraph(graph, method="exact")  # Goldberg max-flow
    print(f"exact : vertices={exact.vertices.tolist()}  "
          f"density={exact.density:.3f}")
    ratio = exact.density / approx.density
    print(f"approximation ratio: {ratio:.3f} (guaranteed <= 2)\n")


def directed_demo() -> None:
    """The paper's Fig. 3 graph: u1..u4 -> v1..v5 with a dense block."""
    # ids: u1..u4 = 0..3, v1..v5 = 4..8
    graph = DirectedGraph.from_edges(
        9,
        [(0, 4), (0, 5), (0, 6),
         (1, 4), (1, 5), (1, 6), (1, 7), (1, 8),
         (2, 6), (2, 7),
         (3, 7)],
    )
    print("== Directed (paper Fig. 3) ==")
    print(f"graph: {graph}")

    approx = directed_densest_subgraph(graph)  # PWC, the paper's algorithm
    print(f"PWC   : S={approx.s.tolist()}  T={approx.t.tolist()}  "
          f"density={approx.density:.3f}  [x*, y*]=[{approx.x}, {approx.y}]  "
          f"w*={approx.w_star}")

    exact = directed_densest_subgraph(graph, method="exact")
    print(f"exact : S={exact.s.tolist()}  T={exact.t.tolist()}  "
          f"density={exact.density:.3f}")
    ratio = exact.density / approx.density
    print(f"approximation ratio: {ratio:.3f} (guaranteed <= 2)\n")


def parallel_demo(seed: int = 42) -> None:
    """Simulated thread scaling on a mid-sized power-law graph."""
    from repro.graph import chung_lu_undirected

    graph = chung_lu_undirected(20_000, 120_000, seed=seed)
    print("== Simulated parallel scaling (PKMC) ==")
    print(f"graph: {graph} (seed={seed})")
    base = None
    for p in (1, 4, 16, 64):
        result = densest_subgraph(graph, num_threads=p)
        base = base or result.simulated_seconds
        print(f"p={p:>2}: simulated {result.simulated_seconds * 1e3:8.3f} ms  "
              f"speedup {base / result.simulated_seconds:5.1f}x")


if __name__ == "__main__":
    undirected_demo()
    directed_demo()
    parallel_demo()
