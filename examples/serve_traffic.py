"""Serving skewed query traffic: coalescing, batching and TTL caching.

A walkthrough of `repro.serve` on the workload shape real deployments
see: many tenants, few hot graphs.  We generate a seeded Zipf-skewed
query mix (the same `repro.datasets.synth.sample_zipf` sampler the
`repro-bench serve` harness replays), push it through a `DsdServer` in
submission waves, and show how much of the stream is answered without
running a solver — then overload a tiny queue to show structured
shedding instead of unbounded growth.

Run with::

    python examples/serve_traffic.py
"""

from repro.graph import chung_lu_undirected
from repro.serve import DsdServer, TenantQuotas, build_query_mix

GRAPHS = {
    "social": chung_lu_undirected(1_200, 5_000, seed=31),
    "web": chung_lu_undirected(1_500, 6_000, seed=32),
}
SOLVERS = ["pkmc", "charikar"]


def replay_hot_graph_mix() -> None:
    """Most queries hit one graph: coalescing + caching absorb them."""
    server = DsdServer(graphs=GRAPHS, num_workers=2, cache_ttl=300.0)
    queries = build_query_mix(
        "hot-graph", list(GRAPHS), SOLVERS, num_queries=36, seed=7,
        tenants=("alice", "bob", "carol"),
    )
    for offset in range(0, len(queries), 12):
        for response in server.serve(queries[offset:offset + 12]):
            report = response.result.report
            print(
                f"  {response.query.dataset:>6}/{response.query.solver:<9}"
                f" {response.query.tenant:<6} density={response.result.density:8.4f}"
                f" batch={report.batch_size:2d} coalesced={report.coalesced:2d}"
                f" cache_hit={report.cache_hit}"
            )
    stats = server.stats
    reuse = stats.cache_hits + stats.coalesced_queries
    print(
        f"{stats.completed} queries answered by {stats.solver_runs} solver "
        f"runs ({reuse} reused: {stats.cache_hits} cache hits + "
        f"{stats.coalesced_queries} coalesced)"
    )


def overload_tiny_queue() -> None:
    """Admission control sheds with retry-after instead of queueing forever."""
    server = DsdServer(
        graphs=GRAPHS,
        max_queue_depth=6,
        # bob is throttled to a 2-query burst; alice rides the default.
        quotas=TenantQuotas(rate=50.0, burst=20.0, overrides={"bob": (1.0, 2.0)}),
    )
    queries = build_query_mix(
        "uniform", list(GRAPHS), SOLVERS, num_queries=12, seed=9,
        tenants=("alice", "bob"),
    )
    responses = server.serve(queries)
    served = sum(1 for r in responses if r.ok)
    for response in responses:
        if not response.ok:
            print(
                f"  shed {response.query.tenant:<6} reason={response.reason}"
                f" retry_after={response.retry_after_s:.3g}s"
            )
    stats = server.stats
    print(
        f"{served}/{len(queries)} served; queue never grew past "
        f"{stats.peak_queue_depth} (bound {server.max_queue_depth})"
    )


if __name__ == "__main__":
    print("== hot-graph mix: 36 queries, 3 tenants ==")
    replay_hot_graph_mix()
    print()
    print("== overload: 12-query burst into a 6-slot queue ==")
    overload_tiny_queue()
