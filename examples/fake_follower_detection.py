#!/usr/bin/env python3
"""Fake-follower detection on a directed social graph (paper Section I).

Follower-buying creates an unnaturally dense directed block: a pool of
bot accounts S that all follow the same set of customer accounts T.  The
directed densest subgraph is exactly that block, so PWC surfaces the fraud
ring directly.

We synthesise a 30,000-account follow graph, inject a ring of 25 bots
following 35 customers, and check that PWC's (S, T) pair pinpoints them.

Run:  python examples/fake_follower_detection.py [seed]
"""

import sys

import numpy as np

from repro import directed_densest_subgraph
from repro.graph import planted_st_subgraph

DEFAULT_SEED = 11


def seed_from_argv(default: int = DEFAULT_SEED) -> int:
    """Optional integer argv override, so reruns are reproducible on demand."""
    arg = sys.argv[1] if len(sys.argv) > 1 else ""
    return int(arg) if arg.lstrip("+").isdigit() else default


def jaccard(found: np.ndarray, truth: np.ndarray) -> float:
    """Set overlap between a found vertex set and the ground truth."""
    found_set, truth_set = set(found.tolist()), set(truth.tolist())
    if not found_set and not truth_set:
        return 1.0
    return len(found_set & truth_set) / len(found_set | truth_set)


def main(seed: int = DEFAULT_SEED) -> None:
    graph, bots, customers = planted_st_subgraph(
        n=30_000,
        background_edges=150_000,
        s_size=25,
        t_size=35,
        block_probability=0.95,
        max_weight=60.0,  # organic accounts: no follower counts near the ring's
        seed=seed,
    )
    print(f"follow graph: {graph} (seed={seed})")
    print(f"injected ring: {bots.size} bots -> {customers.size} customers\n")

    result = directed_densest_subgraph(graph, method="pwc", num_threads=32)
    print(f"PWC found |S|={result.s_size} followers and |T|={result.t_size} "
          f"followees with density {result.density:.2f} "
          f"([x*, y*]=[{result.x}, {result.y}], w*={result.w_star}).")
    print(f"bot-pool overlap      (S vs ring): {jaccard(result.s, bots):.0%}")
    print(f"customer-pool overlap (T vs ring): {jaccard(result.t, customers):.0%}\n")

    # The state-of-the-art baseline finds the same core, only slower.
    baseline = directed_densest_subgraph(graph, method="pxy", num_threads=32)
    speedup = baseline.simulated_seconds / result.simulated_seconds
    print(f"PXY reaches the same cn-pair [{baseline.x}, {baseline.y}] but "
          f"needs {baseline.iterations} peel tasks over the full graph: "
          f"{speedup:.1f}x slower (simulated, p=32).")

    # Rank the most suspicious accounts: bots are the S-side sources.
    out_degrees = graph.out_degrees()
    suspicious = sorted(result.s.tolist(), key=lambda v: -out_degrees[v])[:5]
    print(f"top suspicious accounts (by follows issued): {suspicious}")


if __name__ == "__main__":
    main(seed=seed_from_argv())
