#!/usr/bin/env python3
"""Community detection via densest subgraph discovery (paper Section I).

Plants a hidden community (a near-clique of 40 members) inside a 10,000-
vertex power-law social network, then recovers it with the paper's PKMC
algorithm and measures precision/recall against the ground truth.  Also
contrasts quality and simulated cost across the whole UDS method zoo.

Run:  python examples/community_detection.py [seed]
"""

import sys

import numpy as np

from repro import densest_subgraph
from repro.graph import planted_dense_subgraph

DEFAULT_SEED = 7


def seed_from_argv(default: int = DEFAULT_SEED) -> int:
    """Optional integer argv override, so reruns are reproducible on demand."""
    arg = sys.argv[1] if len(sys.argv) > 1 else ""
    return int(arg) if arg.lstrip("+").isdigit() else default


def precision_recall(found: np.ndarray, truth: np.ndarray) -> tuple[float, float]:
    """Fraction of found vertices that are true members, and vice versa."""
    found_set = set(found.tolist())
    truth_set = set(truth.tolist())
    overlap = len(found_set & truth_set)
    precision = overlap / len(found_set) if found_set else 0.0
    recall = overlap / len(truth_set) if truth_set else 0.0
    return precision, recall


def main(seed: int = DEFAULT_SEED) -> None:
    graph, community = planted_dense_subgraph(
        n=10_000,
        background_edges=60_000,
        core_size=40,
        core_probability=0.95,
        seed=seed,
    )
    print(f"network: {graph};  hidden community of {community.size} members "
          f"(seed={seed})\n")

    print(f"{'method':<10} {'|S|':>5} {'density':>8} {'precision':>9} "
          f"{'recall':>7} {'sim (ms)':>9} {'iters':>6}")
    for method in ("pkmc", "local", "pkc", "pbu", "pfw", "charikar", "greedypp"):
        result = densest_subgraph(graph, method=method, num_threads=32)
        precision, recall = precision_recall(result.vertices, community)
        print(f"{method:<10} {result.num_vertices:>5} {result.density:>8.2f} "
              f"{precision:>9.2f} {recall:>7.2f} "
              f"{result.simulated_seconds * 1e3:>9.3f} {result.iterations:>6}")

    best = densest_subgraph(graph, method="pkmc", num_threads=32)
    precision, recall = precision_recall(best.vertices, community)
    print(f"\nPKMC recovered the planted community with precision "
          f"{precision:.0%} and recall {recall:.0%} "
          f"(k* = {best.k_star}, {best.iterations} h-index sweeps).")


if __name__ == "__main__":
    main(seed=seed_from_argv())
