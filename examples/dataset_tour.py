#!/usr/bin/env python3
"""Tour of the 12 dataset replicas (paper Tables 4-5 analogues).

Prints each replica's headline statistics next to the real graph it
stands in for, then solves it with the paper's algorithm (PKMC or PWC)
and reports the solution alongside the quality lower bound each core
guarantees (k*/2 for undirected, sqrt(x*y*)/2-flavoured for directed).

Run:  python examples/dataset_tour.py
"""

from repro import densest_subgraph, directed_densest_subgraph
from repro.datasets import dataset_names, get_spec, load_directed, load_undirected
from repro.graph import summarize, summarize_directed


def undirected_tour() -> None:
    print("== Undirected replicas (paper Table 4) ==")
    print(f"{'abbr':<5} {'|V|':>7} {'|E|':>8} {'d_max':>6} {'scale':>8} "
          f"{'k*':>4} {'rho(core)':>9} {'iters':>6}")
    for abbr in dataset_names("undirected"):
        spec = get_spec(abbr)
        graph = load_undirected(abbr)
        stats = summarize(graph)
        result = densest_subgraph(graph, num_threads=32)
        print(f"{abbr:<5} {stats.num_vertices:>7} {stats.num_edges:>8} "
              f"{stats.max_degree:>6} {spec.scale_factor:>7.0f}x "
              f"{result.k_star:>4} {result.density:>9.2f} {result.iterations:>6}")
        assert result.density >= result.k_star / 2  # Lemma 1's bound
    print()


def directed_tour() -> None:
    print("== Directed replicas (paper Table 5) ==")
    print(f"{'abbr':<5} {'|V|':>7} {'|E|':>8} {'d+max':>6} {'d-max':>6} "
          f"{'scale':>8} {'[x*, y*]':>11} {'rho(S,T)':>9}")
    for abbr in dataset_names("directed"):
        spec = get_spec(abbr)
        graph = load_directed(abbr)
        stats = summarize_directed(graph)
        result = directed_densest_subgraph(graph, num_threads=32)
        print(f"{abbr:<5} {stats.num_vertices:>7} {stats.num_edges:>8} "
              f"{stats.max_out_degree:>6} {stats.max_in_degree:>6} "
              f"{spec.scale_factor:>7.0f}x "
              f"[{result.x:>4}, {result.y:>3}] {result.density:>9.2f}")
    print()


if __name__ == "__main__":
    undirected_tour()
    directed_tour()
    print("All replicas solved with the paper's defaults (PKMC / PWC).")
