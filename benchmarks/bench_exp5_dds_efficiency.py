"""Exp-5 / paper Fig. 8 — DDS efficiency on all six directed replicas.

Paper shape asserted: PBS and PFKS exceed the time budget everywhere;
PFW finishes only on the two smallest replicas (AR, BA) and is orders of
magnitude slower than PWC there; PBD finishes everywhere but with a
weaker guarantee; PWC beats PXY on every dataset.
"""

from conftest import as_float

from repro.bench import run_exp5
from repro.datasets import dataset_names


def test_exp5_dds_efficiency(benchmark, save_result):
    result = benchmark.pedantic(run_exp5, rounds=1, iterations=1)
    save_result("exp5_fig8_dds_efficiency", result)

    for abbr in dataset_names("directed"):
        assert result.cell(abbr, "PBS") == "DNF", abbr
        assert result.cell(abbr, "PFKS") == "DNF", abbr
        assert result.cell(abbr, "PBD") != "DNF", abbr
        pwc_time = as_float(result.cell(abbr, "PWC"))
        pxy_time = as_float(result.cell(abbr, "PXY"))
        assert pwc_time < pxy_time, abbr

    # PFW finishes exactly on AR and BA.
    finished = {
        abbr
        for abbr in dataset_names("directed")
        if result.cell(abbr, "PFW") != "DNF"
    }
    assert finished == {"AR", "BA"}
    for abbr in finished:
        ratio = as_float(result.cell(abbr, "PFW")) / as_float(
            result.cell(abbr, "PWC")
        )
        assert ratio > 100, (abbr, ratio)  # orders of magnitude slower
