"""Exp-8 / paper Fig. 10 — DDS runtime vs sampled edge fraction (WE, TW).

Paper shape asserted: at p = 4, the cost of PBD, PXY and PWC all grow
with the sampled edge count, and PWC remains fastest at every size.
"""

from conftest import as_float

from repro.bench import run_exp8


def test_exp8_edge_scalability(benchmark, save_result):
    result = benchmark.pedantic(run_exp8, rounds=1, iterations=1)
    save_result("exp8_fig10_dds_scalability", result)

    for abbr in ("WE", "TW"):
        rows = [row for row in result.rows if row[0] == abbr]
        for row in rows:
            values = {
                algo: as_float(row[result.headers.index(algo)])
                for algo in ("PBD", "PXY", "PWC")
            }
            assert values["PWC"] == min(values.values()), row
        for algo in ("PXY", "PWC"):
            series = [as_float(r[result.headers.index(algo)]) for r in rows]
            assert series[0] < series[-1], (abbr, algo)
