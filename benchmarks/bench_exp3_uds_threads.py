"""Exp-3 / paper Fig. 6 — UDS runtime vs thread count on PT, EW, EU.

Paper shape asserted: PKMC's simulated runtime falls near-linearly with
p; PKC's curve flattens (its many tiny rounds drown in spawn/barrier
overhead); on the small PT graph PKC can edge out PKMC at low thread
counts, as the paper observes.
"""

from conftest import as_float

from repro.bench import run_exp3


def _series(result, dataset, algo):
    column = result.headers.index(algo)
    return {
        row[1]: as_float(row[column]) for row in result.rows if row[0] == dataset
    }


def test_exp3_thread_scaling(benchmark, save_result):
    result = benchmark.pedantic(run_exp3, rounds=1, iterations=1)
    save_result("exp3_fig6_uds_threads", result)

    for abbr in ("PT", "EW", "EU"):
        pkmc = _series(result, abbr, "PKMC")
        pkc = _series(result, abbr, "PKC")
        # PKMC keeps scaling: >= 8x speedup from 1 to 32 threads.
        assert pkmc[1] / pkmc[32] >= 8, (abbr, pkmc)
        # PKC flattens: < 3x speedup over the same range.
        assert pkc[1] / pkc[32] < 3, (abbr, pkc)
    # Paper: "PKC is slightly faster than PKMC when threads < 8 on PT".
    pt_pkmc = _series(result, "PT", "PKMC")
    pt_pkc = _series(result, "PT", "PKC")
    assert pt_pkc[1] < pt_pkmc[1]
