"""Exp-1 / paper Fig. 5 — UDS efficiency on all six undirected replicas.

Regenerates the bar chart's data: simulated runtime of PFW, PBU, Local,
PKC, PKMC at p = 32 on PT, EW, EU, IT, SK, UN.  Paper shape asserted:
PKMC is the fastest everywhere, 5-20x ahead of PBU and about two orders
of magnitude ahead of PFW.
"""

from conftest import as_float

from repro.bench import run_exp1
from repro.datasets import dataset_names


def test_exp1_uds_efficiency(benchmark, save_result):
    result = benchmark.pedantic(run_exp1, rounds=1, iterations=1)
    save_result("exp1_fig5_uds_efficiency", result)

    for abbr in dataset_names("undirected"):
        pkmc_time = as_float(result.cell(abbr, "PKMC"))
        # PKMC wins on every dataset (paper Fig. 5).
        for other in ("PFW", "PBU", "Local", "PKC"):
            assert pkmc_time < as_float(result.cell(abbr, other)), (abbr, other)
        # At least 5x and at most ~25x vs PBU (paper: 5-20x).
        pbu_ratio = as_float(result.cell(abbr, "PBU")) / pkmc_time
        assert 5 <= pbu_ratio <= 30, (abbr, pbu_ratio)
        # Around two orders of magnitude vs PFW.
        pfw_ratio = as_float(result.cell(abbr, "PFW")) / pkmc_time
        assert pfw_ratio > 50, (abbr, pfw_ratio)
