"""Ablations of the paper's design choices (DESIGN.md section 5).

Each test isolates one optimisation the paper introduces and measures its
effect on the replicas, confirming that the speedups come from where the
paper says they come from:

1. Theorem-1 early stop (PKMC vs plain Local extraction);
2. update order of the h-index sweeps;
3. the w >= d_max initial pruning of Algorithm 3;
4. cn-pair extraction strategy (collapse scan vs divisor descent);
5. PXY task scheduling (dynamic task pool vs static block assignment).
"""

import numpy as np
from conftest import RESULTS_DIR

from repro.core import pkmc, pwc, wstar_subgraph
from repro.datasets import load_directed, load_undirected
from repro.runtime import SimRuntime, compute_thread_loads

_LINES: list[str] = []


def _record(line: str) -> None:
    _LINES.append(line)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablations.txt").write_text(
        "\n".join(_LINES) + "\n", encoding="utf-8"
    )


def test_ablation_early_stop(benchmark):
    """Theorem-1 early stop: iterations and simulated time saved."""
    graph = load_undirected("UN")

    def run_both():
        with_stop = pkmc(graph, runtime=SimRuntime(32))
        without_stop = pkmc(graph, runtime=SimRuntime(32), early_stop=False)
        return with_stop, without_stop

    with_stop, without_stop = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert with_stop.k_star == without_stop.k_star
    assert with_stop.iterations <= 0.1 * without_stop.iterations
    assert with_stop.simulated_seconds < 0.2 * without_stop.simulated_seconds
    _record(
        f"early-stop on UN: {with_stop.iterations} vs "
        f"{without_stop.iterations} iterations, "
        f"{without_stop.simulated_seconds / with_stop.simulated_seconds:.1f}x "
        "simulated speedup"
    )


def test_ablation_update_order(benchmark):
    """Gauss–Seidel degree-order sweeps vs synchronous sweeps."""
    graph = load_undirected("PT")

    def run_both():
        sync = pkmc(graph, sweep="synchronous")
        ordered = pkmc(graph, sweep="degree_order")
        return sync, ordered

    sync, ordered = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert sync.k_star == ordered.k_star
    assert sync.vertices.tolist() == ordered.vertices.tolist()
    # In-place propagation can only help convergence.
    assert ordered.iterations <= sync.iterations + 1
    _record(
        f"update order on PT: synchronous {sync.iterations} vs "
        f"degree-order {ordered.iterations} iterations"
    )


def test_ablation_dmax_pruning(benchmark):
    """The Remark's w >= d_max pruning: same answer, fewer rounds."""
    graph = load_directed("TW")

    def run_both():
        fast = wstar_subgraph(graph, runtime=SimRuntime(32), start_at_dmax=True)
        slow = wstar_subgraph(graph, runtime=SimRuntime(32), start_at_dmax=False)
        return fast, slow

    fast, slow = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert fast.w_star == slow.w_star
    assert np.array_equal(fast.edge_mask, slow.edge_mask)
    assert fast.rounds <= slow.rounds
    _record(
        f"d_max pruning on TW: {fast.rounds} vs {slow.rounds} peel rounds "
        f"(w* = {fast.w_star})"
    )


def test_ablation_extraction_strategy(benchmark):
    """Collapse scan vs divisor descent: identical cn-pair products."""
    graph = load_directed("WE")

    def run_both():
        collapse = pwc(graph, runtime=SimRuntime(32), extraction="collapse")
        divisor = pwc(graph, runtime=SimRuntime(32), extraction="divisor")
        return collapse, divisor

    collapse, divisor = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert collapse.x * collapse.y == divisor.x * divisor.y
    _record(
        f"extraction on WE: collapse [{collapse.x},{collapse.y}] "
        f"({collapse.simulated_seconds:.5f}s) vs divisor "
        f"[{divisor.x},{divisor.y}] ({divisor.simulated_seconds:.5f}s)"
    )


def test_ablation_pxy_scheduling(benchmark):
    """Load imbalance of PXY's uneven tasks: static vs dynamic makespan."""
    rng = np.random.default_rng(0)
    # Task costs shaped like PXY's: one huge x=1 task, fast-decaying tail.
    costs = 1000.0 / (1.0 + np.arange(300.0)) + rng.random(300)

    def makespans():
        static = compute_thread_loads(costs, 32, schedule="static").max()
        dynamic = compute_thread_loads(costs, 32, schedule="tasks").max()
        return static, dynamic

    static, dynamic = benchmark.pedantic(makespans, rounds=1, iterations=1)
    assert dynamic <= static
    # Even dynamic scheduling cannot beat the single largest task — the
    # root cause of PXY's capped self-relative speedup.
    assert dynamic >= costs.max()
    _record(
        f"PXY scheduling (synthetic tasks): static makespan {static:.0f} vs "
        f"dynamic {dynamic:.0f}, largest single task {costs.max():.0f}"
    )
