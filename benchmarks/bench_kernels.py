"""Wall-clock microbenchmarks of the library's hot kernels.

Unlike the experiment benches (which report *simulated* parallel time),
these measure real host wall-clock time of the serial/vectorised kernels
with pytest-benchmark's statistics, guarding against performance
regressions in the implementation itself.
"""

import numpy as np
import pytest

from repro.bench.kernels import (
    _run_tail_frontier,
    _run_tail_lexsort,
    _warm_tail_state,
)
from repro.core import pkmc, pwc, synchronous_sweep, wstar_subgraph, xy_core
from repro.datasets import load_directed, load_undirected
from repro.graph import chung_lu_directed, chung_lu_undirected
from repro.kernels import reference_segment_h_index


@pytest.fixture(scope="module")
def medium_undirected():
    return chung_lu_undirected(20_000, 100_000, seed=1)


@pytest.fixture(scope="module")
def medium_directed():
    return chung_lu_directed(20_000, 100_000, seed=2)


def test_kernel_hindex_sweep(benchmark, medium_undirected):
    """One vectorised h-index sweep over 100k edges (sort-free kernel)."""
    h = medium_undirected.degrees().astype(np.int64)
    result = benchmark(synchronous_sweep, medium_undirected, h)
    assert result.shape == h.shape


def test_kernel_hindex_sweep_lexsort_reference(benchmark, medium_undirected):
    """The same sweep via the pre-kernel-layer O(m log m) lexsort path."""
    graph = medium_undirected
    h = graph.degrees().astype(np.int64)
    result = benchmark(
        reference_segment_h_index,
        graph.indptr,
        h[graph.indices],
        graph.heads(),
    )
    assert np.array_equal(result, synchronous_sweep(graph, h))


def test_kernel_tail_frontier(benchmark, medium_undirected):
    """Convergence-tail sweeps via the frontier path (the PR-2 hot case)."""
    h_warm, frontier_warm = _warm_tail_state(medium_undirected)
    _, sweeps = benchmark(
        _run_tail_frontier, medium_undirected, h_warm, frontier_warm
    )
    assert sweeps >= 1


def test_kernel_tail_lexsort_reference(benchmark, medium_undirected):
    """The same convergence tail via repeated full lexsort sweeps."""
    h_warm, _ = _warm_tail_state(medium_undirected)
    _, sweeps = benchmark(_run_tail_lexsort, medium_undirected, h_warm)
    assert sweeps >= 1


def test_kernel_pkmc_end_to_end(benchmark, medium_undirected):
    """Full PKMC on a 100k-edge power-law graph."""
    result = benchmark.pedantic(pkmc, args=(medium_undirected,), rounds=3, iterations=1)
    assert result.k_star >= 1


def test_kernel_wstar_subgraph(benchmark, medium_directed):
    """Algorithm 3 (w*-induced subgraph) on a 100k-edge digraph."""
    result = benchmark.pedantic(
        wstar_subgraph, args=(medium_directed,), rounds=3, iterations=1
    )
    assert result.w_star >= medium_directed.max_degree()


def test_kernel_pwc_end_to_end(benchmark, medium_directed):
    """Full PWC on a 100k-edge power-law digraph."""
    result = benchmark.pedantic(pwc, args=(medium_directed,), rounds=3, iterations=1)
    assert result.density > 0


def test_kernel_xy_core_peel(benchmark, medium_directed):
    """One [2, 2]-core peel over the full digraph."""
    result = benchmark.pedantic(
        xy_core, args=(medium_directed, 2, 2), rounds=3, iterations=1
    )
    assert result.edge_mask.size == medium_directed.num_edges


def test_kernel_graph_construction(benchmark):
    """CSR construction from 200k random edges."""
    rng = np.random.default_rng(0)
    edges = rng.integers(0, 30_000, size=(200_000, 2))

    from repro.graph import DirectedGraph

    result = benchmark.pedantic(
        DirectedGraph.from_edges, args=(30_000, edges), rounds=3, iterations=1
    )
    assert result.num_vertices == 30_000


def test_kernel_dataset_generation(benchmark):
    """Replica generation cost (PT, cache bypassed)."""
    from repro.datasets.registry import get_spec
    from repro.datasets.synth import build_undirected_replica

    spec = get_spec("PT")

    def build():
        return build_undirected_replica(
            spec.num_vertices,
            spec.target_edges,
            exponent=spec.exponent,
            max_weight=spec.max_weight,
            clique_size=spec.clique_size,
            path_length=spec.path_length,
            seed=spec.seed,
        )

    result = benchmark.pedantic(build, rounds=3, iterations=1)
    assert result.num_edges > 0
