"""Exp-2 / paper Table 6 — iteration counts of the core-based algorithms.

Regenerates the table of h-index / peeling iterations for PKC, Local and
PKMC.  Paper shape asserted: PKMC converges in 3-5 iterations on every
dataset, cutting Local's count by 60% or more, while PKC needs an order
of magnitude more rounds than Local.
"""

from repro.bench import run_exp2
from repro.datasets import dataset_names


def test_exp2_iteration_counts(benchmark, save_result):
    result = benchmark.pedantic(run_exp2, rounds=1, iterations=1)
    save_result("exp2_table6_iterations", result)

    for abbr in dataset_names("undirected"):
        pkmc = result.cell("PKMC", abbr)
        local = result.cell("Local", abbr)
        pkc = result.cell("PKC", abbr)
        assert 3 <= pkmc <= 5, (abbr, pkmc)                # paper: 3-5
        assert pkmc <= 0.4 * local, (abbr, pkmc, local)    # >= 60% reduction
        assert pkc > 2 * local, (abbr, pkc, local)         # PKC far behind
