"""Distributed (BSP) PKMC vs shared memory — the future-work study.

Quantifies the paper's conclusion caveat: the distributed port pays a
network round per superstep, so on replica-scale graphs shared memory
wins, while the early stop becomes *more* valuable (each avoided sweep
saves a full exchange + barrier).
"""

from conftest import RESULTS_DIR

from repro.core import pkmc
from repro.datasets import load_undirected
from repro.distributed import ClusterConfig, distributed_pkmc
from repro.runtime import SimRuntime


def test_distributed_vs_shared_memory(benchmark, save_result):
    graph = load_undirected("UN")

    def run_study():
        shared = pkmc(graph, runtime=SimRuntime(32))
        curve = {
            workers: distributed_pkmc(graph, ClusterConfig(num_workers=workers))
            for workers in (1, 4, 16, 64)
        }
        return shared, curve

    shared, curve = benchmark.pedantic(run_study, rounds=1, iterations=1)

    # Same answer on every configuration.
    for result in curve.values():
        assert result.k_star == shared.k_star
        assert result.vertices.tolist() == shared.vertices.tolist()
    # More workers help (compute shrinks faster than messages grow here).
    times = [curve[w].simulated_seconds for w in (1, 4, 16, 64)]
    assert times[-1] < times[0]
    # But the network rounds keep BSP behind shared memory at equal scale.
    assert curve[16].simulated_seconds > shared.simulated_seconds

    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [
        "Distributed PKMC (BSP) vs shared memory on UN",
        f"shared memory p=32: {shared.simulated_seconds:.6f}s "
        f"({shared.iterations} sweeps)",
    ]
    for workers, result in curve.items():
        lines.append(
            f"BSP W={workers:>2}: {result.simulated_seconds:.6f}s, "
            f"{result.extras['supersteps']} supersteps, "
            f"{result.extras['total_messages']} messages, "
            f"cross-edge {result.extras['cross_edge_fraction']:.0%}"
        )
    (RESULTS_DIR / "distributed.txt").write_text("\n".join(lines) + "\n")


def test_distributed_early_stop_value(benchmark):
    graph = load_undirected("SK")

    def run_both():
        fast = distributed_pkmc(graph, ClusterConfig(num_workers=16))
        slow = distributed_pkmc(
            graph, ClusterConfig(num_workers=16), early_stop=False
        )
        return fast, slow

    fast, slow = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert fast.k_star == slow.k_star
    # Every saved sweep is a saved network round: the stop matters more
    # in BSP than it does in shared memory.
    assert slow.simulated_seconds / fast.simulated_seconds > 5
