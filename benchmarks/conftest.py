"""Shared helpers for the benchmark suite.

Each ``bench_exp*.py`` regenerates one of the paper's tables/figures via
``benchmark.pedantic`` (a single timed round — the experiments are
deterministic simulations, so repetition adds nothing), saves the rendered
artifact under ``benchmarks/results/``, and asserts the paper's qualitative
claims on the produced numbers.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_result():
    """Persist a rendered ExperimentResult under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, result) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(result.to_text() + "\n", encoding="utf-8")

    return _save


def as_float(cell) -> float:
    """Parse a table cell produced by format_status."""
    return float(cell)
