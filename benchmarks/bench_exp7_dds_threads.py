"""Exp-7 / paper Fig. 9 — DDS runtime vs thread count on AR, WE, TW.

Paper shape asserted: PWC is the fastest at every p and scales; PBD's
curve bottoms out in the middle of the sweep and degrades at p = 64;
PXY and PBD go OOM on TW for p > 4 (per-thread graph copies vs the
255 GB-scaled budget) while PWC keeps running.
"""

from conftest import as_float

from repro.bench import run_exp7


def _series(result, dataset, algo):
    column = result.headers.index(algo)
    return {
        row[1]: row[column] for row in result.rows if row[0] == dataset
    }


def test_exp7_thread_scaling(benchmark, save_result):
    result = benchmark.pedantic(run_exp7, rounds=1, iterations=1)
    save_result("exp7_fig9_dds_threads", result)

    # TW: PXY/PBD OOM beyond p=4, PWC never does.
    for algo in ("PXY", "PBD"):
        series = _series(result, "TW", algo)
        assert series[4] != "OOM"
        for p in (8, 16, 32, 64):
            assert series[p] == "OOM", (algo, p)
    assert all(v != "OOM" for v in _series(result, "TW", "PWC").values())

    for abbr in ("AR", "WE"):
        pwc = {p: as_float(v) for p, v in _series(result, abbr, "PWC").items()}
        pxy = {p: as_float(v) for p, v in _series(result, abbr, "PXY").items()}
        pbd = {p: as_float(v) for p, v in _series(result, abbr, "PBD").items()}
        # PWC fastest at every p and clearly faster than PXY at p = 1.
        for p in pwc:
            assert pwc[p] < pxy[p] and pwc[p] < pbd[p], (abbr, p)
        assert pxy[1] / pwc[1] > 7
        # PBD degrades past its sweet spot (paper: best around p = 16).
        assert pbd[64] > min(pbd.values())
