"""Exp-4 / paper Fig. 7 — UDS runtime vs sampled edge fraction (SK, UN).

Paper shape asserted: every algorithm's cost grows as the sampled edge
fraction grows, and PKMC remains the fastest at every size.
"""

from conftest import as_float

from repro.bench import run_exp4


def test_exp4_edge_scalability(benchmark, save_result):
    result = benchmark.pedantic(run_exp4, rounds=1, iterations=1)
    save_result("exp4_fig7_uds_scalability", result)

    algorithms = ("PFW", "PBU", "Local", "PKC", "PKMC")
    for abbr in ("SK", "UN"):
        rows = [row for row in result.rows if row[0] == abbr]
        for row in rows:
            values = {
                algo: as_float(row[result.headers.index(algo)])
                for algo in algorithms
            }
            if row[1] == "20%":
                # At the smallest sample the planted core is diluted and
                # PKMC's iteration count rises; it must still be within
                # 2x of the best (see EXPERIMENTS.md, Exp-4 deviation).
                assert values["PKMC"] <= 2 * min(values.values()), row
            else:
                assert values["PKMC"] == min(values.values()), row
        # Growth with |E| for the work-dominated algorithms.
        for algo in ("PFW", "PBU"):
            series = [as_float(r[result.headers.index(algo)]) for r in rows]
            assert series == sorted(series), (abbr, algo, series)
