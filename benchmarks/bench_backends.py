"""Wall-clock microbenchmarks of the array-backend dispatch layer.

Companion to ``repro-bench backends`` (the committed-baseline gate):
pytest-benchmark statistics for the numpy reference vs the multiproc
shared-memory pool on a single full h-index sweep, plus the dispatch
overhead of routing a kernel call through ``get_backend()``.  Like
``bench_kernels.py`` these measure *real* host wall-clock, so absolute
numbers are host-specific; the committed acceptance gate compares
speedup ratios, never raw seconds.
"""

import numpy as np
import pytest

from repro.backends import use_backend
from repro.backends.multiproc import MultiprocBackend
from repro.backends.numpy_backend import NumpyBackend, sweep_values_numpy
from repro.core import synchronous_sweep
from repro.graph import chung_lu_undirected


@pytest.fixture(scope="module")
def medium_undirected():
    return chung_lu_undirected(20_000, 100_000, seed=1)


@pytest.fixture(scope="module")
def pool():
    backend = MultiprocBackend(workers=2)
    yield backend
    backend.close()


def test_backend_sweep_numpy(benchmark, medium_undirected):
    """One full sweep on the single-process numpy reference backend."""
    graph = medium_undirected
    h = graph.degrees().astype(np.int64)
    backend = NumpyBackend()
    result = benchmark(backend.sweep_values, graph, h)
    assert result.shape == h.shape


def test_backend_sweep_multiproc(benchmark, medium_undirected, pool):
    """The same sweep fanned out over the shared-memory worker pool.

    Note: parent-side elapsed time.  On hosts with fewer free cores than
    workers the processes time-slice, so compare against the
    ``critical_path_s`` view in ``BENCH_backends.json`` before reading
    this as a regression.
    """
    graph = medium_undirected
    h = graph.degrees().astype(np.int64)
    pool.sweep_values(graph, h)  # warm: spawn + publish + scratch
    result = benchmark(pool.sweep_values, graph, h)
    assert np.array_equal(result, sweep_values_numpy(graph, h))


def test_backend_dispatch_overhead(benchmark, medium_undirected):
    """Kernel entry point through the dispatch vs the raw formulation.

    The difference between this and ``test_backend_sweep_numpy`` is the
    price of ``get_backend()`` resolution — it must stay in the noise.
    """
    graph = medium_undirected
    h = graph.degrees().astype(np.int64)
    with use_backend("numpy"):
        result = benchmark(synchronous_sweep, graph, h)
    assert np.array_equal(result, sweep_values_numpy(graph, h))
