"""Exp-6 / paper Table 7 — edges processed by PXY vs the PWC stages.

Paper shape asserted: PWC's first iteration (the w >= d_max prune)
shrinks the processed graph by an order of magnitude or more relative to
PXY's full-graph peels; on the hub-dominated AM and AR the first level
already equals the w*-induced subgraph ("results obtained immediately").
"""

from repro.bench import run_exp6
from repro.datasets import dataset_names


def test_exp6_processed_sizes(benchmark, save_result):
    result = benchmark.pedantic(run_exp6, rounds=1, iterations=1)
    save_result("exp6_table7_sizes", result)

    for abbr in dataset_names("directed"):
        pxy = result.cell("PXY", abbr)
        first = result.cell("PWC_1", abbr)
        wstar = result.cell("PWC_w*", abbr)
        dds = result.cell("PWC_D*", abbr)
        assert pxy >= first >= wstar >= dds, abbr
        assert pxy > 10 * first, abbr  # drastic first-iteration shrink

    for abbr in ("AM", "AR"):
        assert result.cell("PWC_1", abbr) == result.cell("PWC_w*", abbr)
