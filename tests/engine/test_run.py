"""engine.run: capability-gated context propagation and contracts.

A throwaway registered solver records exactly which kwargs the engine
forwarded, so these tests pin the dispatch contract: each context field
reaches a solver iff the spec claims the capability, and a
``supports_runtime`` solver that ignores its runtime is an error.
"""

from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.engine import ExecutionContext, resolve_solver, run
from repro.engine.spec import temporary_solver
from repro.errors import EngineError
from repro.runtime.simruntime import SimRuntime


@dataclass
class FakeResult:
    """Minimal result shape the engine needs (density/iterations/report)."""

    density: float = 1.0
    iterations: int = 1
    simulated_seconds: float = 0.0
    report: object = None
    seen: dict = field(default_factory=dict)


def recording_solver(charge=True):
    """A solver body that records its kwargs and optionally charges work."""

    def solve(graph, runtime=None, **kwargs):
        if runtime is not None and charge:
            runtime.parfor(np.ones(4))
        return FakeResult(seen={"runtime": runtime, **kwargs})

    return solve


def temp(name="probe", kind="uds", **caps):
    return temporary_solver(name=name, kind=kind, guarantee="heuristic",
                            cost="serial", **caps)


class TestContextPropagation:
    def test_seed_reaches_seed_capable_solver(self, triangle_graph):
        with temp(supports_seed=True)(recording_solver()) as spec:
            result = run(spec, triangle_graph, ExecutionContext(seed=7))
        assert result.seen["seed"] == 7

    def test_seed_withheld_without_capability(self, triangle_graph):
        with temp()(recording_solver()) as spec:
            result = run(spec, triangle_graph, ExecutionContext(seed=7))
        assert "seed" not in result.seen

    def test_runtime_built_from_context_threads(self, triangle_graph):
        ctx = ExecutionContext(num_threads=16)
        with temp(supports_runtime=True)(recording_solver()) as spec:
            result = run(spec, triangle_graph, ctx)
        assert result.seen["runtime"] is ctx.runtime
        assert ctx.runtime.num_threads == 16
        assert ctx.simulated_seconds > 0.0

    def test_runtime_withheld_without_capability(self, triangle_graph):
        ctx = ExecutionContext(num_threads=16)
        with temp()(recording_solver()) as spec:
            result = run(spec, triangle_graph, ctx)
        assert result.seen["runtime"] is None
        assert ctx.runtime is None  # serial solvers never pay for one

    def test_frontier_forwarded_only_when_set_and_supported(self, triangle_graph):
        with temp(supports_runtime=True,
                  supports_frontier=True)(recording_solver()) as spec:
            default = run(spec, triangle_graph, ExecutionContext())
            toggled = run(spec, triangle_graph, ExecutionContext(frontier=False))
        assert "frontier" not in default.seen  # None means solver default
        assert toggled.seen["frontier"] is False

    def test_explicit_runtime_option_adopted(self, triangle_graph):
        rt = SimRuntime(num_threads=4)
        ctx = ExecutionContext(num_threads=1)
        with temp(supports_runtime=True)(recording_solver()) as spec:
            result = run(spec, triangle_graph, ctx, runtime=rt)
        assert result.seen["runtime"] is rt
        assert ctx.runtime is rt

    def test_explicit_runtime_dropped_for_serial_solver(self, triangle_graph):
        # Old api.py contract: serial solvers accept-and-ignore a runtime.
        with temp()(recording_solver()) as spec:
            result = run(spec, triangle_graph, runtime=SimRuntime())
        assert result.seen["runtime"] is None

    def test_default_options_overridden_by_call_options(self, triangle_graph):
        with temporary_solver(
            name="probe", kind="uds", guarantee="heuristic", cost="serial",
            default_options={"epsilon": 0.5, "passes": 2},
        )(recording_solver()) as spec:
            result = run(spec, triangle_graph, epsilon=0.25)
        assert result.seen["epsilon"] == 0.25
        assert result.seen["passes"] == 2

    def test_sanitize_flag_reaches_built_runtime(self, triangle_graph):
        ctx = ExecutionContext(sanitize=True)
        with temp(supports_runtime=True)(recording_solver()) as spec:
            run(spec, triangle_graph, ctx)
        assert ctx.runtime.sanitize

    def test_sanitize_forwarded_as_kwarg_without_runtime(self, triangle_graph):
        # Solvers that build their own runtime internally (the BSP
        # cluster ports) declare supports_sanitize without
        # supports_runtime; the engine must pass the flag as a kwarg.
        with temp(supports_sanitize=True)(recording_solver()) as spec:
            on = run(spec, triangle_graph, ExecutionContext(sanitize=True))
            off = run(spec, triangle_graph, ExecutionContext())
        assert on.seen["sanitize"] is True
        assert "sanitize" not in off.seen  # default-off stays implicit


class TestPkmcBspSanitize:
    """Satellite pin: pkmc-bsp honors ExecutionContext(sanitize=True).

    PR 6's contracts manifest flagged pkmc-bsp as declaring sanitize it
    never received — the engine only forwarded the flag through a built
    runtime, which cluster ports do not take.  Now the flag reaches the
    solver as a kwarg and drives a local sanitizing SimRuntime, without
    perturbing the cluster clock or the results.
    """

    def test_sanitized_run_matches_unsanitized(self, triangle_graph):
        from repro.graph import chung_lu_undirected

        graph = chung_lu_undirected(500, 2_000, seed=17)
        ctx_plain = ExecutionContext()
        ctx_clean = ExecutionContext(sanitize=True)
        plain = run("pkmc-bsp", graph, ctx_plain)
        clean = run("pkmc-bsp", graph, ctx_clean)
        assert np.array_equal(plain.vertices, clean.vertices)
        assert plain.density == clean.density
        assert plain.iterations == clean.iterations
        # Sanitizing replays sweeps on a local runtime; the simulated
        # cluster clock must not move.
        assert plain.simulated_seconds == clean.simulated_seconds

    def test_declared_capability_matches_inferred(self):
        # The regression PR 6 reported: declared != inferred for
        # pkmc-bsp.  Keep the record mismatch-free.
        from pathlib import Path

        from repro.analysis.engine import LintEngine

        src_root = Path(__file__).resolve().parents[2] / "src" / "repro"
        project = LintEngine().build_project([src_root])
        entry = next(
            rec for rec in project.contracts_manifest()
            if rec["name"] == "pkmc-bsp"
        )
        assert entry["declared"]["sanitize"] is True
        assert entry["inferred"]["sanitize"] is True
        assert entry["mismatches"] == []


class TestRuntimeContract:
    def test_uncharged_runtime_is_an_engine_error(self, triangle_graph):
        with temp(supports_runtime=True)(recording_solver(charge=False)) as spec:
            with pytest.raises(EngineError, match="charged nothing"):
                run(spec, triangle_graph)

    def test_serial_charge_satisfies_contract(self, triangle_graph):
        def solve(graph, runtime=None):
            runtime.charge_serial(10.0)
            return FakeResult()

        with temp(supports_runtime=True)(solve) as spec:
            result = run(spec, triangle_graph)
        assert result.report.simulated_seconds > 0.0


class TestResolveSolver:
    def test_kind_inferred_from_graph_type(self, triangle_graph, fig3_graph):
        assert resolve_solver("pfw", triangle_graph).kind == "uds"
        assert resolve_solver("pfw", fig3_graph).kind == "dds"

    def test_spec_passes_through(self, triangle_graph):
        spec = resolve_solver("pkmc", triangle_graph)
        assert resolve_solver(spec, None) is spec  # graph type irrelevant

    def test_non_graph_rejected(self):
        with pytest.raises(EngineError, match="cannot infer solver kind"):
            resolve_solver("pkmc", [1, 2, 3])
