"""Tests for the solver registry + execution engine (repro.engine)."""
