"""Registry completeness and SolverSpec invariants.

The registry must discover every solver entry point in the canonical
solver packages exactly once — no orphan ``*_uds`` / ``*_dds`` function,
no double registration — and ``SolverSpec`` must reject malformed
declarations at import time.
"""

import ast
import importlib
import pkgutil
from pathlib import Path

import pytest

from repro.engine.spec import (
    SolverSpec,
    get_solver,
    register_solver,
    solver_names,
    solver_specs,
    temporary_solver,
)
from repro.errors import AlgorithmError, EngineError

# The canonical solver packages/modules (mirrors spec._SOLVER_MODULES).
SOLVER_PACKAGES = ("repro.algorithms.undirected", "repro.algorithms.directed",
                   "repro.distributed")
SOLVER_MODULES = ("repro.core.pkmc", "repro.core.pwc")

# Entry-point naming convention (mirrors lint rule R006).
EXACT_NAMES = {"pkmc", "pwc", "distributed_pkmc", "distributed_pwc"}
NAME_SUFFIXES = ("_uds", "_dds")

# Solver-shaped functions deliberately kept out of the registry, with why.
# (Currently none: triangle_densest_peel optimises a different objective
# but also does not match the entry-point naming convention.)
UNREGISTERED_ALLOWED: set = set()


def iter_solver_functions():
    """Yield (module_name, function_name) for every solver entry point."""
    for package_name in SOLVER_PACKAGES:
        package = importlib.import_module(package_name)
        for info in pkgutil.iter_modules(package.__path__):
            yield from _module_entry_points(f"{package_name}.{info.name}")
    for module_name in SOLVER_MODULES:
        yield from _module_entry_points(module_name)


def _module_entry_points(module_name):
    module = importlib.import_module(module_name)
    tree = ast.parse(Path(module.__file__).read_text(encoding="utf-8"))
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and not node.name.startswith("_"):
            if node.name in EXACT_NAMES or node.name.endswith(NAME_SUFFIXES):
                yield module_name, node.name


class TestCompleteness:
    def test_every_solver_entry_point_is_registered(self):
        registered = {spec.func for spec in solver_specs()}
        missing = []
        for module_name, func_name in iter_solver_functions():
            if func_name in UNREGISTERED_ALLOWED:
                continue
            func = getattr(importlib.import_module(module_name), func_name)
            if func not in registered:
                missing.append(f"{module_name}.{func_name}")
        assert missing == [], f"solver entry points not registered: {missing}"

    def test_each_callable_registered_exactly_once(self):
        funcs = [spec.func for spec in solver_specs()]
        assert len(funcs) == len(set(funcs))

    def test_registry_keys_unique_per_kind(self):
        for kind in ("uds", "dds"):
            names = solver_names(kind)
            assert names == sorted(set(names))

    def test_expected_method_sets(self):
        assert solver_names("uds") == [
            "binary-search", "brute-force", "charikar", "core-exact", "exact",
            "greedypp", "local", "max-truss", "pbu", "pfw", "pkc", "pkmc",
            "pkmc-bsp",
        ]
        assert solver_names("dds") == [
            "brute-force", "exact", "exact-core", "pbd", "pbs", "pfks",
            "pfw", "pwc", "pwc-bsp", "pxy",
        ]

    def test_paper_algorithms_have_expected_capabilities(self):
        pkmc = get_solver("uds", "pkmc")
        assert pkmc.guarantee == "2-approx" and pkmc.cost == "parallel"
        assert set(pkmc.capabilities) >= {"runtime", "frontier", "sanitize"}
        pwc = get_solver("dds", "pwc")
        assert set(pwc.capabilities) >= {"runtime", "frontier"}
        for name in ("pkmc-bsp",):
            assert get_solver("uds", name).supports_cluster
        assert get_solver("dds", "pwc-bsp").supports_cluster
        for kind in ("uds", "dds"):
            exact = get_solver(kind, "exact")
            assert exact.guarantee == "exact" and exact.cost == "serial"


class TestLookup:
    def test_unknown_method_keeps_historical_message(self):
        with pytest.raises(AlgorithmError, match="unknown UDS method 'nope'"):
            get_solver("uds", "nope")
        with pytest.raises(AlgorithmError, match="unknown DDS method"):
            get_solver("dds", "nope")

    def test_summary_defaults_to_docstring_first_line(self):
        spec = get_solver("uds", "charikar")
        assert spec.summary
        assert "\n" not in spec.summary


class TestSpecValidation:
    def _solver(self, graph):
        """Throwaway solver body."""
        return None

    def test_bad_kind_rejected(self):
        with pytest.raises(EngineError, match="kind"):
            SolverSpec(name="x", kind="tds", func=self._solver,
                       guarantee="exact", cost="serial")

    def test_bad_guarantee_rejected(self):
        with pytest.raises(EngineError, match="guarantee"):
            SolverSpec(name="x", kind="uds", func=self._solver,
                       guarantee="3-approx", cost="serial")

    def test_bad_cost_tag_rejected(self):
        with pytest.raises(EngineError, match="cost tag"):
            SolverSpec(name="x", kind="uds", func=self._solver,
                       guarantee="exact", cost="quantum")

    def test_frontier_requires_runtime(self):
        with pytest.raises(EngineError, match="supports_frontier"):
            SolverSpec(name="x", kind="uds", func=self._solver,
                       guarantee="exact", cost="serial",
                       supports_frontier=True)

    def test_duplicate_registration_rejected(self):
        def one(graph):
            """One."""

        def other(graph):
            """Other."""

        with temporary_solver(name="dupe", kind="uds", guarantee="exact",
                              cost="serial")(one):
            with pytest.raises(EngineError, match="already registered"):
                register_solver("dupe", kind="uds", guarantee="exact",
                                cost="serial")(other)

    def test_reregistering_same_callable_is_idempotent(self):
        def one(graph):
            """One."""

        deco = register_solver("idem", kind="uds", guarantee="exact",
                               cost="serial")
        try:
            deco(one)
            deco(one)  # simulates a module re-import
            assert get_solver("uds", "idem").func is one
        finally:
            from repro.engine.spec import unregister_solver
            unregister_solver("uds", "idem")

    def test_temporary_solver_cleans_up(self):
        def one(graph):
            """One."""

        with temporary_solver(name="fleeting", kind="dds", guarantee="exact",
                              cost="serial")(one) as spec:
            assert get_solver("dds", "fleeting") is spec
        with pytest.raises(AlgorithmError):
            get_solver("dds", "fleeting")
