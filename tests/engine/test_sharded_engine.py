"""Engine over ShardedGraph: dispatch, memo-key identity, RunReport."""

import numpy as np
import pytest

from repro.engine import ExecutionContext
from repro.engine import run as engine_run
from repro.engine.runner import resolve_solver
from repro.engine.spec import get_solver
from repro.graph.generators import chung_lu_directed, chung_lu_undirected
from repro.store.memo import ResultCache, make_cache_key
from repro.store.shard import load_sharded, save_sharded


@pytest.fixture
def undirected_pair(tmp_path):
    graph = chung_lu_undirected(500, 2_500, seed=71)
    save_sharded(graph, tmp_path, shards=4)
    return graph, load_sharded(tmp_path)


@pytest.fixture
def directed_pair(tmp_path):
    graph = chung_lu_directed(400, 2_000, seed=72)
    save_sharded(graph, tmp_path, shards=4)
    return graph, load_sharded(tmp_path)


class TestDispatch:
    def test_kind_resolved_from_sharded_graph(self, undirected_pair, directed_pair):
        _, sharded_u = undirected_pair
        _, sharded_d = directed_pair
        assert resolve_solver("pkmc-bsp", sharded_u).kind == "uds"
        assert resolve_solver("pwc-bsp", sharded_d).kind == "dds"

    def test_bsp_specs_declare_shard_support(self):
        assert get_solver("uds", "pkmc-bsp").supports_shards
        assert get_solver("dds", "pwc-bsp").supports_shards
        # ...and capability_flags stays the locked 5-key contract set.
        flags = get_solver("uds", "pkmc-bsp").capability_flags()
        assert "supports_shards" not in flags and len(flags) == 5

    def test_engine_parity_pkmc(self, undirected_pair):
        graph, sharded = undirected_pair
        mono = engine_run("pkmc-bsp", graph, ExecutionContext())
        shard = engine_run("pkmc-bsp", sharded, ExecutionContext())
        assert shard.k_star == mono.k_star
        assert np.array_equal(shard.vertices, mono.vertices)

    def test_engine_parity_pwc(self, directed_pair):
        graph, sharded = directed_pair
        mono = engine_run("pwc-bsp", graph, ExecutionContext())
        shard = engine_run("pwc-bsp", sharded, ExecutionContext())
        assert shard.w_star == mono.w_star
        assert np.array_equal(shard.s, mono.s)
        assert np.array_equal(shard.t, mono.t)

    def test_shard_unaware_solver_materializes(self, undirected_pair):
        graph, sharded = undirected_pair
        spec = get_solver("uds", "pkmc")
        assert not spec.supports_shards
        mono = engine_run("pkmc", graph, ExecutionContext())
        shard = engine_run("pkmc", sharded, ExecutionContext())
        assert shard.k_star == mono.k_star
        assert np.array_equal(shard.vertices, mono.vertices)


class TestMemoKeyIdentity:
    """Acceptance pin: sharded and monolithic runs share cache entries."""

    def test_cache_keys_are_identical(self, undirected_pair):
        graph, sharded = undirected_pair
        spec = get_solver("uds", "pkmc-bsp")
        ctx = ExecutionContext()
        key_mono = make_cache_key(
            graph.fingerprint(), spec.kind, spec.name, ctx, {},
            backend="numpy",
        )
        key_shard = make_cache_key(
            sharded.fingerprint(), spec.kind, spec.name, ctx, {},
            backend="numpy",
        )
        assert key_mono == key_shard

    def test_sharded_run_hits_monolithic_entry(self, undirected_pair):
        graph, sharded = undirected_pair
        cache = ResultCache()
        first = engine_run("pkmc-bsp", graph, ExecutionContext(cache=cache))
        assert not first.report.cache_hit
        second = engine_run("pkmc-bsp", sharded, ExecutionContext(cache=cache))
        assert second.report.cache_hit
        assert second.k_star == first.k_star

    def test_monolithic_run_hits_sharded_entry(self, directed_pair):
        graph, sharded = directed_pair
        cache = ResultCache()
        first = engine_run("pwc-bsp", sharded, ExecutionContext(cache=cache))
        assert not first.report.cache_hit
        second = engine_run("pwc-bsp", graph, ExecutionContext(cache=cache))
        assert second.report.cache_hit
        assert second.w_star == first.w_star


class TestRunReportBreakdown:
    def test_sharded_run_populates_shard_fields(self, undirected_pair):
        _, sharded = undirected_pair
        result = engine_run("pkmc-bsp", sharded, ExecutionContext())
        report = result.report
        assert report.shards == 4
        assert report.shard_loads >= 4
        assert report.peak_resident_bytes > 0
        assert report.boundary_messages_bytes > 0

    def test_monolithic_run_stays_zero(self, undirected_pair):
        graph, _ = undirected_pair
        report = engine_run("pkmc-bsp", graph, ExecutionContext()).report
        assert report.shards == 0
        assert report.shard_loads == 0
        assert report.peak_resident_bytes == 0
        assert report.boundary_messages_bytes == 0

    def test_as_dict_carries_the_breakdown(self, undirected_pair):
        _, sharded = undirected_pair
        report = engine_run("pkmc-bsp", sharded, ExecutionContext()).report
        payload = report.as_dict()
        for key in ("shards", "shard_loads", "peak_resident_bytes",
                    "boundary_messages_bytes"):
            assert key in payload, key
        assert payload["shards"] == 4

    def test_materialized_run_reports_facade_stats(self, undirected_pair):
        # A shard-unaware solver still reports the facade's residency
        # (the to_graph() assembly pages through _load_members, not
        # shard(), so loads may be zero — but the shard count survives).
        _, sharded = undirected_pair
        report = engine_run("pkmc", sharded, ExecutionContext()).report
        assert report.shards == 4
