"""RunReport: engine-attached reports match direct solver calls.

The refactor's report contract: ``engine.run`` produces the same
RunReport a caller would build from a direct solver call with the same
SimRuntime — on both a heavy-tailed Chung–Lu background and a planted
clique — and every registered solver populates ``result.report``.
"""

import pytest

from repro.core.pkmc import pkmc
from repro.core.pwc import pwc
from repro.engine import ExecutionContext, RunReport, get_solver, run
from repro.engine.spec import solver_specs
from repro.errors import EmptyGraphError
from repro.graph import (
    UndirectedGraph,
    chung_lu_directed,
    chung_lu_undirected,
)
from repro.runtime.simruntime import SimRuntime

THREADS = 8


@pytest.fixture(scope="module")
def chung_lu_uds():
    return chung_lu_undirected(300, 1200, seed=11)


@pytest.fixture(scope="module")
def chung_lu_dds():
    return chung_lu_directed(300, 1200, seed=12)


@pytest.fixture(scope="module")
def clique_graph():
    # K8: density (n-1)/2 = 3.5, one h-index sweep family fixture.
    n = 8
    edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    return UndirectedGraph.from_edges(n, edges)


class TestEngineMatchesDirectCalls:
    @pytest.mark.parametrize("fixture", ["chung_lu_uds", "clique_graph"])
    def test_pkmc_report_equals_direct_call(self, fixture, request):
        graph = request.getfixturevalue(fixture)
        engine_result = run(
            "pkmc", graph, ExecutionContext(num_threads=THREADS)
        )

        runtime = SimRuntime(num_threads=THREADS)
        direct_result = pkmc(graph, runtime=runtime)
        direct_report = RunReport.from_run(
            get_solver("uds", "pkmc"), direct_result, runtime, graph=graph
        )

        assert engine_result.report == direct_report
        assert engine_result.density == direct_result.density
        assert engine_result.report.simulated_seconds == runtime.now

    def test_pwc_report_equals_direct_call(self, chung_lu_dds):
        engine_result = run(
            "pwc", chung_lu_dds, ExecutionContext(num_threads=THREADS)
        )

        runtime = SimRuntime(num_threads=THREADS)
        direct_result = pwc(chung_lu_dds, runtime=runtime)
        direct_report = RunReport.from_run(
            get_solver("dds", "pwc"), direct_result, runtime,
            graph=chung_lu_dds,
        )

        assert engine_result.report == direct_report

    def test_report_fields_describe_the_run(self, clique_graph):
        result = run("pkmc", clique_graph, ExecutionContext(num_threads=4))
        report = result.report
        assert report.solver == "pkmc" and report.kind == "uds"
        assert report.guarantee == "2-approx" and report.cost == "parallel"
        assert report.density == result.density == pytest.approx(3.5)
        assert report.iterations == result.iterations
        assert report.num_threads == 4
        assert report.parallel_loops > 0
        assert report.peak_frontier >= clique_graph.num_vertices
        assert report.simulated_seconds > 0.0
        assert set(report.breakdown) >= {"work", "serial", "total"}

    def test_graph_memory_includes_scratch_buffers(self):
        graph = chung_lu_undirected(120, 480, seed=3)
        report = run("pkmc", graph, ExecutionContext(num_threads=4)).report
        # Solvers touch degrees()/heads() and friends, so the report's
        # graph footprint is the structural size plus the scratch the run
        # actually materialised — exactly graph.memory_bytes() afterwards.
        assert report.graph_memory_bytes == graph.memory_bytes()
        assert report.graph_memory_bytes > graph.memory_bytes(
            include_scratch=False
        )

    def test_as_dict_roundtrips_every_field(self, clique_graph):
        report = run("pkmc", clique_graph).report
        payload = report.as_dict()
        assert payload == RunReport(**payload).as_dict()
        assert payload["solver"] == "pkmc"


class TestEverySolverPopulatesReport:
    @pytest.mark.parametrize(
        "spec",
        [s for s in solver_specs() if not s.supports_cluster],
        ids=lambda s: f"{s.kind}:{s.name}",
    )
    def test_report_attached(self, spec, triangle_graph, fig3_graph):
        graph = triangle_graph if spec.kind == "uds" else fig3_graph
        result = run(spec, graph)
        assert isinstance(result.report, RunReport)
        assert result.report.solver == spec.name
        assert result.report.kind == spec.kind
        assert result.report.density == result.density

    @pytest.mark.parametrize(
        "spec",
        [s for s in solver_specs() if s.supports_cluster],
        ids=lambda s: f"{s.kind}:{s.name}",
    )
    def test_bsp_ports_attach_reports_too(self, spec, triangle_graph,
                                          fig3_graph):
        graph = triangle_graph if spec.kind == "uds" else fig3_graph
        result = run(spec, graph)
        assert isinstance(result.report, RunReport)
        # BSP ports run on the simulated cluster, not a SimRuntime.
        assert result.report.cost == "bsp"
        assert result.report.simulated_seconds == result.simulated_seconds

    def test_empty_graph_error_propagates_unchanged(self):
        empty = UndirectedGraph.from_edges(0, [])
        with pytest.raises(EmptyGraphError):
            run("pkmc", empty)
