"""UDS_METHODS / DDS_METHODS are live, read-only registry views.

Satellite regression for the refactor: the public method tables must
never drift from the registry (they used to be hand-maintained dicts),
and they must be impossible to mutate.
"""

import pytest

from repro.api import DDS_METHODS, UDS_METHODS
from repro.engine.spec import solver_names, solver_specs, temporary_solver
from repro.engine.views import MethodsView, methods_view


class TestInSync:
    @pytest.mark.parametrize("view,kind", [(UDS_METHODS, "uds"),
                                           (DDS_METHODS, "dds")])
    def test_keys_mirror_registry(self, view, kind):
        assert sorted(view) == solver_names(kind)
        assert len(view) == len(solver_names(kind))

    @pytest.mark.parametrize("view,kind", [(UDS_METHODS, "uds"),
                                           (DDS_METHODS, "dds")])
    def test_values_are_registered_callables(self, view, kind):
        for spec in solver_specs(kind):
            assert view[spec.name] is spec.func

    def test_views_are_live_not_snapshots(self):
        def novel(graph):
            """Novel solver."""

        assert "novel" not in UDS_METHODS
        with temporary_solver(name="novel", kind="uds", guarantee="heuristic",
                              cost="serial")(novel):
            assert UDS_METHODS["novel"] is novel
            assert "novel" in set(UDS_METHODS)
        assert "novel" not in UDS_METHODS


class TestReadOnly:
    def test_setitem_impossible(self):
        with pytest.raises(TypeError):
            UDS_METHODS["hack"] = lambda graph: None  # type: ignore[index]

    def test_delitem_impossible(self):
        with pytest.raises(TypeError):
            del DDS_METHODS["pwc"]  # type: ignore[attr-defined]

    def test_missing_name_raises_keyerror(self):
        with pytest.raises(KeyError):
            UDS_METHODS["nope"]

    def test_mapping_helpers_work(self):
        assert UDS_METHODS.get("nope") is None
        assert "pkmc" in UDS_METHODS
        assert "pwc" in DDS_METHODS


class TestConstruction:
    def test_factory_matches_api_tables(self):
        assert isinstance(UDS_METHODS, MethodsView)
        assert methods_view("uds").kind == "uds"
        assert UDS_METHODS.kind == "uds" and DDS_METHODS.kind == "dds"

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            methods_view("tds")

    def test_repr_lists_methods(self):
        assert "pkmc" in repr(UDS_METHODS)
