"""Result memoization: keys, LRU behaviour, and engine integration.

The cache contract: a second ``engine.run`` of the same (graph
fingerprint, solver, context, options) answers from the cache with
``report.cache_hit`` set, bit-identical results and no additional
simulated work; any structural mutation or context change misses.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core import DynamicKStarCore
from repro.engine import ExecutionContext
from repro.engine import run as engine_run
from repro.graph import UndirectedGraph
from repro.store.memo import (
    ResultCache,
    disable_default_cache,
    enable_default_cache,
    get_default_cache,
    make_cache_key,
)

EDGES = [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (1, 3)]


@pytest.fixture
def graph():
    return UndirectedGraph.from_edges(5, EDGES)


class TestMakeCacheKey:
    def test_key_covers_identity(self, graph):
        ctx = ExecutionContext(num_threads=4)
        key = make_cache_key(graph.fingerprint(), "uds", "pkmc", ctx, {})
        assert key is not None
        assert graph.fingerprint() in key
        assert "pkmc" in key

    def test_preset_runtime_is_uncacheable(self, graph):
        ctx = ExecutionContext(num_threads=4)
        ctx.runtime = object()
        assert make_cache_key(graph.fingerprint(), "uds", "pkmc", ctx, {}) is None

    def test_unhashable_option_is_uncacheable(self, graph):
        ctx = ExecutionContext()
        key = make_cache_key(
            graph.fingerprint(), "uds", "pkmc", ctx, {"hook": object()}
        )
        assert key is None

    def test_context_fields_change_the_key(self, graph):
        fp = graph.fingerprint()
        base = make_cache_key(fp, "uds", "pkmc", ExecutionContext(), {})
        variants = [
            ExecutionContext(num_threads=8),
            ExecutionContext(seed=7),
            ExecutionContext(sanitize=True),
            ExecutionContext(frontier=True),
            ExecutionContext(time_limit=1.0),
        ]
        keys = {make_cache_key(fp, "uds", "pkmc", ctx, {}) for ctx in variants}
        assert base not in keys
        assert len(keys) == len(variants)

    def test_options_change_the_key(self, graph):
        fp = graph.fingerprint()
        ctx = ExecutionContext()
        assert make_cache_key(fp, "uds", "pbu", ctx, {"epsilon": 0.5}) != (
            make_cache_key(fp, "uds", "pbu", ctx, {"epsilon": 0.1})
        )


class TestResultCache:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)

    def test_lru_eviction_order(self, graph):
        cache = ResultCache(max_entries=2)
        result = engine_run("pkmc", graph, ExecutionContext())
        keys = [("k", i) for i in range(3)]
        cache.put(keys[0], result)
        cache.put(keys[1], result)
        assert cache.get(keys[0]) is not None  # refresh key 0
        cache.put(keys[2], result)  # evicts key 1, the LRU entry
        assert cache.get(keys[1]) is None
        assert cache.get(keys[0]) is not None
        assert cache.get(keys[2]) is not None
        assert len(cache) == 2

    def test_hit_returns_an_isolated_clone(self, graph):
        cache = ResultCache()
        result = engine_run("pkmc", graph, ExecutionContext())
        cache.put(("k",), result)
        first = cache.get(("k",))
        first.vertices[0] = 99
        second = cache.get(("k",))
        assert second.vertices[0] != 99

    def test_put_clones_the_stored_copy(self, graph):
        cache = ResultCache()
        result = engine_run("pkmc", graph, ExecutionContext())
        cache.put(("k",), result)
        result.vertices[0] = 77
        assert cache.get(("k",)).vertices[0] != 77

    def test_counters_and_clear(self, graph):
        cache = ResultCache()
        result = engine_run("pkmc", graph, ExecutionContext())
        cache.put(("k",), result)
        cache.get(("k",))
        cache.get(("missing",))
        assert (cache.hits, cache.misses) == (1, 1)
        cache.clear()
        assert (cache.hits, cache.misses, len(cache)) == (0, 0, 0)

    def test_none_key_is_a_no_op(self, graph):
        cache = ResultCache()
        result = engine_run("pkmc", graph, ExecutionContext())
        cache.put(None, result)
        assert len(cache) == 0
        assert cache.get(None) is None


class TestEngineIntegration:
    def test_second_run_hits_with_identical_results(self, graph):
        cache = ResultCache()
        cold = engine_run("pkmc", graph, ExecutionContext(cache=cache))
        hit = engine_run("pkmc", graph, ExecutionContext(cache=cache))
        assert not cold.report.cache_hit
        assert hit.report.cache_hit
        assert hit.density == cold.density  # repro-lint: disable=R004 (cache hits must be bit-identical clones)
        assert np.array_equal(hit.vertices, cold.vertices)
        # No additional simulated work: the report is the cold report
        # except for the hit marker.
        assert replace(hit.report, cache_hit=False) == cold.report

    def test_differing_context_misses(self, graph):
        cache = ResultCache()
        engine_run("pkmc", graph, ExecutionContext(num_threads=2, cache=cache))
        other = engine_run(
            "pkmc", graph, ExecutionContext(num_threads=4, cache=cache)
        )
        assert not other.report.cache_hit

    def test_dynamic_mutation_invalidates(self):
        core = DynamicKStarCore(6)
        core.insert_edges([(0, 1), (0, 2), (1, 2), (2, 3)])
        cache = ResultCache()
        before = core.graph().fingerprint()
        engine_run("pkmc", core.graph(), ExecutionContext(cache=cache))
        warm = engine_run("pkmc", core.graph(), ExecutionContext(cache=cache))
        assert warm.report.cache_hit

        assert core.insert_edge(3, 4)
        mutated = core.graph()
        assert mutated.fingerprint() != before
        fresh = engine_run("pkmc", mutated, ExecutionContext(cache=cache))
        assert not fresh.report.cache_hit

        # Deleting the edge restores the old structure — and the old
        # fingerprint makes the original entry reachable again.
        assert core.delete_edge(3, 4)
        restored = engine_run("pkmc", core.graph(), ExecutionContext(cache=cache))
        assert restored.report.cache_hit

    def test_default_cache_opt_in(self, graph):
        assert get_default_cache() is None
        enable_default_cache(max_entries=4)
        try:
            cold = engine_run("pkmc", graph, ExecutionContext())
            hit = engine_run("pkmc", graph, ExecutionContext())
            assert not cold.report.cache_hit
            assert hit.report.cache_hit
        finally:
            disable_default_cache()
        assert get_default_cache() is None

    def test_uncacheable_run_with_preset_runtime(self, graph):
        from repro.runtime import SimRuntime

        cache = ResultCache()
        ctx = ExecutionContext(cache=cache)
        ctx.runtime = SimRuntime(num_threads=2)
        engine_run("pkmc", graph, ctx)
        assert len(cache) == 0


class FakeClock:
    """Deterministic monotonic clock for TTL tests."""

    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTtl:
    def test_rejects_non_positive_ttl(self):
        with pytest.raises(ValueError):
            ResultCache(ttl=0.0)
        with pytest.raises(ValueError):
            ResultCache(ttl=-1.0)

    def test_entry_expires_after_ttl(self, graph):
        clock = FakeClock()
        cache = ResultCache(ttl=10.0, clock=clock)
        result = engine_run("pkmc", graph, ExecutionContext())
        cache.put(("k",), result)
        clock.advance(10.0)  # exactly at the TTL: still servable
        assert cache.get(("k",)) is not None
        clock.advance(0.5)  # past it: expired
        assert cache.get(("k",)) is None
        assert cache.expired == 1
        assert len(cache) == 0

    def test_expiry_counts_as_a_miss(self, graph):
        clock = FakeClock()
        cache = ResultCache(ttl=1.0, clock=clock)
        result = engine_run("pkmc", graph, ExecutionContext())
        cache.put(("k",), result)
        cache.get(("k",))
        clock.advance(2.0)
        cache.get(("k",))
        assert (cache.hits, cache.misses, cache.expired) == (1, 1, 1)

    def test_hit_refreshes_lru_but_not_the_stamp(self, graph):
        clock = FakeClock()
        cache = ResultCache(ttl=10.0, clock=clock)
        result = engine_run("pkmc", graph, ExecutionContext())
        cache.put(("k",), result)
        for _ in range(5):
            clock.advance(3.0)
            cache.get(("k",))  # repeated hits do not re-arm the TTL
        assert cache.get(("k",)) is None  # age 15s > ttl 10s
        assert cache.expired == 1

    def test_re_put_rearms_the_ttl(self, graph):
        clock = FakeClock()
        cache = ResultCache(ttl=10.0, clock=clock)
        result = engine_run("pkmc", graph, ExecutionContext())
        cache.put(("k",), result)
        clock.advance(8.0)
        cache.put(("k",), result)
        clock.advance(8.0)  # 16s since first put, 8s since re-put
        assert cache.get(("k",)) is not None

    def test_overflow_purges_expired_before_live(self, graph):
        clock = FakeClock()
        cache = ResultCache(max_entries=2, ttl=5.0, clock=clock)
        result = engine_run("pkmc", graph, ExecutionContext())
        cache.put(("dead",), result)
        clock.advance(6.0)
        cache.put(("live",), result)
        # "dead" has expired; inserting a third entry must evict it, not
        # the LRU-oldest *live* entry.
        cache.put(("newer",), result)
        assert cache.get(("live",)) is not None
        assert cache.get(("newer",)) is not None
        assert cache.get(("dead",)) is None
        assert cache.expired == 1

    def test_purge_expired_is_eager_and_counted(self, graph):
        clock = FakeClock()
        cache = ResultCache(ttl=1.0, clock=clock)
        result = engine_run("pkmc", graph, ExecutionContext())
        cache.put(("a",), result)
        cache.put(("b",), result)
        clock.advance(2.0)
        assert cache.purge_expired() == 2
        assert (len(cache), cache.expired) == (0, 2)
        assert ResultCache().purge_expired() == 0  # no TTL: no-op

    def test_no_ttl_never_expires(self, graph):
        clock = FakeClock()
        cache = ResultCache(clock=clock)
        result = engine_run("pkmc", graph, ExecutionContext())
        cache.put(("k",), result)
        clock.advance(1e9)
        assert cache.get(("k",)) is not None
        assert cache.expired == 0

    def test_clear_resets_expired_counter(self, graph):
        clock = FakeClock()
        cache = ResultCache(ttl=1.0, clock=clock)
        result = engine_run("pkmc", graph, ExecutionContext())
        cache.put(("k",), result)
        clock.advance(2.0)
        cache.get(("k",))
        cache.clear()
        assert (cache.hits, cache.misses, cache.expired) == (0, 0, 0)

    def test_engine_run_treats_expired_as_cold(self, graph):
        clock = FakeClock()
        cache = ResultCache(ttl=10.0, clock=clock)
        warm = engine_run("pkmc", graph, ExecutionContext(cache=cache))
        hit = engine_run("pkmc", graph, ExecutionContext(cache=cache))
        assert hit.report.cache_hit
        clock.advance(11.0)
        refreshed = engine_run("pkmc", graph, ExecutionContext(cache=cache))
        assert not refreshed.report.cache_hit
        assert refreshed.density == warm.density  # repro-lint: disable=R004 (recompute of identical input)


class TestDefaultCacheLifecycle:
    def teardown_method(self):
        disable_default_cache()

    def test_compatible_reenable_returns_existing_cache(self, graph):
        first = enable_default_cache(max_entries=8)
        warm = engine_run("pkmc", graph, ExecutionContext())
        hit = engine_run("pkmc", graph, ExecutionContext())
        assert hit.report.cache_hit
        again = enable_default_cache(max_entries=8)
        assert again is first  # entries and counters survive
        assert len(again) == 1
        still_hit = engine_run("pkmc", graph, ExecutionContext())
        assert still_hit.report.cache_hit
        assert still_hit.density == warm.density  # repro-lint: disable=R004 (cache hits must be bit-identical clones)

    def test_incompatible_reenable_replaces_the_cache(self, graph):
        first = enable_default_cache(max_entries=8)
        engine_run("pkmc", graph, ExecutionContext())
        second = enable_default_cache(max_entries=16)
        assert second is not first
        assert get_default_cache() is second
        assert len(second) == 0  # documented: reshaping drops the entries
        assert len(first) == 1  # the old object still works privately

    def test_ttl_shape_participates_in_compatibility(self):
        first = enable_default_cache(max_entries=8, ttl=5.0)
        assert enable_default_cache(max_entries=8, ttl=5.0) is first
        assert enable_default_cache(max_entries=8, ttl=9.0) is not first

    def test_context_cache_shadows_default_and_survives_disable(self, graph):
        enable_default_cache(max_entries=8)
        private = ResultCache()
        engine_run("pkmc", graph, ExecutionContext(cache=private))
        assert len(private) == 1
        assert len(get_default_cache()) == 0  # ctx cache shadowed it
        disable_default_cache()
        hit = engine_run("pkmc", graph, ExecutionContext(cache=private))
        assert hit.report.cache_hit  # per-context caches outlive the default

class TestFingerprintInvalidation:
    """Streaming-layer invalidation: fingerprint-granular, counted."""

    def test_drops_only_matching_fingerprint_keys(self, graph):
        cache = ResultCache()
        result = engine_run("pkmc", graph, ExecutionContext())
        fp = graph.fingerprint()
        cache.put((fp, "uds", "pkmc"), result)
        cache.put((fp, "uds", "pkmc", "stream"), result)
        cache.put(("other-fp", "uds", "pkmc"), result)
        assert cache.invalidate_fingerprint(fp) == 2
        assert cache.invalidated == 2
        assert len(cache) == 1
        assert cache.get(("other-fp", "uds", "pkmc")) is not None
        # idempotent: nothing left under that fingerprint
        assert cache.invalidate_fingerprint(fp) == 0
        assert cache.invalidated == 2

    def test_clear_resets_the_invalidated_counter(self, graph):
        cache = ResultCache()
        result = engine_run("pkmc", graph, ExecutionContext())
        cache.put((graph.fingerprint(), "uds", "pkmc"), result)
        cache.invalidate_fingerprint(graph.fingerprint())
        assert cache.invalidated == 1
        cache.clear()
        assert cache.invalidated == 0

    def test_delete_then_reinsert_restores_the_entry(self):
        # The mirror image of TestEngineIntegration's insert-then-delete:
        # removing an edge and putting it back returns the graph to its
        # original fingerprint, so the original cache entry re-hits.
        core = DynamicKStarCore(6)
        core.insert_edges(EDGES)
        cache = ResultCache()
        original = core.graph().fingerprint()
        engine_run("pkmc", core.graph(), ExecutionContext(cache=cache))

        assert core.delete_edge(1, 3)
        smaller = engine_run("pkmc", core.graph(), ExecutionContext(cache=cache))
        assert not smaller.report.cache_hit

        assert core.insert_edge(1, 3)
        assert core.graph().fingerprint() == original
        restored = engine_run("pkmc", core.graph(), ExecutionContext(cache=cache))
        assert restored.report.cache_hit
