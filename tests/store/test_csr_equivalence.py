"""Counting-sort CSR builders == the lexsort reference, bit for bit.

This is the equivalence suite the docstring of :mod:`repro.store.csr`
points at: every builder output (``indptr`` and ``indices``) must equal
the original lexsort formulation exactly, across graph families, both
index dtypes, and shuffled inputs.
"""

import numpy as np
import pytest

from repro.graph import chung_lu_undirected
from repro.store.compact import forced_int64
from repro.store.csr import (
    _sort_key_dtype,
    counting_sort_csr,
    csr_from_sorted_canonical,
    reference_csr_from_canonical,
)


def star_edges(n):
    spokes = np.arange(1, n, dtype=np.int64)
    return np.stack([np.zeros(n - 1, dtype=np.int64), spokes], axis=1)


def path_edges(n):
    left = np.arange(n - 1, dtype=np.int64)
    return np.stack([left, left + 1], axis=1)


def clique_edges(n):
    u, v = np.triu_indices(n, k=1)
    return np.stack([u.astype(np.int64), v.astype(np.int64)], axis=1)


def chung_lu_edges(n, m, seed):
    return chung_lu_undirected(n, m, seed=seed).edges()


FAMILIES = [
    pytest.param(0, np.empty((0, 2), dtype=np.int64), id="empty"),
    pytest.param(1, np.empty((0, 2), dtype=np.int64), id="single-vertex"),
    pytest.param(9, star_edges(9), id="star"),
    pytest.param(12, path_edges(12), id="path"),
    pytest.param(8, clique_edges(8), id="clique"),
    pytest.param(300, chung_lu_edges(300, 900, 3), id="chung-lu-small"),
    pytest.param(1500, chung_lu_edges(1500, 6000, 4), id="chung-lu-medium"),
]


@pytest.mark.parametrize("num_vertices, canon", FAMILIES)
@pytest.mark.parametrize("dtype", [np.int32, np.int64], ids=["int32", "int64"])
def test_undirected_builder_matches_reference(num_vertices, canon, dtype):
    ref_indptr, ref_indices = reference_csr_from_canonical(num_vertices, canon)
    indptr, indices = csr_from_sorted_canonical(num_vertices, canon, dtype=dtype)
    assert indptr.dtype == np.dtype(dtype)
    assert indices.dtype == np.dtype(dtype)
    assert np.array_equal(indptr, ref_indptr)
    assert np.array_equal(indices, ref_indices)


@pytest.mark.parametrize("num_vertices, canon", FAMILIES)
def test_directed_builder_matches_lexsort(num_vertices, canon):
    # Treat the canonical list as arcs in both directions so heads
    # carry duplicates and ties exercise stability.
    heads = np.concatenate([canon[:, 0], canon[:, 1]])
    tails = np.concatenate([canon[:, 1], canon[:, 0]])
    indptr, indices, order = counting_sort_csr(num_vertices, heads, tails)
    expected_order = np.lexsort((tails, heads))
    assert np.array_equal(order, expected_order)
    assert np.array_equal(indices, tails[expected_order])
    degrees = np.bincount(heads, minlength=num_vertices)
    assert np.array_equal(np.diff(indptr), degrees)


def test_unsorted_input_falls_back_to_reference():
    canon = clique_edges(6)
    rng = np.random.default_rng(0)
    shuffled = canon[rng.permutation(canon.shape[0])]
    ref = reference_csr_from_canonical(6, shuffled)
    got = csr_from_sorted_canonical(6, shuffled)
    assert np.array_equal(got[0], ref[0])
    assert np.array_equal(got[1], ref[1])


def test_forced_int64_graph_matches_narrowed_graph_structure():
    from repro.graph import UndirectedGraph

    edges = chung_lu_edges(400, 1600, 5)
    narrow = UndirectedGraph.from_edges(400, edges)
    with forced_int64():
        wide = UndirectedGraph.from_edges(400, edges)
    assert narrow.indptr.dtype == np.dtype(np.int32)
    assert wide.indptr.dtype == np.dtype(np.int64)
    assert np.array_equal(narrow.indptr, wide.indptr)
    assert np.array_equal(narrow.indices, wide.indices)


class TestSortKeyDtype:
    def test_thresholds(self):
        assert _sort_key_dtype(1) == np.dtype(np.uint16)
        assert _sort_key_dtype(1 << 16) == np.dtype(np.uint16)
        assert _sort_key_dtype((1 << 16) + 1) == np.dtype(np.uint32)
        assert _sort_key_dtype(1 << 32) == np.dtype(np.uint32)
        assert _sort_key_dtype((1 << 32) + 1) == np.dtype(np.int64)

    def test_narrowed_key_preserves_order(self):
        # Values up to the uint16 boundary must survive the cast.
        values = np.array([0, 65535, 1, 65534, 2], dtype=np.int64)
        narrowed = values.astype(_sort_key_dtype(1 << 16))
        assert np.array_equal(
            np.argsort(narrowed, kind="stable"),
            np.argsort(values, kind="stable"),
        )
